//! # spn — stream processing networks with max utility
//!
//! A production-quality Rust reproduction of *"Distributed Resource
//! Management and Admission Control of Stream Processing Systems with Max
//! Utility"* (Xia, Towsley, Zhang — ICDCS 2007).
//!
//! This facade crate re-exports the whole workspace so downstream users
//! can depend on a single crate:
//!
//! * [`graph`] — directed-graph substrate (topological order,
//!   reachability, SCCs, paths).
//! * [`model`] — the stream processing model: commodities, shrinkage
//!   factors, utilities, penalties, capacities, and the seeded random
//!   instance generator matching the paper's evaluation setup.
//! * [`transform`] — the paper's §3 graph transformations: bandwidth
//!   nodes (unifying CPU and link resources) and dummy nodes (mapping
//!   admission control into routing).
//! * [`solver`] — centralized optimum: a from-scratch dense simplex LP
//!   solver with an arc-flow encoding of the shrinkage multicommodity
//!   flow problem, piecewise-linear concave utilities, and a projected
//!   gradient cross-check.
//! * [`core`] — **the paper's contribution**: the distributed
//!   gradient-based algorithm for joint admission control, routing and
//!   resource allocation (§4–5).
//! * [`baseline`] — the back-pressure comparator from the authors'
//!   earlier SIGMETRICS 2006 work.
//! * [`sim`] — a round-based message-passing simulator that runs the
//!   distributed protocols as explicit messages, counts them, and injects
//!   failures.
//! * [`mesh`] — the region-sharded mesh runtime: workers own disjoint
//!   node ranges, exchange serialized frames over a fault-injectable
//!   transport, and recover through retries, heartbeats, and
//!   epoch-fenced checkpoints.
//!
//! # Quickstart
//!
//! ```
//! use spn::model::random::{RandomInstance, RandomInstanceConfig};
//! use spn::core::{GradientAlgorithm, GradientConfig};
//!
//! // A small seeded instance in the style of the paper's evaluation.
//! let instance = RandomInstance::builder()
//!     .nodes(12)
//!     .commodities(2)
//!     .seed(7)
//!     .build()
//!     .expect("valid instance");
//! let problem = instance.problem;
//!
//! let mut alg = GradientAlgorithm::new(&problem, GradientConfig::default())
//!     .expect("well-formed problem");
//! for _ in 0..200 {
//!     alg.step();
//! }
//! let report = alg.report();
//! assert!(report.utility >= 0.0);
//! # let _ = RandomInstanceConfig::default();
//! ```

pub use spn_baseline as baseline;
pub use spn_core as core;
pub use spn_graph as graph;
pub use spn_mesh as mesh;
pub use spn_model as model;
pub use spn_sim as sim;
pub use spn_solver as solver;
pub use spn_transform as transform;
