//! Surveillance scenario from the paper's introduction: multiple camera
//! streams with different values compete for shared decode/detect
//! servers during an overload (e.g. an incident triples the offered
//! frame rates). The joint mechanism must admit the valuable streams,
//! shed the rest, and route around the hot servers.
//!
//! Run with: `cargo run --release --example video_surveillance`

use spn::core::{GradientAlgorithm, GradientConfig};
use spn::model::builder::ProblemBuilder;
use spn::model::UtilityFn;
use spn::solver::arcflow::solve_linear_utility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = ProblemBuilder::new();

    // Two camera ingest servers, a shared pool of three workers
    // (decode expands the stream 1.5×, detection shrinks it to 10%),
    // one alarm aggregator, two sinks (security desk, archive).
    let cam_gate = b.server(60.0);
    let cam_lobby = b.server(60.0);
    let worker1 = b.server(35.0);
    let worker2 = b.server(35.0);
    let worker3 = b.server(20.0);
    let aggregator = b.server(25.0);
    let desk = b.server(10.0); // sink: security desk
    let archive = b.server(10.0); // sink: archive

    let bw = 80.0;
    let g_w1 = b.link(cam_gate, worker1, bw);
    let g_w2 = b.link(cam_gate, worker2, bw);
    let l_w2 = b.link(cam_lobby, worker2, bw);
    let l_w3 = b.link(cam_lobby, worker3, bw);
    let w1_agg = b.link(worker1, aggregator, bw);
    let w2_agg = b.link(worker2, aggregator, bw);
    let w3_agg = b.link(worker3, aggregator, bw);
    let agg_desk = b.link(aggregator, desk, bw);
    let agg_arch = b.link(aggregator, archive, bw);

    // Gate camera (critical, weight 5) → security desk.
    let critical = b.commodity(cam_gate, desk, 30.0, UtilityFn::Linear { weight: 5.0 });
    // Lobby camera (routine, weight 1) → archive.
    let routine = b.commodity(cam_lobby, archive, 30.0, UtilityFn::throughput());

    // decode+detect on the worker hop: cost 2.5/unit, stream becomes
    // 1.5 × 0.1 = 0.15 of its input; aggregation costs 1/unit.
    for (e, cost, beta) in [
        (g_w1, 1.0, 1.0),
        (g_w2, 1.0, 1.0),
        (w1_agg, 2.5, 0.15),
        (w2_agg, 2.5, 0.15),
        (agg_desk, 1.0, 1.0),
    ] {
        b.uses(critical, e, cost, beta);
    }
    for (e, cost, beta) in [
        (l_w2, 1.0, 1.0),
        (l_w3, 1.0, 1.0),
        (w2_agg, 2.5, 0.15),
        (w3_agg, 2.5, 0.15),
        (agg_arch, 1.0, 1.0),
    ] {
        b.uses(routine, e, cost, beta);
    }

    let calm = b.build()?;
    let incident = calm.scale_demand(3.0); // frame rates triple

    for (label, problem) in [("calm", &calm), ("incident (3x load)", &incident)] {
        let optimum = solve_linear_utility(problem)?;
        let mut alg = GradientAlgorithm::new(problem, GradientConfig::default())?;
        let r = alg.run(8000);
        println!("--- {label} ---");
        for (j, name) in problem.commodity_ids().zip(["gate→desk", "lobby→archive"]) {
            let lambda = problem.commodity(j).max_rate;
            println!(
                "  {name:<14} offered {lambda:>6.1}  admitted {:>6.2} ({:>5.1}%)",
                r.admitted[j.index()],
                100.0 * r.admitted[j.index()] / lambda
            );
        }
        println!(
            "  utility {:.2} (centralized optimum {:.2}, {:.1}%)",
            r.utility,
            optimum.objective,
            100.0 * r.utility / optimum.objective
        );
    }
    println!("\nUnder overload the weight-5 gate stream keeps its admission");
    println!("while the routine stream is shed — admission control emerged");
    println!("from routing at the dummy sources, no extra mechanism needed.");
    Ok(())
}
