//! Failure drill: converge on a random network, kill the hottest
//! intermediate server, and watch the distributed algorithm reroute and
//! re-admit — the recovery §3 of the paper says penalty headroom buys.
//!
//! Run with: `cargo run --release --example failure_drill`

use spn::core::GradientConfig;
use spn::model::random::RandomInstance;
use spn::sim::failure::fail_node;
use spn::sim::GradientSim;
use spn::transform::NodeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = RandomInstance::builder()
        .nodes(30)
        .commodities(2)
        .seed(21)
        .build()?
        .problem
        .scale_demand(2.0);

    let mut sim = GradientSim::new(&problem, GradientConfig::default())?;
    for _ in 0..6000 {
        sim.step();
    }
    let before = sim.utility();
    println!("converged: utility {before:.3} after 6000 iterations");
    println!(
        "protocol cost so far: {} messages over {} rounds",
        sim.total_messages(),
        sim.total_rounds()
    );

    // Pick the busiest intermediate processing server.
    let ext = sim.extended();
    let victim = ext
        .graph()
        .nodes()
        .filter(|&v| {
            matches!(ext.node_kind(v), NodeKind::Processing(_))
                && ext
                    .commodity_ids()
                    .all(|j| v != ext.commodity(j).source() && v != ext.commodity(j).sink())
        })
        .max_by(|&a, &b| {
            sim.flows()
                .node_usage(a)
                .total_cmp(&sim.flows().node_usage(b))
        })
        .expect("network has intermediate servers");
    let victim_load = sim.flows().node_usage(victim);
    println!("\nfailing server {victim} (load {victim_load:.2}) ...");
    fail_node(&mut sim, victim)?;

    let mut trough = before;
    for burst in [50usize, 200, 750, 3000] {
        for _ in 0..burst {
            sim.step();
            trough = trough.min(sim.utility());
        }
        println!(
            "  +{:>4} iterations: utility {:.3} ({:.1}% of pre-failure), victim load {:.4}",
            burst,
            sim.utility(),
            100.0 * sim.utility() / before,
            sim.flows().node_usage(victim)
        );
    }
    println!(
        "\ntrough was {:.1}% of pre-failure utility; traffic now routes around",
        100.0 * trough / before
    );
    println!("the dead server with no structural reconfiguration.");
    Ok(())
}
