//! End-to-end run at datacenter scale: generate a hierarchical
//! (regions × racks × servers) instance, converge the sparse-by-default
//! gradient engine with the oscillation-aware stopping rule, then churn
//! a tenant — park it, let the survivors re-settle, and re-admit it —
//! reporting system utility at each stage.
//!
//! This is the scale-tier workflow in miniature: the same generator,
//! engine defaults, and stopping rule the 10k-node CI gate
//! (`scale_smoke`) and the `bench_core` size curve use, at a size that
//! finishes in seconds.
//!
//! Run with: `cargo run --release --example hierarchical_scale`

use spn::core::{GradientAlgorithm, GradientConfig, StableOutcome};
use spn::model::hierarchy::HierarchicalInstance;
use spn::model::CommodityId;

/// Human-readable reason a windowed run stopped.
fn describe(outcome: &StableOutcome, cap: usize) -> &'static str {
    if outcome.converged {
        "tolerance met"
    } else if outcome.iterations < cap {
        "shift norm plateaued"
    } else {
        "iteration cap"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 regions × 10 racks × 25 servers = 1,000 physical nodes, with
    // 8 tenant commodities whose sources and sinks respect locality.
    // The seed makes every run identical.
    let instance = HierarchicalInstance::builder()
        .regions(4)
        .racks_per_region(10)
        .servers_per_rack(25)
        .commodities(8)
        .seed(42)
        .build()?;
    // Moderate demand so the routing genuinely settles instead of
    // saturating every bottleneck.
    let problem = instance.problem.scale_demand(0.2);
    println!(
        "instance: {} nodes ({} regions x {} racks x {} servers), {} tenants",
        instance.config.total_nodes(),
        instance.config.regions,
        instance.config.racks_per_region,
        instance.config.servers_per_rack,
        problem.num_commodities(),
    );

    // Engine defaults: sparsity on, so steady-state iterations touch
    // only the commodities whose state actually moved.
    let mut alg = GradientAlgorithm::new(&problem, GradientConfig::default())?;

    // The windowed rule stops either on genuine convergence (total
    // routing shift under tolerance) or when the shift norm stops
    // improving for a full window — the limit-cycle regime a plain
    // tolerance check would spin in until the cap.
    const WINDOW: usize = 1000;
    const CAP: usize = 20_000;
    let outcome = alg.run_until_stable_windowed(1e-3, WINDOW, CAP);
    let report = alg.report();
    println!(
        "settled after {} iterations ({}): utility {:.3}, max utilization {:.1}%",
        outcome.iterations,
        describe(&outcome, CAP),
        report.utility,
        100.0 * report.max_utilization,
    );
    let full_utility = report.utility;

    // A tenant departs: park its definition, evict it from the live
    // run, and let the survivors re-settle. No rebuild — the engine
    // reshapes its own state.
    let departing = CommodityId::from_index(problem.num_commodities() - 1);
    let parked = alg.extended().commodity_def(departing);
    alg.evict_commodity(departing);
    let outcome = alg.run_until_stable_windowed(1e-3, WINDOW, CAP);
    let report = alg.report();
    println!(
        "tenant {departing} parked: re-settled in {} iterations ({}), utility {:.3}",
        outcome.iterations,
        describe(&outcome, CAP),
        report.utility,
    );

    // The tenant returns. Online admission restores the commodity and
    // the gradient grows its allocation back from zero.
    let returned = alg.admit_commodity(parked);
    let outcome = alg.run_until_stable_windowed(1e-3, WINDOW, CAP);
    let report = alg.report();
    println!(
        "tenant {returned} re-admitted: re-settled in {} iterations ({}), utility {:.3}",
        outcome.iterations,
        describe(&outcome, CAP),
        report.utility,
    );

    let recovered = report.utility / full_utility;
    println!(
        "utility recovered to {:.1}% of the pre-churn level",
        100.0 * recovered,
    );
    if recovered < 0.99 {
        return Err(format!("utility did not recover: {recovered:.4}").into());
    }
    Ok(())
}
