//! Quickstart: build a small stream processing network by hand, run the
//! distributed gradient algorithm, and compare with the centralized
//! optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use spn::core::{GradientAlgorithm, GradientConfig};
use spn::model::builder::ProblemBuilder;
use spn::model::UtilityFn;
use spn::solver::arcflow::solve_linear_utility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A five-server network processing one stream: the source fans out
    // to two parallel filter servers (stream shrinks to 60%), which
    // feed an aggregator, which reports to the sink.
    //
    //          ┌── filter_a ──┐
    //  source ─┤              ├─ aggregate ── sink
    //          └── filter_b ──┘
    let mut b = ProblemBuilder::new();
    let source = b.server(30.0);
    let filter_a = b.server(12.0);
    let filter_b = b.server(20.0);
    let aggregate = b.server(25.0);
    let sink = b.server(10.0);

    let e_sa = b.link(source, filter_a, 40.0);
    let e_sb = b.link(source, filter_b, 40.0);
    let e_at = b.link(filter_a, aggregate, 40.0);
    let e_bt = b.link(filter_b, aggregate, 40.0);
    let e_out = b.link(aggregate, sink, 40.0);

    // The stream offers up to 12 units/s; delivered data is worth its
    // throughput (the paper's evaluation utility).
    let j = b.commodity(source, sink, 12.0, UtilityFn::throughput());
    // (cost, shrinkage) per processing hop:
    b.uses(j, e_sa, 1.0, 1.0) // source → filter_a: routing copy
        .uses(j, e_sb, 1.0, 1.0)
        .uses(j, e_at, 2.0, 0.6) // filtering shrinks the stream
        .uses(j, e_bt, 2.0, 0.6)
        .uses(j, e_out, 1.5, 1.0);

    let problem = b.build()?;

    // Centralized reference: the LP optimum of the joint admission,
    // routing, and allocation problem.
    let optimum = solve_linear_utility(&problem)?;
    println!(
        "centralized optimum: admit {:.3} units/s",
        optimum.objective
    );

    // The distributed algorithm starts fully rejecting and grows
    // admission as the gradient discovers capacity.
    let mut alg = GradientAlgorithm::new(&problem, GradientConfig::default())?;
    for checkpoint in [10, 100, 1000, 5000] {
        while alg.iterations() < checkpoint {
            alg.step();
        }
        let r = alg.report();
        println!(
            "iter {checkpoint:>5}: admitted {:.3}  utility {:.3}  max utilization {:.2}",
            r.admitted[0], r.utility, r.max_utilization
        );
    }

    let r = alg.report();
    println!(
        "distributed vs centralized: {:.1}%  (headroom kept by the penalty: {:.1}%)",
        100.0 * r.utility / optimum.objective,
        100.0 * (1.0 - r.max_utilization)
    );
    Ok(())
}
