//! Educational trace of the §5 protocols on a tiny network: watch the
//! marginal-cost wave travel upstream, the Γ update shift routing mass,
//! and the forecast wave travel back down — with the per-round message
//! accounting a real deployment would pay.
//!
//! Run with: `cargo run --release --example protocol_trace`

use spn::core::GradientConfig;
use spn::model::builder::ProblemBuilder;
use spn::model::{CommodityId, UtilityFn};
use spn::sim::GradientSim;
use spn::transform::view::{edge_label, node_label};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A diamond: the source can reach the sink through a cheap relay or
    // an expensive one.
    let mut b = ProblemBuilder::new();
    let s = b.server(40.0);
    let cheap = b.server(30.0);
    let pricey = b.server(6.0);
    let t = b.server(40.0);
    let e_sc = b.link(s, cheap, 25.0);
    let e_sp = b.link(s, pricey, 25.0);
    let e_ct = b.link(cheap, t, 25.0);
    let e_pt = b.link(pricey, t, 25.0);
    let j = b.commodity(s, t, 10.0, UtilityFn::throughput());
    b.uses(j, e_sc, 1.0, 1.0)
        .uses(j, e_sp, 1.0, 1.0)
        .uses(j, e_ct, 1.5, 1.0)
        .uses(j, e_pt, 1.5, 1.0);
    let problem = b.build()?;

    let mut sim = GradientSim::new(
        &problem,
        GradientConfig {
            eta: 0.3,
            ..Default::default()
        },
    )?;
    let ext = sim.extended().clone();
    let j = CommodityId::from_index(0);

    println!(
        "extended network ({} nodes, {} edges):",
        ext.graph().node_count(),
        ext.graph().edge_count()
    );
    for l in ext.graph().edges() {
        let (a, bb) = ext.graph().endpoints(l);
        println!(
            "  {} : {} -> {}",
            edge_label(&ext, l),
            node_label(&ext, a),
            node_label(&ext, bb)
        );
    }

    println!("\niter  rounds msgs   admitted  phi(admit) phi(cheap) phi(pricey)");
    let s_outs: Vec<_> = ext
        .commodity_out_edges(j, ext.commodity(j).source())
        .collect();
    for i in 0..12 {
        let stats = sim.step();
        let rt = sim.routing();
        println!(
            "{:>4}  {:>5} {:>5}   {:>7.3}   {:>8.3}  {:>8.3}  {:>9.3}",
            i + 1,
            stats.rounds(),
            stats.messages(),
            sim.flows().admitted(&ext, j),
            rt.admitted_fraction(&ext, j),
            rt.fraction(j, s_outs[0]),
            rt.fraction(j, s_outs[1]),
        );
    }
    for _ in 12..4000 {
        sim.step();
    }
    let rt = sim.routing();
    println!("\nafter 4000 iterations:");
    println!(
        "  admitted {:.3} of 10 offered; source splits {:.2} / {:.2} between relays",
        sim.flows().admitted(&ext, j),
        rt.fraction(j, s_outs[0]),
        rt.fraction(j, s_outs[1]),
    );
    println!(
        "  total protocol traffic: {} messages over {} synchronous rounds",
        sim.total_messages(),
        sim.total_rounds()
    );
    println!("\nEach iteration pays two O(L) waves (marginal costs upstream,");
    println!("forecasts downstream); the admitted rate is nothing more than the");
    println!("dummy source's routing fraction on its 'admit' link times λ.");
    Ok(())
}
