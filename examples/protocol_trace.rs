//! Educational trace of the §5 protocols on a tiny network: watch the
//! marginal-cost wave travel upstream, the Γ update shift routing mass,
//! and the forecast wave travel back down — with the per-round message
//! accounting a real deployment would pay.
//!
//! The second half re-runs the same instance on the region-sharded mesh
//! runtime and taps the wire: every batch frame of the first two
//! iterations is printed sub-frame by sub-frame (tick, phase, link,
//! kind, size), followed by the runtime's own per-link wire telemetry
//! for the full run — frames, bytes, and the rows the delta layer
//! suppressed (ARCHITECTURE invariant 20) — the mesh's concrete answer
//! to the message accounting the first half estimates.
//!
//! Run with: `cargo run --release --example protocol_trace`

use std::cell::RefCell;
use std::rc::Rc;

use spn::core::GradientConfig;
use spn::mesh::{BatchReader, Inbox, Lossless, MeshConfig, MeshIncident, MeshRuntime, Transport};
use spn::model::builder::ProblemBuilder;
use spn::model::{CommodityId, UtilityFn};
use spn::sim::GradientSim;
use spn::transform::view::{edge_label, node_label};
use spn::transform::ExtendedNetwork;

/// Lossless delivery with a wire tap: the first ticks' batch frames are
/// decoded as they cross the transport and printed sub-frame by
/// sub-frame, so the trace shows exactly what a deployment would put on
/// the network. Totals come from the runtime's own telemetry, not the
/// tap.
struct Traced {
    inner: Lossless,
    print_until_tick: Rc<RefCell<u64>>,
}

impl Transport for Traced {
    fn begin_tick(&mut self, tick: u64, log: &mut Vec<MeshIncident>) {
        self.inner.begin_tick(tick, log);
    }

    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: &[u8],
        log: &mut Vec<MeshIncident>,
    ) {
        if tick < *self.print_until_tick.borrow() {
            let mut reader = BatchReader::parse(bytes).expect("mesh frames decode");
            println!(
                "  tick {tick} phase {}:  region {from} -> {to}  batch round {:<3} {} bytes",
                tick % 3,
                reader.round(),
                bytes.len()
            );
            while let Some(sub) = reader.next_sub() {
                let sub = sub.expect("mesh sub-frames decode");
                println!(
                    "      {:<13} round {:<3} {} payload bytes",
                    sub.kind.name(),
                    sub.round,
                    sub.payload.len()
                );
            }
        }
        self.inner.send(tick, from, to, bytes, log);
    }

    fn deliver_into(
        &mut self,
        tick: u64,
        to: usize,
        inbox: &mut Inbox,
        log: &mut Vec<MeshIncident>,
    ) {
        self.inner.deliver_into(tick, to, inbox, log);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A diamond: the source can reach the sink through a cheap relay or
    // an expensive one.
    let mut b = ProblemBuilder::new();
    let s = b.server(40.0);
    let cheap = b.server(30.0);
    let pricey = b.server(6.0);
    let t = b.server(40.0);
    let e_sc = b.link(s, cheap, 25.0);
    let e_sp = b.link(s, pricey, 25.0);
    let e_ct = b.link(cheap, t, 25.0);
    let e_pt = b.link(pricey, t, 25.0);
    let j = b.commodity(s, t, 10.0, UtilityFn::throughput());
    b.uses(j, e_sc, 1.0, 1.0)
        .uses(j, e_sp, 1.0, 1.0)
        .uses(j, e_ct, 1.5, 1.0)
        .uses(j, e_pt, 1.5, 1.0);
    let problem = b.build()?;

    let mut sim = GradientSim::new(
        &problem,
        GradientConfig {
            eta: 0.3,
            ..Default::default()
        },
    )?;
    let ext = sim.extended().clone();
    let j = CommodityId::from_index(0);

    println!(
        "extended network ({} nodes, {} edges):",
        ext.graph().node_count(),
        ext.graph().edge_count()
    );
    for l in ext.graph().edges() {
        let (a, bb) = ext.graph().endpoints(l);
        println!(
            "  {} : {} -> {}",
            edge_label(&ext, l),
            node_label(&ext, a),
            node_label(&ext, bb)
        );
    }

    println!("\niter  rounds msgs   admitted  phi(admit) phi(cheap) phi(pricey)");
    let s_outs: Vec<_> = ext
        .commodity_out_edges(j, ext.commodity(j).source())
        .collect();
    for i in 0..12 {
        let stats = sim.step();
        let rt = sim.routing();
        println!(
            "{:>4}  {:>5} {:>5}   {:>7.3}   {:>8.3}  {:>8.3}  {:>9.3}",
            i + 1,
            stats.rounds(),
            stats.messages(),
            sim.flows().admitted(&ext, j),
            rt.admitted_fraction(&ext, j),
            rt.fraction(j, s_outs[0]),
            rt.fraction(j, s_outs[1]),
        );
    }
    for _ in 12..4000 {
        sim.step();
    }
    let rt = sim.routing();
    println!("\nafter 4000 iterations:");
    println!(
        "  admitted {:.3} of 10 offered; source splits {:.2} / {:.2} between relays",
        sim.flows().admitted(&ext, j),
        rt.fraction(j, s_outs[0]),
        rt.fraction(j, s_outs[1]),
    );
    println!(
        "  total protocol traffic: {} messages over {} synchronous rounds",
        sim.total_messages(),
        sim.total_rounds()
    );
    println!("\nEach iteration pays two O(L) waves (marginal costs upstream,");
    println!("forecasts downstream); the admitted rate is nothing more than the");
    println!("dummy source's routing fraction on its 'admit' link times λ.");

    // --- the same instance on the region-sharded mesh runtime ---
    // Two workers split the extended node range; the protocol's waves
    // become one delta-encoded batch frame per link per tick. The tap
    // prints the first two iterations frame by frame — phase 0 ships
    // changed marginals, phase 1 the Γ rows each owner moved, phase 2
    // changed forecasts and heartbeats.
    const REGIONS: usize = 2;
    let print_until_tick = Rc::new(RefCell::new(6u64));
    let transport = Traced {
        inner: Lossless::new(REGIONS),
        print_until_tick: Rc::clone(&print_until_tick),
    };
    let mut mesh = MeshRuntime::with_transport(
        ExtendedNetwork::build(&problem),
        MeshConfig {
            regions: REGIONS,
            gradient: GradientConfig {
                eta: 0.3,
                ..Default::default()
            },
            ..MeshConfig::default()
        },
        transport,
    )?;
    println!("\nmesh runtime, {REGIONS} regions — first two iterations on the wire:");
    mesh.run(2);
    mesh.run(3998);
    let report = mesh.run(0);

    println!("\nper-link wire telemetry after 4000 mesh iterations:");
    println!("  from  to  frames      bytes  rows sent  rows suppressed");
    for from in 0..REGIONS {
        for to in 0..REGIONS {
            if from == to {
                continue;
            }
            let s = mesh.worker(from).link_wire_stats(to);
            println!(
                "  {from:>4}  {to:>2}  {:>6}  {:>9}  {:>9}  {:>15}",
                s.frames_sent, s.bytes_sent, s.rows_sent, s.rows_suppressed
            );
        }
    }
    let wire = report.wire;
    println!(
        "  mesh total: {} frames, {} bytes ({:.1} bytes/iteration); delta \
         suppression skipped {} of {} rows",
        wire.frames,
        wire.bytes,
        wire.bytes as f64 / 4000.0,
        wire.rows_suppressed,
        wire.rows_sent + wire.rows_suppressed,
    );
    println!(
        "\nthe mesh admits {:.3} of 10 offered — the same equilibrium the\n\
         monolithic simulation reached above, with every exchanged value\n\
         having crossed an encode → decode round trip; incidents: {}",
        report.admitted[0],
        mesh.incidents().len()
    );
    Ok(())
}
