//! Financial-analysis scenario: exchange feeds filtered and enriched on
//! the way to trading desks, valued with *proportional-fairness* (log)
//! utilities so no desk can be starved. The distributed algorithm's
//! solution is checked against the certified piecewise-linear sandwich
//! bounds from the centralized solver.
//!
//! Run with: `cargo run --release --example market_data`

use spn::core::{GradientAlgorithm, GradientConfig};
use spn::model::random::RandomInstance;
use spn::model::UtilityFn;
use spn::solver::piecewise::sandwich;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 24-node processing fabric carrying three feed families
    // (equities, futures, FX), each a multi-stage filter/enrich
    // pipeline with shrinkage and expansion drawn from the paper's
    // distributions.
    let mut problem = RandomInstance::builder()
        .nodes(24)
        .commodities(3)
        .seed(12)
        .utility(UtilityFn::Log {
            weight: 10.0,
            scale: 1.0,
        })
        .max_rate(40.0..=80.0)
        .build()?
        .problem;
    // The FX desk pays for priority: double weight.
    let fx = spn::model::CommodityId::from_index(2);
    problem = problem.with_utility(
        fx,
        UtilityFn::Log {
            weight: 20.0,
            scale: 1.0,
        },
    );

    // Certified bracket on the true concave optimum.
    let (lower, upper) = sandwich(&problem, 60)?;
    println!(
        "certified optimum bracket: [{:.3}, {:.3}] (60-segment sandwich)",
        lower.objective, upper.objective
    );

    let mut alg = GradientAlgorithm::new(&problem, GradientConfig::default())?;
    let r = alg.run(15_000);
    println!(
        "distributed algorithm:     {:.3}  ({:.1}% of the upper bound)",
        r.utility,
        100.0 * r.utility / upper.objective
    );

    println!("\nper-desk admissions (log utility ⇒ nobody starves):");
    for (j, name) in problem
        .commodity_ids()
        .zip(["equities", "futures", "fx(2x)"])
    {
        println!(
            "  {name:<9} λ {:>6.1}   admitted {:>7.3}   centralized {:>7.3}",
            problem.commodity(j).max_rate,
            r.admitted[j.index()],
            lower.admitted[j.index()],
        );
    }
    assert!(
        r.admitted.iter().all(|&a| a > 0.0),
        "proportional fairness must keep every desk above zero"
    );
    Ok(())
}
