//! Routing variable sets `φ` (§4).
//!
//! `φ_ik(j)` is the fraction of node `i`'s commodity-`j` traffic
//! processed over extended edge `(i, k)`. A valid routing decision has
//! `φ ≥ 0`, `Σ_k φ_ik(j) = 1` at every node that can forward commodity
//! `j` (its *routers*), and `φ_ik(j) = 0` on edges outside the
//! commodity. Admission control lives in the same table: at the dummy
//! source, the fraction on the dummy input link is the admitted share of
//! `λ_j` and the fraction on the difference link is the rejected share.

use crate::pool::PhiRow;
use spn_graph::paths::hops_to;
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Tolerance for `Σ_k φ_ik(j) = 1` checks.
pub const FRACTION_TOLERANCE: f64 = 1e-7;

/// The routing decision `φ = {φ_ik(j)}` over an extended network.
///
/// Stored as one flat row-major buffer (`phi[j·L + l]`) so the pooled
/// iteration can view it as disjoint per-commodity rows — and, when a
/// commodity is split across workers, as disjoint per-router elements —
/// without allocating or juggling nested borrows.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutingTable {
    /// `phi[j·L + l]` — fraction for commodity `j` on extended edge `l`.
    phi: Vec<f64>,
    /// Extended edge count `L` (the row stride).
    l_count: usize,
}

impl RoutingTable {
    /// The paper's initial decision in our implementation: **fully
    /// rejecting** every commodity (the dummy source routes everything
    /// down the difference link), with interior nodes pre-routed along
    /// shortest-hop paths to their sink.
    ///
    /// This is always feasible (zero network load), loop-free, and lets
    /// admission *grow* as the gradient shifts mass onto the input link
    /// — the paper's "admission control becomes routing" in action.
    #[must_use]
    pub fn initial(ext: &ExtendedNetwork) -> Self {
        let l_count = ext.graph().edge_count();
        let mut phi = vec![0.0; ext.num_commodities() * l_count];
        for j in ext.commodity_ids() {
            seed_initial_row(
                &mut phi[j.index() * l_count..(j.index() + 1) * l_count],
                ext,
                j,
            );
        }
        RoutingTable { phi, l_count }
    }

    /// Restrides the table for a commodity just appended to `ext`:
    /// survivors' rows are copied bit-for-bit into the wider stride
    /// (their fractions on the new dummy links stay zero — foreign
    /// edges), and the newcomer's row is seeded exactly as
    /// [`RoutingTable::initial`] would seed it on a fresh build.
    pub(crate) fn admit(&mut self, ext: &ExtendedNetwork, j: CommodityId) {
        let new_l = ext.graph().edge_count();
        let old_l = self.l_count;
        let survivors = j.index();
        debug_assert_eq!(ext.num_commodities(), survivors + 1);
        debug_assert_eq!(self.phi.len(), survivors * old_l);
        let mut phi = vec![0.0; (survivors + 1) * new_l];
        for ji in 0..survivors {
            phi[ji * new_l..ji * new_l + old_l]
                .copy_from_slice(&self.phi[ji * old_l..(ji + 1) * old_l]);
        }
        seed_initial_row(&mut phi[survivors * new_l..], ext, j);
        self.phi = phi;
        self.l_count = new_l;
    }

    /// Restrides the table after commodity row `jr` was removed and the
    /// two dummy-link columns at `er0`/`er0 + 1` excised. Survivors'
    /// fractions are preserved bit-for-bit (the excised columns are
    /// foreign to them and hold zeros); rows after `jr` shift down one.
    pub(crate) fn evict(&mut self, jr: usize, er0: usize) {
        let old_l = self.l_count;
        let old_rows = self.phi.len() / old_l;
        debug_assert!(jr < old_rows && er0 + 1 < old_l);
        let mut w = 0;
        for ji in 0..old_rows {
            if ji == jr {
                continue;
            }
            for li in 0..old_l {
                if li == er0 || li == er0 + 1 {
                    debug_assert_eq!(
                        self.phi[ji * old_l + li],
                        0.0,
                        "survivor held mass on a departed dummy link"
                    );
                    continue;
                }
                self.phi[w] = self.phi[ji * old_l + li];
                w += 1;
            }
        }
        self.phi.truncate(w);
        self.l_count = old_l - 2;
    }

    /// The fraction `φ_ik(j)` on extended edge `l`.
    #[must_use]
    pub fn fraction(&self, j: CommodityId, l: EdgeId) -> f64 {
        self.phi[j.index() * self.l_count + l.index()]
    }

    /// Sets the fraction on an edge (no normalization; callers must keep
    /// router rows summing to one — see [`RoutingTable::set_row`]).
    pub fn set_fraction(&mut self, j: CommodityId, l: EdgeId, value: f64) {
        self.phi[j.index() * self.l_count + l.index()] = value;
    }

    /// Replaces all fractions at router `v` for commodity `j` with the
    /// given `(edge, fraction)` pairs after normalizing them to sum to
    /// one, clamping tiny negatives to zero.
    ///
    /// # Panics
    ///
    /// Panics if the total mass is not positive (a router must forward
    /// somewhere).
    pub fn set_row(
        &mut self,
        ext: &ExtendedNetwork,
        j: CommodityId,
        v: NodeId,
        row: &[(EdgeId, f64)],
    ) {
        apply_row(PhiRow::from_mut(self.row_mut(j)), ext, j, v, row);
    }

    /// Nodes that must carry a full unit of routing mass for commodity
    /// `j`: every non-sink node with at least one commodity-`j`
    /// out-edge (the dummy source included). Delegates to the extended
    /// network's precomputed router list.
    pub fn routers<'a>(
        &'a self,
        ext: &'a ExtendedNetwork,
        j: CommodityId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        ext.commodity_routers(j).iter().copied()
    }

    /// The commodity-`j` fraction row, indexed by extended edge.
    pub(crate) fn row(&self, j: CommodityId) -> &[f64] {
        &self.phi[j.index() * self.l_count..(j.index() + 1) * self.l_count]
    }

    /// Exclusive access to the commodity-`j` fraction row.
    pub(crate) fn row_mut(&mut self, j: CommodityId) -> &mut [f64] {
        &mut self.phi[j.index() * self.l_count..(j.index() + 1) * self.l_count]
    }

    /// The whole flat row-major buffer, read-only — checkpointing and
    /// health scans walk it without the per-edge lookup.
    pub(crate) fn flat(&self) -> &[f64] {
        &self.phi
    }

    /// The whole flat row-major buffer, for the pooled paths' disjoint
    /// row/element views.
    pub(crate) fn flat_mut(&mut self) -> &mut [f64] {
        &mut self.phi
    }

    /// The row stride (extended edge count `L`).
    pub(crate) fn l_count(&self) -> usize {
        self.l_count
    }

    /// Checks structural validity: fractions within `[0, 1]`, zero off
    /// the commodity subgraph, rows summing to one at every router.
    ///
    /// Returns a human-readable description of the first violation.
    ///
    /// # Errors
    ///
    /// Returns `Err` describing the violated invariant.
    pub fn validate(&self, ext: &ExtendedNetwork) -> Result<(), String> {
        for j in ext.commodity_ids() {
            for l in ext.graph().edges() {
                let f = self.fraction(j, l);
                if !ext.in_commodity(j, l) && f != 0.0 {
                    return Err(format!("{j}: nonzero fraction {f} on foreign edge {l}"));
                }
                if !(0.0..=1.0 + FRACTION_TOLERANCE).contains(&f) {
                    return Err(format!("{j}: fraction {f} out of range on {l}"));
                }
            }
            for v in self.routers(ext, j) {
                let sum: f64 = ext
                    .commodity_out_edges(j, v)
                    .map(|l| self.fraction(j, l))
                    .sum();
                if (sum - 1.0).abs() > FRACTION_TOLERANCE {
                    return Err(format!("{j}: router {v} fractions sum to {sum}"));
                }
            }
        }
        Ok(())
    }

    /// `true` if the positive-fraction subgraph of every commodity is
    /// acyclic (loop-freedom, the property the paper's blocked sets
    /// protect).
    #[must_use]
    pub fn is_loop_free(&self, ext: &ExtendedNetwork) -> bool {
        ext.commodity_ids().all(|j| {
            !spn_graph::scc::has_nontrivial_scc_filtered(ext.graph(), |l| self.fraction(j, l) > 0.0)
        })
    }

    /// The admitted fraction of `λ_j` (the routing share of the dummy
    /// input link).
    #[must_use]
    pub fn admitted_fraction(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        self.fraction(j, ext.input_edge(j))
    }
}

/// Seeds one commodity's initial decision (fully rejecting, interior
/// nodes pre-routed along shortest-hop paths) into a zeroed `row` —
/// the per-commodity body of [`RoutingTable::initial`], shared with the
/// online-admission restride so a newcomer starts bit-identically to a
/// fresh build.
fn seed_initial_row(row: &mut [f64], ext: &ExtendedNetwork, j: CommodityId) {
    let sink = ext.commodity(j).sink();
    let hops = hops_to(ext.graph(), sink, |l| ext.in_commodity(j, l));
    for v in ext.graph().nodes() {
        if v == sink {
            continue;
        }
        if v == ext.dummy_source(j) {
            row[ext.difference_edge(j).index()] = 1.0;
            continue;
        }
        // Route everything along the hop-shortest out-edge.
        let best = ext
            .commodity_out_edges(j, v)
            .min_by_key(|&l| hops[ext.graph().target(l).index()].unwrap_or(usize::MAX));
        if let Some(l) = best {
            row[l.index()] = 1.0;
        }
    }
}

/// Row-view form of [`RoutingTable::set_row`]: normalizes `row` to sum
/// to one (clamping tiny negatives) and writes it over node `v`'s
/// commodity-`j` out-edges in `phi`, zeroing the rest of that node's
/// out-edges first. Shared with the Γ update, whose pooled path updates
/// disjoint routers of one commodity row concurrently — every index
/// touched here belongs to `v`'s out-edge set, which no other router's
/// update overlaps (each edge has exactly one source), satisfying the
/// [`PhiRow`] disjointness contract. Allocation-free.
///
/// # Panics
///
/// Panics if the total mass is not positive.
pub(crate) fn apply_row(
    phi: PhiRow<'_>,
    ext: &ExtendedNetwork,
    j: CommodityId,
    v: NodeId,
    row: &[(EdgeId, f64)],
) {
    let mut total = 0.0;
    for &(_, f) in row {
        debug_assert!(
            f > -FRACTION_TOLERANCE,
            "fraction {f} significantly negative"
        );
        total += f.max(0.0);
    }
    assert!(
        total > 0.0,
        "router {v} for {j} must keep positive total mass"
    );
    for &l in ext.commodity_out_slice(j, v) {
        phi.set(l.index(), 0.0);
    }
    for &(l, f) in row {
        phi.set(l.index(), f.max(0.0) / total);
    }
}

/// Change-tracking variant of [`apply_row`] for the active-set engine.
/// Requires `row` to cover every out-edge of `v` (all Γ row producers
/// do), so no zero-fill pass is needed: each entry is compared bitwise
/// against the stored fraction and written only when it differs.
///
/// Returns `(value_changed, support_changed)` — whether any fraction's
/// bits changed, and whether any fraction crossed zero (the live-arc
/// sub-list must be rebuilt).
///
/// # Panics
///
/// Panics if the total mass is not positive.
pub(crate) fn apply_row_tracked(
    phi: PhiRow<'_>,
    ext: &ExtendedNetwork,
    j: CommodityId,
    v: NodeId,
    row: &[(EdgeId, f64)],
) -> (bool, bool) {
    let mut total = 0.0;
    for &(_, f) in row {
        debug_assert!(
            f > -FRACTION_TOLERANCE,
            "fraction {f} significantly negative"
        );
        total += f.max(0.0);
    }
    assert!(
        total > 0.0,
        "router {v} for {j} must keep positive total mass"
    );
    debug_assert_eq!(
        row.len(),
        ext.commodity_out_slice(j, v).len(),
        "tracked rows must cover every out-edge of {v} for {j}"
    );
    let mut value_changed = false;
    let mut support_changed = false;
    for &(l, f) in row {
        let new = f.max(0.0) / total;
        let old = phi.get(l.index());
        if old.to_bits() != new.to_bits() {
            value_changed = true;
            support_changed |= (old != 0.0) != (new != 0.0);
            phi.set(l.index(), new);
        }
    }
    (value_changed, support_changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::builder::ProblemBuilder;
    use spn_model::UtilityFn;

    fn diamond_ext() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(10.0);
        let x = b.server(10.0);
        let y = b.server(10.0);
        let t = b.server(10.0);
        let e_sx = b.link(s, x, 5.0);
        let e_sy = b.link(s, y, 5.0);
        let e_xt = b.link(x, t, 5.0);
        let e_yt = b.link(y, t, 5.0);
        let j = b.commodity(s, t, 4.0, UtilityFn::throughput());
        b.uses(j, e_sx, 1.0, 1.0)
            .uses(j, e_sy, 1.0, 1.0)
            .uses(j, e_xt, 1.0, 1.0)
            .uses(j, e_yt, 1.0, 1.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    #[test]
    fn initial_routing_is_valid_and_fully_rejecting() {
        let ext = diamond_ext();
        let rt = RoutingTable::initial(&ext);
        rt.validate(&ext).unwrap();
        let j = CommodityId::from_index(0);
        assert_eq!(rt.admitted_fraction(&ext, j), 0.0);
        assert_eq!(rt.fraction(j, ext.difference_edge(j)), 1.0);
        assert!(rt.is_loop_free(&ext));
    }

    #[test]
    fn initial_routing_splits_nothing() {
        let ext = diamond_ext();
        let rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        // every interior router sends everything to exactly one edge
        for v in rt.routers(&ext, j) {
            let nonzero = ext
                .commodity_out_edges(j, v)
                .filter(|&l| rt.fraction(j, l) > 0.0)
                .count();
            assert_eq!(nonzero, 1, "router {v} splits initially");
        }
    }

    #[test]
    fn set_row_normalizes() {
        let ext = diamond_ext();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        let outs: Vec<EdgeId> = ext.commodity_out_edges(j, s).collect();
        assert_eq!(outs.len(), 2);
        rt.set_row(&ext, j, s, &[(outs[0], 3.0), (outs[1], 1.0)]);
        assert!((rt.fraction(j, outs[0]) - 0.75).abs() < 1e-12);
        assert!((rt.fraction(j, outs[1]) - 0.25).abs() < 1e-12);
        rt.validate(&ext).unwrap();
    }

    #[test]
    fn set_row_clamps_negative_noise() {
        let ext = diamond_ext();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        let outs: Vec<EdgeId> = ext.commodity_out_edges(j, s).collect();
        rt.set_row(&ext, j, s, &[(outs[0], 1.0), (outs[1], -1e-12)]);
        assert_eq!(rt.fraction(j, outs[1]), 0.0);
        rt.validate(&ext).unwrap();
    }

    #[test]
    fn validate_catches_bad_rows() {
        let ext = diamond_ext();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        let outs: Vec<EdgeId> = ext.commodity_out_edges(j, s).collect();
        rt.set_fraction(j, outs[0], 0.7); // breaks the sum
        assert!(rt.validate(&ext).is_err());
    }

    #[test]
    fn validate_catches_foreign_edges() {
        let ext = diamond_ext();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        // bandwidth egress edges belong to the commodity, so poke a
        // truly foreign edge: none exist in a 1-commodity net, so fake
        // one by ranging over all edges and finding a non-member.
        let foreign = ext.graph().edges().find(|&l| !ext.in_commodity(j, l));
        if let Some(l) = foreign {
            rt.set_fraction(j, l, 0.5);
            assert!(rt.validate(&ext).is_err());
        }
    }

    #[test]
    fn routers_cover_dummy_and_interior() {
        let ext = diamond_ext();
        let rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        let routers: Vec<NodeId> = rt.routers(&ext, j).collect();
        assert!(routers.contains(&ext.dummy_source(j)));
        assert!(routers.contains(&ext.commodity(j).source()));
        assert!(!routers.contains(&ext.commodity(j).sink()));
        // all four bandwidth nodes route
        assert_eq!(routers.len(), 1 + 3 + 4); // dummy + s,x,y + 4 bw nodes
    }
}
