//! Marginal-cost computation `∂A/∂r_i(j)` (eq. (9)).
//!
//! For each commodity (destination) `j`, each node's marginal cost obeys
//!
//! ```text
//! ∂A/∂r_i(j) = Σ_k φ_ik(j) [ ∂A_i/∂f_ik · c^j_ik + β^j_ik · ∂A/∂r_k(j) ]
//! ```
//!
//! with `∂A/∂r_j(j) = 0` at the sink. In the protocol of §5 each node
//! waits for the value from every downstream neighbor, then broadcasts
//! its own; here (the synchronous in-process driver) that wave is one
//! sweep over the commodity's reverse topological order. The
//! message-level version of the same computation lives in `spn-sim`.
//!
//! [`compute_marginals_into`] reuses the caller's buffer (no heap
//! allocation once warm) and can fan the independent per-commodity
//! sweeps out over the persistent [`WorkerPool`](crate::pool::WorkerPool);
//! [`compute_marginals`] is the allocating convenience wrapper. Each
//! commodity writes only its own row, so the result is bit-identical
//! for any thread count.

#![allow(unsafe_code)] // disjoint-row fan-out over the worker pool

use crate::cost::CostModel;
use crate::flows::{FlowState, UsageView};
use crate::pool::{RowTable, WorkerPool};
use crate::routing::RoutingTable;
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Per-commodity, per-node marginal costs `∂A/∂r_i(j)`, stored as one
/// flat row-major buffer (`d[j·V + v]`).
#[derive(Clone, Debug, PartialEq)]
pub struct Marginals {
    pub(crate) d: Vec<f64>,
    pub(crate) v_count: usize,
}

impl Marginals {
    /// An all-zero marginal set sized for `ext`.
    #[must_use]
    pub fn zeros(ext: &ExtendedNetwork) -> Self {
        let v_count = ext.graph().node_count();
        Marginals {
            d: vec![0.0; ext.num_commodities() * v_count],
            v_count,
        }
    }

    /// Builds marginals from raw per-commodity per-node values (used by
    /// the message-level simulator, which computes the same quantities
    /// from received broadcasts).
    ///
    /// # Panics
    ///
    /// Panics if the per-commodity rows have unequal lengths.
    #[must_use]
    pub fn from_raw(rows: Vec<Vec<f64>>) -> Self {
        let v_count = rows.first().map_or(0, Vec::len);
        let mut d = Vec::with_capacity(rows.len() * v_count);
        for row in &rows {
            assert_eq!(row.len(), v_count, "marginal row length mismatch");
            d.extend_from_slice(row);
        }
        Marginals { d, v_count }
    }

    /// Resizes (and zeroes) the buffer for `ext`.
    pub(crate) fn reset(&mut self, ext: &ExtendedNetwork) {
        self.v_count = ext.graph().node_count();
        self.d.clear();
        self.d.resize(ext.num_commodities() * self.v_count, 0.0);
    }

    /// Restrides after commodity row `jr` and its dummy source (node
    /// column `d`) left the network: drops that row and column while
    /// preserving every survivor's values bit-for-bit. Survivors are
    /// deliberately *not* recomputed — an eviction changes the shared
    /// usage totals, and the next iteration refreshes marginals from
    /// the new flows anyway; until then the pre-reshape values remain
    /// visible unchanged. The dropped column holds zeros for survivors
    /// (a foreign dummy is outside their subgraphs).
    pub(crate) fn evict(&mut self, jr: usize, d: usize) {
        let old_v = self.v_count;
        let old_rows = self.d.len() / old_v;
        debug_assert!(jr < old_rows && d < old_v);
        let mut w = 0;
        for ji in 0..old_rows {
            if ji == jr {
                continue;
            }
            for vi in 0..old_v {
                if vi == d {
                    debug_assert_eq!(
                        self.d[ji * old_v + vi],
                        0.0,
                        "survivor marginal nonzero at a foreign dummy"
                    );
                    continue;
                }
                self.d[w] = self.d[ji * old_v + vi];
                w += 1;
            }
        }
        self.d.truncate(w);
        self.v_count = old_v - 1;
    }

    /// `∂A/∂r_v(j)`.
    #[must_use]
    pub fn node(&self, j: CommodityId, v: NodeId) -> f64 {
        self.d[j.index() * self.v_count + v.index()]
    }

    /// Overwrites one marginal entry. Simulators use this to assemble
    /// the *received* view of the marginal broadcast — under message
    /// loss or staleness the value a node acts on is not the value its
    /// neighbor computed — and fault-injection tests use it to plant
    /// corruption the watchdog must flag.
    pub fn set_node(&mut self, j: CommodityId, v: NodeId, value: f64) {
        self.d[j.index() * self.v_count + v.index()] = value;
    }

    /// Commodity-`j` marginal row, indexed by extended node.
    pub(crate) fn row(&self, j: CommodityId) -> &[f64] {
        &self.d[j.index() * self.v_count..(j.index() + 1) * self.v_count]
    }

    /// The bracketed per-link marginal of eqs. (9)/(10) for edge
    /// `l = (i, k)`:
    /// `∂A_i/∂f_il · c^j_il + β^j_il · ∂A/∂r_k(j)`.
    #[must_use]
    pub fn edge(
        &self,
        ext: &ExtendedNetwork,
        cost: &CostModel,
        state: &FlowState,
        j: CommodityId,
        l: EdgeId,
    ) -> f64 {
        let head = ext.graph().target(l);
        cost.edge_marginal(ext, state, j, l, self.node(j, head))
    }
}

/// One commodity's reverse sweep of eq. (9), writing its row `d`
/// (every non-sink reachable node is overwritten; the sink entry must
/// arrive 0 and stays 0 by convention). `phi` is the commodity's
/// fraction row and `usage` the shared usage totals — the only
/// cross-commodity data the sweep reads, which is what lets the fused
/// pooled step run it concurrently with other commodities' sweeps.
pub(crate) fn marginal_sweep(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    phi: &[f64],
    usage: UsageView<'_>,
    j: CommodityId,
    d: &mut [f64],
) {
    let sink = ext.commodity(j).sink();
    for &v in ext.topo_order(j).iter().rev() {
        if v == sink {
            continue; // stays 0
        }
        let mut acc = 0.0;
        for &l in ext.commodity_out_slice(j, v) {
            let phi = phi[l.index()];
            if phi == 0.0 {
                continue;
            }
            let head = ext.graph().target(l);
            acc += phi * cost.edge_marginal_view(ext, usage, j, l, d[head.index()]);
        }
        d[v.index()] = acc;
    }
}

/// [`marginal_sweep`] over a commodity's live-arc sub-list (the
/// active-set engine's marginal pass). Walks the topo router list in
/// reverse, accumulating each router's marginal from its live arcs only
/// — the dense sweep skips zero-fraction arcs, so the addition chain is
/// identical. Non-router `d` entries are *not* rewritten: they are
/// invariantly zero (the dense sweep always writes an empty sum there,
/// nothing else ever writes them), so skipping the row fill is
/// bit-identical too. For routers other than the dummy source every
/// out-edge shares the tail's resource partial, which is hoisted out of
/// the arc loop as in Γ (`partial * cost + beta * d`, never fused).
#[allow(clippy::too_many_arguments)] // a commodity's full sweep context
pub(crate) fn marginal_sweep_active(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    phi: &[f64],
    usage: UsageView<'_>,
    j: CommodityId,
    d: &mut [f64],
    arc_len: &[u32],
    arcs: &[EdgeId],
    live: usize,
) {
    let routers = ext.commodity_routers_topo(j);
    let dummy = ext.dummy_source(j);
    let mut idx = live;
    for r in (0..routers.len()).rev() {
        let v = routers[r];
        let n = arc_len[r] as usize;
        idx -= n;
        let row = &arcs[idx..idx + n];
        let mut acc = 0.0;
        if v == dummy {
            for &l in row {
                let head = ext.graph().target(l);
                acc += phi[l.index()] * cost.edge_marginal_view(ext, usage, j, l, d[head.index()]);
            }
        } else {
            let tail_partial = cost.node_partial_view(ext, usage, v);
            for &l in row {
                let head = ext.graph().target(l);
                acc += phi[l.index()]
                    * (tail_partial * ext.cost(j, l) + ext.beta(j, l) * d[head.index()]);
            }
        }
        d[v.index()] = acc;
    }
    debug_assert_eq!(idx, 0, "live-arc prefix mismatch for {j}");
}

/// Runs the marginal-cost wave for every commodity into a caller-owned
/// buffer. `pool: None` is the serial path; `Some` fans the
/// per-commodity sweeps out over the persistent worker pool (rows are
/// disjoint, so results are bit-identical either way). Allocation-free
/// once warm.
pub fn compute_marginals_into(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
    out: &mut Marginals,
    pool: Option<&WorkerPool>,
) {
    out.reset(ext);
    let v_count = out.v_count;
    let j_count = ext.num_commodities();
    match pool {
        Some(pool) if pool.participants() > 1 && j_count > 1 => {
            let d_tab = RowTable::new(&mut out.d, v_count.max(1));
            let usage = state.usage_view();
            pool.run_tasks(j_count, |ji, _worker| {
                let j = CommodityId::from_index(ji);
                // SAFETY: task `ji` is the sole accessor of row `ji`.
                let d = unsafe { d_tab.row_mut(ji) };
                marginal_sweep(ext, cost, routing.row(j), usage, j, d);
            });
        }
        _ => {
            for (ji, d) in out.d.chunks_mut(v_count.max(1)).enumerate() {
                let j = CommodityId::from_index(ji);
                marginal_sweep(ext, cost, routing.row(j), state.usage_view(), j, d);
            }
        }
    }
}

/// Runs the marginal-cost wave for every commodity (eq. (9), sink
/// convention `∂A/∂r_j(j) = 0`). Allocating wrapper over
/// [`compute_marginals_into`].
#[must_use]
pub fn compute_marginals(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
) -> Marginals {
    let mut out = Marginals::zeros(ext);
    compute_marginals_into(ext, cost, routing, state, &mut out, None);
    out
}

/// Numerically verifies eq. (9) at one node by finite differences:
/// perturbs the external input `r_v(j)` by `±h` (propagating through the
/// fixed routing) and compares the cost delta with the analytic
/// marginal. Used by tests.
#[must_use]
pub fn finite_difference_marginal(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    j: CommodityId,
    v: NodeId,
    h: f64,
) -> f64 {
    let eval = |delta: f64| -> f64 {
        // recompute flows with an extra external input `delta` at v
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        let mut t = vec![vec![0.0; v_count]; j_count];
        let mut f_edge = vec![0.0; l_count];
        let mut f_node = vec![0.0; v_count];
        let mut x = vec![vec![0.0; l_count]; j_count];
        for jj in ext.commodity_ids() {
            let ji = jj.index();
            t[ji][ext.dummy_source(jj).index()] = ext.commodity(jj).max_rate;
            if jj == j {
                t[ji][v.index()] += delta;
            }
            for &u in ext.topo_order(jj) {
                let tu = t[ji][u.index()];
                if tu == 0.0 {
                    continue;
                }
                for l in ext.commodity_out_edges(jj, u) {
                    let phi = routing.fraction(jj, l);
                    if phi == 0.0 {
                        continue;
                    }
                    let flow = tu * phi;
                    x[ji][l.index()] = flow;
                    let usage = flow * ext.cost(jj, l);
                    f_edge[l.index()] += usage;
                    f_node[u.index()] += usage;
                    t[ji][ext.graph().target(l).index()] += flow * ext.beta(jj, l);
                }
            }
        }
        let state = FlowState::from_nested(&t, &x, f_edge, f_node);
        cost.total_cost(ext, &state)
    };
    (eval(h) - eval(-h)) / (2.0 * h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::compute_flows;
    use spn_model::builder::ProblemBuilder;
    use spn_model::{Penalty, UtilityFn};

    fn diamond() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(30.0);
        let x = b.server(20.0);
        let y = b.server(40.0);
        let t = b.server(30.0);
        let e_sx = b.link(s, x, 15.0);
        let e_sy = b.link(s, y, 25.0);
        let e_xt = b.link(x, t, 15.0);
        let e_yt = b.link(y, t, 25.0);
        let j = b.commodity(s, t, 6.0, UtilityFn::throughput());
        b.uses(j, e_sx, 2.0, 0.8)
            .uses(j, e_sy, 1.5, 1.2)
            .uses(j, e_xt, 1.0, 1.25)
            .uses(j, e_yt, 2.5, 0.833_333_333_333_333_3);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    fn cm() -> CostModel {
        CostModel::new(Penalty::default(), 0.2)
    }

    fn admitting_split(ext: &ExtendedNetwork) -> RoutingTable {
        let j = CommodityId::from_index(0);
        let mut rt = RoutingTable::initial(ext);
        rt.set_row(
            ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 0.6), (ext.difference_edge(j), 0.4)],
        );
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        rt.set_row(ext, j, s, &[(outs[0], 0.5), (outs[1], 0.5)]);
        rt
    }

    #[test]
    fn sink_marginal_is_zero() {
        let ext = diamond();
        let rt = admitting_split(&ext);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let j = CommodityId::from_index(0);
        assert_eq!(m.node(j, ext.commodity(j).sink()), 0.0);
    }

    #[test]
    fn marginals_match_finite_differences() {
        let ext = diamond();
        let rt = admitting_split(&ext);
        let fs = compute_flows(&ext, &rt);
        let cost = cm();
        let m = compute_marginals(&ext, &cost, &rt, &fs);
        let j = CommodityId::from_index(0);
        for v in ext.graph().nodes() {
            if v == ext.commodity(j).sink() {
                continue;
            }
            let analytic = m.node(j, v);
            let fd = finite_difference_marginal(&ext, &cost, &rt, j, v, 1e-5);
            assert!(
                (analytic - fd).abs() < 1e-5 * (1.0 + analytic.abs()),
                "node {v}: analytic {analytic} vs fd {fd}"
            );
        }
    }

    #[test]
    fn dummy_marginal_blends_admit_and_reject() {
        let ext = diamond();
        let rt = admitting_split(&ext);
        let fs = compute_flows(&ext, &rt);
        let cost = cm();
        let m = compute_marginals(&ext, &cost, &rt, &fs);
        let j = CommodityId::from_index(0);
        let dummy = ext.dummy_source(j);
        let input_m = m.edge(&ext, &cost, &fs, j, ext.input_edge(j));
        let diff_m = m.edge(&ext, &cost, &fs, j, ext.difference_edge(j));
        let blended = 0.6 * input_m + 0.4 * diff_m;
        assert!((m.node(j, dummy) - blended).abs() < 1e-12);
        // linear utility ⇒ rejecting costs exactly 1 at the margin
        assert!((diff_m - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_rise_with_load() {
        let ext = diamond();
        let j = CommodityId::from_index(0);
        let cost = cm();
        let mut low = RoutingTable::initial(&ext);
        low.set_row(
            &ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 0.1), (ext.difference_edge(j), 0.9)],
        );
        let mut high = low.clone();
        high.set_row(
            &ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 0.9), (ext.difference_edge(j), 0.1)],
        );
        let fs_low = compute_flows(&ext, &low);
        let fs_high = compute_flows(&ext, &high);
        let m_low = compute_marginals(&ext, &cost, &low, &fs_low);
        let m_high = compute_marginals(&ext, &cost, &high, &fs_high);
        let s = ext.commodity(j).source();
        assert!(m_high.node(j, s) > m_low.node(j, s));
    }

    #[test]
    fn zero_flow_edges_still_have_marginals() {
        // the Γ update needs marginals on φ=0 edges (to decide whether
        // to open them); Marginals::edge must work there
        let ext = diamond();
        let rt = RoutingTable::initial(&ext); // interior all-to-one-edge
        let fs = compute_flows(&ext, &rt);
        let cost = cm();
        let m = compute_marginals(&ext, &cost, &rt, &fs);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        for l in ext.commodity_out_edges(j, s) {
            let em = m.edge(&ext, &cost, &fs, j, l);
            assert!(em.is_finite());
            assert!(em >= 0.0);
        }
    }

    #[test]
    fn into_variant_matches_fresh_for_any_thread_count() {
        let ext = diamond();
        let rt = admitting_split(&ext);
        let fs = compute_flows(&ext, &rt);
        let cost = cm();
        let reference = compute_marginals(&ext, &cost, &rt, &fs);
        let mut reused = Marginals::zeros(&ext);
        let pool = crate::pool::WorkerPool::new(4);
        for pool in [None, Some(&pool)] {
            compute_marginals_into(&ext, &cost, &rt, &fs, &mut reused, pool);
            assert_eq!(reused, reference);
        }
    }
}
