//! Convergence tracking helpers shared by experiments.

/// Records a per-iteration utility series and answers the questions the
/// paper's evaluation asks of it (iterations to a fraction of the
/// optimum, monotonicity).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConvergenceTracker {
    utilities: Vec<f64>,
}

impl ConvergenceTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one iteration's utility.
    pub fn record(&mut self, utility: f64) {
        self.utilities.push(utility);
    }

    /// The recorded series.
    #[must_use]
    pub fn utilities(&self) -> &[f64] {
        &self.utilities
    }

    /// Number of recorded iterations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.utilities.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.utilities.is_empty()
    }

    /// The last recorded utility, or `0.0` before the first record.
    #[must_use]
    pub fn last(&self) -> f64 {
        self.utilities.last().copied().unwrap_or(0.0)
    }

    /// First iteration (0-based) whose utility reaches
    /// `fraction · target`, or `None` if never reached. With
    /// `fraction = 0.95` this is the paper's "within 95% of optimal"
    /// metric.
    #[must_use]
    pub fn iterations_to(&self, target: f64, fraction: f64) -> Option<usize> {
        let threshold = target * fraction;
        self.utilities.iter().position(|&u| u >= threshold)
    }

    /// `true` if the series never drops by more than `tolerance` (the
    /// paper observes "the total throughput improves monotonically").
    #[must_use]
    pub fn is_monotone(&self, tolerance: f64) -> bool {
        self.utilities.windows(2).all(|w| w[1] >= w[0] - tolerance)
    }

    /// Largest single-step decrease in the series (0.0 if monotone).
    #[must_use]
    pub fn max_drop(&self) -> f64 {
        self.utilities
            .windows(2)
            .map(|w| (w[0] - w[1]).max(0.0))
            .fold(0.0, f64::max)
    }

    /// Downsamples to at most `points` values on a logarithmic iteration
    /// axis (like Figure 4's log-scale x-axis): returns
    /// `(iteration, utility)` pairs including the first and last.
    #[must_use]
    pub fn log_samples(&self, points: usize) -> Vec<(usize, f64)> {
        let n = self.utilities.len();
        if n == 0 || points == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(points);
        let mut last_idx = usize::MAX;
        for p in 0..points {
            let frac = p as f64 / (points.saturating_sub(1).max(1)) as f64;
            let idx = ((n as f64).powf(frac) - 1.0).round() as usize;
            let idx = idx.min(n - 1);
            if idx != last_idx {
                out.push((idx, self.utilities[idx]));
                last_idx = idx;
            }
        }
        if out.last().map(|&(i, _)| i) != Some(n - 1) {
            out.push((n - 1, self.utilities[n - 1]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut t = ConvergenceTracker::new();
        assert!(t.is_empty());
        assert_eq!(t.last(), 0.0);
        for u in [0.0, 1.0, 2.0, 3.5, 3.5] {
            t.record(u);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.last(), 3.5);
        assert_eq!(t.utilities()[2], 2.0);
    }

    #[test]
    fn iterations_to_fraction() {
        let mut t = ConvergenceTracker::new();
        for u in [0.0, 2.0, 3.0, 3.8, 3.9, 4.0] {
            t.record(u);
        }
        assert_eq!(t.iterations_to(4.0, 0.95), Some(3));
        assert_eq!(t.iterations_to(4.0, 0.5), Some(1));
        assert_eq!(t.iterations_to(10.0, 0.95), None);
    }

    #[test]
    fn monotonicity() {
        let mut t = ConvergenceTracker::new();
        for u in [0.0, 1.0, 2.0, 1.999_999_9, 3.0] {
            t.record(u);
        }
        assert!(t.is_monotone(1e-6));
        assert!(!t.is_monotone(1e-9));
        assert!(t.max_drop() > 0.0 && t.max_drop() < 1e-6);
    }

    #[test]
    fn log_samples_cover_endpoints() {
        let mut t = ConvergenceTracker::new();
        for i in 0..1000 {
            t.record(i as f64);
        }
        let s = t.log_samples(20);
        assert!(s.len() <= 21);
        assert_eq!(s.first().unwrap().0, 0);
        assert_eq!(s.last().unwrap().0, 999);
        // strictly increasing iteration indices
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn log_samples_handle_tiny_series() {
        let mut t = ConvergenceTracker::new();
        t.record(1.0);
        let s = t.log_samples(10);
        assert_eq!(s, vec![(0, 1.0)]);
        assert!(ConvergenceTracker::new().log_samples(10).is_empty());
    }
}
