//! Numerical health monitoring: structured errors instead of panics.
//!
//! §3 of the paper motivates penalty headroom with recovery from "node
//! or link failures" and "changing demands" — but a runtime that
//! silently propagates a NaN, diverges without notice, or panics deep in
//! library code cannot *use* that headroom. This module provides the
//! reporting half of the chaos-hardening stack:
//!
//! * [`CoreError`] — a structured error type for everything the
//!   iteration core can detect going wrong (non-finite state, sustained
//!   divergence/oscillation, invalid fault targets, checkpoint shape
//!   mismatches). Library code reports through it instead of panicking.
//! * [`Watchdog`] — a per-step monitor that scans flows, marginals, and
//!   routing for NaN/Inf, tracks the utility trajectory for divergence
//!   (a collapse relative to the best utility seen) and sustained
//!   oscillation (alternating large utility deltas, the signature of an
//!   η that outruns the barrier), and reacts with step-size backoff.
//! * [`HealthReport`] — the structured incident report of one check:
//!   what was detected, and what the watchdog did (or recommends) about
//!   it.
//!
//! The watchdog owns reusable buffers, so steady-state checks are
//! allocation-free after the first incident. The recovery half — the
//! checkpoint/rollback machinery a caller uses to get *past* a fault the
//! watchdog flagged — lives in [`crate::checkpoint`]; the adversarial
//! test bed that exercises both under injected faults lives in
//! `spn-sim`'s `chaos` module.

use crate::flows::FlowState;
use crate::marginals::Marginals;
use crate::routing::RoutingTable;
use crate::{GradientAlgorithm, StepStats};
use std::fmt;

/// Which state buffer a non-finite value was found in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateDomain {
    /// Node traffic rates `t_i(j)` (eq. (3)).
    Traffic,
    /// Per-edge commodity flows `x_l(j)`.
    EdgeFlows,
    /// Cross-commodity usage totals `f_edge`/`f_node` (eqs. (4)–(5)).
    UsageTotals,
    /// Marginal costs `∂A/∂r_i(j)` (eq. (9)).
    Marginals,
    /// Routing fractions `φ_ik(j)`.
    Routing,
    /// The scalar utility `Σ_j U_j(a_j)`.
    Utility,
}

impl fmt::Display for StateDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StateDomain::Traffic => "traffic rates",
            StateDomain::EdgeFlows => "edge flows",
            StateDomain::UsageTotals => "usage totals",
            StateDomain::Marginals => "marginals",
            StateDomain::Routing => "routing fractions",
            StateDomain::Utility => "utility",
        };
        f.write_str(name)
    }
}

/// Structured runtime errors of the iteration core and its recovery
/// machinery. Library code reports these instead of panicking so a
/// supervising loop can react (back off, roll back, fail over) rather
/// than die.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A NaN or ±Inf entered the named state buffer.
    NonFinite {
        /// The buffer family the value was found in.
        domain: StateDomain,
        /// Flat index of the first offending entry (buffer-specific).
        index: usize,
        /// Iteration at which the check ran.
        iteration: usize,
    },
    /// Utility collapsed relative to the best value seen.
    Diverged {
        /// Utility at detection time.
        utility: f64,
        /// Best utility observed before the collapse.
        peak: f64,
        /// Iteration at which the check ran.
        iteration: usize,
    },
    /// Sustained oscillation: the utility delta kept alternating sign
    /// at significant amplitude.
    Oscillating {
        /// Consecutive sign flips observed.
        flips: usize,
        /// Iteration at which the check ran.
        iteration: usize,
    },
    /// A fault-injection target was not a physical processing node.
    NotProcessingNode {
        /// The rejected node.
        node: spn_graph::NodeId,
    },
    /// A fault-injection target edge has no bandwidth node (it is not a
    /// physical edge of the network).
    NoBandwidthNode {
        /// The rejected edge.
        edge: spn_graph::EdgeId,
    },
    /// A capacity value was not positive and finite.
    InvalidCapacity {
        /// The rejected value.
        value: f64,
    },
    /// A checkpoint's buffers do not match the algorithm's shape.
    ShapeMismatch {
        /// Which buffer mismatched.
        what: &'static str,
        /// Length the algorithm expected.
        expected: usize,
        /// Length the checkpoint holds.
        got: usize,
    },
    /// [`restore`](crate::GradientAlgorithm::restore) was called with a
    /// checkpoint that never captured state.
    EmptyCheckpoint,
    /// A checkpoint was captured under a different commodity set: an
    /// online admission or eviction reshaped the state since (or
    /// before) the capture, so the snapshot cannot be replayed.
    EpochMismatch {
        /// The algorithm's current commodity-set epoch.
        expected: u64,
        /// The epoch the checkpoint was captured under.
        got: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NonFinite {
                domain,
                index,
                iteration,
            } => write!(
                f,
                "non-finite value in {domain} at flat index {index} (iteration {iteration})"
            ),
            CoreError::Diverged {
                utility,
                peak,
                iteration,
            } => write!(
                f,
                "utility diverged: {utility} vs peak {peak} (iteration {iteration})"
            ),
            CoreError::Oscillating { flips, iteration } => write!(
                f,
                "sustained oscillation: {flips} consecutive utility sign flips (iteration {iteration})"
            ),
            CoreError::NotProcessingNode { node } => {
                write!(f, "{node} is not a physical processing node")
            }
            CoreError::NoBandwidthNode { edge } => {
                write!(f, "{edge} has no bandwidth node (not a physical edge)")
            }
            CoreError::InvalidCapacity { value } => {
                write!(f, "capacity must be positive and finite, got {value}")
            }
            CoreError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "checkpoint shape mismatch in {what}: expected {expected} entries, got {got}"
            ),
            CoreError::EmptyCheckpoint => f.write_str("checkpoint holds no captured state"),
            CoreError::EpochMismatch { expected, got } => write!(
                f,
                "checkpoint epoch mismatch: algorithm at commodity-set epoch {expected}, capture at {got}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// One detected anomaly.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Incident {
    /// A NaN or ±Inf in the named buffer (first offending flat index).
    NonFinite {
        /// The buffer family.
        domain: StateDomain,
        /// First offending flat index.
        index: usize,
    },
    /// Utility collapsed below `(1 − divergence_drop) · peak`.
    Diverged {
        /// Utility at detection time.
        utility: f64,
        /// Peak utility before the collapse.
        peak: f64,
    },
    /// The utility delta alternated sign at significant amplitude for
    /// `flips` consecutive steps.
    Oscillating {
        /// Consecutive sign flips.
        flips: usize,
        /// Magnitude of the latest delta.
        amplitude: f64,
    },
}

/// What the watchdog did (or recommends) about the incidents of a check.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum Action {
    /// Nothing beyond reporting.
    None,
    /// The caller should shrink the step size (the watchdog had no
    /// mutable access to apply it itself).
    BackoffRecommended,
    /// The watchdog shrank η.
    BackedOff {
        /// η before the backoff.
        from: f64,
        /// η after the backoff.
        to: f64,
    },
    /// State is corrupted (non-finite); continuing would panic or
    /// propagate garbage. Roll back to a checkpoint.
    RollbackRecommended,
}

/// The structured result of one watchdog check with at least one
/// incident.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthReport {
    /// Iteration the check observed.
    pub iteration: usize,
    /// Everything detected this check (non-finite scans record the
    /// first offending index per buffer family).
    pub incidents: Vec<Incident>,
    /// The watchdog's reaction.
    pub action: Action,
}

impl HealthReport {
    /// The first *fatal* incident as a [`CoreError`], if any. Non-finite
    /// state is fatal (stepping further would panic in Γ-normalization
    /// or propagate garbage); divergence and oscillation are advisory —
    /// the watchdog already reacts with backoff.
    #[must_use]
    pub fn to_error(&self) -> Option<CoreError> {
        self.incidents.iter().find_map(|incident| match *incident {
            Incident::NonFinite { domain, index } => Some(CoreError::NonFinite {
                domain,
                index,
                iteration: self.iteration,
            }),
            _ => None,
        })
    }

    /// `true` if any incident is a non-finite detection.
    #[must_use]
    pub fn has_non_finite(&self) -> bool {
        self.incidents
            .iter()
            .any(|i| matches!(i, Incident::NonFinite { .. }))
    }
}

/// Tunables of the [`Watchdog`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// Relative drop from the peak utility reported as divergence
    /// (`utility < (1 − divergence_drop) · peak`). After reporting, the
    /// peak re-arms at the current utility so one collapse episode is
    /// reported once, not every step.
    pub divergence_drop: f64,
    /// Peaks below this are too small for relative-drop comparisons
    /// (everything looks like a collapse near zero).
    pub divergence_floor: f64,
    /// Consecutive utility-delta sign flips reported as sustained
    /// oscillation.
    pub oscillation_flips: usize,
    /// Minimum |Δutility| for a flip to count (benign limit cycles at
    /// the shift cap stay below this).
    pub oscillation_amplitude: f64,
    /// Multiplier applied to η when backing off.
    pub backoff_factor: f64,
    /// η never drops below this.
    pub eta_min: f64,
    /// Healthy-step multiplier that lets η creep back toward its
    /// original value after a backoff (`1.0` disables recovery).
    pub eta_recovery: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            divergence_drop: 0.5,
            divergence_floor: 1e-6,
            oscillation_flips: 8,
            oscillation_amplitude: 1e-3,
            backoff_factor: 0.5,
            eta_min: 1e-4,
            eta_recovery: 1.01,
        }
    }
}

/// Per-step numerical health monitor.
///
/// Feed it one observation per iteration — either via
/// [`Watchdog::check`] on a [`GradientAlgorithm`], or via
/// [`Watchdog::observe`] with explicit state references (the `spn-sim`
/// chaos runtime uses the latter). A check with no incidents returns
/// `None` and costs one linear scan of the state buffers; incidents are
/// collected into a reusable [`HealthReport`] (allocation-free once the
/// incident buffer is warm).
#[derive(Clone, Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Best utility seen (re-armed after each divergence report).
    peak: f64,
    /// Utility of the previous observation.
    last_utility: f64,
    /// Sign of the previous significant delta (0 = none).
    last_sign: i8,
    /// Consecutive alternating-sign significant deltas.
    flips: usize,
    /// Whether any observation has been recorded yet.
    primed: bool,
    /// η at the first check (the ceiling for recovery).
    baseline_eta: Option<f64>,
    /// Reused report; `incidents` is cleared, not reallocated.
    report: HealthReport,
    /// Cumulative incident count over the watchdog's lifetime.
    incidents_total: usize,
    /// Cumulative non-finite incident count.
    non_finite_total: usize,
}

impl Watchdog {
    /// A watchdog with the given tunables.
    #[must_use]
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            peak: f64::NEG_INFINITY,
            last_utility: 0.0,
            last_sign: 0,
            flips: 0,
            primed: false,
            baseline_eta: None,
            report: HealthReport {
                iteration: 0,
                incidents: Vec::new(),
                action: Action::None,
            },
            incidents_total: 0,
            non_finite_total: 0,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// The report of the most recent check that found incidents.
    #[must_use]
    pub fn last_report(&self) -> &HealthReport {
        &self.report
    }

    /// Total incidents reported over this watchdog's lifetime.
    #[must_use]
    pub fn incidents_total(&self) -> usize {
        self.incidents_total
    }

    /// Total non-finite incidents reported over this watchdog's
    /// lifetime (zero means no NaN/Inf ever entered observed state).
    #[must_use]
    pub fn non_finite_total(&self) -> usize {
        self.non_finite_total
    }

    /// Stateless scan for fatal (non-finite) corruption — no history
    /// update, no backoff. Used as a pre-step guard: stepping on
    /// corrupted state would panic inside Γ-row normalization.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError::NonFinite`] found.
    pub fn preflight(
        &self,
        iteration: usize,
        flows: &FlowState,
        marginals: &Marginals,
        routing: &RoutingTable,
    ) -> Result<(), CoreError> {
        if let Some((domain, index)) = first_non_finite(flows, marginals, routing) {
            return Err(CoreError::NonFinite {
                domain,
                index,
                iteration,
            });
        }
        Ok(())
    }

    /// Records one observation. Returns `Some(report)` when at least one
    /// incident was detected; the report's `action` is a
    /// *recommendation* (this entry point has nothing to mutate — use
    /// [`Watchdog::check`] to let the watchdog apply η backoff itself).
    pub fn observe(
        &mut self,
        iteration: usize,
        utility: f64,
        flows: &FlowState,
        marginals: &Marginals,
        routing: &RoutingTable,
    ) -> Option<&HealthReport> {
        self.report.iteration = iteration;
        self.report.incidents.clear();
        self.report.action = Action::None;

        // 1. Non-finite scan: state corruption trumps everything.
        if !utility.is_finite() {
            self.report.incidents.push(Incident::NonFinite {
                domain: StateDomain::Utility,
                index: 0,
            });
        }
        if let Some((domain, index)) = first_non_finite(flows, marginals, routing) {
            self.report
                .incidents
                .push(Incident::NonFinite { domain, index });
        }
        if !self.report.incidents.is_empty() {
            self.report.action = Action::RollbackRecommended;
            self.non_finite_total += self.report.incidents.len();
            self.incidents_total += self.report.incidents.len();
            // Do not fold a corrupted utility into the trajectory state.
            return Some(&self.report);
        }

        // 2. Divergence: collapse relative to the best utility seen.
        if self.peak > self.cfg.divergence_floor
            && utility < (1.0 - self.cfg.divergence_drop) * self.peak
        {
            self.report.incidents.push(Incident::Diverged {
                utility,
                peak: self.peak,
            });
            // Re-arm at the current level: one report per episode.
            self.peak = utility;
        } else {
            self.peak = self.peak.max(utility);
        }

        // 3. Sustained oscillation: alternating significant deltas.
        if self.primed {
            let delta = utility - self.last_utility;
            if delta.abs() >= self.cfg.oscillation_amplitude {
                let sign: i8 = if delta > 0.0 { 1 } else { -1 };
                if self.last_sign != 0 && sign != self.last_sign {
                    self.flips += 1;
                } else {
                    self.flips = 0;
                }
                self.last_sign = sign;
                if self.flips >= self.cfg.oscillation_flips {
                    self.report.incidents.push(Incident::Oscillating {
                        flips: self.flips,
                        amplitude: delta.abs(),
                    });
                    self.flips = 0;
                    self.last_sign = 0;
                }
            } else {
                self.flips = 0;
                self.last_sign = 0;
            }
        }
        self.last_utility = utility;
        self.primed = true;

        if self.report.incidents.is_empty() {
            None
        } else {
            self.incidents_total += self.report.incidents.len();
            self.report.action = Action::BackoffRecommended;
            Some(&self.report)
        }
    }

    /// Observes `alg`'s current state and *applies* the reaction:
    /// divergence or oscillation shrinks η by `backoff_factor` (floored
    /// at `eta_min`); incident-free checks let η recover toward its
    /// original value by `eta_recovery` per step. Returns `Some` when
    /// incidents were detected.
    pub fn check(&mut self, alg: &mut GradientAlgorithm) -> Option<&HealthReport> {
        let eta = alg.config().eta;
        let baseline = *self.baseline_eta.get_or_insert(eta);
        let utility = alg.utility();
        let found = self
            .observe(
                alg.iterations(),
                utility,
                alg.flows(),
                alg.marginals(),
                alg.routing(),
            )
            .is_some();
        if found {
            if self.report.action == Action::BackoffRecommended {
                let to = (eta * self.cfg.backoff_factor).max(self.cfg.eta_min);
                if to < eta {
                    alg.set_eta(to);
                    self.report.action = Action::BackedOff { from: eta, to };
                }
            }
            Some(&self.report)
        } else {
            if self.cfg.eta_recovery > 1.0 && eta < baseline {
                alg.set_eta((eta * self.cfg.eta_recovery).min(baseline));
            }
            None
        }
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new(WatchdogConfig::default())
    }
}

impl GradientAlgorithm {
    /// One watchdog-guarded iteration: refuses (with a structured
    /// [`CoreError`]) to step on non-finite state, steps, then lets the
    /// watchdog inspect the result — reporting instead of panicking, so
    /// a supervising loop can [`restore`](GradientAlgorithm::restore) a
    /// checkpoint and move on.
    ///
    /// # Errors
    ///
    /// [`CoreError::NonFinite`] when corruption is detected before or
    /// after the step. Divergence/oscillation incidents are *not*
    /// errors; the watchdog reacts with η backoff and the report stays
    /// queryable via [`Watchdog::last_report`].
    pub fn guarded_step(&mut self, watchdog: &mut Watchdog) -> Result<StepStats, CoreError> {
        watchdog.preflight(
            self.iterations(),
            self.flows(),
            self.marginals(),
            self.routing(),
        )?;
        let stats = self.step();
        if let Some(report) = watchdog.check(self) {
            if let Some(err) = report.to_error() {
                return Err(err);
            }
        }
        Ok(stats)
    }
}

// --- serde (incident logs) -------------------------------------------
//
// Incident types serialize so fault-injection runtimes (`spn-sim`'s
// chaos log, `spn-mesh`'s incident log) can be rendered to JSON and
// diffed across CI runs. The impls are manual: the graph crate is
// deliberately serde-free, so node/edge ids appear as their indices,
// and every variant renders as a map with a `"kind"` discriminant
// first — insertion order is preserved by the `Value` tree, so the
// rendering is deterministic.

fn tagged(kind: &str, fields: Vec<(String, serde::Value)>) -> serde::Value {
    let mut entries = vec![("kind".to_owned(), serde::Value::Str(kind.to_owned()))];
    entries.extend(fields);
    serde::Value::Map(entries)
}

fn field(name: &str, value: impl serde::Serialize) -> (String, serde::Value) {
    (name.to_owned(), value.to_value())
}

impl serde::Serialize for StateDomain {
    fn to_value(&self) -> serde::Value {
        let name = match self {
            StateDomain::Traffic => "Traffic",
            StateDomain::EdgeFlows => "EdgeFlows",
            StateDomain::UsageTotals => "UsageTotals",
            StateDomain::Marginals => "Marginals",
            StateDomain::Routing => "Routing",
            StateDomain::Utility => "Utility",
        };
        serde::Value::Str(name.to_owned())
    }
}

impl serde::Serialize for CoreError {
    fn to_value(&self) -> serde::Value {
        match self {
            CoreError::NonFinite {
                domain,
                index,
                iteration,
            } => tagged(
                "NonFinite",
                vec![
                    field("domain", domain),
                    field("index", index),
                    field("iteration", iteration),
                ],
            ),
            CoreError::Diverged {
                utility,
                peak,
                iteration,
            } => tagged(
                "Diverged",
                vec![
                    field("utility", utility),
                    field("peak", peak),
                    field("iteration", iteration),
                ],
            ),
            CoreError::Oscillating { flips, iteration } => tagged(
                "Oscillating",
                vec![field("flips", flips), field("iteration", iteration)],
            ),
            CoreError::NotProcessingNode { node } => {
                tagged("NotProcessingNode", vec![field("node", node.index())])
            }
            CoreError::NoBandwidthNode { edge } => {
                tagged("NoBandwidthNode", vec![field("edge", edge.index())])
            }
            CoreError::InvalidCapacity { value } => {
                tagged("InvalidCapacity", vec![field("value", value)])
            }
            CoreError::ShapeMismatch {
                what,
                expected,
                got,
            } => tagged(
                "ShapeMismatch",
                vec![
                    ("what".to_owned(), serde::Value::Str((*what).to_owned())),
                    field("expected", expected),
                    field("got", got),
                ],
            ),
            CoreError::EmptyCheckpoint => tagged("EmptyCheckpoint", Vec::new()),
            CoreError::EpochMismatch { expected, got } => tagged(
                "EpochMismatch",
                vec![field("expected", expected), field("got", got)],
            ),
        }
    }
}

impl serde::Serialize for Incident {
    fn to_value(&self) -> serde::Value {
        match self {
            Incident::NonFinite { domain, index } => tagged(
                "NonFinite",
                vec![field("domain", domain), field("index", index)],
            ),
            Incident::Diverged { utility, peak } => tagged(
                "Diverged",
                vec![field("utility", utility), field("peak", peak)],
            ),
            Incident::Oscillating { flips, amplitude } => tagged(
                "Oscillating",
                vec![field("flips", flips), field("amplitude", amplitude)],
            ),
        }
    }
}

impl serde::Serialize for Action {
    fn to_value(&self) -> serde::Value {
        match self {
            Action::None => tagged("None", Vec::new()),
            Action::BackoffRecommended => tagged("BackoffRecommended", Vec::new()),
            Action::BackedOff { from, to } => {
                tagged("BackedOff", vec![field("from", from), field("to", to)])
            }
            Action::RollbackRecommended => tagged("RollbackRecommended", Vec::new()),
        }
    }
}

impl serde::Serialize for HealthReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            field("iteration", self.iteration),
            field("incidents", &self.incidents),
            field("action", self.action),
        ])
    }
}

/// First non-finite entry across the observable state buffers, scanned
/// in a fixed order (traffic, edge flows, usage totals, marginals,
/// routing) so reports are deterministic.
fn first_non_finite(
    flows: &FlowState,
    marginals: &Marginals,
    routing: &RoutingTable,
) -> Option<(StateDomain, usize)> {
    fn scan(buf: &[f64]) -> Option<usize> {
        buf.iter().position(|v| !v.is_finite())
    }
    if let Some(i) = scan(&flows.t) {
        return Some((StateDomain::Traffic, i));
    }
    if let Some(i) = scan(&flows.x) {
        return Some((StateDomain::EdgeFlows, i));
    }
    if let Some(i) = scan(&flows.f_edge) {
        return Some((StateDomain::UsageTotals, i));
    }
    if let Some(i) = scan(&flows.f_node) {
        return Some((StateDomain::UsageTotals, flows.f_edge.len() + i));
    }
    if let Some(i) = scan(&marginals.d) {
        return Some((StateDomain::Marginals, i));
    }
    if let Some(i) = scan(routing.flat()) {
        return Some((StateDomain::Routing, i));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GradientAlgorithm, GradientConfig};
    use spn_model::builder::ProblemBuilder;
    use spn_model::{CommodityId, UtilityFn};

    fn bottleneck() -> spn_model::Problem {
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(10.0);
        let t = b.server(100.0);
        let e1 = b.link(s, x, 100.0);
        let e2 = b.link(x, t, 100.0);
        let j = b.commodity(s, t, 20.0, UtilityFn::throughput());
        b.uses(j, e1, 1.0, 1.0).uses(j, e2, 2.0, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn healthy_run_reports_nothing() {
        let p = bottleneck();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let mut wd = Watchdog::default();
        for _ in 0..200 {
            alg.guarded_step(&mut wd).unwrap();
        }
        assert_eq!(wd.incidents_total(), 0);
        assert_eq!(wd.non_finite_total(), 0);
        assert!(alg.report().utility > 0.0);
    }

    #[test]
    fn watchdog_does_not_perturb_a_healthy_trajectory() {
        let p = bottleneck();
        let cfg = GradientConfig::default();
        let mut plain = GradientAlgorithm::new(&p, cfg).unwrap();
        let mut guarded = GradientAlgorithm::new(&p, cfg).unwrap();
        let mut wd = Watchdog::default();
        for _ in 0..150 {
            plain.step();
            guarded.guarded_step(&mut wd).unwrap();
        }
        assert_eq!(plain.flows(), guarded.flows());
        assert_eq!(plain.routing(), guarded.routing());
        assert_eq!(
            plain.report().utility.to_bits(),
            guarded.report().utility.to_bits()
        );
    }

    #[test]
    fn corruption_is_reported_not_panicked() {
        let p = bottleneck();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let mut wd = Watchdog::default();
        for _ in 0..50 {
            alg.guarded_step(&mut wd).unwrap();
        }
        *alg.flows_mut()
            .traffic_mut(CommodityId::from_index(0), spn_graph::NodeId::from_index(1)) = f64::NAN;
        let err = alg
            .guarded_step(&mut wd)
            .expect_err("NaN state must be refused");
        assert!(matches!(
            err,
            CoreError::NonFinite {
                domain: StateDomain::Traffic,
                ..
            }
        ));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn observe_flags_nan_marginals_and_recommends_rollback() {
        let p = bottleneck();
        let alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let mut wd = Watchdog::default();
        let mut bad = alg.marginals().clone();
        bad.set_node(
            CommodityId::from_index(0),
            spn_graph::NodeId::from_index(0),
            f64::INFINITY,
        );
        let report = wd
            .observe(7, 1.0, alg.flows(), &bad, alg.routing())
            .expect("Inf must be flagged");
        assert_eq!(report.iteration, 7);
        assert_eq!(report.action, Action::RollbackRecommended);
        assert!(report.has_non_finite());
        assert!(matches!(
            report.to_error(),
            Some(CoreError::NonFinite {
                domain: StateDomain::Marginals,
                ..
            })
        ));
        assert_eq!(wd.non_finite_total(), 1);
    }

    #[test]
    fn divergence_reports_once_per_episode() {
        let p = bottleneck();
        let alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let mut wd = Watchdog::new(WatchdogConfig {
            divergence_drop: 0.5,
            ..WatchdogConfig::default()
        });
        let (f, m, r) = (alg.flows(), alg.marginals(), alg.routing());
        assert!(wd.observe(0, 10.0, f, m, r).is_none());
        // collapse below half the peak → one report
        let report = wd.observe(1, 2.0, f, m, r).expect("collapse not flagged");
        assert!(matches!(
            report.incidents[0],
            Incident::Diverged { peak, .. } if (peak - 10.0).abs() < 1e-12
        ));
        // staying low re-arms at the new level: no repeat report
        assert!(wd.observe(2, 2.0, f, m, r).is_none());
        assert!(wd.observe(3, 2.1, f, m, r).is_none());
    }

    #[test]
    fn sustained_oscillation_triggers_eta_backoff() {
        let p = bottleneck();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let eta0 = alg.config().eta;
        let mut wd = Watchdog::new(WatchdogConfig {
            oscillation_flips: 4,
            oscillation_amplitude: 0.5,
            eta_recovery: 1.0,
            ..WatchdogConfig::default()
        });
        // Feed an alternating utility series through `observe` to drive
        // the flip counter, then verify `check`'s backoff on a real
        // algorithm by replaying the series through its state.
        let (f, m, r) = (
            alg.flows().clone(),
            alg.marginals().clone(),
            alg.routing().clone(),
        );
        let mut flagged = false;
        for i in 0..12 {
            let u = if i % 2 == 0 { 5.0 } else { 3.0 };
            if let Some(report) = wd.observe(i, u, &f, &m, &r) {
                assert!(matches!(report.incidents[0], Incident::Oscillating { .. }));
                assert_eq!(report.action, Action::BackoffRecommended);
                flagged = true;
                break;
            }
        }
        assert!(flagged, "oscillation never flagged");
        // check() applies the backoff on a live algorithm: simulate by
        // direct call after priming the same oscillation internally.
        let mut wd2 = Watchdog::new(WatchdogConfig {
            oscillation_flips: 1,
            oscillation_amplitude: 1e-12,
            backoff_factor: 0.5,
            eta_min: 1e-6,
            eta_recovery: 1.0,
            ..WatchdogConfig::default()
        });
        // run real steps: early admission growth is monotone, so force
        // flips by observing a synthetic alternating utility directly.
        let _ = wd2.check(&mut alg); // primes baseline
        let (f2, m2, r2) = (
            alg.flows().clone(),
            alg.marginals().clone(),
            alg.routing().clone(),
        );
        assert!(wd2.observe(1, 1.0, &f2, &m2, &r2).is_none());
        assert!(wd2.observe(2, 2.0, &f2, &m2, &r2).is_none());
        let got = wd2.observe(3, 1.0, &f2, &m2, &r2);
        assert!(got.is_some(), "single flip at tiny amplitude not flagged");
        // and the apply path shrinks eta when routed through check():
        // emulate by calling set_eta the way check() would
        alg.set_eta((eta0 * 0.5).max(1e-6));
        assert!(alg.config().eta < eta0);
    }

    #[test]
    fn eta_recovers_after_backoff_on_healthy_steps() {
        let p = bottleneck();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let eta0 = alg.config().eta;
        let mut wd = Watchdog::new(WatchdogConfig {
            eta_recovery: 1.5,
            ..WatchdogConfig::default()
        });
        let _ = wd.check(&mut alg); // records the η baseline
        alg.set_eta(eta0 * 0.25); // as if a backoff happened
        for _ in 0..10 {
            alg.step();
            let _ = wd.check(&mut alg);
        }
        assert!(
            (alg.config().eta - eta0).abs() < 1e-12,
            "η did not recover: {} vs {eta0}",
            alg.config().eta
        );
    }
}
