//! Bit-identical snapshots of [`GradientAlgorithm`] state for
//! rollback recovery.
//!
//! A [`Checkpoint`] captures everything that determines the trajectory:
//! the routing table `φ` (which *is* the algorithm's decision variable,
//! admission control included), the flow state and marginals derived
//! from it, the iteration counter, and the two tunables that drift at
//! runtime (the ε-annealing schedule moves `cost.epsilon`; the
//! watchdog's backoff moves `η`). Workspace scratch and blocking tags
//! are deliberately excluded — every pass fully rewrites them before
//! reading, so they carry no state across steps.
//!
//! [`GradientAlgorithm::restore`] copies the buffers straight back:
//! no recomputation, no rounding — stepping from a restored checkpoint
//! is bit-for-bit the same as stepping from the original state (pinned
//! by tests here and in the chaos suite). [`Checkpoint`] buffers are
//! reused across captures (`clear` + `extend_from_slice`), so a
//! checkpoint taken every K iterations is allocation-free after the
//! first capture — cheap enough to leave on inside a chaos soak.
//!
//! [`GradientAlgorithm`]: crate::GradientAlgorithm
//! [`GradientAlgorithm::restore`]: crate::GradientAlgorithm::restore

/// A reusable snapshot of [`GradientAlgorithm`](crate::GradientAlgorithm)
/// state. Create one with [`Checkpoint::new`] (or
/// [`checkpoint`](crate::GradientAlgorithm::checkpoint)), refresh it
/// with [`checkpoint_into`](crate::GradientAlgorithm::checkpoint_into),
/// and roll back with [`restore`](crate::GradientAlgorithm::restore).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Routing fractions, flat row-major (`[j·L + l]`).
    pub(crate) phi: Vec<f64>,
    /// Node traffic rates, flat row-major (`[j·V + v]`).
    pub(crate) t: Vec<f64>,
    /// Per-edge commodity flows, flat row-major (`[j·L + l]`).
    pub(crate) x: Vec<f64>,
    /// Cross-commodity edge usage totals.
    pub(crate) f_edge: Vec<f64>,
    /// Cross-commodity node usage totals.
    pub(crate) f_node: Vec<f64>,
    /// Marginal costs, flat row-major (`[j·V + v]`).
    pub(crate) d: Vec<f64>,
    /// Iteration counter at capture time.
    pub(crate) iterations: usize,
    /// `cost.epsilon` at capture time (the annealing schedule mutates
    /// the live value).
    pub(crate) epsilon: f64,
    /// `config.eta` at capture time (watchdog backoff mutates the live
    /// value).
    pub(crate) eta: f64,
    /// Commodity-set epoch at capture time. Online admission/eviction
    /// bumps the algorithm's epoch, so a restore across a reshape is
    /// rejected structurally instead of silently mixing row layouts
    /// that happen to share a byte size.
    pub(crate) epoch: u64,
    /// Whether a capture has been taken (restoring a default-constructed
    /// checkpoint is an error, not a silent zero-fill).
    pub(crate) captured: bool,
}

impl Checkpoint {
    /// An empty checkpoint; fill it with
    /// [`checkpoint_into`](crate::GradientAlgorithm::checkpoint_into).
    #[must_use]
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// `true` once the checkpoint holds a capture.
    #[must_use]
    pub fn is_captured(&self) -> bool {
        self.captured
    }

    /// Iteration counter at capture time.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Clears the captured flag without releasing buffers (the next
    /// capture reuses them).
    pub fn invalidate(&mut self) {
        self.captured = false;
    }

    /// Copies `src` over `dst` without changing `dst`'s capacity once
    /// warm: `clear` keeps the allocation, `extend_from_slice` refills.
    pub(crate) fn refill(dst: &mut Vec<f64>, src: &[f64]) {
        dst.clear();
        dst.extend_from_slice(src);
    }

    // --- external-runtime surface ------------------------------------
    //
    // `GradientAlgorithm` captures and restores through its own methods;
    // runtimes that hold the state buffers directly (the `spn-mesh`
    // region workers mirror a `RoutingTable`/`FlowState`/`Marginals`
    // triple per worker) reuse the same snapshot type — and the same
    // epoch fence — through the methods below, so "restore is
    // bit-for-bit" is one contract with one implementation, not two.

    /// Captures raw engine state (the mirror triple an external runtime
    /// steps directly) into this checkpoint, reusing buffers like
    /// [`checkpoint_into`](crate::GradientAlgorithm::checkpoint_into).
    #[allow(clippy::too_many_arguments)]
    pub fn capture_state(
        &mut self,
        routing: &crate::RoutingTable,
        state: &crate::FlowState,
        marginals: &crate::Marginals,
        iterations: usize,
        epsilon: f64,
        eta: f64,
        epoch: u64,
    ) {
        Checkpoint::refill(&mut self.phi, routing.flat());
        Checkpoint::refill(&mut self.t, &state.t);
        Checkpoint::refill(&mut self.x, &state.x);
        Checkpoint::refill(&mut self.f_edge, &state.f_edge);
        Checkpoint::refill(&mut self.f_node, &state.f_node);
        Checkpoint::refill(&mut self.d, &marginals.d);
        self.iterations = iterations;
        self.epsilon = epsilon;
        self.eta = eta;
        self.epoch = epoch;
        self.captured = true;
    }

    /// Applies a capture back onto an external runtime's state triple:
    /// the exact inverse of [`Checkpoint::capture_state`], a straight
    /// buffer copy (no recomputation, no rounding — bit-for-bit).
    /// Validates in the same order as
    /// [`restore`](crate::GradientAlgorithm::restore): captured flag,
    /// then the `epoch` fence, then buffer shapes. Returns
    /// `(iterations, epsilon, eta)` at capture time for the caller to
    /// reinstall.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyCheckpoint`] for a never-captured checkpoint,
    /// [`CoreError::EpochMismatch`] when the capture's commodity-set
    /// epoch differs from `epoch`, and [`CoreError::ShapeMismatch`]
    /// when any buffer length disagrees with the targets.
    pub fn apply_state(
        &self,
        routing: &mut crate::RoutingTable,
        state: &mut crate::FlowState,
        marginals: &mut crate::Marginals,
        epoch: u64,
    ) -> Result<(usize, f64, f64), crate::health::CoreError> {
        use crate::health::CoreError;
        if !self.captured {
            return Err(CoreError::EmptyCheckpoint);
        }
        if self.epoch != epoch {
            return Err(CoreError::EpochMismatch {
                expected: epoch,
                got: self.epoch,
            });
        }
        let shapes: [(&'static str, usize, usize); 6] = [
            ("phi", routing.flat().len(), self.phi.len()),
            ("t", state.t.len(), self.t.len()),
            ("x", state.x.len(), self.x.len()),
            ("f_edge", state.f_edge.len(), self.f_edge.len()),
            ("f_node", state.f_node.len(), self.f_node.len()),
            ("d", marginals.d.len(), self.d.len()),
        ];
        for (what, expected, got) in shapes {
            if expected != got {
                return Err(CoreError::ShapeMismatch {
                    what,
                    expected,
                    got,
                });
            }
        }
        routing.flat_mut().copy_from_slice(&self.phi);
        state.t.copy_from_slice(&self.t);
        state.x.copy_from_slice(&self.x);
        state.f_edge.copy_from_slice(&self.f_edge);
        state.f_node.copy_from_slice(&self.f_node);
        marginals.d.copy_from_slice(&self.d);
        Ok((self.iterations, self.epsilon, self.eta))
    }

    /// Rebuilds a checkpoint from raw buffers (a deserialized recovery
    /// frame). The result is captured; shape validation happens at
    /// [`Checkpoint::apply_state`] time against the actual targets.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        phi: Vec<f64>,
        t: Vec<f64>,
        x: Vec<f64>,
        f_edge: Vec<f64>,
        f_node: Vec<f64>,
        d: Vec<f64>,
        iterations: usize,
        epsilon: f64,
        eta: f64,
        epoch: u64,
    ) -> Self {
        Checkpoint {
            phi,
            t,
            x,
            f_edge,
            f_node,
            d,
            iterations,
            epsilon,
            eta,
            epoch,
            captured: true,
        }
    }

    /// Commodity-set epoch at capture time (the restore fence).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `cost.epsilon` at capture time.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// `η` at capture time.
    #[must_use]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Routing fractions, flat row-major (`[j·L + l]`).
    #[must_use]
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Node traffic rates, flat row-major (`[j·V + v]`).
    #[must_use]
    pub fn t(&self) -> &[f64] {
        &self.t
    }

    /// Per-edge commodity flows, flat row-major (`[j·L + l]`).
    #[must_use]
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Cross-commodity edge usage totals.
    #[must_use]
    pub fn f_edge(&self) -> &[f64] {
        &self.f_edge
    }

    /// Cross-commodity node usage totals.
    #[must_use]
    pub fn f_node(&self) -> &[f64] {
        &self.f_node
    }

    /// Marginal costs, flat row-major (`[j·V + v]`).
    #[must_use]
    pub fn d(&self) -> &[f64] {
        &self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::CoreError;
    use crate::{GradientAlgorithm, GradientConfig};
    use spn_model::random::RandomInstance;

    fn algorithm(threads: usize) -> GradientAlgorithm {
        let instance = RandomInstance::builder()
            .nodes(15)
            .commodities(3)
            .seed(11)
            .build()
            .unwrap();
        GradientAlgorithm::new(
            &instance.problem,
            GradientConfig {
                eta: 0.2,
                threads,
                ..GradientConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let mut alg = algorithm(1);
        alg.run(120);
        let ck = alg.checkpoint();
        assert!(ck.is_captured());
        assert_eq!(ck.iterations(), 120);
        // Reference trajectory from the checkpoint...
        let mut reference = Vec::new();
        for _ in 0..40 {
            alg.step();
            reference.push(alg.utility().to_bits());
        }
        // ...must replay exactly after a restore.
        alg.restore(&ck).unwrap();
        assert_eq!(alg.iterations(), 120);
        for bits in reference {
            alg.step();
            assert_eq!(alg.utility().to_bits(), bits, "replay diverged");
        }
    }

    #[test]
    fn round_trip_is_bit_identical_pooled() {
        let mut alg = algorithm(3);
        alg.run(80);
        let ck = alg.checkpoint();
        let mut reference = Vec::new();
        for _ in 0..25 {
            alg.step();
            reference.push((alg.utility().to_bits(), alg.routing().clone()));
        }
        alg.restore(&ck).unwrap();
        for (bits, routing) in reference {
            alg.step();
            assert_eq!(alg.utility().to_bits(), bits);
            assert_eq!(alg.routing(), &routing);
        }
    }

    #[test]
    fn restore_recovers_eta_and_epsilon() {
        let mut alg = algorithm(1);
        alg.run(30);
        let ck = alg.checkpoint();
        let eta0 = alg.config().eta;
        alg.set_eta(eta0 * 0.125);
        alg.restore(&ck).unwrap();
        assert_eq!(alg.config().eta.to_bits(), eta0.to_bits());
        assert_eq!(alg.cost_model().epsilon.to_bits(), ck.epsilon.to_bits());
    }

    #[test]
    fn checkpoint_into_reuses_buffers() {
        let mut alg = algorithm(1);
        alg.run(20);
        let mut ck = Checkpoint::new();
        assert!(!ck.is_captured());
        alg.checkpoint_into(&mut ck);
        let caps = (
            ck.phi.capacity(),
            ck.t.capacity(),
            ck.x.capacity(),
            ck.d.capacity(),
        );
        let ptrs = (ck.phi.as_ptr(), ck.t.as_ptr());
        alg.run(20);
        alg.checkpoint_into(&mut ck);
        assert_eq!(
            caps,
            (
                ck.phi.capacity(),
                ck.t.capacity(),
                ck.x.capacity(),
                ck.d.capacity()
            ),
            "re-capture changed buffer capacities"
        );
        assert_eq!(
            ptrs,
            (ck.phi.as_ptr(), ck.t.as_ptr()),
            "re-capture reallocated"
        );
        assert_eq!(ck.iterations(), 40);
    }

    #[test]
    fn external_surface_round_trips_bit_for_bit() {
        let mut alg = algorithm(1);
        alg.run(60);
        // Capture through the external-runtime surface...
        let mut ck = Checkpoint::new();
        ck.capture_state(
            alg.routing(),
            alg.flows(),
            alg.marginals(),
            alg.iterations(),
            alg.cost_model().epsilon,
            alg.config().eta,
            alg.epoch(),
        );
        // ...and it must be indistinguishable from the algorithm's own
        // capture: restore replays the identical trajectory.
        let native = alg.checkpoint();
        assert_eq!(ck, native);
        let mut routing = alg.routing().clone();
        let mut state = alg.flows().clone();
        let mut marg = alg.marginals().clone();
        alg.run(20);
        let (iters, eps, eta) = ck
            .apply_state(&mut routing, &mut state, &mut marg, alg.epoch())
            .unwrap();
        assert_eq!(iters, 60);
        assert_eq!(eps.to_bits(), alg.cost_model().epsilon.to_bits());
        assert_eq!(eta.to_bits(), alg.config().eta.to_bits());
        alg.restore(&native).unwrap();
        assert_eq!(&routing, alg.routing());
        assert_eq!(&state, alg.flows());
        assert_eq!(&marg, alg.marginals());
    }

    #[test]
    fn external_surface_enforces_the_epoch_fence() {
        let mut alg = algorithm(1);
        alg.run(10);
        let mut ck = Checkpoint::new();
        ck.capture_state(
            alg.routing(),
            alg.flows(),
            alg.marginals(),
            alg.iterations(),
            alg.cost_model().epsilon,
            alg.config().eta,
            7,
        );
        assert_eq!(ck.epoch(), 7);
        let mut routing = alg.routing().clone();
        let mut state = alg.flows().clone();
        let mut marg = alg.marginals().clone();
        assert_eq!(
            ck.apply_state(&mut routing, &mut state, &mut marg, 8),
            Err(CoreError::EpochMismatch {
                expected: 8,
                got: 7
            })
        );
        // from_raw round-trips the buffers for the wire path
        let rebuilt = Checkpoint::from_raw(
            ck.phi().to_vec(),
            ck.t().to_vec(),
            ck.x().to_vec(),
            ck.f_edge().to_vec(),
            ck.f_node().to_vec(),
            ck.d().to_vec(),
            ck.iterations(),
            ck.epsilon(),
            ck.eta(),
            ck.epoch(),
        );
        assert_eq!(rebuilt, ck);
    }

    #[test]
    fn restoring_an_empty_checkpoint_errors() {
        let mut alg = algorithm(1);
        let ck = Checkpoint::new();
        assert_eq!(alg.restore(&ck), Err(CoreError::EmptyCheckpoint));
    }

    #[test]
    fn restoring_a_foreign_shape_errors() {
        let mut alg = algorithm(1);
        alg.run(5);
        let other = RandomInstance::builder()
            .nodes(8)
            .commodities(1)
            .seed(2)
            .build()
            .unwrap();
        let mut small = GradientAlgorithm::new(&other.problem, GradientConfig::default()).unwrap();
        small.run(5);
        let ck = small.checkpoint();
        assert!(matches!(
            alg.restore(&ck),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn invalidate_keeps_buffers_but_blocks_restore() {
        let mut alg = algorithm(1);
        alg.run(10);
        let mut ck = alg.checkpoint();
        ck.invalidate();
        assert!(!ck.is_captured());
        assert_eq!(alg.restore(&ck), Err(CoreError::EmptyCheckpoint));
        // refilling re-arms it
        alg.checkpoint_into(&mut ck);
        assert!(alg.restore(&ck).is_ok());
    }
}
