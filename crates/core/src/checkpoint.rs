//! Bit-identical snapshots of [`GradientAlgorithm`] state for
//! rollback recovery.
//!
//! A [`Checkpoint`] captures everything that determines the trajectory:
//! the routing table `φ` (which *is* the algorithm's decision variable,
//! admission control included), the flow state and marginals derived
//! from it, the iteration counter, and the two tunables that drift at
//! runtime (the ε-annealing schedule moves `cost.epsilon`; the
//! watchdog's backoff moves `η`). Workspace scratch and blocking tags
//! are deliberately excluded — every pass fully rewrites them before
//! reading, so they carry no state across steps.
//!
//! [`GradientAlgorithm::restore`] copies the buffers straight back:
//! no recomputation, no rounding — stepping from a restored checkpoint
//! is bit-for-bit the same as stepping from the original state (pinned
//! by tests here and in the chaos suite). [`Checkpoint`] buffers are
//! reused across captures (`clear` + `extend_from_slice`), so a
//! checkpoint taken every K iterations is allocation-free after the
//! first capture — cheap enough to leave on inside a chaos soak.
//!
//! [`GradientAlgorithm`]: crate::GradientAlgorithm
//! [`GradientAlgorithm::restore`]: crate::GradientAlgorithm::restore

/// A reusable snapshot of [`GradientAlgorithm`](crate::GradientAlgorithm)
/// state. Create one with [`Checkpoint::new`] (or
/// [`checkpoint`](crate::GradientAlgorithm::checkpoint)), refresh it
/// with [`checkpoint_into`](crate::GradientAlgorithm::checkpoint_into),
/// and roll back with [`restore`](crate::GradientAlgorithm::restore).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Routing fractions, flat row-major (`[j·L + l]`).
    pub(crate) phi: Vec<f64>,
    /// Node traffic rates, flat row-major (`[j·V + v]`).
    pub(crate) t: Vec<f64>,
    /// Per-edge commodity flows, flat row-major (`[j·L + l]`).
    pub(crate) x: Vec<f64>,
    /// Cross-commodity edge usage totals.
    pub(crate) f_edge: Vec<f64>,
    /// Cross-commodity node usage totals.
    pub(crate) f_node: Vec<f64>,
    /// Marginal costs, flat row-major (`[j·V + v]`).
    pub(crate) d: Vec<f64>,
    /// Iteration counter at capture time.
    pub(crate) iterations: usize,
    /// `cost.epsilon` at capture time (the annealing schedule mutates
    /// the live value).
    pub(crate) epsilon: f64,
    /// `config.eta` at capture time (watchdog backoff mutates the live
    /// value).
    pub(crate) eta: f64,
    /// Commodity-set epoch at capture time. Online admission/eviction
    /// bumps the algorithm's epoch, so a restore across a reshape is
    /// rejected structurally instead of silently mixing row layouts
    /// that happen to share a byte size.
    pub(crate) epoch: u64,
    /// Whether a capture has been taken (restoring a default-constructed
    /// checkpoint is an error, not a silent zero-fill).
    pub(crate) captured: bool,
}

impl Checkpoint {
    /// An empty checkpoint; fill it with
    /// [`checkpoint_into`](crate::GradientAlgorithm::checkpoint_into).
    #[must_use]
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// `true` once the checkpoint holds a capture.
    #[must_use]
    pub fn is_captured(&self) -> bool {
        self.captured
    }

    /// Iteration counter at capture time.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Clears the captured flag without releasing buffers (the next
    /// capture reuses them).
    pub fn invalidate(&mut self) {
        self.captured = false;
    }

    /// Copies `src` over `dst` without changing `dst`'s capacity once
    /// warm: `clear` keeps the allocation, `extend_from_slice` refills.
    pub(crate) fn refill(dst: &mut Vec<f64>, src: &[f64]) {
        dst.clear();
        dst.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::CoreError;
    use crate::{GradientAlgorithm, GradientConfig};
    use spn_model::random::RandomInstance;

    fn algorithm(threads: usize) -> GradientAlgorithm {
        let instance = RandomInstance::builder()
            .nodes(15)
            .commodities(3)
            .seed(11)
            .build()
            .unwrap();
        GradientAlgorithm::new(
            &instance.problem,
            GradientConfig {
                eta: 0.2,
                threads,
                ..GradientConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let mut alg = algorithm(1);
        alg.run(120);
        let ck = alg.checkpoint();
        assert!(ck.is_captured());
        assert_eq!(ck.iterations(), 120);
        // Reference trajectory from the checkpoint...
        let mut reference = Vec::new();
        for _ in 0..40 {
            alg.step();
            reference.push(alg.utility().to_bits());
        }
        // ...must replay exactly after a restore.
        alg.restore(&ck).unwrap();
        assert_eq!(alg.iterations(), 120);
        for bits in reference {
            alg.step();
            assert_eq!(alg.utility().to_bits(), bits, "replay diverged");
        }
    }

    #[test]
    fn round_trip_is_bit_identical_pooled() {
        let mut alg = algorithm(3);
        alg.run(80);
        let ck = alg.checkpoint();
        let mut reference = Vec::new();
        for _ in 0..25 {
            alg.step();
            reference.push((alg.utility().to_bits(), alg.routing().clone()));
        }
        alg.restore(&ck).unwrap();
        for (bits, routing) in reference {
            alg.step();
            assert_eq!(alg.utility().to_bits(), bits);
            assert_eq!(alg.routing(), &routing);
        }
    }

    #[test]
    fn restore_recovers_eta_and_epsilon() {
        let mut alg = algorithm(1);
        alg.run(30);
        let ck = alg.checkpoint();
        let eta0 = alg.config().eta;
        alg.set_eta(eta0 * 0.125);
        alg.restore(&ck).unwrap();
        assert_eq!(alg.config().eta.to_bits(), eta0.to_bits());
        assert_eq!(alg.cost_model().epsilon.to_bits(), ck.epsilon.to_bits());
    }

    #[test]
    fn checkpoint_into_reuses_buffers() {
        let mut alg = algorithm(1);
        alg.run(20);
        let mut ck = Checkpoint::new();
        assert!(!ck.is_captured());
        alg.checkpoint_into(&mut ck);
        let caps = (
            ck.phi.capacity(),
            ck.t.capacity(),
            ck.x.capacity(),
            ck.d.capacity(),
        );
        let ptrs = (ck.phi.as_ptr(), ck.t.as_ptr());
        alg.run(20);
        alg.checkpoint_into(&mut ck);
        assert_eq!(
            caps,
            (
                ck.phi.capacity(),
                ck.t.capacity(),
                ck.x.capacity(),
                ck.d.capacity()
            ),
            "re-capture changed buffer capacities"
        );
        assert_eq!(
            ptrs,
            (ck.phi.as_ptr(), ck.t.as_ptr()),
            "re-capture reallocated"
        );
        assert_eq!(ck.iterations(), 40);
    }

    #[test]
    fn restoring_an_empty_checkpoint_errors() {
        let mut alg = algorithm(1);
        let ck = Checkpoint::new();
        assert_eq!(alg.restore(&ck), Err(CoreError::EmptyCheckpoint));
    }

    #[test]
    fn restoring_a_foreign_shape_errors() {
        let mut alg = algorithm(1);
        alg.run(5);
        let other = RandomInstance::builder()
            .nodes(8)
            .commodities(1)
            .seed(2)
            .build()
            .unwrap();
        let mut small = GradientAlgorithm::new(&other.problem, GradientConfig::default()).unwrap();
        small.run(5);
        let ck = small.checkpoint();
        assert!(matches!(
            alg.restore(&ck),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn invalidate_keeps_buffers_but_blocks_restore() {
        let mut alg = algorithm(1);
        alg.run(10);
        let mut ck = alg.checkpoint();
        ck.invalidate();
        assert!(!ck.is_captured());
        assert_eq!(alg.restore(&ck), Err(CoreError::EmptyCheckpoint));
        // refilling re-arms it
        alg.checkpoint_into(&mut ck);
        assert!(alg.restore(&ck).is_ok());
    }
}
