//! The relaxed objective `A = Y + ε·D` and its partial derivatives
//! w.r.t. edge resource usage (eq. (8) and eq. (11)).

use crate::flows::{FlowState, UsageView};
use spn_graph::{EdgeId, NodeId};
use spn_model::{CommodityId, Penalty};
use spn_transform::{EdgeKind, ExtendedNetwork};

/// Cost parameters: the penalty family `D`, its weight `ε`, and an
/// `ε`-independent capacity wall.
///
/// The wall exists because the paper's formulation enforces capacities
/// only through `ε·D`: as `ε → 0` (the regime where the relaxed optimum
/// approaches the true one, and the end point of annealing schedules)
/// nothing stops the fluid iterates from overshooting `C_i`. The wall
/// is a convex, smooth penalty on utilization beyond
/// [`CostModel::wall_threshold`] whose weight does *not* shrink with
/// `ε`, so capacities hold along the whole schedule. Set
/// `wall_strength = 0.0` for the paper's literal objective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// The per-node capacity penalty `D_i`.
    pub penalty: Penalty,
    /// The paper's tunable penalty weight `ε` (0.2 in §6).
    pub epsilon: f64,
    /// Utilization fraction beyond which the wall activates.
    pub wall_threshold: f64,
    /// Wall scale `K`: the wall derivative is
    /// `K·((u − θ)/(1 − θ))²` for utilization `u > θ` (zero below).
    pub wall_strength: f64,
}

impl CostModel {
    /// A cost model with the default wall (`θ = 0.95`, `K = 4`): a soft
    /// shoulder whose marginal reaches `K` at full utilization — enough
    /// to outweigh the unit marginal utility of the evaluation setup
    /// before `u = 1`, gentle enough not to create a new cliff.
    #[must_use]
    pub fn new(penalty: Penalty, epsilon: f64) -> Self {
        CostModel {
            penalty,
            epsilon,
            wall_threshold: 0.95,
            wall_strength: 4.0,
        }
    }

    /// Wall penalty value at load `z` on capacity `c`.
    #[must_use]
    pub fn wall_value(&self, c: spn_model::Capacity, z: f64) -> f64 {
        if self.wall_strength == 0.0 || c.is_infinite() {
            return 0.0;
        }
        let cap = c.value();
        let theta = self.wall_threshold;
        let s = (z / cap - theta) / (1.0 - theta);
        if s <= 0.0 {
            0.0
        } else {
            // ∫ K·s² dz with ds/dz = 1/(cap·(1−θ))
            self.wall_strength * cap * (1.0 - theta) * s * s * s / 3.0
        }
    }

    /// Wall penalty derivative `W'(z)`.
    #[must_use]
    pub fn wall_derivative(&self, c: spn_model::Capacity, z: f64) -> f64 {
        if self.wall_strength == 0.0 || c.is_infinite() {
            return 0.0;
        }
        let cap = c.value();
        let theta = self.wall_threshold;
        let s = (z / cap - theta) / (1.0 - theta);
        if s <= 0.0 {
            0.0
        } else {
            self.wall_strength * s * s
        }
    }
    /// Total utility-loss cost `Y = Σ_j Y_j(λ_j − a_j)` (eq. (1)).
    #[must_use]
    pub fn utility_loss(&self, ext: &ExtendedNetwork, state: &FlowState) -> f64 {
        ext.commodity_ids()
            .map(|j| {
                let c = ext.commodity(j);
                let rejected = state.rejected(ext, j).clamp(0.0, c.max_rate);
                c.utility.value(c.max_rate) - c.utility.value(c.max_rate - rejected)
            })
            .sum()
    }

    /// Total penalty cost `D = Σ_i D_i(f_i)` (unweighted).
    #[must_use]
    pub fn penalty_cost(&self, ext: &ExtendedNetwork, state: &FlowState) -> f64 {
        ext.graph()
            .nodes()
            .map(|v| self.penalty.value(ext.capacity(v), state.node_usage(v)))
            .sum()
    }

    /// Total wall cost `W = Σ_i W_i(f_i)` (zero when the wall is
    /// disabled or all loads are below the threshold).
    #[must_use]
    pub fn wall_cost(&self, ext: &ExtendedNetwork, state: &FlowState) -> f64 {
        if self.wall_strength == 0.0 {
            return 0.0;
        }
        ext.graph()
            .nodes()
            .map(|v| self.wall_value(ext.capacity(v), state.node_usage(v)))
            .sum()
    }

    /// The relaxed objective `A = Y + ε·D + W` the distributed
    /// algorithm minimizes (`W = 0` with the wall disabled, recovering
    /// the paper's `A = Y + ε·D`).
    #[must_use]
    pub fn total_cost(&self, ext: &ExtendedNetwork, state: &FlowState) -> f64 {
        self.utility_loss(ext, state)
            + self.epsilon * self.penalty_cost(ext, state)
            + self.wall_cost(ext, state)
    }

    /// [`CostModel::total_cost`] through a [`TotalCostCache`]:
    /// recomputes the per-node penalty and wall values only where a
    /// node's usage bits changed since the previous call, then folds
    /// the cached value arrays with `sum`.
    ///
    /// `scan` appends the indices whose usage bits differ from the
    /// cached bits, in index order — a pure comparison, so any
    /// implementation produces the identical index set. Passing the
    /// in-order fold `xs.iter().sum()` as `sum` makes the result
    /// **bit-identical** to the naive scan (see [`TotalCostCache`]);
    /// the simd `Auto` policy substitutes a reassociated vector sum
    /// (tolerance tier). The association of the three terms matches
    /// [`CostModel::total_cost`] exactly, including the wall's early
    /// zero when `wall_strength == 0`.
    pub fn total_cost_cached(
        &self,
        ext: &ExtendedNetwork,
        state: &FlowState,
        cache: &mut TotalCostCache,
        scan: impl Fn(&[f64], &[u64], &mut Vec<u32>),
        sum: impl Fn(&[f64]) -> f64,
    ) -> f64 {
        let usages = state.node_usages();
        let v_count = usages.len();
        let key = (
            self.penalty,
            self.wall_threshold,
            self.wall_strength,
            ext.capacity_version(),
        );
        if cache.key != Some(key) || cache.usage_bits.len() != v_count {
            cache.usage_bits.clear();
            cache.usage_bits.reserve(v_count);
            cache.penalty_vals.clear();
            cache.penalty_vals.reserve(v_count);
            cache.wall_vals.clear();
            cache.wall_vals.reserve(v_count);
            for (v, &z) in usages.iter().enumerate() {
                let c = ext.capacity(NodeId::from_index(v));
                cache.usage_bits.push(z.to_bits());
                cache.penalty_vals.push(self.penalty.value(c, z));
                cache.wall_vals.push(self.wall_value(c, z));
            }
            cache.key = Some(key);
        } else {
            cache.changed.clear();
            scan(usages, &cache.usage_bits, &mut cache.changed);
            for &v in &cache.changed {
                let v = v as usize;
                let z = usages[v];
                let c = ext.capacity(NodeId::from_index(v));
                cache.usage_bits[v] = z.to_bits();
                cache.penalty_vals[v] = self.penalty.value(c, z);
                cache.wall_vals[v] = self.wall_value(c, z);
            }
        }
        let penalty_sum = sum(&cache.penalty_vals);
        let wall_sum = if self.wall_strength == 0.0 {
            0.0
        } else {
            sum(&cache.wall_vals)
        };
        self.utility_loss(ext, state) + self.epsilon * penalty_sum + wall_sum
    }

    /// `∂A_i/∂f_ik` for extended edge `l = (i, k)` (eq. (11)):
    /// `U'_j(λ_j − f_l)` on commodity `j`'s dummy difference link,
    /// `ε·D'_i(f_i)` everywhere else (zero at dummy sources, whose
    /// capacity is infinite).
    #[must_use]
    pub fn edge_partial(&self, ext: &ExtendedNetwork, state: &FlowState, l: EdgeId) -> f64 {
        self.edge_partial_view(ext, state.usage_view(), l)
    }

    /// [`CostModel::edge_partial`] over a raw [`UsageView`] of the
    /// usage totals — the form the pooled sweeps use, since a sweep
    /// only ever reads its own commodity's rows plus these shared
    /// totals (stable between the fused step's reduction barriers).
    pub(crate) fn edge_partial_view(
        &self,
        ext: &ExtendedNetwork,
        usage: UsageView<'_>,
        l: EdgeId,
    ) -> f64 {
        match ext.edge_kind(l) {
            EdgeKind::DummyDifference(j) => {
                let c = ext.commodity(j);
                let rejected = usage.f_edge[l.index()].clamp(0.0, c.max_rate);
                c.utility.derivative(c.max_rate - rejected)
            }
            _ => {
                let tail = ext.graph().source(l);
                let cap = ext.capacity(tail);
                let load = usage.f_node[tail.index()];
                self.epsilon * self.penalty.derivative(cap, load) + self.wall_derivative(cap, load)
            }
        }
    }

    /// The non-dummy-difference branch of [`CostModel::edge_partial_view`]
    /// keyed on the tail node `v` directly: `ε·D'_v(f_v)` plus the wall
    /// term. Every out-edge of a router other than the dummy source takes
    /// this branch with the same tail, so sparse sweeps hoist it out of
    /// the per-edge loop — the hoisted product/sum below must stay the
    /// exact expression of the per-edge path for bit-identity.
    pub(crate) fn node_partial_view(
        &self,
        ext: &ExtendedNetwork,
        usage: UsageView<'_>,
        v: NodeId,
    ) -> f64 {
        let cap = ext.capacity(v);
        let load = usage.f_node[v.index()];
        self.epsilon * self.penalty.derivative(cap, load) + self.wall_derivative(cap, load)
    }

    /// Marginal cost of pushing one more unit of commodity-`j` input
    /// over edge `l`, given the downstream marginals `d_a_d_r[head]`:
    /// the bracketed term of eqs. (9)/(10),
    /// `∂A_i/∂f_il · c^j_il + β^j_il · ∂A/∂r_head(j)`.
    #[must_use]
    pub fn edge_marginal(
        &self,
        ext: &ExtendedNetwork,
        state: &FlowState,
        j: CommodityId,
        l: EdgeId,
        downstream_marginal: f64,
    ) -> f64 {
        self.edge_marginal_view(ext, state.usage_view(), j, l, downstream_marginal)
    }

    /// [`CostModel::edge_marginal`] over a raw [`UsageView`] of the
    /// usage totals (see [`CostModel::edge_partial_view`]).
    pub(crate) fn edge_marginal_view(
        &self,
        ext: &ExtendedNetwork,
        usage: UsageView<'_>,
        j: CommodityId,
        l: EdgeId,
        downstream_marginal: f64,
    ) -> f64 {
        self.edge_partial_view(ext, usage, l) * ext.cost(j, l)
            + ext.beta(j, l) * downstream_marginal
    }
}

/// Incremental evaluator state for [`CostModel::total_cost_cached`],
/// keyed on the raw bits of every node's usage total.
///
/// `total_cost` is the per-step convergence probe (`cost_before` in
/// [`crate::StepStats`]), and the naive form re-evaluates the penalty
/// and the wall at every node — `O(v)` branchy work that dominates
/// large sparse instances where one step rewrites only a handful of
/// usage totals. The cache keeps each node's last-seen usage bits
/// plus the penalty/wall values computed from them, recomputes only
/// nodes whose bits changed, and re-sums the cached value arrays in
/// node order. Because [`Penalty::value`] and
/// [`CostModel::wall_value`] are pure functions of `(capacity,
/// usage)` and the in-order re-sum performs the identical
/// left-to-right IEEE fold over identical element values, the cached
/// total is **bit-identical** to the naive scan — valid under the
/// default scalar policy, not just the simd tolerance tier.
///
/// Parameter or topology drift (penalty family, wall shape, a
/// [`ExtendedNetwork::set_capacity`] call, admission churn resizing
/// the node table) is caught by a snapshot key and triggers a full
/// rebuild.
#[derive(Clone, Debug, Default)]
pub struct TotalCostCache {
    /// `f64::to_bits` of each node's usage at the last evaluation.
    usage_bits: Vec<u64>,
    /// `penalty.value(capacity(v), usage(v))` per node.
    penalty_vals: Vec<f64>,
    /// `wall_value(capacity(v), usage(v))` per node.
    wall_vals: Vec<f64>,
    /// `(penalty, wall_threshold, wall_strength, capacity_version)`
    /// snapshot the cached values were computed under.
    key: Option<(Penalty, f64, f64, u64)>,
    /// Scratch for the changed-index scan (reused across calls).
    changed: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::compute_flows;
    use crate::routing::RoutingTable;
    use spn_model::builder::ProblemBuilder;
    use spn_model::UtilityFn;

    fn setup() -> (ExtendedNetwork, CostModel) {
        let mut b = ProblemBuilder::new();
        let s = b.server(10.0);
        let t = b.server(10.0);
        let e = b.link(s, t, 5.0);
        let j = b.commodity(s, t, 4.0, UtilityFn::throughput());
        b.uses(j, e, 2.0, 1.0);
        let ext = ExtendedNetwork::build(&b.build().unwrap());
        let cm = CostModel::new(Penalty::default(), 0.2);
        (ext, cm)
    }

    #[test]
    fn full_rejection_costs_full_utility_loss() {
        let (ext, cm) = setup();
        let rt = RoutingTable::initial(&ext);
        let fs = compute_flows(&ext, &rt);
        // linear utility: Y = U(λ) − U(0) = 4
        assert!((cm.utility_loss(&ext, &fs) - 4.0).abs() < 1e-12);
        assert_eq!(cm.penalty_cost(&ext, &fs), 0.0);
        assert!((cm.total_cost(&ext, &fs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn admission_trades_loss_for_penalty() {
        let (ext, cm) = setup();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        rt.set_row(
            &ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 0.5), (ext.difference_edge(j), 0.5)],
        );
        let fs = compute_flows(&ext, &rt);
        assert!((cm.utility_loss(&ext, &fs) - 2.0).abs() < 1e-12);
        assert!(cm.penalty_cost(&ext, &fs) > 0.0);
        let total = cm.total_cost(&ext, &fs);
        assert!(
            total > 2.0 && total < 4.0,
            "cost {total} should improve on rejection"
        );
    }

    #[test]
    fn difference_link_partial_is_marginal_utility() {
        let (ext, cm) = setup();
        let rt = RoutingTable::initial(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        let diff = ext.difference_edge(j);
        // linear utility ⇒ U' = 1 everywhere
        assert!((cm.edge_partial(&ext, &fs, diff) - 1.0).abs() < 1e-12);
        // admission link partial at zero load: ε·D'_dummy = 0 (infinite cap)
        let input = ext.input_edge(j);
        assert_eq!(cm.edge_partial(&ext, &fs, input), 0.0);
    }

    #[test]
    fn interior_partial_uses_penalty_derivative() {
        let (ext, cm) = setup();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        rt.set_row(
            &ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 1.0), (ext.difference_edge(j), 0.0)],
        );
        let fs = compute_flows(&ext, &rt);
        let s = ext.commodity(j).source();
        let ingress = ext.commodity_out_edges(j, s).next().unwrap();
        let expected = 0.2 * cm.penalty.derivative(ext.capacity(s), fs.node_usage(s));
        assert!((cm.edge_partial(&ext, &fs, ingress) - expected).abs() < 1e-12);
        assert!(expected > 0.0);
    }

    #[test]
    fn edge_marginal_combines_cost_and_downstream() {
        let (ext, cm) = setup();
        let rt = RoutingTable::initial(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        let ingress = ext.commodity_out_edges(j, s).next().unwrap();
        let partial = cm.edge_partial(&ext, &fs, ingress);
        // c = 2, β = 1, downstream marginal 0.3
        let m = cm.edge_marginal(&ext, &fs, j, ingress, 0.3);
        assert!((m - (partial * 2.0 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn wall_is_zero_below_threshold_and_convex_above() {
        let cm = CostModel::new(Penalty::default(), 0.2);
        let c = spn_model::Capacity::finite(10.0).unwrap();
        let theta = cm.wall_threshold;
        // inactive below the threshold
        assert_eq!(cm.wall_value(c, 10.0 * theta - 0.01), 0.0);
        assert_eq!(cm.wall_derivative(c, 10.0 * theta - 0.01), 0.0);
        // convex increasing above, growing past the capacity
        let mut prev_v = 0.0;
        let mut prev_d = 0.0;
        for i in 1..=40 {
            let z = 10.0 * theta + i as f64 * 0.05;
            let v = cm.wall_value(c, z);
            let d = cm.wall_derivative(c, z);
            assert!(
                v >= prev_v && d >= prev_d,
                "wall not convex increasing at {z}"
            );
            prev_v = v;
            prev_d = d;
        }
        // derivative reaches K at full utilization
        assert!((cm.wall_derivative(c, 10.0) - cm.wall_strength).abs() < 1e-9);
    }

    #[test]
    fn wall_derivative_matches_finite_difference() {
        let cm = CostModel::new(Penalty::default(), 0.2);
        let c = spn_model::Capacity::finite(7.0).unwrap();
        let h = 1e-6;
        for i in 0..30 {
            let z = 6.3 + i as f64 * 0.05; // spans the threshold
            let fd = (cm.wall_value(c, z + h) - cm.wall_value(c, z - h)) / (2.0 * h);
            let an = cm.wall_derivative(c, z);
            assert!(
                (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                "z={z}: {an} vs {fd}"
            );
        }
    }

    #[test]
    fn disabled_wall_recovers_paper_objective() {
        let mut cm = CostModel::new(Penalty::default(), 0.2);
        cm.wall_strength = 0.0;
        let c = spn_model::Capacity::finite(5.0).unwrap();
        assert_eq!(cm.wall_value(c, 10.0), 0.0);
        assert_eq!(cm.wall_derivative(c, 10.0), 0.0);
        // dummy nodes always free
        let cm2 = CostModel::new(Penalty::default(), 0.2);
        assert_eq!(cm2.wall_value(spn_model::Capacity::INFINITE, 1e9), 0.0);
    }

    #[test]
    fn concave_utility_rising_marginal_loss() {
        // with log utility, rejecting more makes the next rejected unit
        // costlier: U'(λ − x) grows with x
        let mut b = ProblemBuilder::new();
        let s = b.server(10.0);
        let t = b.server(10.0);
        let e = b.link(s, t, 5.0);
        let j = b.commodity(s, t, 4.0, UtilityFn::log(1.0));
        b.uses(j, e, 1.0, 1.0);
        let ext = ExtendedNetwork::build(&b.build().unwrap());
        let cm = CostModel::new(Penalty::default(), 0.2);
        let diff = ext.difference_edge(CommodityId::from_index(0));
        let rt_low = {
            let mut rt = RoutingTable::initial(&ext);
            rt.set_row(
                &ext,
                CommodityId::from_index(0),
                ext.dummy_source(CommodityId::from_index(0)),
                &[
                    (ext.input_edge(CommodityId::from_index(0)), 0.9),
                    (diff, 0.1),
                ],
            );
            rt
        };
        let fs_low = compute_flows(&ext, &rt_low);
        let fs_high = compute_flows(&ext, &RoutingTable::initial(&ext));
        assert!(
            cm.edge_partial(&ext, &fs_high, diff) > cm.edge_partial(&ext, &fs_low, diff),
            "marginal utility loss should rise with rejection"
        );
    }
}
