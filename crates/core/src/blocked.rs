//! Blocked sets `B_i(j)` for loop-freedom (§5, eq. (18)).
//!
//! A node `k` is *blocked* relative to destination `j` if some routing
//! path from `k` to `j` contains an **improper sticky link** `(l, m)`:
//! one with positive fraction routed toward non-decreasing marginal cost
//! (`φ_lm(j) > 0` and `∂A/∂r_l(j) ≤ ∂A/∂r_m(j)`) that this iteration's
//! update cannot close (eq. (18)). Nodes learn this through a tag
//! piggybacked on the marginal-cost broadcast: a node tags its value if
//! it has such a link or if any positive-fraction downstream neighbor's
//! value arrived tagged. The blocked set `B_i(j)` then contains the
//! out-neighbors `k` of `i` with `φ_ik(j) = 0` whose broadcast was
//! tagged — and the Γ update may not move mass onto them.
//!
//! In Gallager's general setting this is what prevents routing loops.
//! In this system the per-commodity extended subgraphs are DAGs, so
//! loops are impossible regardless; we implement the mechanism faithfully
//! (it also shapes trajectories by delaying mass shifts toward congested
//! regions) and expose a switch to disable it for ablation (experiment
//! code compares both).
//!
//! [`compute_tags_into`] reuses the caller's tag buffer (no heap
//! allocation once warm) and can fan the independent per-commodity
//! sweeps out over the persistent [`WorkerPool`](crate::pool::WorkerPool);
//! [`compute_tags`] is the allocating wrapper. Rows are disjoint, so
//! results are bit-identical for any thread count.

#![allow(unsafe_code)] // disjoint-row fan-out over the worker pool

use crate::cost::CostModel;
use crate::flows::{FlowState, UsageView};
use crate::marginals::Marginals;
use crate::pool::{RowTable, WorkerPool};
use crate::routing::RoutingTable;
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Per-commodity tag vectors, stored flat (`tagged[j·V + v]`): node
/// `v`'s broadcast for destination `j` carried the blocking tag.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockedTags {
    pub(crate) tagged: Vec<bool>,
    pub(crate) v_count: usize,
}

impl BlockedTags {
    /// A tag set that blocks nothing (used when the mechanism is
    /// disabled).
    #[must_use]
    pub fn none(ext: &ExtendedNetwork) -> Self {
        let v_count = ext.graph().node_count();
        BlockedTags {
            tagged: vec![false; ext.num_commodities() * v_count],
            v_count,
        }
    }

    /// Builds a tag set from raw per-commodity vectors (crate-internal:
    /// used by tests and by the simulator, which computes tags from
    /// received messages).
    ///
    /// # Panics
    ///
    /// Panics if the per-commodity rows have unequal lengths.
    #[doc(hidden)]
    #[must_use]
    pub fn from_raw(rows: Vec<Vec<bool>>) -> Self {
        let v_count = rows.first().map_or(0, Vec::len);
        let mut tagged = Vec::with_capacity(rows.len() * v_count);
        for row in &rows {
            assert_eq!(row.len(), v_count, "tag row length mismatch");
            tagged.extend_from_slice(row);
        }
        BlockedTags { tagged, v_count }
    }

    /// Resizes the buffer for `ext` and clears every tag — the
    /// allocation-free equivalent of [`BlockedTags::none`] once warm.
    pub fn reset(&mut self, ext: &ExtendedNetwork) {
        self.v_count = ext.graph().node_count();
        self.tagged.clear();
        self.tagged
            .resize(ext.num_commodities() * self.v_count, false);
    }

    /// Whether node `v`'s broadcast for destination `j` was tagged.
    #[must_use]
    pub fn is_tagged(&self, j: CommodityId, v: NodeId) -> bool {
        self.tagged[j.index() * self.v_count + v.index()]
    }

    /// Commodity-`j` tag row, indexed by extended node.
    pub(crate) fn row(&self, j: CommodityId) -> &[bool] {
        &self.tagged[j.index() * self.v_count..(j.index() + 1) * self.v_count]
    }

    /// Whether the Γ update at node `i` may *not* move mass onto the
    /// edge toward `k`: true exactly when `k ∈ B_i(j)`, i.e. `k` is
    /// tagged and the current fraction is zero.
    #[must_use]
    pub fn is_blocked(
        &self,
        routing: &RoutingTable,
        j: CommodityId,
        l: spn_graph::EdgeId,
        ext: &ExtendedNetwork,
    ) -> bool {
        routing.fraction(j, l) == 0.0 && self.is_tagged(j, ext.graph().target(l))
    }
}

/// One commodity's reverse tag sweep (caller-cleared row). `phi` is the
/// commodity's fraction row, `t_row`/`d_row` its traffic and marginal
/// rows, and `usage` the shared usage totals — the only cross-commodity
/// data the sweep reads, which is what lets the fused pooled step run
/// it concurrently with other commodities' sweeps.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub(crate) fn tag_sweep(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    phi: &[f64],
    t_row: &[f64],
    usage: UsageView<'_>,
    d_row: &[f64],
    eta: f64,
    traffic_floor: f64,
    j: CommodityId,
    tagged: &mut [bool],
) {
    for &v in ext.topo_order(j).iter().rev() {
        let mut tag = false;
        let t_v = t_row[v.index()];
        let dv = d_row[v.index()];
        for &l in ext.commodity_out_slice(j, v) {
            let phi = phi[l.index()];
            if phi <= 0.0 {
                continue;
            }
            let head = ext.graph().target(l);
            // inherited tag travels every positive-fraction link
            if tagged[head.index()] {
                tag = true;
                break;
            }
            // improper link: routes toward non-decreasing marginal
            let dm = d_row[head.index()];
            if dv <= dm && t_v > traffic_floor {
                // sticky (eq. (18)): this iteration cannot close it
                let excess = cost.edge_marginal_view(ext, usage, j, l, dm) - dv;
                if phi >= eta * excess / t_v {
                    tag = true;
                    break;
                }
            }
        }
        tagged[v.index()] = tag;
    }
}

/// [`tag_sweep`] over a commodity's live-arc sub-list (the active-set
/// engine's tag pass). The caller pre-fills the row with `false`; only
/// router entries are recomputed — the dense sweep writes `false` for
/// every node without positive-fraction out-edges, so the result is
/// identical. Live arcs have `phi > 0` by construction, which is
/// exactly the dense sweep's per-arc filter; the early-`break` visits
/// the same arcs in the same order.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub(crate) fn tag_sweep_active(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    phi: &[f64],
    t_row: &[f64],
    usage: UsageView<'_>,
    d_row: &[f64],
    eta: f64,
    traffic_floor: f64,
    j: CommodityId,
    tagged: &mut [bool],
    arc_len: &[u32],
    arcs: &[EdgeId],
    live: usize,
) {
    let routers = ext.commodity_routers_topo(j);
    let mut idx = live;
    for r in (0..routers.len()).rev() {
        let v = routers[r];
        let n = arc_len[r] as usize;
        idx -= n;
        let row = &arcs[idx..idx + n];
        let mut tag = false;
        let t_v = t_row[v.index()];
        let dv = d_row[v.index()];
        for &l in row {
            let phi = phi[l.index()];
            debug_assert!(phi > 0.0, "live arc {l} with non-positive fraction");
            let head = ext.graph().target(l);
            // inherited tag travels every positive-fraction link
            if tagged[head.index()] {
                tag = true;
                break;
            }
            // improper link: routes toward non-decreasing marginal
            let dm = d_row[head.index()];
            if dv <= dm && t_v > traffic_floor {
                // sticky (eq. (18)): this iteration cannot close it
                let excess = cost.edge_marginal_view(ext, usage, j, l, dm) - dv;
                if phi >= eta * excess / t_v {
                    tag = true;
                    break;
                }
            }
        }
        tagged[v.index()] = tag;
    }
    debug_assert_eq!(idx, 0, "live-arc prefix mismatch for {j}");
}

/// Computes the blocking tags for every commodity into a caller-owned
/// tag set (one reverse sweep per commodity, mirroring the §5 broadcast
/// protocol). `pool: None` is the serial path; `Some` fans the sweeps
/// out over the persistent worker pool. Allocation-free once warm.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn compute_tags_into(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    eta: f64,
    traffic_floor: f64,
    out: &mut BlockedTags,
    pool: Option<&WorkerPool>,
) {
    out.reset(ext);
    let v_count = out.v_count;
    let j_count = ext.num_commodities();
    match pool {
        Some(pool) if pool.participants() > 1 && j_count > 1 => {
            let tag_tab = RowTable::new(&mut out.tagged, v_count.max(1));
            let usage = state.usage_view();
            pool.run_tasks(j_count, |ji, _worker| {
                let j = CommodityId::from_index(ji);
                // SAFETY: task `ji` is the sole accessor of row `ji`.
                let row = unsafe { tag_tab.row_mut(ji) };
                tag_sweep(
                    ext,
                    cost,
                    routing.row(j),
                    state.t_row(j),
                    usage,
                    marginals.row(j),
                    eta,
                    traffic_floor,
                    j,
                    row,
                );
            });
        }
        _ => {
            for (ji, row) in out.tagged.chunks_mut(v_count.max(1)).enumerate() {
                let j = CommodityId::from_index(ji);
                tag_sweep(
                    ext,
                    cost,
                    routing.row(j),
                    state.t_row(j),
                    state.usage_view(),
                    marginals.row(j),
                    eta,
                    traffic_floor,
                    j,
                    row,
                );
            }
        }
    }
}

/// Computes the blocking tags for every commodity (allocating wrapper
/// over [`compute_tags_into`]).
///
/// `eta` is the Γ scale factor and `traffic_floor` the threshold below
/// which a node's traffic is treated as zero (eq. (18) divides by
/// `t_l(j)`; with no traffic the update can close any link instantly, so
/// the link is never sticky).
#[must_use]
pub fn compute_tags(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    eta: f64,
    traffic_floor: f64,
) -> BlockedTags {
    let mut out = BlockedTags::none(ext);
    compute_tags_into(
        ext,
        cost,
        routing,
        state,
        marginals,
        eta,
        traffic_floor,
        &mut out,
        None,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::compute_flows;
    use crate::marginals::compute_marginals;
    use spn_model::builder::ProblemBuilder;
    use spn_model::{Penalty, UtilityFn};

    fn cm() -> CostModel {
        CostModel::new(Penalty::default(), 0.2)
    }

    fn diamond() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(30.0);
        let x = b.server(5.0); // tight
        let y = b.server(40.0);
        let t = b.server(30.0);
        let e_sx = b.link(s, x, 15.0);
        let e_sy = b.link(s, y, 25.0);
        let e_xt = b.link(x, t, 15.0);
        let e_yt = b.link(y, t, 25.0);
        let j = b.commodity(s, t, 6.0, UtilityFn::throughput());
        b.uses(j, e_sx, 2.0, 1.0)
            .uses(j, e_sy, 1.5, 1.0)
            .uses(j, e_xt, 1.0, 1.0)
            .uses(j, e_yt, 2.5, 1.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    #[test]
    fn none_blocks_nothing() {
        let ext = diamond();
        let tags = BlockedTags::none(&ext);
        let j = CommodityId::from_index(0);
        for v in ext.graph().nodes() {
            assert!(!tags.is_tagged(j, v));
        }
    }

    #[test]
    fn zero_load_network_is_untagged() {
        // full rejection: all marginals inside the network are tiny and
        // decrease strictly toward the sink, no improper links
        let ext = diamond();
        let rt = RoutingTable::initial(&ext);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = compute_tags(&ext, &cm(), &rt, &fs, &m, 0.04, 1e-12);
        let j = CommodityId::from_index(0);
        for v in ext.graph().nodes() {
            assert!(!tags.is_tagged(j, v), "{v} tagged in an idle network");
        }
    }

    #[test]
    fn tags_propagate_upstream_of_improper_links() {
        // force an improper link: route everything through the tight
        // node x, creating a steep marginal at x while the alternative
        // at s is flat. Then the s→x link routes toward a *higher*
        // marginal and (with large eta excess) is sticky.
        let ext = diamond();
        let j = CommodityId::from_index(0);
        let mut rt = RoutingTable::initial(&ext);
        rt.set_row(
            &ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 1.0), (ext.difference_edge(j), 0.0)],
        );
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        // all mass toward x (outs[0] is the s→bw(sx) ingress)
        rt.set_row(&ext, j, s, &[(outs[0], 1.0), (outs[1], 0.0)]);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        // an artificial marginal inversion: make the bw node of s→x look
        // worse than its own downstream. Rather than fabricating, check
        // the mechanism on whatever the real marginals are: if any
        // improper sticky link exists, its upstream nodes must be tagged.
        let tags = compute_tags(&ext, &cm(), &rt, &fs, &m, 1e6, 1e-12);
        // with an enormous eta the stickiness condition (18) is hard to
        // satisfy, so this may or may not tag; with eta → 0 every
        // improper link is sticky:
        let tags_small = compute_tags(&ext, &cm(), &rt, &fs, &m, 1e-12, 1e-12);
        let any_improper = ext.graph().nodes().any(|v| {
            ext.commodity_out_edges(j, v).any(|l| {
                rt.fraction(j, l) > 0.0
                    && m.node(j, v) <= m.node(j, ext.graph().target(l))
                    && v != ext.commodity(j).sink()
            })
        });
        if any_improper {
            assert!(
                ext.graph().nodes().any(|v| tags_small.is_tagged(j, v)),
                "improper link exists but nothing tagged at eta→0"
            );
        }
        // sanity: tag sets shrink (weakly) as eta grows
        for v in ext.graph().nodes() {
            if tags.is_tagged(j, v) {
                assert!(tags_small.is_tagged(j, v));
            }
        }
    }

    #[test]
    fn blocked_requires_zero_fraction() {
        let ext = diamond();
        let j = CommodityId::from_index(0);
        let rt = RoutingTable::initial(&ext);
        let mut tags = BlockedTags::none(&ext);
        // tag everything; only φ=0 edges become blocked
        tags.tagged.iter_mut().for_each(|b| *b = true);
        for v in ext.graph().nodes() {
            for l in ext.commodity_out_edges(j, v) {
                let blocked = tags.is_blocked(&rt, j, l, &ext);
                assert_eq!(blocked, rt.fraction(j, l) == 0.0);
            }
        }
    }

    #[test]
    fn into_variant_matches_fresh_for_any_thread_count() {
        let ext = diamond();
        let j = CommodityId::from_index(0);
        let mut rt = RoutingTable::initial(&ext);
        rt.set_row(
            &ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 1.0), (ext.difference_edge(j), 0.0)],
        );
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let reference = compute_tags(&ext, &cm(), &rt, &fs, &m, 1e-12, 1e-12);
        let mut reused = BlockedTags::none(&ext);
        let pool = crate::pool::WorkerPool::new(4);
        for pool in [None, Some(&pool)] {
            compute_tags_into(&ext, &cm(), &rt, &fs, &m, 1e-12, 1e-12, &mut reused, pool);
            assert_eq!(reused, reference);
        }
    }
}
