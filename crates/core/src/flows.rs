//! Flow balance and resource usage (eqs. (3)–(5)).
//!
//! Given a routing decision `φ` and the fixed offered loads `r` (each
//! dummy source receives `λ_j`), the node traffic rates solve
//!
//! ```text
//! t_i(j) = r_i(j) + Σ_l t_l(j) φ_li(j) β^j_li          (3)
//! ```
//!
//! which we evaluate in one pass over the commodity's topological order
//! (the positive-`φ` subgraph of a commodity is always a sub-DAG of its
//! extended subgraph). Resource usage then follows
//!
//! ```text
//! f_ik = Σ_j t_i(j) φ_ik(j) c^j_ik                     (4)
//! f_i  = Σ_{(i,k)} f_ik                                 (5)
//! ```
//!
//! (eq. (4) is printed with `t_l` in the paper — a typo for `t_i`, as in
//! Gallager's original formulation that the paper generalizes).
//!
//! Two entry points evaluate the equations: [`compute_flows`] allocates
//! a fresh [`FlowState`], while [`compute_flows_into`] reuses the
//! caller's state and an [`IterationWorkspace`] so the steady-state
//! iteration performs no heap allocation, and can fan the independent
//! per-commodity sweeps out over a persistent
//! [`WorkerPool`](crate::pool::WorkerPool). Both produce bit-identical
//! results for any thread count: each commodity accumulates its own
//! `f_edge`/`f_node` partial rows, and the partials are reduced in
//! ascending commodity order on the calling thread.

#![allow(unsafe_code)] // disjoint-row fan-out over the worker pool

use crate::pool::{RowTable, WorkerPool};
use crate::routing::RoutingTable;
use crate::workspace::IterationWorkspace;
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Traffic and resource-usage rates induced by a routing decision.
///
/// Buffers are flat and row-major (`[commodity][node-or-edge]`) so the
/// per-commodity sweeps read and write contiguous memory and the
/// iteration core can hand disjoint rows to worker threads.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowState {
    /// `t[j·V + v]` — commodity-`j` traffic rate at extended node `v`
    /// (in node-`v` input units), eq. (3).
    pub(crate) t: Vec<f64>,
    /// `x[j·L + l]` — commodity-`j` input flow routed over extended edge
    /// `l`: `t_i(j)·φ_il(j)` (input units of the tail node).
    pub(crate) x: Vec<f64>,
    /// `f_edge[l]` — total resource usage rate on edge `l` across all
    /// commodities, eq. (4).
    pub(crate) f_edge: Vec<f64>,
    /// `f_node[v]` — total resource usage rate at node `v`, eq. (5).
    pub(crate) f_node: Vec<f64>,
    pub(crate) v_count: usize,
    pub(crate) l_count: usize,
}

/// Borrowed view of the cross-commodity usage totals `f_edge`/`f_node` —
/// the only [`FlowState`] data the per-commodity sweeps share. The
/// fused pooled step keeps these stable between its reduction barriers,
/// so sweeps can hold this view while other commodities' rows are being
/// written.
#[derive(Clone, Copy, Debug)]
pub(crate) struct UsageView<'a> {
    /// Total resource usage per extended edge, eq. (4).
    pub(crate) f_edge: &'a [f64],
    /// Total resource usage per extended node, eq. (5).
    pub(crate) f_node: &'a [f64],
}

impl FlowState {
    /// An all-zero state sized for `ext`.
    #[must_use]
    pub fn zeros(ext: &ExtendedNetwork) -> Self {
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        FlowState {
            t: vec![0.0; j_count * v_count],
            x: vec![0.0; j_count * l_count],
            f_edge: vec![0.0; l_count],
            f_node: vec![0.0; v_count],
            v_count,
            l_count,
        }
    }

    /// Builds a state from per-commodity nested rows (used by the
    /// message-level simulator, which assembles the same quantities from
    /// received forecasts).
    ///
    /// # Panics
    ///
    /// Panics if row lengths are inconsistent.
    #[must_use]
    pub fn from_nested(t: &[Vec<f64>], x: &[Vec<f64>], f_edge: Vec<f64>, f_node: Vec<f64>) -> Self {
        let v_count = f_node.len();
        let l_count = f_edge.len();
        assert_eq!(t.len(), x.len(), "t and x must have one row per commodity");
        let mut flat_t = Vec::with_capacity(t.len() * v_count);
        for row in t {
            assert_eq!(row.len(), v_count, "traffic row length mismatch");
            flat_t.extend_from_slice(row);
        }
        let mut flat_x = Vec::with_capacity(x.len() * l_count);
        for row in x {
            assert_eq!(row.len(), l_count, "edge-flow row length mismatch");
            flat_x.extend_from_slice(row);
        }
        FlowState {
            t: flat_t,
            x: flat_x,
            f_edge,
            f_node,
            v_count,
            l_count,
        }
    }

    /// Resizes (and zeroes) the buffers for `ext`. No-op allocation-wise
    /// when the dimensions already match and only `fill` is needed.
    pub(crate) fn reset(&mut self, ext: &ExtendedNetwork) {
        self.v_count = ext.graph().node_count();
        self.l_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        self.t.clear();
        self.t.resize(j_count * self.v_count, 0.0);
        self.x.clear();
        self.x.resize(j_count * self.l_count, 0.0);
        self.f_edge.clear();
        self.f_edge.resize(self.l_count, 0.0);
        self.f_node.clear();
        self.f_node.resize(self.v_count, 0.0);
    }

    /// Commodity-`j` traffic rate at `v`.
    #[must_use]
    pub fn traffic(&self, j: CommodityId, v: NodeId) -> f64 {
        self.t[j.index() * self.v_count + v.index()]
    }

    /// Commodity-`j` input flow over edge `l`.
    #[must_use]
    pub fn edge_flow(&self, j: CommodityId, l: EdgeId) -> f64 {
        self.x[j.index() * self.l_count + l.index()]
    }

    /// Total resource usage on edge `l` (all commodities).
    #[must_use]
    pub fn edge_usage(&self, l: EdgeId) -> f64 {
        self.f_edge[l.index()]
    }

    /// Total resource usage at node `v`.
    #[must_use]
    pub fn node_usage(&self, v: NodeId) -> f64 {
        self.f_node[v.index()]
    }

    /// The full per-node usage vector `f` (extended node order).
    #[must_use]
    pub fn node_usages(&self) -> &[f64] {
        &self.f_node
    }

    /// The shared usage totals as a [`UsageView`].
    pub(crate) fn usage_view(&self) -> UsageView<'_> {
        UsageView {
            f_edge: &self.f_edge,
            f_node: &self.f_node,
        }
    }

    /// Commodity-`j` traffic row, indexed by extended node.
    pub(crate) fn t_row(&self, j: CommodityId) -> &[f64] {
        &self.t[j.index() * self.v_count..(j.index() + 1) * self.v_count]
    }

    /// Mutable access to one traffic entry — a corruption hook for tests
    /// that verify the balance residual flags inconsistent states.
    #[doc(hidden)]
    pub fn traffic_mut(&mut self, j: CommodityId, v: NodeId) -> &mut f64 {
        &mut self.t[j.index() * self.v_count + v.index()]
    }

    /// Admitted rate `a_j`: the flow on the dummy input link.
    #[must_use]
    pub fn admitted(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        self.edge_flow(j, ext.input_edge(j))
    }

    /// Rejected rate `λ_j − a_j`: the flow on the dummy difference link.
    #[must_use]
    pub fn rejected(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        self.edge_flow(j, ext.difference_edge(j))
    }

    /// Data rate of *real* (non-rejected) commodity-`j` traffic arriving
    /// at the sink. By Property 1 this equals `a_j · g_j(sink)`.
    #[must_use]
    pub fn delivered(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        let sink = ext.commodity(j).sink();
        let diff = ext.difference_edge(j);
        ext.commodity_in_edges(j, sink)
            .filter(|&l| l != diff)
            .map(|l| self.edge_flow(j, l) * ext.beta(j, l))
            .sum()
    }
}

/// One commodity's forward sweep of eqs. (3)–(5): fills the traffic row
/// `t`, the edge-flow row `x`, and the commodity's *partial* resource
/// usage rows. `phi` is the commodity's fraction row (indexed once per
/// edge — the routing table's nested lookup is too hot here). All rows
/// are caller-zeroed and disjoint per commodity, so the sweeps for
/// different commodities can run on different threads.
pub(crate) fn flow_sweep(
    ext: &ExtendedNetwork,
    phi: &[f64],
    j: CommodityId,
    t: &mut [f64],
    x: &mut [f64],
    f_edge: &mut [f64],
    f_node: &mut [f64],
) {
    t[ext.dummy_source(j).index()] = ext.commodity(j).max_rate;
    for &v in ext.topo_order(j) {
        let tv = t[v.index()];
        if tv == 0.0 {
            continue;
        }
        for &l in ext.commodity_out_slice(j, v) {
            let phi = phi[l.index()];
            if phi == 0.0 {
                continue;
            }
            let flow = tv * phi;
            x[l.index()] = flow;
            let usage = flow * ext.cost(j, l);
            f_edge[l.index()] += usage;
            f_node[v.index()] += usage;
            t[ext.graph().target(l).index()] += flow * ext.beta(j, l);
        }
    }
}

/// [`flow_sweep`] over a commodity's live-arc sub-list (the active-set
/// engine's flow pass). `arc_len`/`arcs` are the commodity's row of
/// [`crate::active::ActiveArcs`]: per topo-router live out-degrees and
/// the live arcs themselves, grouped by router in topological order
/// with CSR sub-order. Since the dense sweep skips zero-traffic tails
/// and zero-fraction arcs, walking exactly the nonzero-fraction arcs in
/// the same order performs the identical sequence of float operations —
/// bit-identical rows, a fraction of the memory traffic.
#[allow(clippy::too_many_arguments)] // a commodity's full sweep context
pub(crate) fn flow_sweep_active(
    ext: &ExtendedNetwork,
    phi: &[f64],
    j: CommodityId,
    t: &mut [f64],
    x: &mut [f64],
    f_edge: &mut [f64],
    f_node: &mut [f64],
    arc_len: &[u32],
    arcs: &[EdgeId],
) {
    t[ext.dummy_source(j).index()] = ext.commodity(j).max_rate;
    let mut idx = 0usize;
    for (r, &v) in ext.commodity_routers_topo(j).iter().enumerate() {
        let n = arc_len[r] as usize;
        let live = &arcs[idx..idx + n];
        idx += n;
        let tv = t[v.index()];
        if tv == 0.0 {
            continue;
        }
        for &l in live {
            let phi = phi[l.index()];
            debug_assert!(phi != 0.0, "live arc {l} with zero fraction");
            let flow = tv * phi;
            x[l.index()] = flow;
            let usage = flow * ext.cost(j, l);
            f_edge[l.index()] += usage;
            f_node[v.index()] += usage;
            t[ext.graph().target(l).index()] += flow * ext.beta(j, l);
        }
    }
}

/// Evaluates eqs. (3)–(5) into caller-owned buffers.
///
/// `pool: None` runs the per-commodity sweeps serially; `Some` fans
/// them out over the persistent worker pool. Both are allocation-free
/// in steady state and bit-identical: every commodity writes its own
/// rows, and the per-commodity `f_edge`/`f_node` partials are reduced
/// in ascending commodity order on the calling thread (each partial
/// entry is a complete per-commodity sum, so the reduction order is the
/// only order there is).
pub fn compute_flows_into(
    ext: &ExtendedNetwork,
    routing: &RoutingTable,
    state: &mut FlowState,
    ws: &mut IterationWorkspace,
    pool: Option<&WorkerPool>,
) {
    state.reset(ext);
    ws.ensure(ext);
    let v_count = state.v_count;
    let l_count = state.l_count;
    let j_count = ext.num_commodities();
    ws.f_edge_part.fill(0.0);
    ws.f_node_part.fill(0.0);

    match pool {
        Some(pool) if pool.participants() > 1 && j_count > 1 => {
            let t_tab = RowTable::new(&mut state.t, v_count.max(1));
            let x_tab = RowTable::new(&mut state.x, l_count.max(1));
            let fe_tab = RowTable::new(&mut ws.f_edge_part, l_count.max(1));
            let fn_tab = RowTable::new(&mut ws.f_node_part, v_count.max(1));
            pool.run_tasks(j_count, |ji, _worker| {
                let j = CommodityId::from_index(ji);
                // SAFETY: task `ji` is claimed exactly once and is the
                // sole accessor of row `ji` of each table.
                unsafe {
                    flow_sweep(
                        ext,
                        routing.row(j),
                        j,
                        t_tab.row_mut(ji),
                        x_tab.row_mut(ji),
                        fe_tab.row_mut(ji),
                        fn_tab.row_mut(ji),
                    );
                }
            });
        }
        _ => {
            let t_rows = state.t.chunks_mut(v_count.max(1));
            let x_rows = state.x.chunks_mut(l_count.max(1));
            let fe_rows = ws.f_edge_part.chunks_mut(l_count.max(1));
            let fn_rows = ws.f_node_part.chunks_mut(v_count.max(1));
            for (ji, ((t, x), (fe, fnode))) in
                t_rows.zip(x_rows).zip(fe_rows.zip(fn_rows)).enumerate()
            {
                let j = CommodityId::from_index(ji);
                flow_sweep(ext, routing.row(j), j, t, x, fe, fnode);
            }
        }
    }

    for ji in 0..j_count {
        let fe = &ws.f_edge_part[ji * l_count..(ji + 1) * l_count];
        for (acc, &p) in state.f_edge.iter_mut().zip(fe) {
            *acc += p;
        }
        let fnode = &ws.f_node_part[ji * v_count..(ji + 1) * v_count];
        for (acc, &p) in state.f_node.iter_mut().zip(fnode) {
            *acc += p;
        }
    }
}

/// Evaluates eqs. (3)–(5) for the given routing decision.
///
/// The offered load is the paper's `r`: commodity `j` arrives at its
/// dummy source at the fixed rate `λ_j` (eq. (2)); all other external
/// inputs are zero. Allocating convenience wrapper over
/// [`compute_flows_into`].
#[must_use]
pub fn compute_flows(ext: &ExtendedNetwork, routing: &RoutingTable) -> FlowState {
    let mut state = FlowState::zeros(ext);
    let mut ws = IterationWorkspace::new(ext);
    compute_flows_into(ext, routing, &mut state, &mut ws, None);
    state
}

/// Maximum absolute flow-balance residual of eq. (3) over all
/// commodities and nodes — a verification helper used by tests and
/// debug assertions (`compute_flows` satisfies it by construction; the
/// solver's outputs are checked against the same residual). Pure
/// iterator reductions: no per-call collections.
#[must_use]
pub fn balance_residual(ext: &ExtendedNetwork, routing: &RoutingTable, state: &FlowState) -> f64 {
    let mut worst: f64 = 0.0;
    for j in ext.commodity_ids() {
        for v in ext.graph().nodes() {
            if v == ext.commodity(j).sink() {
                continue;
            }
            let r = if v == ext.dummy_source(j) {
                ext.commodity(j).max_rate
            } else {
                0.0
            };
            let inflow: f64 = ext
                .commodity_in_slice(j, v)
                .iter()
                .map(|&l| {
                    let tail = ext.graph().source(l);
                    state.traffic(j, tail) * routing.fraction(j, l) * ext.beta(j, l)
                })
                .sum();
            let residual = (state.traffic(j, v) - r - inflow).abs();
            worst = worst.max(residual);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::builder::ProblemBuilder;
    use spn_model::UtilityFn;
    use spn_transform::ExtendedNetwork;

    /// s → x → t with β = 0.5 then 2.0, costs 2 and 3.
    fn chain_ext() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(100.0);
        let t = b.server(100.0);
        let e1 = b.link(s, x, 50.0);
        let e2 = b.link(x, t, 50.0);
        let j = b.commodity(s, t, 8.0, UtilityFn::throughput());
        b.uses(j, e1, 2.0, 0.5).uses(j, e2, 3.0, 2.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    fn fully_admitting(ext: &ExtendedNetwork) -> RoutingTable {
        let mut rt = RoutingTable::initial(ext);
        for j in ext.commodity_ids() {
            let dummy = ext.dummy_source(j);
            rt.set_row(
                ext,
                j,
                dummy,
                &[(ext.input_edge(j), 1.0), (ext.difference_edge(j), 0.0)],
            );
        }
        rt
    }

    #[test]
    fn shrinkage_propagates_through_chain() {
        let ext = chain_ext();
        let rt = fully_admitting(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        let sink = ext.commodity(j).sink();
        // a = λ = 8; at x: 8·0.5 = 4; at sink: 4·2 = 8
        assert!((fs.admitted(&ext, j) - 8.0).abs() < 1e-12);
        assert!((fs.traffic(j, s) - 8.0).abs() < 1e-12);
        assert!((fs.traffic(j, sink) - 8.0).abs() < 1e-12);
        assert!((fs.delivered(&ext, j) - 8.0).abs() < 1e-12);
        assert_eq!(fs.rejected(&ext, j), 0.0);
    }

    #[test]
    fn resource_usage_charges_the_tail() {
        let ext = chain_ext();
        let rt = fully_admitting(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        // source spends c=2 per unit on 8 units = 16
        assert!((fs.node_usage(s) - 16.0).abs() < 1e-12);
        // first bandwidth node carries 8·0.5 = 4 units at c=1
        let bw0 = spn_graph::NodeId::from_index(3);
        assert!((fs.node_usage(bw0) - 4.0).abs() < 1e-12);
        // middle server x processes 4 units at c=3 = 12
        let x = spn_graph::NodeId::from_index(1);
        assert!((fs.node_usage(x) - 12.0).abs() < 1e-12);
        // sink spends nothing
        assert_eq!(fs.node_usage(ext.commodity(j).sink()), 0.0);
    }

    #[test]
    fn full_rejection_loads_nothing() {
        let ext = chain_ext();
        let rt = RoutingTable::initial(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        assert_eq!(fs.admitted(&ext, j), 0.0);
        assert!((fs.rejected(&ext, j) - 8.0).abs() < 1e-12);
        assert_eq!(fs.delivered(&ext, j), 0.0);
        // only the dummy node consumes (virtual) resource
        for v in ext.graph().nodes() {
            if v != ext.dummy_source(j) {
                assert_eq!(fs.node_usage(v), 0.0, "node {v} loaded");
            }
        }
    }

    #[test]
    fn split_routing_balances() {
        // diamond with a 60/40 split
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(100.0);
        let y = b.server(100.0);
        let t = b.server(100.0);
        let e_sx = b.link(s, x, 50.0);
        let e_sy = b.link(s, y, 50.0);
        let e_xt = b.link(x, t, 50.0);
        let e_yt = b.link(y, t, 50.0);
        let j = b.commodity(s, t, 10.0, UtilityFn::throughput());
        b.uses(j, e_sx, 1.0, 1.0)
            .uses(j, e_sy, 1.0, 1.0)
            .uses(j, e_xt, 1.0, 1.0)
            .uses(j, e_yt, 1.0, 1.0);
        let ext = ExtendedNetwork::build(&b.build().unwrap());
        let mut rt = fully_admitting(&ext);
        let j = CommodityId::from_index(0);
        let src = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, src).collect();
        rt.set_row(&ext, j, src, &[(outs[0], 0.6), (outs[1], 0.4)]);
        let fs = compute_flows(&ext, &rt);
        assert!((fs.delivered(&ext, j) - 10.0).abs() < 1e-9);
        assert!(balance_residual(&ext, &rt, &fs) < 1e-9);
        // x and y see the split
        let xv = spn_graph::NodeId::from_index(1);
        let yv = spn_graph::NodeId::from_index(2);
        assert!((fs.traffic(j, xv) - 6.0).abs() < 1e-9);
        assert!((fs.traffic(j, yv) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn balance_residual_flags_corruption() {
        let ext = chain_ext();
        let rt = fully_admitting(&ext);
        let mut fs = compute_flows(&ext, &rt);
        assert!(balance_residual(&ext, &rt, &fs) < 1e-12);
        *fs.traffic_mut(CommodityId::from_index(0), spn_graph::NodeId::from_index(1)) += 1.0;
        assert!(balance_residual(&ext, &rt, &fs) > 0.5);
    }

    #[test]
    fn into_variant_reuses_buffers_bit_identically() {
        let ext = chain_ext();
        let rt = fully_admitting(&ext);
        let reference = compute_flows(&ext, &rt);
        let mut state = FlowState::zeros(&ext);
        let mut ws = IterationWorkspace::new(&ext);
        for _ in 0..3 {
            compute_flows_into(&ext, &rt, &mut state, &mut ws, None);
            assert_eq!(state, reference);
        }
        // a pooled pass over the same buffers matches exactly
        let pool = WorkerPool::new(4);
        compute_flows_into(&ext, &rt, &mut state, &mut ws, Some(&pool));
        assert_eq!(state, reference);
    }

    #[test]
    fn partial_admission() {
        let ext = chain_ext();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        let dummy = ext.dummy_source(j);
        rt.set_row(
            &ext,
            j,
            dummy,
            &[(ext.input_edge(j), 0.25), (ext.difference_edge(j), 0.75)],
        );
        let fs = compute_flows(&ext, &rt);
        assert!((fs.admitted(&ext, j) - 2.0).abs() < 1e-12);
        assert!((fs.rejected(&ext, j) - 6.0).abs() < 1e-12);
        assert!((fs.delivered(&ext, j) - 2.0).abs() < 1e-12);
    }
}
