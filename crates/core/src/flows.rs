//! Flow balance and resource usage (eqs. (3)–(5)).
//!
//! Given a routing decision `φ` and the fixed offered loads `r` (each
//! dummy source receives `λ_j`), the node traffic rates solve
//!
//! ```text
//! t_i(j) = r_i(j) + Σ_l t_l(j) φ_li(j) β^j_li          (3)
//! ```
//!
//! which we evaluate in one pass over the commodity's topological order
//! (the positive-`φ` subgraph of a commodity is always a sub-DAG of its
//! extended subgraph). Resource usage then follows
//!
//! ```text
//! f_ik = Σ_j t_i(j) φ_ik(j) c^j_ik                     (4)
//! f_i  = Σ_{(i,k)} f_ik                                 (5)
//! ```
//!
//! (eq. (4) is printed with `t_l` in the paper — a typo for `t_i`, as in
//! Gallager's original formulation that the paper generalizes).

use crate::routing::RoutingTable;
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Traffic and resource-usage rates induced by a routing decision.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowState {
    /// `t[j][v]` — commodity-`j` traffic rate at extended node `v`
    /// (in node-`v` input units), eq. (3).
    pub t: Vec<Vec<f64>>,
    /// `x[j][l]` — commodity-`j` input flow routed over extended edge
    /// `l`: `t_i(j)·φ_il(j)` (input units of the tail node).
    pub x: Vec<Vec<f64>>,
    /// `f_edge[l]` — total resource usage rate on edge `l` across all
    /// commodities, eq. (4).
    pub f_edge: Vec<f64>,
    /// `f_node[v]` — total resource usage rate at node `v`, eq. (5).
    pub f_node: Vec<f64>,
}

impl FlowState {
    /// Commodity-`j` traffic rate at `v`.
    #[must_use]
    pub fn traffic(&self, j: CommodityId, v: NodeId) -> f64 {
        self.t[j.index()][v.index()]
    }

    /// Commodity-`j` input flow over edge `l`.
    #[must_use]
    pub fn edge_flow(&self, j: CommodityId, l: EdgeId) -> f64 {
        self.x[j.index()][l.index()]
    }

    /// Total resource usage on edge `l` (all commodities).
    #[must_use]
    pub fn edge_usage(&self, l: EdgeId) -> f64 {
        self.f_edge[l.index()]
    }

    /// Total resource usage at node `v`.
    #[must_use]
    pub fn node_usage(&self, v: NodeId) -> f64 {
        self.f_node[v.index()]
    }

    /// Admitted rate `a_j`: the flow on the dummy input link.
    #[must_use]
    pub fn admitted(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        self.edge_flow(j, ext.input_edge(j))
    }

    /// Rejected rate `λ_j − a_j`: the flow on the dummy difference link.
    #[must_use]
    pub fn rejected(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        self.edge_flow(j, ext.difference_edge(j))
    }

    /// Data rate of *real* (non-rejected) commodity-`j` traffic arriving
    /// at the sink. By Property 1 this equals `a_j · g_j(sink)`.
    #[must_use]
    pub fn delivered(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        let sink = ext.commodity(j).sink();
        let diff = ext.difference_edge(j);
        ext.commodity_in_edges(j, sink)
            .filter(|&l| l != diff)
            .map(|l| self.edge_flow(j, l) * ext.beta(j, l))
            .sum()
    }
}

/// Evaluates eqs. (3)–(5) for the given routing decision.
///
/// The offered load is the paper's `r`: commodity `j` arrives at its
/// dummy source at the fixed rate `λ_j` (eq. (2)); all other external
/// inputs are zero.
#[must_use]
pub fn compute_flows(ext: &ExtendedNetwork, routing: &RoutingTable) -> FlowState {
    let v_count = ext.graph().node_count();
    let l_count = ext.graph().edge_count();
    let j_count = ext.num_commodities();
    let mut t = vec![vec![0.0; v_count]; j_count];
    let mut x = vec![vec![0.0; l_count]; j_count];
    let mut f_edge = vec![0.0; l_count];
    let mut f_node = vec![0.0; v_count];

    for j in ext.commodity_ids() {
        let ji = j.index();
        t[ji][ext.dummy_source(j).index()] = ext.commodity(j).max_rate;
        for &v in ext.topo_order(j) {
            let tv = t[ji][v.index()];
            if tv == 0.0 {
                continue;
            }
            for l in ext.commodity_out_edges(j, v) {
                let phi = routing.fraction(j, l);
                if phi == 0.0 {
                    continue;
                }
                let flow = tv * phi;
                x[ji][l.index()] = flow;
                let usage = flow * ext.cost(j, l);
                f_edge[l.index()] += usage;
                f_node[v.index()] += usage;
                t[ji][ext.graph().target(l).index()] += flow * ext.beta(j, l);
            }
        }
    }
    FlowState { t, x, f_edge, f_node }
}

/// Maximum absolute flow-balance residual of eq. (3) over all
/// commodities and nodes — a verification helper used by tests and
/// debug assertions (`compute_flows` satisfies it by construction; the
/// solver's outputs are checked against the same residual).
#[must_use]
pub fn balance_residual(ext: &ExtendedNetwork, routing: &RoutingTable, state: &FlowState) -> f64 {
    let mut worst: f64 = 0.0;
    for j in ext.commodity_ids() {
        let ji = j.index();
        for v in ext.graph().nodes() {
            if v == ext.commodity(j).sink() {
                continue;
            }
            let r = if v == ext.dummy_source(j) { ext.commodity(j).max_rate } else { 0.0 };
            let inflow: f64 = ext
                .commodity_in_edges(j, v)
                .map(|l| {
                    let tail = ext.graph().source(l);
                    state.t[ji][tail.index()] * routing.fraction(j, l) * ext.beta(j, l)
                })
                .sum();
            let residual = (state.t[ji][v.index()] - r - inflow).abs();
            worst = worst.max(residual);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::builder::ProblemBuilder;
    use spn_model::UtilityFn;
    use spn_transform::ExtendedNetwork;

    /// s → x → t with β = 0.5 then 2.0, costs 2 and 3.
    fn chain_ext() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(100.0);
        let t = b.server(100.0);
        let e1 = b.link(s, x, 50.0);
        let e2 = b.link(x, t, 50.0);
        let j = b.commodity(s, t, 8.0, UtilityFn::throughput());
        b.uses(j, e1, 2.0, 0.5).uses(j, e2, 3.0, 2.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    fn fully_admitting(ext: &ExtendedNetwork) -> RoutingTable {
        let mut rt = RoutingTable::initial(ext);
        for j in ext.commodity_ids() {
            let dummy = ext.dummy_source(j);
            rt.set_row(ext, j, dummy, &[(ext.input_edge(j), 1.0), (ext.difference_edge(j), 0.0)]);
        }
        rt
    }

    #[test]
    fn shrinkage_propagates_through_chain() {
        let ext = chain_ext();
        let rt = fully_admitting(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        let sink = ext.commodity(j).sink();
        // a = λ = 8; at x: 8·0.5 = 4; at sink: 4·2 = 8
        assert!((fs.admitted(&ext, j) - 8.0).abs() < 1e-12);
        assert!((fs.traffic(j, s) - 8.0).abs() < 1e-12);
        assert!((fs.traffic(j, sink) - 8.0).abs() < 1e-12);
        assert!((fs.delivered(&ext, j) - 8.0).abs() < 1e-12);
        assert_eq!(fs.rejected(&ext, j), 0.0);
    }

    #[test]
    fn resource_usage_charges_the_tail() {
        let ext = chain_ext();
        let rt = fully_admitting(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        let s = ext.commodity(j).source();
        // source spends c=2 per unit on 8 units = 16
        assert!((fs.node_usage(s) - 16.0).abs() < 1e-12);
        // first bandwidth node carries 8·0.5 = 4 units at c=1
        let bw0 = spn_graph::NodeId::from_index(3);
        assert!((fs.node_usage(bw0) - 4.0).abs() < 1e-12);
        // middle server x processes 4 units at c=3 = 12
        let x = spn_graph::NodeId::from_index(1);
        assert!((fs.node_usage(x) - 12.0).abs() < 1e-12);
        // sink spends nothing
        assert_eq!(fs.node_usage(ext.commodity(j).sink()), 0.0);
    }

    #[test]
    fn full_rejection_loads_nothing() {
        let ext = chain_ext();
        let rt = RoutingTable::initial(&ext);
        let fs = compute_flows(&ext, &rt);
        let j = CommodityId::from_index(0);
        assert_eq!(fs.admitted(&ext, j), 0.0);
        assert!((fs.rejected(&ext, j) - 8.0).abs() < 1e-12);
        assert_eq!(fs.delivered(&ext, j), 0.0);
        // only the dummy node consumes (virtual) resource
        for v in ext.graph().nodes() {
            if v != ext.dummy_source(j) {
                assert_eq!(fs.node_usage(v), 0.0, "node {v} loaded");
            }
        }
    }

    #[test]
    fn split_routing_balances() {
        // diamond with a 60/40 split
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(100.0);
        let y = b.server(100.0);
        let t = b.server(100.0);
        let e_sx = b.link(s, x, 50.0);
        let e_sy = b.link(s, y, 50.0);
        let e_xt = b.link(x, t, 50.0);
        let e_yt = b.link(y, t, 50.0);
        let j = b.commodity(s, t, 10.0, UtilityFn::throughput());
        b.uses(j, e_sx, 1.0, 1.0)
            .uses(j, e_sy, 1.0, 1.0)
            .uses(j, e_xt, 1.0, 1.0)
            .uses(j, e_yt, 1.0, 1.0);
        let ext = ExtendedNetwork::build(&b.build().unwrap());
        let mut rt = fully_admitting(&ext);
        let j = CommodityId::from_index(0);
        let src = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, src).collect();
        rt.set_row(&ext, j, src, &[(outs[0], 0.6), (outs[1], 0.4)]);
        let fs = compute_flows(&ext, &rt);
        assert!((fs.delivered(&ext, j) - 10.0).abs() < 1e-9);
        assert!(balance_residual(&ext, &rt, &fs) < 1e-9);
        // x and y see the split
        let xv = spn_graph::NodeId::from_index(1);
        let yv = spn_graph::NodeId::from_index(2);
        assert!((fs.traffic(j, xv) - 6.0).abs() < 1e-9);
        assert!((fs.traffic(j, yv) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn balance_residual_flags_corruption() {
        let ext = chain_ext();
        let rt = fully_admitting(&ext);
        let mut fs = compute_flows(&ext, &rt);
        assert!(balance_residual(&ext, &rt, &fs) < 1e-12);
        fs.t[0][1] += 1.0;
        assert!(balance_residual(&ext, &rt, &fs) > 0.5);
    }

    #[test]
    fn partial_admission() {
        let ext = chain_ext();
        let mut rt = RoutingTable::initial(&ext);
        let j = CommodityId::from_index(0);
        let dummy = ext.dummy_source(j);
        rt.set_row(
            &ext,
            j,
            dummy,
            &[(ext.input_edge(j), 0.25), (ext.difference_edge(j), 0.75)],
        );
        let fs = compute_flows(&ext, &rt);
        assert!((fs.admitted(&ext, j) - 2.0).abs() < 1e-12);
        assert!((fs.rejected(&ext, j) - 6.0).abs() < 1e-12);
        assert!((fs.delivered(&ext, j) - 2.0).abs() < 1e-12);
    }
}
