//! Explicitly vectorized variants of the hot sweep kernels, behind the
//! `simd` cargo feature, with runtime CPU-feature dispatch.
//!
//! ## The two-tier equivalence contract (ARCHITECTURE invariant 18)
//!
//! The scalar kernels in [`crate::blocked`], [`crate::flows`],
//! [`crate::marginals`], [`crate::gamma`], and [`crate::step`] stay
//! untouched and remain the **bit-exact reference**: the default build
//! compiles no SIMD code at all, and even a `--features simd` build
//! runs scalar unless [`GradientConfig::simd`](crate::GradientConfig)
//! opts into [`SimdPolicy::Auto`].
//!
//! The vectorized kernels split into two classes:
//!
//! * **Bit-identical lanes** — the tag sweep, the flow sweep, and the
//!   scoped usage-totals reduction vectorize only element-wise products
//!   and comparisons (every lane performs exactly the scalar kernel's
//!   IEEE operations on exactly the scalar operands, and all
//!   scatter-style read-modify-writes stay scalar and in scalar order),
//!   so their outputs equal the scalar kernels bit-for-bit.
//! * **Tolerance-tier lanes** — the marginal sweep's per-router
//!   accumulation and the Γ row's marginal fill use FMA and a
//!   reassociated (4-lane horizontal) sum, which changes rounding *by
//!   design*. These agree with the scalar reference only within
//!   tolerance; `tests/simd_equivalence.rs` pins trajectory-level
//!   agreement (per-iteration utility, flows, Γ statistics, identical
//!   convergence verdicts), and the numerical watchdog
//!   ([`crate::health`]) is the runtime safety net.
//!
//! Dispatch is resolved per step from [`SimdPolicy`] via
//! `is_x86_feature_detected!` (AVX2+FMA → SSE2 → scalar); non-x86
//! targets and non-`simd` builds always resolve to scalar. The SSE2
//! tier has no gather instructions, so only the two arithmetic-dense
//! kernels (marginal accumulation, Γ fill) get 2-lane variants there;
//! the rest fall back to scalar.
//!
//! Gather indices come from the live-arc lists (`EdgeId` /
//! `NodeId` are `repr(transparent)` over `u32`) and from the
//! [`ActiveSet`](crate::active::ActiveSet)'s cached per-edge head
//! (target-node) array, which avoids re-gathering through the graph's
//! `(tail, head)` pair layout.

#![allow(unsafe_code)] // target_feature kernels + id-slice reinterpretation

use crate::cost::CostModel;
use crate::flows::UsageView;
use spn_graph::EdgeId;
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// How the algorithm picks its sweep kernels
/// ([`GradientConfig::simd`](crate::GradientConfig)).
///
/// The default is [`SimdPolicy::Scalar`] even when the crate is built
/// with `--features simd`: bit-exact reproducibility (and every bitwise
/// equivalence test in the suite) is the baseline contract, and the
/// relaxed-tolerance kernels are a per-run opt-in. Forcing `Scalar` on
/// a `simd` build is also the supported A/B lever — it must be (and is
/// pinned) bit-identical to the default build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimdPolicy {
    /// Always run the scalar reference kernels (bit-exact; default).
    #[default]
    Scalar,
    /// Use the fastest vectorized kernels the CPU supports (AVX2+FMA →
    /// SSE2 → scalar). A no-op without the `simd` cargo feature.
    Auto,
}

/// The kernel set a step actually runs with, resolved from
/// [`SimdPolicy`] and the host CPU once per step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
pub(crate) enum SimdBackend {
    /// The scalar reference kernels.
    Scalar,
    /// 2-lane SSE2 variants of the arithmetic-dense kernels (no
    /// gathers, no FMA); everything else scalar.
    Sse2,
    /// 4-lane AVX2 gathers + FMA for every vectorized kernel.
    Avx2Fma,
}

/// Resolves the backend the current host runs [`SimdPolicy::Auto`]
/// with. Always [`SimdBackend::Scalar`] without the `simd` feature or
/// off x86-64.
pub(crate) fn detect() -> SimdBackend {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdBackend::Avx2Fma;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdBackend::Sse2;
        }
    }
    SimdBackend::Scalar
}

/// Resolves a configured policy against the host CPU.
pub(crate) fn resolve(policy: SimdPolicy) -> SimdBackend {
    match policy {
        SimdPolicy::Scalar => SimdBackend::Scalar,
        SimdPolicy::Auto => detect(),
    }
}

/// The kernel tier [`SimdPolicy::Auto`] resolves to on this host, as a
/// stable string (`"avx2+fma"`, `"sse2"`, or `"scalar"`) — recorded by
/// the bench harness next to simd measurements.
#[must_use]
pub fn detected_kernel() -> &'static str {
    match detect() {
        SimdBackend::Scalar => "scalar",
        SimdBackend::Sse2 => "sse2",
        SimdBackend::Avx2Fma => "avx2+fma",
    }
}

/// `&[EdgeId]` as raw `u32` indices.
///
/// Sound because `EdgeId` is `repr(transparent)` over `u32` (a layout
/// guarantee documented on the type itself).
#[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
fn edge_ids(arcs: &[EdgeId]) -> &[u32] {
    // SAFETY: EdgeId is repr(transparent) over u32; len and alignment
    // are therefore identical.
    unsafe { std::slice::from_raw_parts(arcs.as_ptr().cast::<u32>(), arcs.len()) }
}

/// [`crate::marginals::marginal_sweep_active`] dispatched by backend.
/// `heads[l]` is edge `l`'s target-node index. Scalar and SSE2/AVX2
/// differ within tolerance (FMA + reassociated row sums).
#[allow(clippy::too_many_arguments)] // a commodity's full sweep context
pub(crate) fn marginal_sweep_active(
    backend: SimdBackend,
    ext: &ExtendedNetwork,
    cost: &CostModel,
    phi: &[f64],
    usage: UsageView<'_>,
    j: CommodityId,
    d: &mut [f64],
    arc_len: &[u32],
    arcs: &[EdgeId],
    live: usize,
    heads: &[u32],
) {
    match backend {
        SimdBackend::Scalar => {
            let _ = heads;
            crate::marginals::marginal_sweep_active(
                ext, cost, phi, usage, j, d, arc_len, arcs, live,
            );
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Sse2 => unsafe {
            // SAFETY: SSE2 is guaranteed by the resolved backend.
            x86::marginal_sweep_sse2(ext, cost, phi, usage, j, d, arc_len, arcs, live, heads);
        },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Avx2Fma => unsafe {
            // SAFETY: AVX2+FMA are guaranteed by the resolved backend.
            x86::marginal_sweep_avx2(ext, cost, phi, usage, j, d, arc_len, arcs, live, heads);
        },
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        _ => {
            crate::marginals::marginal_sweep_active(
                ext, cost, phi, usage, j, d, arc_len, arcs, live,
            );
        }
    }
}

/// [`crate::blocked::tag_sweep_active`] dispatched by backend. The
/// AVX2 lane evaluates each arc's exact scalar condition expressions
/// per lane (no FMA, no reassociation), so its tag rows are
/// **bit-identical** to the scalar sweep for every backend.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub(crate) fn tag_sweep_active(
    backend: SimdBackend,
    ext: &ExtendedNetwork,
    cost: &CostModel,
    phi: &[f64],
    t_row: &[f64],
    usage: UsageView<'_>,
    d_row: &[f64],
    eta: f64,
    traffic_floor: f64,
    j: CommodityId,
    tagged: &mut [bool],
    arc_len: &[u32],
    arcs: &[EdgeId],
    live: usize,
    heads: &[u32],
) {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Avx2Fma => unsafe {
            // SAFETY: AVX2 is guaranteed by the resolved backend.
            x86::tag_sweep_avx2(
                ext,
                cost,
                phi,
                t_row,
                usage,
                d_row,
                eta,
                traffic_floor,
                j,
                tagged,
                arc_len,
                arcs,
                live,
                heads,
            );
        },
        _ => {
            let _ = heads;
            crate::blocked::tag_sweep_active(
                ext,
                cost,
                phi,
                t_row,
                usage,
                d_row,
                eta,
                traffic_floor,
                j,
                tagged,
                arc_len,
                arcs,
                live,
            );
        }
    }
}

/// [`crate::flows::flow_sweep_active`] dispatched by backend. The AVX2
/// lane vectorizes only the per-arc products (`t·φ`, `flow·c`,
/// `flow·β`) and applies every scatter-style store scalar in arc
/// order, so its rows are **bit-identical** to the scalar sweep.
#[allow(clippy::too_many_arguments)] // a commodity's full sweep context
pub(crate) fn flow_sweep_active(
    backend: SimdBackend,
    ext: &ExtendedNetwork,
    phi: &[f64],
    j: CommodityId,
    t: &mut [f64],
    x: &mut [f64],
    f_edge: &mut [f64],
    f_node: &mut [f64],
    arc_len: &[u32],
    arcs: &[EdgeId],
    heads: &[u32],
) {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Avx2Fma => unsafe {
            // SAFETY: AVX2 is guaranteed by the resolved backend.
            x86::flow_sweep_avx2(ext, phi, j, t, x, f_edge, f_node, arc_len, arcs, heads);
        },
        _ => {
            let _ = heads;
            crate::flows::flow_sweep_active(ext, phi, j, t, x, f_edge, f_node, arc_len, arcs);
        }
    }
}

/// [`crate::step::reduce_usage_totals_scoped`] dispatched by backend.
/// The AVX2 lane gathers accumulator/partial pairs four at a time and
/// stores scalar (indices within one commodity are distinct), keeping
/// the per-accumulator addition sequence — and therefore the totals —
/// **bit-identical** to the scalar reduction.
#[allow(clippy::too_many_arguments)] // a commodity's full sweep context
pub(crate) fn reduce_usage_totals_scoped(
    backend: SimdBackend,
    ext: &ExtendedNetwork,
    fe_tot: &mut [f64],
    fn_tot: &mut [f64],
    fe_part: &[f64],
    fn_part: &[f64],
    l_count: usize,
    v_count: usize,
    j_count: usize,
) {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Avx2Fma => unsafe {
            // SAFETY: AVX2 is guaranteed by the resolved backend.
            x86::reduce_scoped_avx2(
                ext, fe_tot, fn_tot, fe_part, fn_part, l_count, v_count, j_count,
            );
        },
        _ => {
            crate::step::reduce_usage_totals_scoped(
                ext, fe_tot, fn_tot, fe_part, fn_part, l_count, v_count, j_count,
            );
        }
    }
}

/// Fills `out[i] = tail_partial · c(j, lᵢ) + β(j, lᵢ) · d[head(lᵢ)]`
/// for a Γ row's out-edge list. Returns `false` when the caller must
/// run the scalar fill (scalar backend, or a non-`simd` build) —
/// keeping the scalar Γ path byte-for-byte untouched. Tolerance tier:
/// the vector fill uses FMA.
#[allow(clippy::too_many_arguments)] // a Γ row's full context
pub(crate) fn fill_edge_marginals(
    backend: SimdBackend,
    cost_row: &[f64],
    beta_row: &[f64],
    d_row: &[f64],
    edges: &[EdgeId],
    tail_partial: f64,
    heads: &[u32],
    out: &mut Vec<f64>,
) -> bool {
    match backend {
        SimdBackend::Scalar => false,
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Sse2 => {
            out.resize(edges.len(), 0.0);
            // SAFETY: SSE2 is guaranteed by the resolved backend.
            unsafe {
                x86::fill_marginals_sse2(cost_row, beta_row, d_row, edges, tail_partial, heads, out)
            };
            true
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Avx2Fma => {
            out.resize(edges.len(), 0.0);
            // SAFETY: AVX2+FMA are guaranteed by the resolved backend.
            unsafe {
                x86::fill_marginals_avx2(cost_row, beta_row, d_row, edges, tail_partial, heads, out)
            };
            true
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        _ => {
            let _ = (cost_row, beta_row, d_row, edges, tail_partial, heads, out);
            false
        }
    }
}

/// Appends every index `i` with `usages[i].to_bits() != bits[i]` to
/// `changed`, in index order — the staleness scan of the incremental
/// total-cost cache. Pure integer comparisons: the AVX2 lane skips
/// four-wide all-equal quads and resolves any mismatching quad with
/// the scalar test, so every backend produces the identical index set
/// (**bit-exact** tier).
pub(crate) fn scan_changed(
    backend: SimdBackend,
    usages: &[f64],
    bits: &[u64],
    changed: &mut Vec<u32>,
) {
    debug_assert_eq!(usages.len(), bits.len());
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Avx2Fma => unsafe {
            // SAFETY: AVX2 is guaranteed by the resolved backend.
            x86::scan_changed_avx2(usages, bits, changed);
        },
        _ => {
            for (i, (&z, &b)) in usages.iter().zip(bits).enumerate() {
                if z.to_bits() != b {
                    changed.push(i as u32);
                }
            }
        }
    }
}

/// Sums a contiguous row of `f64`s — the fold the incremental
/// total-cost cache re-sums its per-node value arrays with. The
/// scalar (and SSE2) backend folds left-to-right in index order,
/// exactly `xs.iter().sum()`, which keeps the cached total
/// **bit-identical** to the naive scan; the AVX2 lane uses four
/// independent vector accumulators with a reassociated horizontal
/// reduction (tolerance tier).
pub(crate) fn sum_row(backend: SimdBackend, xs: &[f64]) -> f64 {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdBackend::Avx2Fma => unsafe {
            // SAFETY: AVX2 is guaranteed by the resolved backend.
            x86::sum_row_avx2(xs)
        },
        _ => xs.iter().sum(),
    }
}

/// The `std::arch` kernels. Every `#[target_feature]` function's
/// safety contract is "the named CPU features are present", discharged
/// by runtime detection in [`resolve`]; gathered indices are live-arc
/// edge ids and per-edge head indices, in bounds by construction of
/// the extended network (debug-asserted at entry).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use super::{edge_ids, CostModel, UsageView};
    use spn_graph::EdgeId;
    use spn_model::CommodityId;
    use spn_transform::ExtendedNetwork;
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_pd, _mm256_and_pd, _mm256_castpd256_pd128,
        _mm256_castsi256_pd, _mm256_cmp_pd, _mm256_cmpeq_epi64, _mm256_div_pd,
        _mm256_extractf128_pd, _mm256_fmadd_pd, _mm256_i32gather_pd, _mm256_loadu_pd,
        _mm256_loadu_si256, _mm256_movemask_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64,
        _mm_i32gather_epi32, _mm_loadu_si128, _mm_mul_pd, _mm_set_pd, _mm_setzero_pd,
        _mm_unpackhi_pd, _CMP_GE_OQ, _CMP_LE_OQ,
    };

    /// Horizontal sum of a 4-lane accumulator (pairwise: (0+2)+(1+3)).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum4(v: std::arch::x86_64::__m256d) -> f64 {
        let hi = _mm256_extractf128_pd::<1>(v);
        let lo = _mm256_castpd256_pd128(v);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// Horizontal sum of a 2-lane accumulator.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn hsum2(v: std::arch::x86_64::__m128d) -> f64 {
        _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)))
    }

    /// One non-dummy router's marginal accumulation, 4 lanes at a time:
    /// `Σ φ_l · (tail_partial · c_l + β_l · d[head_l])` with FMA and a
    /// reassociated final sum (tolerance tier).
    #[target_feature(enable = "avx2,fma")]
    fn router_marginal_avx2(
        ids: &[u32],
        phi: &[f64],
        cost_row: &[f64],
        beta_row: &[f64],
        d: &[f64],
        heads: &[u32],
        tail_partial: f64,
    ) -> f64 {
        let n = ids.len();
        let tp = _mm256_set1_pd(tail_partial);
        let mut acc = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY (loads/gathers): `ids[i..i+4]` is in bounds; every
            // gathered index is a live edge id (< phi/cost/beta len) or
            // a head node index (< d len) by extended-network
            // construction.
            let idx = unsafe { _mm_loadu_si128(ids.as_ptr().add(i).cast::<__m128i>()) };
            let ph = unsafe { _mm256_i32gather_pd::<8>(phi.as_ptr(), idx) };
            let co = unsafe { _mm256_i32gather_pd::<8>(cost_row.as_ptr(), idx) };
            let be = unsafe { _mm256_i32gather_pd::<8>(beta_row.as_ptr(), idx) };
            let hd = unsafe { _mm_i32gather_epi32::<4>(heads.as_ptr().cast::<i32>(), idx) };
            let dv = unsafe { _mm256_i32gather_pd::<8>(d.as_ptr(), hd) };
            let term = _mm256_fmadd_pd(tp, co, _mm256_mul_pd(be, dv));
            acc = _mm256_fmadd_pd(ph, term, acc);
            i += 4;
        }
        let mut sum = hsum4(acc);
        while i < n {
            let l = ids[i] as usize;
            sum += phi[l] * (tail_partial * cost_row[l] + beta_row[l] * d[heads[l] as usize]);
            i += 1;
        }
        sum
    }

    /// AVX2+FMA marginal sweep over a commodity's live arcs (tolerance
    /// tier; see [`crate::marginals::marginal_sweep_active`] for the
    /// reference structure).
    #[allow(clippy::too_many_arguments)] // a commodity's full sweep context
    #[target_feature(enable = "avx2,fma")]
    pub(super) fn marginal_sweep_avx2(
        ext: &ExtendedNetwork,
        cost: &CostModel,
        phi: &[f64],
        usage: UsageView<'_>,
        j: CommodityId,
        d: &mut [f64],
        arc_len: &[u32],
        arcs: &[EdgeId],
        live: usize,
        heads: &[u32],
    ) {
        debug_assert_eq!(heads.len(), ext.graph().edge_count());
        let routers = ext.commodity_routers_topo(j);
        let dummy = ext.dummy_source(j);
        let cost_row = ext.cost_row(j);
        let beta_row = ext.beta_row(j);
        let ids = edge_ids(arcs);
        let mut idx = live;
        for r in (0..routers.len()).rev() {
            let v = routers[r];
            let n = arc_len[r] as usize;
            idx -= n;
            let acc = if v == dummy {
                let mut acc = 0.0;
                for &l in &arcs[idx..idx + n] {
                    let head = ext.graph().target(l);
                    acc +=
                        phi[l.index()] * cost.edge_marginal_view(ext, usage, j, l, d[head.index()]);
                }
                acc
            } else {
                let tail_partial = cost.node_partial_view(ext, usage, v);
                router_marginal_avx2(
                    &ids[idx..idx + n],
                    phi,
                    cost_row,
                    beta_row,
                    d,
                    heads,
                    tail_partial,
                )
            };
            d[v.index()] = acc;
        }
        debug_assert_eq!(idx, 0, "live-arc prefix mismatch for {j}");
    }

    /// One non-dummy router's marginal accumulation, 2 SSE2 lanes at a
    /// time (explicit pair loads — SSE2 has no gathers — no FMA, but a
    /// reassociated pairwise sum: tolerance tier).
    #[target_feature(enable = "sse2")]
    fn router_marginal_sse2(
        ids: &[u32],
        phi: &[f64],
        cost_row: &[f64],
        beta_row: &[f64],
        d: &[f64],
        heads: &[u32],
        tail_partial: f64,
    ) -> f64 {
        let n = ids.len();
        let tp = _mm_set_pd(tail_partial, tail_partial);
        let mut acc = _mm_setzero_pd();
        let mut i = 0usize;
        while i + 2 <= n {
            let l0 = ids[i] as usize;
            let l1 = ids[i + 1] as usize;
            let ph = _mm_set_pd(phi[l1], phi[l0]);
            let co = _mm_set_pd(cost_row[l1], cost_row[l0]);
            let be = _mm_set_pd(beta_row[l1], beta_row[l0]);
            let dv = _mm_set_pd(d[heads[l1] as usize], d[heads[l0] as usize]);
            let term = _mm_add_pd(_mm_mul_pd(tp, co), _mm_mul_pd(be, dv));
            acc = _mm_add_pd(acc, _mm_mul_pd(ph, term));
            i += 2;
        }
        let mut sum = hsum2(acc);
        while i < n {
            let l = ids[i] as usize;
            sum += phi[l] * (tail_partial * cost_row[l] + beta_row[l] * d[heads[l] as usize]);
            i += 1;
        }
        sum
    }

    /// SSE2 marginal sweep (2-lane variant of [`marginal_sweep_avx2`]).
    #[allow(clippy::too_many_arguments)] // a commodity's full sweep context
    #[target_feature(enable = "sse2")]
    pub(super) fn marginal_sweep_sse2(
        ext: &ExtendedNetwork,
        cost: &CostModel,
        phi: &[f64],
        usage: UsageView<'_>,
        j: CommodityId,
        d: &mut [f64],
        arc_len: &[u32],
        arcs: &[EdgeId],
        live: usize,
        heads: &[u32],
    ) {
        debug_assert_eq!(heads.len(), ext.graph().edge_count());
        let routers = ext.commodity_routers_topo(j);
        let dummy = ext.dummy_source(j);
        let cost_row = ext.cost_row(j);
        let beta_row = ext.beta_row(j);
        let ids = edge_ids(arcs);
        let mut idx = live;
        for r in (0..routers.len()).rev() {
            let v = routers[r];
            let n = arc_len[r] as usize;
            idx -= n;
            let acc = if v == dummy {
                let mut acc = 0.0;
                for &l in &arcs[idx..idx + n] {
                    let head = ext.graph().target(l);
                    acc +=
                        phi[l.index()] * cost.edge_marginal_view(ext, usage, j, l, d[head.index()]);
                }
                acc
            } else {
                let tail_partial = cost.node_partial_view(ext, usage, v);
                router_marginal_sse2(
                    &ids[idx..idx + n],
                    phi,
                    cost_row,
                    beta_row,
                    d,
                    heads,
                    tail_partial,
                )
            };
            d[v.index()] = acc;
        }
        debug_assert_eq!(idx, 0, "live-arc prefix mismatch for {j}");
    }

    /// AVX2 Γ-row marginal fill (tolerance tier): contiguous stores of
    /// `tail_partial · c_l + β_l · d[head_l]` over a router's out-edge
    /// slice.
    #[target_feature(enable = "avx2,fma")]
    pub(super) fn fill_marginals_avx2(
        cost_row: &[f64],
        beta_row: &[f64],
        d: &[f64],
        edges: &[EdgeId],
        tail_partial: f64,
        heads: &[u32],
        out: &mut [f64],
    ) {
        let ids = edge_ids(edges);
        let n = ids.len();
        debug_assert_eq!(out.len(), n);
        let tp = _mm256_set1_pd(tail_partial);
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: as in `router_marginal_avx2`; `out[i..i+4]` is in
            // bounds for the unaligned store.
            let idx = unsafe { _mm_loadu_si128(ids.as_ptr().add(i).cast::<__m128i>()) };
            let co = unsafe { _mm256_i32gather_pd::<8>(cost_row.as_ptr(), idx) };
            let be = unsafe { _mm256_i32gather_pd::<8>(beta_row.as_ptr(), idx) };
            let hd = unsafe { _mm_i32gather_epi32::<4>(heads.as_ptr().cast::<i32>(), idx) };
            let dv = unsafe { _mm256_i32gather_pd::<8>(d.as_ptr(), hd) };
            let m = _mm256_fmadd_pd(tp, co, _mm256_mul_pd(be, dv));
            unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(i), m) };
            i += 4;
        }
        while i < n {
            let l = ids[i] as usize;
            out[i] = tail_partial * cost_row[l] + beta_row[l] * d[heads[l] as usize];
            i += 1;
        }
    }

    /// SSE2 Γ-row marginal fill (2-lane variant of
    /// [`fill_marginals_avx2`]; no FMA).
    #[target_feature(enable = "sse2")]
    pub(super) fn fill_marginals_sse2(
        cost_row: &[f64],
        beta_row: &[f64],
        d: &[f64],
        edges: &[EdgeId],
        tail_partial: f64,
        heads: &[u32],
        out: &mut [f64],
    ) {
        let ids = edge_ids(edges);
        let n = ids.len();
        debug_assert_eq!(out.len(), n);
        let mut i = 0usize;
        while i + 2 <= n {
            let l0 = ids[i] as usize;
            let l1 = ids[i + 1] as usize;
            let co = _mm_set_pd(cost_row[l1], cost_row[l0]);
            let be = _mm_set_pd(beta_row[l1], beta_row[l0]);
            let dv = _mm_set_pd(d[heads[l1] as usize], d[heads[l0] as usize]);
            let tp = _mm_set_pd(tail_partial, tail_partial);
            let m = _mm_add_pd(_mm_mul_pd(tp, co), _mm_mul_pd(be, dv));
            // SAFETY: `out[i..i+2]` is in bounds.
            unsafe { std::arch::x86_64::_mm_storeu_pd(out.as_mut_ptr().add(i), m) };
            i += 2;
        }
        while i < n {
            let l = ids[i] as usize;
            out[i] = tail_partial * cost_row[l] + beta_row[l] * d[heads[l] as usize];
            i += 1;
        }
    }

    /// AVX2 tag sweep over a commodity's live arcs — **bit-identical**
    /// to [`crate::blocked::tag_sweep_active`]: the per-arc condition
    /// expressions are evaluated lane-for-lane with the scalar
    /// operations (mul, add, sub, div, ordered compares; never FMA),
    /// and the router tag is the order-independent OR of the arc
    /// conditions (the scalar early-`break` is a pure optimization).
    #[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
    #[target_feature(enable = "avx2")]
    pub(super) fn tag_sweep_avx2(
        ext: &ExtendedNetwork,
        cost: &CostModel,
        phi: &[f64],
        t_row: &[f64],
        usage: UsageView<'_>,
        d_row: &[f64],
        eta: f64,
        traffic_floor: f64,
        j: CommodityId,
        tagged: &mut [bool],
        arc_len: &[u32],
        arcs: &[EdgeId],
        live: usize,
        heads: &[u32],
    ) {
        debug_assert_eq!(heads.len(), ext.graph().edge_count());
        let routers = ext.commodity_routers_topo(j);
        let dummy = ext.dummy_source(j);
        let cost_row = ext.cost_row(j);
        let beta_row = ext.beta_row(j);
        let ids = edge_ids(arcs);
        let mut idx = live;
        for r in (0..routers.len()).rev() {
            let v = routers[r];
            let n = arc_len[r] as usize;
            idx -= n;
            let t_v = t_row[v.index()];
            let dv = d_row[v.index()];
            let mut tag = false;
            // Inherited tags: cheap boolean loads, early exit.
            for &l in &ids[idx..idx + n] {
                if tagged[heads[l as usize] as usize] {
                    tag = true;
                    break;
                }
            }
            if !tag && v == dummy {
                // Dummy rows mix edge kinds; per-arc scalar (identical
                // to the reference sweep).
                if t_v > traffic_floor {
                    for &l in &arcs[idx..idx + n] {
                        let head = ext.graph().target(l);
                        let dm = d_row[head.index()];
                        if dv <= dm {
                            let excess = cost.edge_marginal_view(ext, usage, j, l, dm) - dv;
                            if phi[l.index()] >= eta * excess / t_v {
                                tag = true;
                                break;
                            }
                        }
                    }
                }
            } else if !tag && t_v > traffic_floor {
                // Improper-link test, 4 exact lanes at a time: an arc
                // is sticky iff `dv <= dm && φ >= η·(m − dv)/t_v` with
                // `m = tail_partial·c + β·dm` — the scalar expression,
                // operation for operation.
                let tail_partial = cost.node_partial_view(ext, usage, v);
                let tp = _mm256_set1_pd(tail_partial);
                let dvv = _mm256_set1_pd(dv);
                let etav = _mm256_set1_pd(eta);
                let tvv = _mm256_set1_pd(t_v);
                let row = &ids[idx..idx + n];
                let mut i = 0usize;
                while i + 4 <= n {
                    // SAFETY: as in `router_marginal_avx2`.
                    let e = unsafe { _mm_loadu_si128(row.as_ptr().add(i).cast::<__m128i>()) };
                    let hd = unsafe { _mm_i32gather_epi32::<4>(heads.as_ptr().cast::<i32>(), e) };
                    let dm = unsafe { _mm256_i32gather_pd::<8>(d_row.as_ptr(), hd) };
                    let le = _mm256_cmp_pd::<_CMP_LE_OQ>(dvv, dm);
                    if _mm256_movemask_pd(le) != 0 {
                        let ph = unsafe { _mm256_i32gather_pd::<8>(phi.as_ptr(), e) };
                        let co = unsafe { _mm256_i32gather_pd::<8>(cost_row.as_ptr(), e) };
                        let be = unsafe { _mm256_i32gather_pd::<8>(beta_row.as_ptr(), e) };
                        let m = _mm256_add_pd(_mm256_mul_pd(tp, co), _mm256_mul_pd(be, dm));
                        let excess = _mm256_sub_pd(m, dvv);
                        let rhs = _mm256_div_pd(_mm256_mul_pd(etav, excess), tvv);
                        let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(ph, rhs);
                        if _mm256_movemask_pd(_mm256_and_pd(le, ge)) != 0 {
                            tag = true;
                            break;
                        }
                    }
                    i += 4;
                }
                if !tag {
                    while i < n {
                        let l = row[i] as usize;
                        let dm = d_row[heads[l] as usize];
                        if dv <= dm {
                            let excess = (tail_partial * cost_row[l] + beta_row[l] * dm) - dv;
                            if phi[l] >= eta * excess / t_v {
                                tag = true;
                                break;
                            }
                        }
                        i += 1;
                    }
                }
            }
            tagged[v.index()] = tag;
        }
        debug_assert_eq!(idx, 0, "live-arc prefix mismatch for {j}");
    }

    /// AVX2 flow sweep over a commodity's live arcs — **bit-identical**
    /// to [`crate::flows::flow_sweep_active`]: the three per-arc
    /// products are single IEEE multiplies per lane (exactly the scalar
    /// operations), and every store / read-modify-write runs scalar in
    /// arc order. The node-usage row is accumulated through a local
    /// running value, which performs the identical addition sequence.
    #[allow(clippy::too_many_arguments)] // a commodity's full sweep context
    #[target_feature(enable = "avx2")]
    pub(super) fn flow_sweep_avx2(
        ext: &ExtendedNetwork,
        phi: &[f64],
        j: CommodityId,
        t: &mut [f64],
        x: &mut [f64],
        f_edge: &mut [f64],
        f_node: &mut [f64],
        arc_len: &[u32],
        arcs: &[EdgeId],
        heads: &[u32],
    ) {
        debug_assert_eq!(heads.len(), ext.graph().edge_count());
        let cost_row = ext.cost_row(j);
        let beta_row = ext.beta_row(j);
        let ids = edge_ids(arcs);
        t[ext.dummy_source(j).index()] = ext.commodity(j).max_rate;
        let mut idx = 0usize;
        for (r, &v) in ext.commodity_routers_topo(j).iter().enumerate() {
            let n = arc_len[r] as usize;
            let row = &ids[idx..idx + n];
            idx += n;
            let tv = t[v.index()];
            if tv == 0.0 {
                continue;
            }
            let tvv = _mm256_set1_pd(tv);
            let mut fnode_acc = f_node[v.index()];
            let mut i = 0usize;
            while i + 4 <= n {
                // SAFETY: as in `router_marginal_avx2`; the stack
                // stores are to local arrays of matching size.
                let e = unsafe { _mm_loadu_si128(row.as_ptr().add(i).cast::<__m128i>()) };
                let ph = unsafe { _mm256_i32gather_pd::<8>(phi.as_ptr(), e) };
                let co = unsafe { _mm256_i32gather_pd::<8>(cost_row.as_ptr(), e) };
                let be = unsafe { _mm256_i32gather_pd::<8>(beta_row.as_ptr(), e) };
                let flow = _mm256_mul_pd(tvv, ph);
                let usage = _mm256_mul_pd(flow, co);
                let contrib = _mm256_mul_pd(flow, be);
                let mut fl = [0.0f64; 4];
                let mut us = [0.0f64; 4];
                let mut cb = [0.0f64; 4];
                unsafe {
                    _mm256_storeu_pd(fl.as_mut_ptr(), flow);
                    _mm256_storeu_pd(us.as_mut_ptr(), usage);
                    _mm256_storeu_pd(cb.as_mut_ptr(), contrib);
                }
                for k in 0..4 {
                    let l = row[i + k] as usize;
                    x[l] = fl[k];
                    f_edge[l] += us[k];
                    fnode_acc += us[k];
                    t[heads[l] as usize] += cb[k];
                }
                i += 4;
            }
            while i < n {
                let l = row[i] as usize;
                let flow = tv * phi[l];
                x[l] = flow;
                let usage = flow * cost_row[l];
                f_edge[l] += usage;
                fnode_acc += usage;
                t[heads[l] as usize] += flow * beta_row[l];
                i += 1;
            }
            f_node[v.index()] = fnode_acc;
        }
    }

    /// AVX2 scoped usage-totals reduction — **bit-identical** to
    /// [`crate::step::reduce_usage_totals_scoped`]: accumulator and
    /// partial values are gathered four at a time, added lane-wise (one
    /// IEEE add per element, as in the scalar loop), and stored scalar.
    /// Sound because each member edge/router appears exactly once per
    /// commodity, so the four indices of a quad are distinct.
    #[allow(clippy::too_many_arguments)] // a commodity's full sweep context
    #[target_feature(enable = "avx2")]
    pub(super) fn reduce_scoped_avx2(
        ext: &ExtendedNetwork,
        fe_tot: &mut [f64],
        fn_tot: &mut [f64],
        fe_part: &[f64],
        fn_part: &[f64],
        l_count: usize,
        v_count: usize,
        j_count: usize,
    ) {
        fe_tot.fill(0.0);
        fn_tot.fill(0.0);
        for ji in 0..j_count {
            let j = CommodityId::from_index(ji);
            let fe = &fe_part[ji * l_count..(ji + 1) * l_count];
            gather_add_scatter(fe_tot, fe, edge_ids(ext.commodity_edges(j)));
            let fnode = &fn_part[ji * v_count..(ji + 1) * v_count];
            // SAFETY (layout): NodeId is repr(transparent) over u32.
            let routers = unsafe {
                let rs = ext.commodity_routers(j);
                std::slice::from_raw_parts(rs.as_ptr().cast::<u32>(), rs.len())
            };
            gather_add_scatter(fn_tot, fnode, routers);
        }
    }

    /// Changed-index scan (bit-exact tier): compares usage bits against
    /// the cache four 64-bit lanes at a time and falls back to the
    /// scalar per-lane test only inside a quad with a mismatch, so the
    /// appended index set equals the scalar scan's exactly.
    #[target_feature(enable = "avx2")]
    pub(super) fn scan_changed_avx2(usages: &[f64], bits: &[u64], changed: &mut Vec<u32>) {
        let n = usages.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps both unaligned loads in
            // bounds; comparing f64 bit patterns as i64 lanes is exact.
            let eq = unsafe {
                let u = _mm256_loadu_si256(usages.as_ptr().add(i).cast::<__m256i>());
                let b = _mm256_loadu_si256(bits.as_ptr().add(i).cast::<__m256i>());
                _mm256_cmpeq_epi64(u, b)
            };
            if _mm256_movemask_pd(_mm256_castsi256_pd(eq)) != 0xF {
                for k in i..i + 4 {
                    if usages[k].to_bits() != bits[k] {
                        changed.push(k as u32);
                    }
                }
            }
            i += 4;
        }
        while i < n {
            if usages[i].to_bits() != bits[i] {
                changed.push(i as u32);
            }
            i += 1;
        }
    }

    /// Reassociated contiguous row sum (tolerance tier): four
    /// independent 4-lane accumulators hide the add latency, pairwise
    /// reduction at the end, scalar tail in index order.
    #[target_feature(enable = "avx2")]
    pub(super) fn sum_row_avx2(xs: &[f64]) -> f64 {
        let n = xs.len();
        let p = xs.as_ptr();
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: `i + 16 <= n` keeps every unaligned load in bounds.
            unsafe {
                a0 = _mm256_add_pd(a0, _mm256_loadu_pd(p.add(i)));
                a1 = _mm256_add_pd(a1, _mm256_loadu_pd(p.add(i + 4)));
                a2 = _mm256_add_pd(a2, _mm256_loadu_pd(p.add(i + 8)));
                a3 = _mm256_add_pd(a3, _mm256_loadu_pd(p.add(i + 12)));
            }
            i += 16;
        }
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps the unaligned load in bounds.
            unsafe { a0 = _mm256_add_pd(a0, _mm256_loadu_pd(p.add(i))) };
            i += 4;
        }
        let mut sum = hsum4(_mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)));
        while i < n {
            sum += xs[i];
            i += 1;
        }
        sum
    }

    /// `tot[i] += part[i]` for each index in `ids` (distinct within one
    /// call), 4 gathered lanes at a time with scalar stores.
    #[target_feature(enable = "avx2")]
    fn gather_add_scatter(tot: &mut [f64], part: &[f64], ids: &[u32]) {
        let n = ids.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: indices are member ids, in bounds for both
            // buffers; distinct within the call, so the gathered
            // accumulators cannot be stale.
            let idx = unsafe { _mm_loadu_si128(ids.as_ptr().add(i).cast::<__m128i>()) };
            let acc = unsafe { _mm256_i32gather_pd::<8>(tot.as_ptr(), idx) };
            let p = unsafe { _mm256_i32gather_pd::<8>(part.as_ptr(), idx) };
            let sum = _mm256_add_pd(acc, p);
            let mut s = [0.0f64; 4];
            unsafe { _mm256_storeu_pd(s.as_mut_ptr(), sum) };
            for k in 0..4 {
                tot[ids[i + k] as usize] = s[k];
            }
            i += 4;
        }
        while i < n {
            let id = ids[i] as usize;
            tot[id] += part[id];
            i += 1;
        }
    }
}

/// Micro-benchmark and self-check harness for the vectorized kernels,
/// driven by the bench crate's `simd_kernels` bin and the kernel
/// section of `bench_core`'s JSON report.
///
/// Given a warmed [`GradientAlgorithm`](crate::GradientAlgorithm), each
/// kernel is run standalone — scalar reference vs. the detected
/// backend — over identical cloned state, measuring per-pass wall time
/// and verifying the equivalence tier it claims: the tag, flow, and
/// totals-reduction kernels must match **bit-for-bit**, while the
/// marginal sweep, the Γ fill, and the total-cost row sum report
/// their maximum relative deviation (tolerance tier).
#[cfg(feature = "simd")]
pub mod kernel_bench {
    use super::{detect, detected_kernel, SimdBackend};
    use crate::active::rebuild_active_row;
    use crate::algorithm::GradientAlgorithm;
    use crate::step::{clear_tags_scoped, zero_flow_rows_scoped};
    use spn_graph::EdgeId;
    use spn_model::CommodityId;
    use std::time::Instant;

    /// One kernel's measured comparison between the scalar reference
    /// and the detected vectorized backend.
    #[derive(Clone, Copy, Debug)]
    pub struct KernelReport {
        /// Kernel name (`"tag"`, `"flow"`, `"reduce"`, `"marginal"`,
        /// `"gamma_fill"`, `"cost_sum"`).
        pub kernel: &'static str,
        /// Nanoseconds per full all-commodity pass, scalar reference.
        pub scalar_ns: f64,
        /// Nanoseconds per full all-commodity pass, detected backend.
        pub simd_ns: f64,
        /// `scalar_ns / simd_ns`.
        pub speedup: f64,
        /// Whether the two backends' outputs agreed bit-for-bit (the
        /// contract for `tag`/`flow`/`reduce`; informational for the
        /// tolerance-tier kernels).
        pub bit_identical: bool,
        /// Largest `|a − b| / max(|a|, |b|, 1)` over all outputs.
        pub max_rel_dev: f64,
    }

    /// The backend the reports compare against (`"avx2+fma"`, `"sse2"`,
    /// or `"scalar"` when the host has neither).
    #[must_use]
    pub fn backend_name() -> &'static str {
        detected_kernel()
    }

    fn time_ns(repeats: usize, inner: usize, mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            for _ in 0..inner.max(1) {
                f();
            }
            best = best.min(start.elapsed().as_nanos() as f64 / inner.max(1) as f64);
        }
        best
    }

    fn compare(a: &[f64], b: &[f64]) -> (bool, f64) {
        let mut bits = true;
        let mut dev = 0.0f64;
        for (&x, &y) in a.iter().zip(b) {
            bits &= x.to_bits() == y.to_bits();
            dev = dev.max((x - y).abs() / x.abs().max(y.abs()).max(1.0));
        }
        (bits, dev)
    }

    /// Runs every kernel standalone on `alg`'s current (ideally warmed
    /// and converged) state. `repeats`/`inner` control the best-of
    /// timing loop. The returned reports always include both backends'
    /// timings; on a host without SIMD support the "simd" lane is the
    /// scalar kernel again (speedup ≈ 1).
    #[must_use]
    #[allow(clippy::too_many_lines)] // six kernels, one harness each
    pub fn run(alg: &GradientAlgorithm, repeats: usize, inner: usize) -> Vec<KernelReport> {
        let backend = detect();
        let ext = alg.extended();
        let cost = alg.cost_model();
        let routing = alg.routing();
        let state = alg.flows();
        let marginals = alg.marginals();
        let cfg = alg.config();
        let j_count = ext.num_commodities();
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();

        // Live-arc rows and gather indices, rebuilt standalone so the
        // harness does not depend on the algorithm's private tracker.
        let router_stride = ext
            .commodity_ids()
            .map(|j| ext.commodity_routers_topo(j).len())
            .max()
            .unwrap_or(0);
        let arc_stride = ext
            .commodity_ids()
            .map(|j| ext.commodity_router_arc_total(j))
            .max()
            .unwrap_or(0);
        let mut arc_len = vec![0u32; j_count * router_stride];
        let mut arcs = vec![EdgeId::from_index(0); j_count * arc_stride];
        let mut live = vec![0usize; j_count];
        for ji in 0..j_count {
            let j = CommodityId::from_index(ji);
            live[ji] = rebuild_active_row(
                ext,
                j,
                routing.row(j),
                &mut arc_len[ji * router_stride..(ji + 1) * router_stride],
                &mut arcs[ji * arc_stride..(ji + 1) * arc_stride],
            );
        }
        let heads: Vec<u32> = (0..l_count)
            .map(|l| ext.graph().target(EdgeId::from_index(l)).index() as u32)
            .collect();
        let arc_row = |ji: usize| {
            (
                &arc_len[ji * router_stride..(ji + 1) * router_stride],
                &arcs[ji * arc_stride..(ji + 1) * arc_stride],
                live[ji],
            )
        };
        let usage = state.usage_view();
        let mut out = Vec::new();

        // Marginal sweep (tolerance tier). Idempotent given fixed
        // usage/φ: every router entry is recomputed sink-upward.
        {
            let run_into = |bk: SimdBackend, d: &mut [f64]| {
                for ji in 0..j_count {
                    let j = CommodityId::from_index(ji);
                    let (lens, row, lv) = arc_row(ji);
                    super::marginal_sweep_active(
                        bk,
                        ext,
                        cost,
                        routing.row(j),
                        usage,
                        j,
                        &mut d[ji * v_count..(ji + 1) * v_count],
                        lens,
                        row,
                        lv,
                        &heads,
                    );
                }
            };
            let mut d_s = marginals.d.clone();
            let mut d_v = marginals.d.clone();
            run_into(SimdBackend::Scalar, &mut d_s);
            run_into(backend, &mut d_v);
            let (bits, dev) = compare(&d_s, &d_v);
            let scalar_ns = time_ns(repeats, inner, || {
                run_into(SimdBackend::Scalar, &mut d_s);
            });
            let simd_ns = time_ns(repeats, inner, || run_into(backend, &mut d_v));
            out.push(KernelReport {
                kernel: "marginal",
                scalar_ns,
                simd_ns,
                speedup: scalar_ns / simd_ns,
                bit_identical: bits,
                max_rel_dev: dev,
            });
        }

        // Tag sweep (bit-identical tier).
        {
            let run_into = |bk: SimdBackend, tags: &mut [bool]| {
                for ji in 0..j_count {
                    let j = CommodityId::from_index(ji);
                    let row = &mut tags[ji * v_count..(ji + 1) * v_count];
                    clear_tags_scoped(ext, j, row);
                    let (lens, arcs_row, lv) = arc_row(ji);
                    super::tag_sweep_active(
                        bk,
                        ext,
                        cost,
                        routing.row(j),
                        state.t_row(j),
                        usage,
                        marginals.row(j),
                        cfg.eta,
                        cfg.traffic_floor,
                        j,
                        row,
                        lens,
                        arcs_row,
                        lv,
                        &heads,
                    );
                }
            };
            let mut tag_s = vec![false; j_count * v_count];
            let mut tag_v = vec![false; j_count * v_count];
            run_into(SimdBackend::Scalar, &mut tag_s);
            run_into(backend, &mut tag_v);
            let bits = tag_s == tag_v;
            let scalar_ns = time_ns(repeats, inner, || {
                run_into(SimdBackend::Scalar, &mut tag_s);
            });
            let simd_ns = time_ns(repeats, inner, || run_into(backend, &mut tag_v));
            out.push(KernelReport {
                kernel: "tag",
                scalar_ns,
                simd_ns,
                speedup: scalar_ns / simd_ns,
                bit_identical: bits,
                max_rel_dev: if bits { 0.0 } else { f64::INFINITY },
            });
        }

        // Flow sweep (bit-identical tier), with per-commodity partial
        // rows as in the sparse engine.
        {
            let run_into = |bk: SimdBackend,
                            t: &mut [f64],
                            x: &mut [f64],
                            fe: &mut [f64],
                            fnode: &mut [f64]| {
                for ji in 0..j_count {
                    let j = CommodityId::from_index(ji);
                    let t_row = &mut t[ji * v_count..(ji + 1) * v_count];
                    let x_row = &mut x[ji * l_count..(ji + 1) * l_count];
                    let fe_row = &mut fe[ji * l_count..(ji + 1) * l_count];
                    let fn_row = &mut fnode[ji * v_count..(ji + 1) * v_count];
                    zero_flow_rows_scoped(ext, j, t_row, x_row, fe_row, fn_row);
                    let (lens, arcs_row, _lv) = arc_row(ji);
                    super::flow_sweep_active(
                        bk,
                        ext,
                        routing.row(j),
                        j,
                        t_row,
                        x_row,
                        fe_row,
                        fn_row,
                        lens,
                        arcs_row,
                        &heads,
                    );
                }
            };
            let (mut t_s, mut x_s) = (vec![0.0; j_count * v_count], vec![0.0; j_count * l_count]);
            let (mut fe_s, mut fn_s) = (vec![0.0; j_count * l_count], vec![0.0; j_count * v_count]);
            let (mut t_v, mut x_v) = (t_s.clone(), x_s.clone());
            let (mut fe_v, mut fn_v) = (fe_s.clone(), fn_s.clone());
            run_into(
                SimdBackend::Scalar,
                &mut t_s,
                &mut x_s,
                &mut fe_s,
                &mut fn_s,
            );
            run_into(backend, &mut t_v, &mut x_v, &mut fe_v, &mut fn_v);
            let checks = [
                compare(&t_s, &t_v),
                compare(&x_s, &x_v),
                compare(&fe_s, &fe_v),
                compare(&fn_s, &fn_v),
            ];
            let bits = checks.iter().all(|c| c.0);
            let dev = checks.iter().fold(0.0f64, |m, c| m.max(c.1));
            let scalar_ns = time_ns(repeats, inner, || {
                run_into(
                    SimdBackend::Scalar,
                    &mut t_s,
                    &mut x_s,
                    &mut fe_s,
                    &mut fn_s,
                );
            });
            let simd_ns = time_ns(repeats, inner, || {
                run_into(backend, &mut t_v, &mut x_v, &mut fe_v, &mut fn_v);
            });
            out.push(KernelReport {
                kernel: "flow",
                scalar_ns,
                simd_ns,
                speedup: scalar_ns / simd_ns,
                bit_identical: bits,
                max_rel_dev: dev,
            });

            // Totals reduction (bit-identical tier) over the scalar
            // flow partials.
            let run_reduce = |bk: SimdBackend, fe_tot: &mut [f64], fn_tot: &mut [f64]| {
                super::reduce_usage_totals_scoped(
                    bk, ext, fe_tot, fn_tot, &fe_s, &fn_s, l_count, v_count, j_count,
                );
            };
            let (mut fet_s, mut fnt_s) = (vec![0.0; l_count], vec![0.0; v_count]);
            let (mut fet_v, mut fnt_v) = (vec![0.0; l_count], vec![0.0; v_count]);
            run_reduce(SimdBackend::Scalar, &mut fet_s, &mut fnt_s);
            run_reduce(backend, &mut fet_v, &mut fnt_v);
            let (b1, d1) = compare(&fet_s, &fet_v);
            let (b2, d2) = compare(&fnt_s, &fnt_v);
            let scalar_ns = time_ns(repeats, inner, || {
                run_reduce(SimdBackend::Scalar, &mut fet_s, &mut fnt_s);
            });
            let simd_ns = time_ns(repeats, inner, || {
                run_reduce(backend, &mut fet_v, &mut fnt_v);
            });
            out.push(KernelReport {
                kernel: "reduce",
                scalar_ns,
                simd_ns,
                speedup: scalar_ns / simd_ns,
                bit_identical: b1 && b2,
                max_rel_dev: d1.max(d2),
            });
        }

        // Γ fill (tolerance tier): the per-router marginal arrays the
        // routing update ranks links by.
        {
            let mut m_s: Vec<f64> = Vec::new();
            let mut m_v: Vec<f64> = Vec::new();
            let mut bits = true;
            let mut dev = 0.0f64;
            let mut scalar_pass =
                |ext2: &spn_transform::ExtendedNetwork, acc: Option<(&mut bool, &mut f64)>| {
                    let mut acc = acc;
                    for ji in 0..j_count {
                        let j = CommodityId::from_index(ji);
                        let dummy = ext2.dummy_source(j);
                        let d_row = marginals.row(j);
                        for &i in ext2.commodity_routers_topo(j) {
                            let edges = ext2.commodity_out_slice(j, i);
                            if i == dummy || edges.len() < 2 {
                                continue;
                            }
                            let tail_partial = cost.node_partial_view(ext2, usage, i);
                            m_s.clear();
                            for &l in edges {
                                let head = ext2.graph().target(l);
                                m_s.push(
                                    tail_partial * ext2.cost(j, l)
                                        + ext2.beta(j, l) * d_row[head.index()],
                                );
                            }
                            if let Some((bits, dev)) = acc.as_mut() {
                                m_v.clear();
                                let filled = super::fill_edge_marginals(
                                    backend,
                                    ext2.cost_row(j),
                                    ext2.beta_row(j),
                                    d_row,
                                    edges,
                                    tail_partial,
                                    &heads,
                                    &mut m_v,
                                );
                                if filled {
                                    let (b, d) = super::kernel_bench::compare(&m_s, &m_v);
                                    **bits &= b;
                                    **dev = dev.max(d);
                                }
                            }
                        }
                    }
                };
            scalar_pass(ext, Some((&mut bits, &mut dev)));
            let scalar_ns = time_ns(repeats, inner, || scalar_pass(ext, None));
            let mut vector_pass = || {
                for ji in 0..j_count {
                    let j = CommodityId::from_index(ji);
                    let dummy = ext.dummy_source(j);
                    let d_row = marginals.row(j);
                    for &i in ext.commodity_routers_topo(j) {
                        let edges = ext.commodity_out_slice(j, i);
                        if i == dummy || edges.len() < 2 {
                            continue;
                        }
                        let tail_partial = cost.node_partial_view(ext, usage, i);
                        super::fill_edge_marginals(
                            backend,
                            ext.cost_row(j),
                            ext.beta_row(j),
                            d_row,
                            edges,
                            tail_partial,
                            &heads,
                            &mut m_v,
                        );
                    }
                }
            };
            let simd_ns = time_ns(repeats, inner, &mut vector_pass);
            out.push(KernelReport {
                kernel: "gamma_fill",
                scalar_ns,
                simd_ns,
                speedup: scalar_ns / simd_ns,
                bit_identical: bits,
                max_rel_dev: dev,
            });
        }

        // Total-cost row sum (tolerance tier): the fold the
        // incremental `cost_before` cache reduces its per-node
        // penalty/wall value arrays with.
        {
            let vals: Vec<f64> = (0..v_count)
                .map(|v| {
                    let node = spn_graph::NodeId::from_index(v);
                    cost.penalty
                        .value(ext.capacity(node), state.node_usage(node))
                })
                .collect();
            let scalar: f64 = vals.iter().sum();
            let vector = super::sum_row(backend, &vals);
            let bits = scalar.to_bits() == vector.to_bits();
            let dev = (scalar - vector).abs() / scalar.abs().max(vector.abs()).max(1.0);
            let mut sink = 0.0f64;
            let scalar_ns = time_ns(repeats, inner, || {
                sink += vals.iter().sum::<f64>();
            });
            let simd_ns = time_ns(repeats, inner, || {
                sink += super::sum_row(backend, &vals);
            });
            std::hint::black_box(sink);
            out.push(KernelReport {
                kernel: "cost_sum",
                scalar_ns,
                simd_ns,
                speedup: scalar_ns / simd_ns,
                bit_identical: bits,
                max_rel_dev: dev,
            });
        }

        out
    }
}
