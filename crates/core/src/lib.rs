//! The paper's primary contribution: a **distributed gradient-based
//! algorithm for joint source admission control, data routing, and
//! resource allocation** in stream processing networks (§4–5 of Xia,
//! Towsley, Zhang — ICDCS 2007).
//!
//! The algorithm runs on the extended graph of
//! [`spn_transform::ExtendedNetwork`], where both resource types are
//! per-node constraints and admission control has become routing at the
//! dummy sources. Its state is a routing variable set
//! ([`routing::RoutingTable`]); each iteration
//!
//! 1. forecasts flows under the current decision ([`flows`], eqs. (3)–(5)),
//! 2. sweeps marginal costs upstream from the sinks ([`marginals`],
//!    eq. (9)) with loop-freedom tags piggybacked ([`blocked`],
//!    eq. (18)), and
//! 3. applies the routing update Γ ([`gamma`], eqs. (14)–(17)).
//!
//! [`GradientAlgorithm`] drives the loop and reports solutions in
//! problem terms (admitted rates, utility, physical loads);
//! [`metrics::ConvergenceTracker`] answers the evaluation's questions
//! (iterations to 95% of optimal, monotonicity).
//!
//! # Example
//!
//! ```
//! use spn_core::{GradientAlgorithm, GradientConfig};
//! use spn_model::random::RandomInstance;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let instance = RandomInstance::builder().nodes(15).commodities(2).seed(3).build()?;
//! let mut alg = GradientAlgorithm::new(
//!     &instance.problem,
//!     GradientConfig { eta: 0.2, ..GradientConfig::default() },
//! )?;
//! let report = alg.run(300);
//! assert!(report.utility > 0.0); // admission grew from zero
//! assert!(report.max_utilization <= 1.0 + 1e-9);
//! # Ok(())
//! # }
//! ```

mod active;
pub mod algorithm;
pub mod blocked;
pub mod checkpoint;
pub mod cost;
pub mod flows;
pub mod gamma;
pub mod health;
pub mod marginals;
pub mod metrics;
pub mod newton;
pub mod pool;
pub mod routing;
pub mod simd;
mod step;
pub mod workspace;

pub use algorithm::{
    ConfigError, GradientAlgorithm, GradientConfig, Report, StableOutcome, StepStats,
};
pub use checkpoint::Checkpoint;
pub use cost::{CostModel, TotalCostCache};
pub use flows::FlowState;
pub use health::{
    Action, CoreError, HealthReport, Incident, StateDomain, Watchdog, WatchdogConfig,
};
pub use marginals::Marginals;
pub use newton::NewtonGradient;
pub use pool::WorkerPool;
pub use routing::RoutingTable;
pub use simd::SimdPolicy;
pub use spn_transform::CommodityDef;
pub use workspace::IterationWorkspace;
