//! Reusable scratch buffers for the zero-allocation iteration core.
//!
//! [`GradientAlgorithm`](crate::GradientAlgorithm) owns one
//! [`IterationWorkspace`] and threads it through
//! [`compute_flows_into`](crate::flows::compute_flows_into) and
//! [`apply_gamma_ws`](crate::gamma::apply_gamma_ws) every step, so the
//! steady-state iteration performs no heap allocation: all
//! per-commodity partial rows and Γ scratch lanes live here and are
//! resized (a no-op once warm) rather than rebuilt.
//!
//! The same buffers carve the work into disjoint per-commodity rows,
//! which is what lets the flow/marginal/tag/Γ passes fan out over the
//! persistent [`WorkerPool`](crate::pool::WorkerPool) without locks —
//! each task owns its commodity's rows outright, and all
//! cross-commodity reductions happen afterwards in fixed commodity
//! order, keeping results bit-identical for every thread count
//! (ARCHITECTURE invariant 9).
//!
//! Γ statistics are accumulated per fixed-size *router chunk*
//! ([`GAMMA_CHUNK`] routers per slot) rather than per commodity, on the
//! serial path too: chunk boundaries depend only on the instance, so
//! the ordered chunk reduction yields bit-identical
//! [`GammaStats`](crate::gamma::GammaStats) whether a commodity was
//! swept by one task or split across many.

use spn_graph::EdgeId;
use spn_transform::ExtendedNetwork;

/// Number of routers whose Γ updates share one statistics slot (and one
/// unit of splittable work when a commodity is divided across workers).
pub(crate) const GAMMA_CHUNK: usize = 64;

/// Per-task scratch for one Γ row computation (eqs. (14)–(17)): the
/// per-out-edge marginals, blocked flags, and the staged new row.
/// Capacities are reserved for the instance-maximum out-degree by
/// [`IterationWorkspace::ensure`], so pushes never allocate in steady
/// state.
#[derive(Clone, Debug, Default)]
pub(crate) struct GammaLane {
    /// Per-link marginal `m_ik(j)` for each out-edge, in CSR order.
    pub(crate) m: Vec<f64>,
    /// Whether each out-edge is blocked (eq. (14)), in CSR order.
    pub(crate) blocked: Vec<bool>,
    /// The staged replacement row, `(edge, unnormalized fraction)`.
    pub(crate) row: Vec<(EdgeId, f64)>,
}

impl GammaLane {
    fn reserve(&mut self, degree: usize) {
        self.m.clear();
        self.m.reserve(degree);
        self.blocked.clear();
        self.blocked.reserve(degree);
        self.row.clear();
        self.row.reserve(degree);
    }
}

/// Mutable split-borrow of the workspace pieces the Γ pass and the
/// fused step need simultaneously.
pub(crate) struct WsParts<'a> {
    /// `[j·L + l]` per-commodity edge-usage partials.
    pub(crate) f_edge_part: &'a mut [f64],
    /// `[j·V + v]` per-commodity node-usage partials.
    pub(crate) f_node_part: &'a mut [f64],
    /// One Γ scratch lane per pool participant.
    pub(crate) lanes: &'a mut [GammaLane],
    /// One Γ statistics slot per router chunk.
    pub(crate) stats: &'a mut [(f64, f64, usize)],
    /// Cumulative chunk counts per commodity (`len == j_count + 1`).
    pub(crate) chunk_base: &'a [usize],
}

/// Preallocated scratch buffers reused across iterations.
///
/// Sized by [`IterationWorkspace::ensure`] for a particular
/// [`ExtendedNetwork`]; re-`ensure`-ing for a differently-sized network
/// resizes and clears everything, so a workspace can be shared across
/// problems without ever observing stale data. Re-`ensure`-ing for the
/// *same* shape is a cheap near-no-op — every pass that uses a buffer
/// resets it at the point of use (the flow pass zero-fills its partial
/// rows, the Γ pass clears each lane and stat slot before writing), so
/// `ensure` never touches warm buffers.
#[derive(Clone, Debug, Default)]
pub struct IterationWorkspace {
    /// `[j·L + l]` — commodity-`j` partial of the edge usage `f_ik`.
    pub(crate) f_edge_part: Vec<f64>,
    /// `[j·V + v]` — commodity-`j` partial of the node usage `f_i`.
    pub(crate) f_node_part: Vec<f64>,
    /// One Γ scratch lane per pool participant (serial paths use lane
    /// 0; there is always at least one).
    pub(crate) lanes: Vec<GammaLane>,
    /// Per-router-chunk Γ statistics `(max_shift, total_shift, rows)`,
    /// reduced in ascending global chunk order after each Γ pass.
    pub(crate) stats: Vec<(f64, f64, usize)>,
    /// `chunk_base[ji]` is the global index of commodity `ji`'s first
    /// router chunk; `chunk_base[j_count]` is the total chunk count.
    pub(crate) chunk_base: Vec<usize>,
    /// Pool participants the lanes are sized for (≥ 1 once ensured).
    workers: usize,
    /// Shape `(j_count, v_count, l_count, max_degree, workers)` the
    /// buffers are currently sized for — the fast-path key of `ensure`.
    sized_for: Option<(usize, usize, usize, usize, usize)>,
}

impl IterationWorkspace {
    /// A workspace sized (and zeroed) for `ext`.
    #[must_use]
    pub fn new(ext: &ExtendedNetwork) -> Self {
        let mut ws = IterationWorkspace::default();
        ws.ensure(ext);
        ws
    }

    /// Resizes and clears every buffer for `ext`, preserving the
    /// participant count of the previous [`ensure_workers`] call.
    /// Allocation-free once the workspace has seen a network at least
    /// this large (steady state calls this twice per iteration).
    ///
    /// [`ensure_workers`]: IterationWorkspace::ensure_workers
    pub fn ensure(&mut self, ext: &ExtendedNetwork) {
        self.ensure_workers(ext, self.workers.max(1));
    }

    /// Whether the buffers are already sized for `ext` with `workers`
    /// participants — i.e. whether [`ensure_workers`] would take its
    /// fast path and leave the persistent usage partials untouched. The
    /// active-set engine checks this before a step: a miss (first use,
    /// network resize, worker-count change) re-zeroes the partial rows,
    /// so every skip that relies on them must be invalidated.
    ///
    /// [`ensure_workers`]: IterationWorkspace::ensure_workers
    pub(crate) fn sized_for_workers(&self, ext: &ExtendedNetwork, workers: usize) -> bool {
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        let workers = workers.max(1);
        let max_degree = ext
            .commodity_ids()
            .map(|j| ext.max_out_degree(j))
            .max()
            .unwrap_or(0);
        self.sized_for == Some((j_count, v_count, l_count, max_degree, workers))
    }

    /// As [`ensure`](IterationWorkspace::ensure), but also sizes the Γ
    /// lanes for `workers` pool participants.
    pub(crate) fn ensure_workers(&mut self, ext: &ExtendedNetwork, workers: usize) {
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        let workers = workers.max(1);
        let max_degree = ext
            .commodity_ids()
            .map(|j| ext.max_out_degree(j))
            .max()
            .unwrap_or(0);
        // The chunk layout depends on per-commodity router counts,
        // which the shape key below cannot capture, so recompute it on
        // every call (allocation-free once warm, O(j_count)).
        self.chunk_base.clear();
        self.chunk_base.reserve(j_count + 1);
        self.chunk_base.push(0);
        let mut total_chunks = 0usize;
        for j in ext.commodity_ids() {
            total_chunks += ext.commodity_routers(j).len().div_ceil(GAMMA_CHUNK);
            self.chunk_base.push(total_chunks);
        }
        if self.stats.len() != total_chunks {
            self.stats.clear();
            self.stats.resize(total_chunks, (0.0, 0.0, 0));
        }
        let shape = (j_count, v_count, l_count, max_degree, workers);
        if self.sized_for == Some(shape) {
            return;
        }
        self.f_edge_part.clear();
        self.f_edge_part.resize(j_count * l_count, 0.0);
        self.f_node_part.clear();
        self.f_node_part.resize(j_count * v_count, 0.0);
        if self.lanes.len() != workers {
            self.lanes.resize_with(workers, GammaLane::default);
        }
        for lane in &mut self.lanes {
            lane.reserve(max_degree);
        }
        self.workers = workers;
        self.sized_for = Some(shape);
    }

    /// Splits the workspace into the disjoint pieces a Γ pass (or the
    /// fused step) borrows simultaneously. Call after
    /// [`ensure`](IterationWorkspace::ensure).
    pub(crate) fn parts(&mut self) -> WsParts<'_> {
        WsParts {
            f_edge_part: &mut self.f_edge_part,
            f_node_part: &mut self.f_node_part,
            lanes: &mut self.lanes,
            stats: &mut self.stats,
            chunk_base: &self.chunk_base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::random::RandomInstance;

    #[test]
    fn ensure_is_idempotent_and_resizes() {
        let small = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(10)
                .commodities(2)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let large = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(30)
                .commodities(4)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let mut ws = IterationWorkspace::new(&small);
        ws.f_edge_part.fill(7.0); // poison
        ws.ensure(&large);
        assert_eq!(
            ws.f_edge_part.len(),
            large.num_commodities() * large.graph().edge_count()
        );
        assert!(
            ws.f_edge_part.iter().all(|&x| x == 0.0),
            "stale data survived ensure"
        );
        ws.ensure(&small);
        assert!(ws.f_node_part.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ensure_same_shape_is_a_no_op() {
        let ext = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(10)
                .commodities(2)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let mut ws = IterationWorkspace::new(&ext);
        ws.f_edge_part.fill(7.0);
        ws.ensure(&ext);
        // same shape: buffers untouched (each pass resets what it uses)
        assert!(
            ws.f_edge_part.iter().all(|&x| x == 7.0),
            "fast path rewrote a warm buffer"
        );
    }

    #[test]
    fn lanes_track_worker_count_not_commodities() {
        let ext = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(30)
                .commodities(4)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let mut ws = IterationWorkspace::new(&ext);
        assert_eq!(ws.lanes.len(), 1, "default workspace is single-lane");
        ws.ensure_workers(&ext, 3);
        assert_eq!(ws.lanes.len(), 3);
        // plain ensure preserves the participant count
        ws.ensure(&ext);
        assert_eq!(ws.lanes.len(), 3);
    }

    #[test]
    fn chunk_base_is_cumulative_and_covers_all_routers() {
        let ext = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(30)
                .commodities(4)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let ws = IterationWorkspace::new(&ext);
        let j_count = ext.num_commodities();
        assert_eq!(ws.chunk_base.len(), j_count + 1);
        assert_eq!(ws.chunk_base[0], 0);
        for (ji, j) in ext.commodity_ids().enumerate() {
            let chunks = ws.chunk_base[ji + 1] - ws.chunk_base[ji];
            assert_eq!(chunks, ext.commodity_routers(j).len().div_ceil(GAMMA_CHUNK));
        }
        assert_eq!(ws.stats.len(), ws.chunk_base[j_count]);
    }
}
