//! Reusable scratch buffers and the scoped-thread fan-out for the
//! zero-allocation iteration core.
//!
//! [`GradientAlgorithm`](crate::GradientAlgorithm) owns one
//! [`IterationWorkspace`] and threads it through
//! [`compute_flows_into`](crate::flows::compute_flows_into) and
//! [`apply_gamma_ws`](crate::gamma::apply_gamma_ws) every step, so the
//! steady-state iteration performs no heap allocation: all
//! per-commodity partial rows and Γ scratch lanes live here and are
//! resized (a no-op once warm) rather than rebuilt.
//!
//! The same buffers carve the work into disjoint per-commodity rows,
//! which is what lets the flow/marginal/tag/Γ passes fan out over
//! [`std::thread::scope`] without locks — each worker owns its
//! commodity's rows outright, and all cross-commodity reductions happen
//! afterwards on the calling thread in fixed commodity order, keeping
//! results bit-identical for every thread count (ARCHITECTURE
//! invariant 9).

use spn_graph::EdgeId;
use spn_transform::ExtendedNetwork;

/// Per-commodity scratch for one Γ row computation (eqs. (14)–(17)):
/// the per-out-edge marginals, blocked flags, and the staged new row.
/// Capacities are reserved for the commodity-maximum out-degree by
/// [`IterationWorkspace::ensure`], so pushes never allocate in steady
/// state.
#[derive(Clone, Debug, Default)]
pub(crate) struct GammaLane {
    /// Per-link marginal `m_ik(j)` for each out-edge, in CSR order.
    pub(crate) m: Vec<f64>,
    /// Whether each out-edge is blocked (eq. (14)), in CSR order.
    pub(crate) blocked: Vec<bool>,
    /// The staged replacement row, `(edge, unnormalized fraction)`.
    pub(crate) row: Vec<(EdgeId, f64)>,
}

impl GammaLane {
    fn reserve(&mut self, degree: usize) {
        self.m.clear();
        self.m.reserve(degree);
        self.blocked.clear();
        self.blocked.reserve(degree);
        self.row.clear();
        self.row.reserve(degree);
    }
}

/// Preallocated scratch buffers reused across iterations.
///
/// Sized by [`IterationWorkspace::ensure`] for a particular
/// [`ExtendedNetwork`]; re-`ensure`-ing for a differently-sized network
/// resizes and clears everything, so a workspace can be shared across
/// problems without ever observing stale data. Re-`ensure`-ing for the
/// *same* shape is a constant-time no-op — every pass that uses a buffer
/// resets it at the point of use (the flow pass zero-fills its partial
/// rows, the Γ pass clears each lane and stat slot before writing), so
/// `ensure` never needs to touch warm buffers.
#[derive(Clone, Debug, Default)]
pub struct IterationWorkspace {
    /// `[j·L + l]` — commodity-`j` partial of the edge usage `f_ik`.
    pub(crate) f_edge_part: Vec<f64>,
    /// `[j·V + v]` — commodity-`j` partial of the node usage `f_i`.
    pub(crate) f_node_part: Vec<f64>,
    /// One Γ scratch lane per commodity (workers get one each).
    pub(crate) lanes: Vec<GammaLane>,
    /// Per-commodity Γ statistics `(max_shift, total_shift, rows)`,
    /// reduced in ascending commodity order after the fan-out.
    pub(crate) stats: Vec<(f64, f64, usize)>,
    /// Shape `(j_count, v_count, l_count, max_degree)` the buffers are
    /// currently sized for — the fast-path key of `ensure`.
    sized_for: Option<(usize, usize, usize, usize)>,
}

impl IterationWorkspace {
    /// A workspace sized (and zeroed) for `ext`.
    #[must_use]
    pub fn new(ext: &ExtendedNetwork) -> Self {
        let mut ws = IterationWorkspace::default();
        ws.ensure(ext);
        ws
    }

    /// Resizes and clears every buffer for `ext`. Allocation-free once
    /// the workspace has seen a network at least this large, and a
    /// constant-time no-op when the shape matches the previous call
    /// (steady state calls this twice per iteration).
    pub fn ensure(&mut self, ext: &ExtendedNetwork) {
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        let max_degree = ext
            .commodity_ids()
            .map(|j| ext.max_out_degree(j))
            .max()
            .unwrap_or(0);
        let shape = (j_count, v_count, l_count, max_degree);
        if self.sized_for == Some(shape) {
            return;
        }
        self.f_edge_part.clear();
        self.f_edge_part.resize(j_count * l_count, 0.0);
        self.f_node_part.clear();
        self.f_node_part.resize(j_count * v_count, 0.0);
        if self.lanes.len() != j_count {
            self.lanes.resize_with(j_count, GammaLane::default);
        }
        for lane in &mut self.lanes {
            lane.reserve(max_degree);
        }
        self.stats.clear();
        self.stats.resize(j_count, (0.0, 0.0, 0));
        self.sized_for = Some(shape);
    }
}

/// Runs `tasks` (one per commodity, already holding disjoint `&mut`
/// rows) across `threads` scoped workers in contiguous chunks.
///
/// Only reached when `threads > 1`; the serial paths never call this,
/// so the zero-allocation guarantee of the single-threaded step is
/// unaffected by the spawn/chunk allocations here. Output order never
/// matters: tasks write disjoint buffers and every reduction runs
/// afterwards on the caller in fixed commodity order.
pub(crate) fn run_commodity_tasks<T, F>(threads: usize, mut tasks: Vec<T>, work: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let workers = threads.min(n).max(1);
    let chunk_size = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let work = &work;
        while !tasks.is_empty() {
            let tail = tasks.split_off(chunk_size.min(tasks.len()));
            let chunk = std::mem::replace(&mut tasks, tail);
            scope.spawn(move || {
                for task in chunk {
                    work(task);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::random::RandomInstance;

    #[test]
    fn ensure_is_idempotent_and_resizes() {
        let small = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(10)
                .commodities(2)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let large = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(30)
                .commodities(4)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let mut ws = IterationWorkspace::new(&small);
        ws.f_edge_part.fill(7.0); // poison
        ws.ensure(&large);
        assert_eq!(
            ws.f_edge_part.len(),
            large.num_commodities() * large.graph().edge_count()
        );
        assert!(
            ws.f_edge_part.iter().all(|&x| x == 0.0),
            "stale data survived ensure"
        );
        assert_eq!(ws.lanes.len(), large.num_commodities());
        ws.ensure(&small);
        assert_eq!(ws.lanes.len(), small.num_commodities());
        assert!(ws.f_node_part.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ensure_same_shape_is_a_no_op() {
        let ext = ExtendedNetwork::build(
            &RandomInstance::builder()
                .nodes(10)
                .commodities(2)
                .seed(3)
                .build()
                .unwrap()
                .problem,
        );
        let mut ws = IterationWorkspace::new(&ext);
        ws.f_edge_part.fill(7.0);
        ws.ensure(&ext);
        // same shape: buffers untouched (each pass resets what it uses)
        assert!(
            ws.f_edge_part.iter().all(|&x| x == 7.0),
            "fast path rewrote a warm buffer"
        );
    }

    #[test]
    fn run_commodity_tasks_covers_every_task() {
        let mut hits = [0u8; 13];
        let tasks: Vec<(usize, &mut u8)> = hits.iter_mut().enumerate().collect();
        run_commodity_tasks(4, tasks, |(i, slot)| {
            *slot = u8::try_from(i % 251).unwrap() + 1;
        });
        for (i, &h) in hits.iter().enumerate() {
            assert_eq!(
                h,
                u8::try_from(i).unwrap() + 1,
                "task {i} not run exactly once"
            );
        }
    }
}
