//! The routing update Γ (§5, eqs. (14)–(17)).
//!
//! Each iteration, every node `i` and destination `j` shifts routing
//! mass away from links whose marginal cost
//! `a_ik(j) = m_ik(j) − min_m m_im(j)` exceeds the best link's, by
//!
//! ```text
//! Δ_ik(j) = min( φ_ik(j), η·a_ik(j) / t_i(j) )        (16)
//! ```
//!
//! and adds the collected mass to the best link (eq. (17)). Blocked
//! links (eq. (14)) keep `φ = 0`. The reduction is inversely
//! proportional to `t_i(j)` because the induced link-traffic change is
//! `Δ_ik(j)·t_i(j)`; when `t_i(j) = 0` the fraction can move freely, so
//! (following Gallager's convention) the node routes everything to the
//! current best link.
//!
//! All entry points share one row computation ([`gamma_row_into`],
//! private) so their numerics are identical: [`apply_gamma_ws`] is the
//! zero-allocation, optionally-parallel path driven by
//! [`GradientAlgorithm`](crate::GradientAlgorithm);
//! [`apply_gamma_selective`] is the serial path the message-level
//! simulator schedules partial updates through; [`gamma_row`] exposes a
//! single row for inspection. A commodity only ever reads and writes
//! its own fraction row, so the per-commodity updates are independent
//! and `apply_gamma_ws` produces bit-identical tables for every thread
//! count (Γ statistics are likewise accumulated per commodity and
//! reduced in ascending commodity order).

use crate::blocked::BlockedTags;
use crate::cost::CostModel;
use crate::flows::FlowState;
use crate::marginals::Marginals;
use crate::routing::{apply_row, RoutingTable};
use crate::workspace::{run_commodity_tasks, GammaLane, IterationWorkspace};
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Outcome statistics of one Γ application.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GammaStats {
    /// Largest single fraction shift `Δ_ik(j)` applied.
    pub max_shift: f64,
    /// Total mass moved across all nodes and commodities.
    pub total_shift: f64,
    /// Number of (node, commodity) rows updated.
    pub rows: usize,
}

/// Computes the new routing row for one `(commodity, router)` pair into
/// `lane.row` (unapplied) and returns `(max_shift, total_shift)`.
///
/// `phi` is the commodity-`j` fraction row — the only part of the
/// routing table Γ reads, which is what makes the per-commodity updates
/// thread-independent. The single numeric source of truth for every Γ
/// entry point.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
fn gamma_row_into(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    phi: &[f64],
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_floor: f64,
    shift_cap: f64,
    j: CommodityId,
    i: NodeId,
    lane: &mut GammaLane,
) -> (f64, f64) {
    let edges = ext.commodity_out_slice(j, i);
    debug_assert!(!edges.is_empty(), "gamma_row called on a non-router");
    lane.row.clear();
    if edges.len() == 1 {
        lane.row.push((edges[0], 1.0));
        return (0.0, 0.0);
    }

    lane.m.clear();
    lane.blocked.clear();
    for &l in edges {
        lane.m.push(marginals.edge(ext, cost, state, j, l));
        // eq. (14): blocked ⇔ φ = 0 and the head's broadcast was tagged
        lane.blocked
            .push(phi[l.index()] == 0.0 && tags.is_tagged(j, ext.graph().target(l)));
    }

    // Best (minimum-marginal) unblocked link; k(i, j) in the paper.
    // At least one link is unblocked: blocked links have φ = 0 and the
    // row sums to one.
    let best = (0..edges.len())
        .filter(|&idx| !lane.blocked[idx])
        .min_by(|&a, &b| lane.m[a].total_cmp(&lane.m[b]))
        .expect("at least one unblocked out-edge");

    // Gallager's convention routes everything to the best link when
    // t_i(j) = 0 (the fraction is then free to move without changing
    // any link traffic). Taken literally this is violently unstable in
    // capacitated networks: an idle low-capacity path advertises a tiny
    // marginal, the instant full reroute floods it, and the barrier
    // explosion then crashes admission. We instead rate-limit the
    // opening by flooring the divisor at `opening_floor` (a small
    // fraction of λ_j, see GradientConfig::opening_fraction); with a
    // floor of zero the literal snap behaviour is restored.
    let t_raw = state.traffic(j, i);
    let t_i = t_raw.max(opening_floor);
    if t_i <= traffic_floor {
        // No traffic and no floor: route everything to the best link.
        let old_best = phi[edges[best].index()];
        let shift = 1.0 - old_best;
        for (idx, &l) in edges.iter().enumerate() {
            lane.row.push((l, if idx == best { 1.0 } else { 0.0 }));
        }
        return (shift, shift);
    }

    let m_min = lane.m[best];
    let mut collected = 0.0;
    let mut max_shift: f64 = 0.0;
    for (idx, &l) in edges.iter().enumerate() {
        if idx == best {
            continue;
        }
        if lane.blocked[idx] {
            lane.row.push((l, 0.0)); // eq. (14)
            continue;
        }
        let f = phi[l.index()];
        let a = (lane.m[idx] - m_min).max(0.0);
        // eq. (16), with the per-iteration movement additionally capped
        // at `shift_cap`: near a barrier the marginal excess `a` is
        // unbounded, and an uncapped Δ saturates at φ — a one-step full
        // reroute that floods the alternative path and oscillates.
        let delta = f.min(eta * a / t_i).min(shift_cap);
        collected += delta;
        max_shift = max_shift.max(delta);
        lane.row.push((l, f - delta)); // eq. (17), k ≠ k(i,j)
    }
    lane.row
        .push((edges[best], phi[edges[best].index()] + collected));
    (max_shift, collected)
}

/// Computes the new routing row for one `(commodity, router)` pair
/// without applying it. Returns `(new_row, max_shift, total_shift)`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
#[must_use]
pub fn gamma_row(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_floor: f64,
    shift_cap: f64,
    j: CommodityId,
    i: NodeId,
) -> (Vec<(EdgeId, f64)>, f64, f64) {
    let mut lane = GammaLane::default();
    let (max_shift, total) = gamma_row_into(
        ext,
        cost,
        routing.row(j),
        state,
        marginals,
        tags,
        eta,
        traffic_floor,
        opening_floor,
        shift_cap,
        j,
        i,
        &mut lane,
    );
    (lane.row, max_shift, total)
}

/// One commodity's full Γ pass over its routers, applied in place to
/// its fraction row. Statistics land in `stat` (`max_shift`,
/// `total_shift`, `rows`) for the caller's ordered reduction.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
fn gamma_commodity(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    j: CommodityId,
    phi: &mut [f64],
    lane: &mut GammaLane,
    stat: &mut (f64, f64, usize),
) {
    *stat = (0.0, 0.0, 0);
    let opening_floor = opening_fraction * ext.commodity(j).max_rate;
    for &i in ext.commodity_routers(j) {
        let (max_shift, total) = gamma_row_into(
            ext,
            cost,
            phi,
            state,
            marginals,
            tags,
            eta,
            traffic_floor,
            opening_floor,
            shift_cap,
            j,
            i,
            lane,
        );
        apply_row(phi, ext, j, i, &lane.row);
        stat.0 = stat.0.max(max_shift);
        stat.1 += total;
        stat.2 += 1;
    }
}

/// Applies Γ to every `(commodity, router)` pair through the reusable
/// workspace: no heap allocation at `threads == 1`, per-commodity
/// fan-out over scoped threads at `threads > 1`, identical routing
/// tables either way. All rows are computed against the *pre-update*
/// marginals and flows, matching the synchronous protocol of §5.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn apply_gamma_ws(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &mut RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    ws: &mut IterationWorkspace,
    threads: usize,
) -> GammaStats {
    ws.ensure(ext);
    let j_count = ext.num_commodities();
    {
        let rows = routing.rows_mut();
        let items = rows
            .iter_mut()
            .zip(&mut ws.lanes)
            .zip(&mut ws.stats)
            .enumerate();
        if threads <= 1 || j_count <= 1 {
            for (ji, ((phi, lane), stat)) in items {
                gamma_commodity(
                    ext,
                    cost,
                    state,
                    marginals,
                    tags,
                    eta,
                    traffic_floor,
                    opening_fraction,
                    shift_cap,
                    CommodityId::from_index(ji),
                    phi,
                    lane,
                    stat,
                );
            }
        } else {
            let tasks: Vec<_> = items
                .map(|(ji, ((phi, lane), stat))| (ji, phi, lane, stat))
                .collect();
            run_commodity_tasks(threads, tasks, |(ji, phi, lane, stat)| {
                gamma_commodity(
                    ext,
                    cost,
                    state,
                    marginals,
                    tags,
                    eta,
                    traffic_floor,
                    opening_fraction,
                    shift_cap,
                    CommodityId::from_index(ji),
                    phi,
                    lane,
                    stat,
                );
            });
        }
    }
    let mut stats = GammaStats::default();
    for &(max_shift, total, rows) in &ws.stats {
        stats.max_shift = stats.max_shift.max(max_shift);
        stats.total_shift += total;
        stats.rows += rows;
    }
    stats
}

/// Applies Γ to every `(commodity, router)` pair, mutating `routing` in
/// place. All rows are computed against the *pre-update* marginals and
/// flows, matching the synchronous protocol of §5.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn apply_gamma(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &mut RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
) -> GammaStats {
    apply_gamma_selective(
        ext,
        cost,
        routing,
        state,
        marginals,
        tags,
        eta,
        traffic_floor,
        opening_fraction,
        shift_cap,
        |_, _| true,
    )
}

/// Like [`apply_gamma`] but only the `(commodity, router)` pairs
/// accepted by `participates` update their rows; everyone else keeps
/// their previous decision.
///
/// This models *asynchronous* operation, where an iteration's update
/// round reaches only part of the network (nodes busy, messages
/// delayed). The `spn-sim` crate builds its partial-participation
/// schedules on top of this.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn apply_gamma_selective<F>(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &mut RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    mut participates: F,
) -> GammaStats
where
    F: FnMut(CommodityId, NodeId) -> bool,
{
    let mut stats = GammaStats::default();
    let mut lane = GammaLane::default();
    for j in ext.commodity_ids() {
        let opening_floor = opening_fraction * ext.commodity(j).max_rate;
        for &i in ext.commodity_routers(j) {
            if !participates(j, i) {
                continue;
            }
            let (max_shift, total) = gamma_row_into(
                ext,
                cost,
                routing.row(j),
                state,
                marginals,
                tags,
                eta,
                traffic_floor,
                opening_floor,
                shift_cap,
                j,
                i,
                &mut lane,
            );
            routing.set_row(ext, j, i, &lane.row);
            stats.max_shift = stats.max_shift.max(max_shift);
            stats.total_shift += total;
            stats.rows += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::compute_flows;
    use crate::marginals::compute_marginals;
    use spn_model::builder::ProblemBuilder;
    use spn_model::{Penalty, UtilityFn};

    fn cm() -> CostModel {
        CostModel::new(Penalty::default(), 0.2)
    }

    /// Diamond where the y-path is much cheaper than the x-path.
    fn lopsided() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(3.0); // tiny capacity ⇒ expensive path
        let y = b.server(100.0);
        let t = b.server(100.0);
        let e_sx = b.link(s, x, 50.0);
        let e_sy = b.link(s, y, 50.0);
        let e_xt = b.link(x, t, 50.0);
        let e_yt = b.link(y, t, 50.0);
        let j = b.commodity(s, t, 10.0, UtilityFn::throughput());
        b.uses(j, e_sx, 1.0, 1.0)
            .uses(j, e_sy, 1.0, 1.0)
            .uses(j, e_xt, 1.0, 1.0)
            .uses(j, e_yt, 1.0, 1.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    fn mid_admission(ext: &ExtendedNetwork) -> RoutingTable {
        let j = CommodityId::from_index(0);
        let mut rt = RoutingTable::initial(ext);
        rt.set_row(
            ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 0.3), (ext.difference_edge(j), 0.7)],
        );
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        rt.set_row(ext, j, s, &[(outs[0], 0.5), (outs[1], 0.5)]);
        rt
    }

    #[test]
    fn gamma_moves_mass_toward_cheaper_link() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let mut rt = mid_admission(&ext);
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        let before_y = rt.fraction(j, outs[1]);
        apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 0.5, 1e-12, 0.0, 1.0);
        rt.validate(&ext).unwrap();
        // the y-path (outs[1], through the big server) should gain mass
        assert!(
            rt.fraction(j, outs[1]) > before_y,
            "expected mass to shift toward the cheap path"
        );
    }

    #[test]
    fn gamma_never_increases_cost_for_small_eta() {
        let ext = lopsided();
        let mut rt = mid_admission(&ext);
        let cost = cm();
        for _ in 0..20 {
            let fs = compute_flows(&ext, &rt);
            let before = cost.total_cost(&ext, &fs);
            let m = compute_marginals(&ext, &cost, &rt, &fs);
            let tags = BlockedTags::none(&ext);
            apply_gamma(&ext, &cost, &mut rt, &fs, &m, &tags, 0.005, 1e-12, 0.0, 1.0);
            let fs2 = compute_flows(&ext, &rt);
            let after = cost.total_cost(&ext, &fs2);
            assert!(
                after <= before + 1e-9,
                "cost increased with tiny eta: {before} -> {after}"
            );
        }
    }

    #[test]
    fn zero_traffic_routes_all_to_best() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let mut rt = RoutingTable::initial(&ext); // zero interior traffic
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 0.04, 1e-12, 0.0, 1.0);
        rt.validate(&ext).unwrap();
        let s = ext.commodity(j).source();
        let fractions: Vec<f64> = ext
            .commodity_out_edges(j, s)
            .map(|l| rt.fraction(j, l))
            .collect();
        // all-or-nothing at the unloaded source
        assert!(fractions.iter().any(|&f| (f - 1.0).abs() < 1e-12));
        assert_eq!(fractions.iter().filter(|&&f| f > 0.0).count(), 1);
    }

    #[test]
    fn single_out_edge_is_identity() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let rt = mid_admission(&ext);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        // bandwidth nodes have exactly one commodity out-edge
        let bw = spn_graph::NodeId::from_index(4); // first bandwidth node
        let (row, max_s, tot) = gamma_row(
            &ext,
            &cm(),
            &rt,
            &fs,
            &m,
            &tags,
            0.04,
            1e-12,
            0.0,
            1.0,
            j,
            bw,
        );
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].1, 1.0);
        assert_eq!(max_s, 0.0);
        assert_eq!(tot, 0.0);
    }

    #[test]
    fn blocked_links_stay_closed() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let mut rt = mid_admission(&ext);
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        // close outs[1], then block its head
        rt.set_row(&ext, j, s, &[(outs[0], 1.0), (outs[1], 0.0)]);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        // hand-tag the head of outs[1]
        let head = ext.graph().target(outs[1]);
        let mut raw = vec![vec![false; ext.graph().node_count()]; ext.num_commodities()];
        raw[j.index()][head.index()] = true;
        let tags = BlockedTags::from_raw(raw);
        apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 10.0, 1e-12, 0.0, 1.0);
        assert_eq!(rt.fraction(j, outs[1]), 0.0, "blocked link reopened");
        rt.validate(&ext).unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let ext = lopsided();
        let mut rt = mid_admission(&ext);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        let stats = apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 0.5, 1e-12, 0.0, 1.0);
        assert!(stats.rows > 0);
        assert!(stats.total_shift > 0.0);
        assert!(stats.max_shift > 0.0);
        assert!(stats.max_shift <= stats.total_shift + 1e-15);
    }

    #[test]
    fn ws_path_matches_selective_bitwise() {
        let ext = lopsided();
        let fs_rt = mid_admission(&ext);
        let fs = compute_flows(&ext, &fs_rt);
        let m = compute_marginals(&ext, &cm(), &fs_rt, &fs);
        let tags = BlockedTags::none(&ext);
        let mut reference = fs_rt.clone();
        apply_gamma(
            &ext,
            &cm(),
            &mut reference,
            &fs,
            &m,
            &tags,
            0.5,
            1e-12,
            0.05,
            0.02,
        );
        let mut ws = IterationWorkspace::new(&ext);
        for threads in [1, 4] {
            let mut rt = fs_rt.clone();
            apply_gamma_ws(
                &ext,
                &cm(),
                &mut rt,
                &fs,
                &m,
                &tags,
                0.5,
                1e-12,
                0.05,
                0.02,
                &mut ws,
                threads,
            );
            assert_eq!(rt, reference, "ws path diverged at threads={threads}");
        }
    }
}
