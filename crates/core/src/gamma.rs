//! The routing update Γ (§5, eqs. (14)–(17)).
//!
//! Each iteration, every node `i` and destination `j` shifts routing
//! mass away from links whose marginal cost
//! `a_ik(j) = m_ik(j) − min_m m_im(j)` exceeds the best link's, by
//!
//! ```text
//! Δ_ik(j) = min( φ_ik(j), η·a_ik(j) / t_i(j) )        (16)
//! ```
//!
//! and adds the collected mass to the best link (eq. (17)). Blocked
//! links (eq. (14)) keep `φ = 0`. The reduction is inversely
//! proportional to `t_i(j)` because the induced link-traffic change is
//! `Δ_ik(j)·t_i(j)`; when `t_i(j) = 0` the fraction can move freely, so
//! (following Gallager's convention) the node routes everything to the
//! current best link.
//!
//! All entry points share one row computation ([`gamma_row_into`],
//! private) so their numerics are identical: [`apply_gamma_ws`] is the
//! zero-allocation, optionally-pooled path driven by
//! [`GradientAlgorithm`](crate::GradientAlgorithm);
//! [`apply_gamma_selective`] is the serial path the message-level
//! simulator schedules partial updates through; [`gamma_row`] exposes a
//! single row for inspection. A commodity only ever reads and writes
//! its own fraction row — and distinct routers touch disjoint sets of
//! that row's entries (each edge has exactly one source) — so Γ work
//! can be carved per commodity *or* per router chunk within a
//! commodity, and `apply_gamma_ws` produces bit-identical tables for
//! every thread count.
//!
//! Γ statistics are accumulated per fixed-size router chunk
//! ([`GAMMA_CHUNK`] routers) on every path, serial included, and
//! reduced in ascending global chunk order: chunk boundaries depend
//! only on the instance, so [`GammaStats`] is bit-identical no matter
//! how the chunks were scheduled.

#![allow(unsafe_code)] // disjoint per-worker lanes and per-chunk stat slots

use crate::blocked::BlockedTags;
use crate::cost::CostModel;
use crate::flows::{FlowState, UsageView};
use crate::marginals::Marginals;
use crate::pool::{PhiRow, PhiTable, SlotTable, WorkerPool};
use crate::routing::{apply_row, apply_row_tracked, RoutingTable};
use crate::simd::{self, SimdBackend};
use crate::workspace::{GammaLane, IterationWorkspace, GAMMA_CHUNK};
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Outcome statistics of one Γ application.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GammaStats {
    /// Largest single fraction shift `Δ_ik(j)` applied.
    pub max_shift: f64,
    /// Total mass moved across all nodes and commodities.
    pub total_shift: f64,
    /// Number of (node, commodity) rows updated.
    pub rows: usize,
}

/// Everything a commodity-`j` Γ row computation reads: the commodity's
/// own rows (fraction, traffic, marginal, tag), the shared usage
/// totals, and the update parameters. `Copy`-cheap so tasks build one
/// per commodity.
#[derive(Clone, Copy)]
pub(crate) struct GammaCtx<'a> {
    pub(crate) ext: &'a ExtendedNetwork,
    pub(crate) cost: &'a CostModel,
    /// The commodity's fraction row (read and written; disjoint
    /// per-router element sets keep concurrent chunk tasks sound).
    pub(crate) phi: PhiRow<'a>,
    pub(crate) t_row: &'a [f64],
    pub(crate) usage: UsageView<'a>,
    pub(crate) d_row: &'a [f64],
    pub(crate) tag_row: &'a [bool],
    pub(crate) eta: f64,
    pub(crate) traffic_floor: f64,
    pub(crate) opening_floor: f64,
    pub(crate) shift_cap: f64,
    pub(crate) j: CommodityId,
    /// Kernel set for the row's marginal fill ([`crate::simd`]);
    /// `Scalar` keeps the reference path byte-for-byte.
    pub(crate) backend: SimdBackend,
    /// Per-edge head (target-node) indices for vectorized gathers;
    /// empty (and never read) under the scalar backend.
    pub(crate) heads: &'a [u32],
}

/// Computes the new routing row for router `i` into `lane.row`
/// (unapplied) and returns `(max_shift, total_shift)`. Reads only
/// `ctx`; the single numeric source of truth for every Γ entry point.
fn gamma_row_into(ctx: &GammaCtx<'_>, i: NodeId, lane: &mut GammaLane) -> (f64, f64) {
    let edges = ctx.ext.commodity_out_slice(ctx.j, i);
    debug_assert!(!edges.is_empty(), "gamma_row called on a non-router");
    lane.row.clear();
    if edges.len() == 1 {
        lane.row.push((edges[0], 1.0));
        return (0.0, 0.0);
    }

    lane.m.clear();
    lane.blocked.clear();
    if i == ctx.ext.dummy_source(ctx.j) {
        // Dummy-source rows mix DummyInput and DummyDifference edges —
        // the latter's partial is the utility derivative, so no common
        // tail term can be hoisted.
        for &l in edges {
            let head = ctx.ext.graph().target(l);
            lane.m.push(ctx.cost.edge_marginal_view(
                ctx.ext,
                ctx.usage,
                ctx.j,
                l,
                ctx.d_row[head.index()],
            ));
            // eq. (14): blocked ⇔ φ = 0 and the head's broadcast was
            // tagged
            lane.blocked
                .push(ctx.phi.get(l.index()) == 0.0 && ctx.tag_row[head.index()]);
        }
    } else {
        // Every out-edge of an ordinary router shares the tail node's
        // resource partial — hoist it so the per-edge body is a single
        // mul + mul-add over contiguous lanes. The expression must stay
        // exactly `partial * cost + beta * d` (no mul_add) to remain
        // bit-identical to `edge_marginal_view`; the vectorized fill
        // (opt-in, tolerance tier) uses FMA and is allowed to differ in
        // the last bits.
        let tail_partial = ctx.cost.node_partial_view(ctx.ext, ctx.usage, i);
        if !simd::fill_edge_marginals(
            ctx.backend,
            ctx.ext.cost_row(ctx.j),
            ctx.ext.beta_row(ctx.j),
            ctx.d_row,
            edges,
            tail_partial,
            ctx.heads,
            &mut lane.m,
        ) {
            for &l in edges {
                let head = ctx.ext.graph().target(l);
                lane.m.push(
                    tail_partial * ctx.ext.cost(ctx.j, l)
                        + ctx.ext.beta(ctx.j, l) * ctx.d_row[head.index()],
                );
            }
        }
        for &l in edges {
            let head = ctx.ext.graph().target(l);
            lane.blocked
                .push(ctx.phi.get(l.index()) == 0.0 && ctx.tag_row[head.index()]);
        }
    }

    // Best (minimum-marginal) unblocked link; k(i, j) in the paper.
    // At least one link is unblocked: blocked links have φ = 0 and the
    // row sums to one.
    let best = (0..edges.len())
        .filter(|&idx| !lane.blocked[idx])
        .min_by(|&a, &b| lane.m[a].total_cmp(&lane.m[b]))
        .expect("at least one unblocked out-edge");

    // Gallager's convention routes everything to the best link when
    // t_i(j) = 0 (the fraction is then free to move without changing
    // any link traffic). Taken literally this is violently unstable in
    // capacitated networks: an idle low-capacity path advertises a tiny
    // marginal, the instant full reroute floods it, and the barrier
    // explosion then crashes admission. We instead rate-limit the
    // opening by flooring the divisor at `opening_floor` (a small
    // fraction of λ_j, see GradientConfig::opening_fraction); with a
    // floor of zero the literal snap behaviour is restored.
    let t_raw = ctx.t_row[i.index()];
    let t_i = t_raw.max(ctx.opening_floor);
    if t_i <= ctx.traffic_floor {
        // No traffic and no floor: route everything to the best link.
        let old_best = ctx.phi.get(edges[best].index());
        let shift = 1.0 - old_best;
        for (idx, &l) in edges.iter().enumerate() {
            lane.row.push((l, if idx == best { 1.0 } else { 0.0 }));
        }
        return (shift, shift);
    }

    let m_min = lane.m[best];
    let mut collected = 0.0;
    let mut max_shift: f64 = 0.0;
    for (idx, &l) in edges.iter().enumerate() {
        if idx == best {
            continue;
        }
        if lane.blocked[idx] {
            lane.row.push((l, 0.0)); // eq. (14)
            continue;
        }
        let f = ctx.phi.get(l.index());
        let a = (lane.m[idx] - m_min).max(0.0);
        // eq. (16), with the per-iteration movement additionally capped
        // at `shift_cap`: near a barrier the marginal excess `a` is
        // unbounded, and an uncapped Δ saturates at φ — a one-step full
        // reroute that floods the alternative path and oscillates.
        let delta = f.min(ctx.eta * a / t_i).min(ctx.shift_cap);
        collected += delta;
        max_shift = max_shift.max(delta);
        lane.row.push((l, f - delta)); // eq. (17), k ≠ k(i,j)
    }
    lane.row
        .push((edges[best], ctx.phi.get(edges[best].index()) + collected));
    (max_shift, collected)
}

/// Runs Γ over one chunk of routers — computing and applying each row,
/// and accumulating the chunk's statistics into `stat` (cleared here).
/// All rows of a chunk belong to one commodity; concurrent chunk tasks
/// of the same commodity are sound because each router's computation
/// reads and writes only its own out-edge entries of the shared
/// [`PhiRow`].
pub(crate) fn gamma_chunk(
    ctx: &GammaCtx<'_>,
    routers: &[NodeId],
    lane: &mut GammaLane,
    stat: &mut (f64, f64, usize),
) {
    *stat = (0.0, 0.0, 0);
    for &i in routers {
        let (max_shift, total) = gamma_row_into(ctx, i, lane);
        apply_row(ctx.phi, ctx.ext, ctx.j, i, &lane.row);
        stat.0 = stat.0.max(max_shift);
        stat.1 += total;
        stat.2 += 1;
    }
}

/// [`gamma_chunk`] with change tracking for the active-set engine: rows
/// are applied through [`apply_row_tracked`], and `flag` (cleared here)
/// accumulates `(any value changed, any support changed)` over the
/// chunk. Numerically identical to `gamma_chunk` — both funnel through
/// [`gamma_row_into`] and write the same final fractions.
pub(crate) fn gamma_chunk_tracked(
    ctx: &GammaCtx<'_>,
    routers: &[NodeId],
    lane: &mut GammaLane,
    stat: &mut (f64, f64, usize),
    flag: &mut (bool, bool),
) {
    *stat = (0.0, 0.0, 0);
    *flag = (false, false);
    for &i in routers {
        let (max_shift, total) = gamma_row_into(ctx, i, lane);
        let (value, support) = apply_row_tracked(ctx.phi, ctx.ext, ctx.j, i, &lane.row);
        flag.0 |= value;
        flag.1 |= support;
        stat.0 = stat.0.max(max_shift);
        stat.1 += total;
        stat.2 += 1;
    }
}

/// Computes the new routing row for one `(commodity, router)` pair
/// without applying it. Returns `(new_row, max_shift, total_shift)`.
/// Allocating inspection path (clones the commodity's fraction row).
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
#[must_use]
pub fn gamma_row(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_floor: f64,
    shift_cap: f64,
    j: CommodityId,
    i: NodeId,
) -> (Vec<(EdgeId, f64)>, f64, f64) {
    let mut lane = GammaLane::default();
    let mut row_copy = routing.row(j).to_vec();
    let ctx = GammaCtx {
        ext,
        cost,
        phi: PhiRow::from_mut(&mut row_copy),
        t_row: state.t_row(j),
        usage: state.usage_view(),
        d_row: marginals.row(j),
        tag_row: tags.row(j),
        eta,
        traffic_floor,
        opening_floor,
        shift_cap,
        j,
        backend: SimdBackend::Scalar,
        heads: &[],
    };
    let (max_shift, total) = gamma_row_into(&ctx, i, &mut lane);
    (lane.row, max_shift, total)
}

/// Applies Γ to every `(commodity, router)` pair through the reusable
/// workspace: allocation-free in steady state, per-commodity fan-out
/// over the persistent pool with `pool: Some`, bit-identical routing
/// tables and statistics either way. All rows are computed against the
/// *pre-update* marginals and flows, matching the synchronous protocol
/// of §5.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn apply_gamma_ws(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &mut RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    ws: &mut IterationWorkspace,
    pool: Option<&WorkerPool>,
) -> GammaStats {
    match pool {
        Some(pool) => ws.ensure_workers(ext, pool.participants()),
        None => ws.ensure(ext),
    }
    let j_count = ext.num_commodities();
    // One ctx per commodity; written out in both branches because the
    // fraction row's lifetime differs (shared cell view vs. exclusive
    // borrow), which a shared closure cannot express.
    macro_rules! make_ctx {
        ($ji:expr, $phi:expr) => {{
            let j = CommodityId::from_index($ji);
            GammaCtx {
                ext,
                cost,
                phi: $phi,
                t_row: state.t_row(j),
                usage: state.usage_view(),
                d_row: marginals.row(j),
                tag_row: tags.row(j),
                eta,
                traffic_floor,
                opening_floor: opening_fraction * ext.commodity(j).max_rate,
                shift_cap,
                j,
                backend: SimdBackend::Scalar,
                heads: &[],
            }
        }};
    }
    {
        let parts = ws.parts();
        match pool {
            Some(pool) if pool.participants() > 1 && j_count > 1 => {
                let l_count = routing.l_count();
                let phi_tab = PhiTable::new(routing.flat_mut(), l_count);
                let lanes = SlotTable::new(parts.lanes);
                let stats = SlotTable::new(parts.stats);
                let chunk_base = parts.chunk_base;
                pool.run_tasks(j_count, |ji, worker| {
                    let ctx = make_ctx!(ji, phi_tab.row(ji));
                    // SAFETY: lane `worker` is exclusive to this
                    // participant; the stat slots of commodity `ji` are
                    // exclusive to this task.
                    let lane = unsafe { lanes.slot_mut(worker) };
                    let routers = ext.commodity_routers(ctx.j);
                    for (c, chunk) in routers.chunks(GAMMA_CHUNK).enumerate() {
                        let stat = unsafe { stats.slot_mut(chunk_base[ji] + c) };
                        gamma_chunk(&ctx, chunk, lane, stat);
                    }
                });
            }
            _ => {
                for ji in 0..j_count {
                    let j = CommodityId::from_index(ji);
                    let ctx = make_ctx!(ji, PhiRow::from_mut(routing.row_mut(j)));
                    let routers = ext.commodity_routers(j);
                    for (c, chunk) in routers.chunks(GAMMA_CHUNK).enumerate() {
                        let stat = &mut parts.stats[parts.chunk_base[ji] + c];
                        gamma_chunk(&ctx, chunk, &mut parts.lanes[0], stat);
                    }
                }
            }
        }
    }
    reduce_gamma_stats(ws, j_count)
}

/// Reduces the per-chunk Γ statistics in ascending global chunk order —
/// the fixed order that makes [`GammaStats`] bit-identical across
/// serial, per-commodity, and split-commodity schedules.
pub(crate) fn reduce_gamma_stats(ws: &IterationWorkspace, j_count: usize) -> GammaStats {
    let total_chunks = ws.chunk_base[j_count];
    let mut stats = GammaStats::default();
    for &(max_shift, total, rows) in &ws.stats[..total_chunks] {
        stats.max_shift = stats.max_shift.max(max_shift);
        stats.total_shift += total;
        stats.rows += rows;
    }
    stats
}

/// Applies Γ to every `(commodity, router)` pair, mutating `routing` in
/// place. All rows are computed against the *pre-update* marginals and
/// flows, matching the synchronous protocol of §5.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn apply_gamma(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &mut RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
) -> GammaStats {
    apply_gamma_selective(
        ext,
        cost,
        routing,
        state,
        marginals,
        tags,
        eta,
        traffic_floor,
        opening_fraction,
        shift_cap,
        |_, _| true,
    )
}

/// Like [`apply_gamma`] but only the `(commodity, router)` pairs
/// accepted by `participates` update their rows; everyone else keeps
/// their previous decision.
///
/// This models *asynchronous* operation, where an iteration's update
/// round reaches only part of the network (nodes busy, messages
/// delayed). The `spn-sim` crate builds its partial-participation
/// schedules on top of this.
///
/// Allocates a fresh row-staging scratch per call; steady-state callers
/// (the mesh runtime's per-tick Γ phase) should hold a [`GammaScratch`]
/// and use [`apply_gamma_selective_scratch`] instead.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn apply_gamma_selective<F>(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &mut RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    participates: F,
) -> GammaStats
where
    F: FnMut(CommodityId, NodeId) -> bool,
{
    let mut scratch = GammaScratch::default();
    apply_gamma_selective_scratch(
        ext,
        cost,
        routing,
        state,
        marginals,
        tags,
        eta,
        traffic_floor,
        opening_fraction,
        shift_cap,
        participates,
        &mut scratch,
    )
}

/// Reusable row-staging buffers for [`apply_gamma_selective_scratch`]:
/// after the first call has sized them to the instance's maximum router
/// out-degree, subsequent calls are allocation-free. Opaque — there is
/// nothing to configure; `default()` is the only constructor.
#[derive(Clone, Debug, Default)]
pub struct GammaScratch {
    lane: GammaLane,
}

/// [`apply_gamma_selective`] with a caller-owned [`GammaScratch`]: the
/// steady-state (warm-scratch) path performs no heap allocation, which
/// the mesh runtime's zero-alloc gate (`mesh_smoke`) pins.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's inputs
pub fn apply_gamma_selective_scratch<F>(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &mut RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    mut participates: F,
    scratch: &mut GammaScratch,
) -> GammaStats
where
    F: FnMut(CommodityId, NodeId) -> bool,
{
    let mut stats = GammaStats::default();
    let lane = &mut scratch.lane;
    for j in ext.commodity_ids() {
        let ctx = GammaCtx {
            ext,
            cost,
            phi: PhiRow::from_mut(routing.row_mut(j)),
            t_row: state.t_row(j),
            usage: state.usage_view(),
            d_row: marginals.row(j),
            tag_row: tags.row(j),
            eta,
            traffic_floor,
            opening_floor: opening_fraction * ext.commodity(j).max_rate,
            shift_cap,
            j,
            backend: SimdBackend::Scalar,
            heads: &[],
        };
        // Accumulate per GAMMA_CHUNK-sized router chunk and fold chunk
        // totals ascending — the same association as the workspace path
        // (`reduce_gamma_stats`), so full participation reproduces the
        // pooled/serial ws stats bit-for-bit.
        for chunk in ext.commodity_routers(j).chunks(GAMMA_CHUNK) {
            let mut local = (0.0f64, 0.0f64, 0usize);
            for &i in chunk {
                if !participates(j, i) {
                    continue;
                }
                let (max_shift, total) = gamma_row_into(&ctx, i, lane);
                apply_row(ctx.phi, ext, j, i, &lane.row);
                local.0 = local.0.max(max_shift);
                local.1 += total;
                local.2 += 1;
            }
            stats.max_shift = stats.max_shift.max(local.0);
            stats.total_shift += local.1;
            stats.rows += local.2;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::compute_flows;
    use crate::marginals::compute_marginals;
    use spn_model::builder::ProblemBuilder;
    use spn_model::{Penalty, UtilityFn};

    fn cm() -> CostModel {
        CostModel::new(Penalty::default(), 0.2)
    }

    /// Diamond where the y-path is much cheaper than the x-path.
    fn lopsided() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(3.0); // tiny capacity ⇒ expensive path
        let y = b.server(100.0);
        let t = b.server(100.0);
        let e_sx = b.link(s, x, 50.0);
        let e_sy = b.link(s, y, 50.0);
        let e_xt = b.link(x, t, 50.0);
        let e_yt = b.link(y, t, 50.0);
        let j = b.commodity(s, t, 10.0, UtilityFn::throughput());
        b.uses(j, e_sx, 1.0, 1.0)
            .uses(j, e_sy, 1.0, 1.0)
            .uses(j, e_xt, 1.0, 1.0)
            .uses(j, e_yt, 1.0, 1.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    fn mid_admission(ext: &ExtendedNetwork) -> RoutingTable {
        let j = CommodityId::from_index(0);
        let mut rt = RoutingTable::initial(ext);
        rt.set_row(
            ext,
            j,
            ext.dummy_source(j),
            &[(ext.input_edge(j), 0.3), (ext.difference_edge(j), 0.7)],
        );
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        rt.set_row(ext, j, s, &[(outs[0], 0.5), (outs[1], 0.5)]);
        rt
    }

    #[test]
    fn gamma_moves_mass_toward_cheaper_link() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let mut rt = mid_admission(&ext);
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        let before_y = rt.fraction(j, outs[1]);
        apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 0.5, 1e-12, 0.0, 1.0);
        rt.validate(&ext).unwrap();
        // the y-path (outs[1], through the big server) should gain mass
        assert!(
            rt.fraction(j, outs[1]) > before_y,
            "expected mass to shift toward the cheap path"
        );
    }

    #[test]
    fn gamma_never_increases_cost_for_small_eta() {
        let ext = lopsided();
        let mut rt = mid_admission(&ext);
        let cost = cm();
        for _ in 0..20 {
            let fs = compute_flows(&ext, &rt);
            let before = cost.total_cost(&ext, &fs);
            let m = compute_marginals(&ext, &cost, &rt, &fs);
            let tags = BlockedTags::none(&ext);
            apply_gamma(&ext, &cost, &mut rt, &fs, &m, &tags, 0.005, 1e-12, 0.0, 1.0);
            let fs2 = compute_flows(&ext, &rt);
            let after = cost.total_cost(&ext, &fs2);
            assert!(
                after <= before + 1e-9,
                "cost increased with tiny eta: {before} -> {after}"
            );
        }
    }

    #[test]
    fn zero_traffic_routes_all_to_best() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let mut rt = RoutingTable::initial(&ext); // zero interior traffic
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 0.04, 1e-12, 0.0, 1.0);
        rt.validate(&ext).unwrap();
        let s = ext.commodity(j).source();
        let fractions: Vec<f64> = ext
            .commodity_out_edges(j, s)
            .map(|l| rt.fraction(j, l))
            .collect();
        // all-or-nothing at the unloaded source
        assert!(fractions.iter().any(|&f| (f - 1.0).abs() < 1e-12));
        assert_eq!(fractions.iter().filter(|&&f| f > 0.0).count(), 1);
    }

    #[test]
    fn single_out_edge_is_identity() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let rt = mid_admission(&ext);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        // bandwidth nodes have exactly one commodity out-edge
        let bw = spn_graph::NodeId::from_index(4); // first bandwidth node
        let (row, max_s, tot) = gamma_row(
            &ext,
            &cm(),
            &rt,
            &fs,
            &m,
            &tags,
            0.04,
            1e-12,
            0.0,
            1.0,
            j,
            bw,
        );
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].1, 1.0);
        assert_eq!(max_s, 0.0);
        assert_eq!(tot, 0.0);
    }

    #[test]
    fn blocked_links_stay_closed() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let mut rt = mid_admission(&ext);
        let s = ext.commodity(j).source();
        let outs: Vec<_> = ext.commodity_out_edges(j, s).collect();
        // close outs[1], then block its head
        rt.set_row(&ext, j, s, &[(outs[0], 1.0), (outs[1], 0.0)]);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        // hand-tag the head of outs[1]
        let head = ext.graph().target(outs[1]);
        let mut raw = vec![vec![false; ext.graph().node_count()]; ext.num_commodities()];
        raw[j.index()][head.index()] = true;
        let tags = BlockedTags::from_raw(raw);
        apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 10.0, 1e-12, 0.0, 1.0);
        assert_eq!(rt.fraction(j, outs[1]), 0.0, "blocked link reopened");
        rt.validate(&ext).unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let ext = lopsided();
        let mut rt = mid_admission(&ext);
        let fs = compute_flows(&ext, &rt);
        let m = compute_marginals(&ext, &cm(), &rt, &fs);
        let tags = BlockedTags::none(&ext);
        let stats = apply_gamma(&ext, &cm(), &mut rt, &fs, &m, &tags, 0.5, 1e-12, 0.0, 1.0);
        assert!(stats.rows > 0);
        assert!(stats.total_shift > 0.0);
        assert!(stats.max_shift > 0.0);
        assert!(stats.max_shift <= stats.total_shift + 1e-15);
    }

    #[test]
    fn ws_path_matches_selective_bitwise() {
        let ext = lopsided();
        let fs_rt = mid_admission(&ext);
        let fs = compute_flows(&ext, &fs_rt);
        let m = compute_marginals(&ext, &cm(), &fs_rt, &fs);
        let tags = BlockedTags::none(&ext);
        let mut reference = fs_rt.clone();
        let ref_stats = apply_gamma(
            &ext,
            &cm(),
            &mut reference,
            &fs,
            &m,
            &tags,
            0.5,
            1e-12,
            0.05,
            0.02,
        );
        let mut ws = IterationWorkspace::new(&ext);
        let pool = WorkerPool::new(4);
        for pool in [None, Some(&pool)] {
            let mut rt = fs_rt.clone();
            let stats = apply_gamma_ws(
                &ext,
                &cm(),
                &mut rt,
                &fs,
                &m,
                &tags,
                0.5,
                1e-12,
                0.05,
                0.02,
                &mut ws,
                pool,
            );
            assert_eq!(
                rt,
                reference,
                "ws path diverged (pooled: {})",
                pool.is_some()
            );
            // Both paths fold stats per router chunk ascending, so the
            // full-participation selective stats must match bit-for-bit.
            assert_eq!(stats.max_shift.to_bits(), ref_stats.max_shift.to_bits());
            assert_eq!(stats.total_shift.to_bits(), ref_stats.total_shift.to_bits());
            assert_eq!(stats.rows, ref_stats.rows);
        }
    }

    /// Filtered-update semantics of [`apply_gamma_selective`]: rejected
    /// `(commodity, router)` pairs keep their previous rows bit-for-bit,
    /// accepted pairs land on exactly the rows a full update would give
    /// them (rows are independent given fixed flows/marginals), and the
    /// statistics count only the accepted rows.
    #[test]
    fn selective_updates_only_participating_rows() {
        let ext = lopsided();
        let j = CommodityId::from_index(0);
        let before = mid_admission(&ext);
        let fs = compute_flows(&ext, &before);
        let m = compute_marginals(&ext, &cm(), &before, &fs);
        let tags = BlockedTags::none(&ext);
        let mut full = before.clone();
        apply_gamma(&ext, &cm(), &mut full, &fs, &m, &tags, 0.5, 1e-12, 0.0, 1.0);

        // Accept exactly one router: the commodity's dummy source (its
        // admission row always shifts from a mid-admission start).
        let chosen = ext.dummy_source(j);
        let mut seen = 0usize;
        let mut rt = before.clone();
        let stats = apply_gamma_selective(
            &ext,
            &cm(),
            &mut rt,
            &fs,
            &m,
            &tags,
            0.5,
            1e-12,
            0.0,
            1.0,
            |_, i| {
                seen += 1;
                i == chosen
            },
        );
        assert_eq!(
            seen,
            ext.commodity_routers(j).len(),
            "predicate must be consulted for every router"
        );
        rt.validate(&ext).unwrap();
        for &i in ext.commodity_routers(j) {
            let want = if i == chosen { &full } else { &before };
            for &l in ext.commodity_out_slice(j, i) {
                assert_eq!(
                    rt.fraction(j, l).to_bits(),
                    want.fraction(j, l).to_bits(),
                    "row of router {i} {}",
                    if i == chosen {
                        "missed its update"
                    } else {
                        "moved without participating"
                    }
                );
            }
        }
        assert_eq!(stats.rows, 1, "stats must count only participating rows");
        assert!(stats.total_shift > 0.0);
        // The single row's shift is bounded by the full pass's totals.
        assert!(stats.max_shift <= stats.total_shift + 1e-15);

        // Empty participation: nothing moves, stats are zero.
        let mut rt = before.clone();
        let stats = apply_gamma_selective(
            &ext,
            &cm(),
            &mut rt,
            &fs,
            &m,
            &tags,
            0.5,
            1e-12,
            0.0,
            1.0,
            |_, _| false,
        );
        assert_eq!(rt, before, "non-participating pass mutated routing");
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.total_shift, 0.0);
        assert_eq!(stats.max_shift, 0.0);
    }
}
