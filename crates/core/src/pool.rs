//! Persistent worker pool for the iteration core, plus the raw
//! row-view types its fused step hands out to workers.
//!
//! PR 1 parallelized the per-commodity passes with [`std::thread::scope`],
//! which spawns and joins fresh OS threads on **every pass of every
//! step** — four spawn/join cycles per microsecond-scale iteration, a
//! 20× slowdown instead of a speedup. [`WorkerPool`] fixes the model:
//! threads are spawned once (when [`GradientAlgorithm`] resolves
//! `threads > 1`), parked on a condvar between dispatches, and joined on
//! [`Drop`].
//!
//! # Epoch protocol
//!
//! The pool state holds a monotonically increasing *epoch* and an
//! optional job pointer under one mutex. [`WorkerPool::run_participants`]
//! publishes the job, bumps the epoch, and notifies the `work` condvar;
//! each parked worker wakes when it observes an epoch it has not yet
//! executed, runs the job with its participant index, and decrements the
//! `remaining` counter (notifying `done` at zero). The **caller
//! participates as worker 0** — with `threads = N` the pool owns `N − 1`
//! OS threads — and blocks on `done` until every worker has finished, so
//! the borrowed job closure never outlives the dispatch (the stored
//! pointer's `'static` lifetime is a transmute made sound by exactly
//! this wait).
//!
//! # Poisoning instead of deadlock
//!
//! Every participant runs the job under `catch_unwind`. A panicking task
//! poisons the pool *and* its phase barrier (waking any participants
//! parked mid-phase), still decrements `remaining`, and the dispatching
//! call re-raises with a clear message. Subsequent dispatches on a
//! poisoned pool panic immediately instead of hanging a condvar.
//!
//! # Phase barrier
//!
//! The fused step (see `crate::step`) separates its phases with
//! [`WorkerPool::phase_wait`] — a generation-counting barrier over all
//! participants that shares the pool's poisoning, so a panic inside any
//! phase cannot strand the others at the rendezvous.
//!
//! [`GradientAlgorithm`]: crate::GradientAlgorithm
#![allow(unsafe_code)] // raw job pointer + disjoint-row views; contracts below

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Process-wide count of OS threads ever spawned by [`WorkerPool`]s.
static TOTAL_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total OS threads spawned by all [`WorkerPool`]s in this process so
/// far. A diagnostic counter: tests pin that steady-state stepping
/// never spawns (the pool is created once), by sampling this before and
/// after a run.
#[must_use]
pub fn total_threads_spawned() -> u64 {
    TOTAL_SPAWNED.load(Ordering::SeqCst)
}

/// The published job: a borrowed task closure with its lifetime erased.
/// Sound because the dispatching call waits for `remaining == 0` before
/// returning (see the module docs).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and the pointer is only dereferenced while the dispatching call
// keeps the closure alive.
unsafe impl Send for JobPtr {}

/// Who poisoned the pool and with what: the participant index and the
/// stringified payload of the *first* panicked task, re-emitted in
/// every subsequent poison panic so a failure buried in a chaos soak
/// stays diagnosable from the message alone.
#[derive(Clone, Debug)]
struct PoisonInfo {
    worker: usize,
    payload: String,
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// literal yields `&str`, with a format string `String`; anything else
/// is opaque).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

struct PoolState {
    job: Option<JobPtr>,
    epoch: u64,
    remaining: usize,
    poisoned: Option<PoisonInfo>,
    shutdown: bool,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// A reusable, poisonable rendezvous for all pool participants.
struct PhaseBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
    participants: usize,
}

impl PhaseBarrier {
    fn new(participants: usize) -> Self {
        PhaseBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
            participants,
        }
    }

    /// Blocks until all participants arrive (or the barrier is
    /// poisoned, in which case every waiter panics out so the pool's
    /// per-participant `catch_unwind` can unwind the whole dispatch).
    fn wait(&self) {
        let mut st = lock(&self.state);
        if st.poisoned {
            drop(st);
            panic!("worker-pool phase barrier poisoned by a panicked task");
        }
        st.arrived += 1;
        if st.arrived == self.participants {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            drop(st);
            self.cvar.notify_all();
            return;
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cvar.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let poisoned = st.poisoned;
        drop(st);
        if poisoned {
            panic!("worker-pool phase barrier poisoned by a panicked task");
        }
    }

    fn poison(&self) {
        let mut st = lock(&self.state);
        st.poisoned = true;
        drop(st);
        self.cvar.notify_all();
    }
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between dispatches.
    work: Condvar,
    /// The dispatching caller parks here until `remaining == 0`.
    done: Condvar,
    barrier: PhaseBarrier,
}

/// Ignore std's mutex poisoning: the pool has its own poisoned flag
/// with defined semantics, and lock-level poisoning (a panic while a
/// guard was held) must not turn `Drop` into a second panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Decrements the live-worker counter even if the worker unwinds.
struct LiveGuard<'a>(&'a AtomicUsize);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the dispatching call keeps the closure alive until
        // every worker has decremented `remaining` below.
        let task = unsafe { &*job.0 };
        let result = catch_unwind(AssertUnwindSafe(|| task(worker)));
        let mut st = lock(&shared.state);
        if let Err(payload) = &result {
            // Keep the first panic's provenance; later ones are usually
            // collateral (barrier-poison unwinds).
            if st.poisoned.is_none() {
                st.poisoned = Some(PoisonInfo {
                    worker,
                    payload: payload_message(payload.as_ref()),
                });
            }
            // Wake anyone parked at a phase barrier inside the task so
            // the dispatch unwinds instead of deadlocking.
            shared.barrier.poison();
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            drop(st);
            shared.done.notify_one();
        }
    }
}

/// A persistent pool of parked worker threads for the iteration core.
///
/// Created once per [`GradientAlgorithm`](crate::GradientAlgorithm)
/// when the resolved thread count exceeds one; steady-state stepping
/// performs **zero thread spawns and zero heap allocations** — a
/// dispatch is one mutex-guarded epoch bump plus condvar wakes. Workers
/// are joined on [`Drop`]. See the module docs for the epoch and
/// poisoning protocols.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    live: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Creates a pool with `threads` *participants*: the calling thread
    /// plus `threads − 1` spawned workers (`threads ≤ 1` spawns
    /// nothing and runs every dispatch inline).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a worker thread.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let participants = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                poisoned: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            barrier: PhaseBarrier::new(participants),
        });
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(participants - 1);
        for worker in 1..participants {
            let shared = Arc::clone(&shared);
            let live = Arc::clone(&live);
            live.fetch_add(1, Ordering::SeqCst);
            TOTAL_SPAWNED.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("spn-pool-{worker}"))
                .spawn(move || {
                    let _guard = LiveGuard(&live);
                    worker_loop(&shared, worker);
                })
                .expect("spawn worker-pool thread");
            handles.push(handle);
        }
        WorkerPool {
            shared,
            handles,
            live,
        }
    }

    /// Number of participants: the spawned workers plus the calling
    /// thread.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.handles.len() + 1
    }

    /// Number of worker threads currently alive (spawned and not yet
    /// exited). Used by lifecycle tests to verify that [`Drop`] joins
    /// every worker.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Runs `task(w)` once on every participant `w` (the caller is
    /// participant 0), returning when all are done. Allocation-free.
    ///
    /// # Panics
    ///
    /// Re-raises a caller-side task panic; panics with a clear message
    /// if any worker's task panicked or the pool was already poisoned.
    pub(crate) fn run_participants(&self, task: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            task(0);
            return;
        }
        {
            let mut st = lock(&self.shared.state);
            if let Some(info) = &st.poisoned {
                panic!(
                    "worker pool poisoned by an earlier panicked task \
                     (participant {}: {})",
                    info.worker, info.payload
                );
            }
            debug_assert!(st.job.is_none() && st.remaining == 0);
            // SAFETY: lifetime erasure only — we wait for
            // `remaining == 0` below, so no worker dereferences the
            // pointer after `task` goes out of scope.
            let job: *const (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(task as *const _)
            };
            st.job = Some(JobPtr(job));
            st.epoch = st.epoch.wrapping_add(1);
            st.remaining = self.handles.len();
            drop(st);
            self.shared.work.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| task(0)));
        if caller.is_err() {
            // Wake workers parked at a phase barrier inside the task.
            self.shared.barrier.poison();
        }
        let mut st = lock(&self.shared.state);
        while st.remaining > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        if let Err(payload) = &caller {
            if st.poisoned.is_none() {
                st.poisoned = Some(PoisonInfo {
                    worker: 0,
                    payload: payload_message(payload.as_ref()),
                });
            }
        }
        let poisoned = st.poisoned.clone();
        drop(st);
        match caller {
            // The caller's own panic unwinds with its original payload.
            Err(payload) => resume_unwind(payload),
            Ok(()) => {
                if let Some(info) = poisoned {
                    panic!(
                        "a worker-pool task panicked; the pool is poisoned \
                         (participant {}: {})",
                        info.worker, info.payload
                    );
                }
            }
        }
    }

    /// Runs `work(task, worker)` for every `task` in `0..tasks`, with
    /// tasks claimed dynamically by the participants (claim order is
    /// nondeterministic; callers must keep task outputs disjoint and
    /// reduce in a fixed order afterwards — ARCHITECTURE invariant 9).
    /// Allocation-free; a drop-in replacement for the scoped fan-out
    /// this pool retired.
    ///
    /// # Panics
    ///
    /// Propagates task panics as described on
    /// [`WorkerPool::run_participants`].
    pub fn run_tasks<F>(&self, tasks: usize, work: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        let next = AtomicUsize::new(0);
        let driver = move |worker: usize| loop {
            let task = next.fetch_add(1, Ordering::Relaxed);
            if task >= tasks {
                break;
            }
            work(task, worker);
        };
        self.run_participants(&driver);
    }

    /// Blocks the calling participant until **all** participants of the
    /// current dispatch arrive. Only meaningful inside a task passed to
    /// [`WorkerPool::run_participants`], and every participant must
    /// execute the same sequence of waits.
    ///
    /// # Panics
    ///
    /// Panics (on every waiter) if a participant panicked and poisoned
    /// the barrier.
    pub(crate) fn phase_wait(&self) {
        self.shared.barrier.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("participants", &self.participants())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Disjoint-row views
//
// The fused step (crate::step) runs several logical passes inside one
// pool dispatch, so Rust's borrow checker cannot see the ownership
// schedule: commodity j's rows of every buffer belong to exactly one
// task at a time, phases are separated by barriers, and the shared
// usage totals are only written by participant 0 between barriers.
// These views carry raw base pointers and conjure short-lived row
// references inside tasks; each accessor documents the contract.
// ---------------------------------------------------------------------

/// A raw view of a flat row-major buffer that hands out disjoint rows
/// to concurrent tasks.
pub(crate) struct RowTable<'a, T> {
    ptr: *mut T,
    row_len: usize,
    rows: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: rows of `T: Send` data may be handed to other threads; the
// accessors' contracts keep concurrent access disjoint.
unsafe impl<T: Send> Sync for RowTable<'_, T> {}
unsafe impl<T: Send> Send for RowTable<'_, T> {}

impl<'a, T> RowTable<'a, T> {
    pub(crate) fn new(buf: &'a mut [T], row_len: usize) -> Self {
        let rows = buf.len().checked_div(row_len).unwrap_or(0);
        debug_assert_eq!(rows * row_len, buf.len(), "buffer not row-aligned");
        RowTable {
            ptr: buf.as_mut_ptr(),
            row_len,
            rows,
            _marker: PhantomData,
        }
    }

    /// Exclusive access to row `r`.
    ///
    /// # Safety
    ///
    /// No other reference to row `r` (shared or exclusive) may exist
    /// while the returned borrow is alive.
    #[allow(clippy::mut_from_ref)] // the table is a capability, not the data
    pub(crate) unsafe fn row_mut(&self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(r * self.row_len), self.row_len) }
    }

    /// Shared access to row `r`.
    ///
    /// # Safety
    ///
    /// No exclusive reference to row `r` may exist (and no writes to it
    /// may happen) while the returned borrow is alive.
    pub(crate) unsafe fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        unsafe { std::slice::from_raw_parts(self.ptr.add(r * self.row_len), self.row_len) }
    }

    /// Row length the table was built with.
    pub(crate) fn row_len(&self) -> usize {
        self.row_len
    }

    /// Shared access to the whole underlying buffer.
    ///
    /// # Safety
    ///
    /// No exclusive reference to any part of the buffer may exist (and
    /// no writes may happen) while the returned borrow is alive.
    pub(crate) unsafe fn as_slice(&self) -> &[T] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.rows * self.row_len) }
    }
}

/// A raw view of a slice that hands out disjoint *elements* to
/// concurrent tasks (Γ lanes per worker, Γ statistics per chunk).
pub(crate) struct SlotTable<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for `RowTable` — disjointness is the accessors' contract.
unsafe impl<T: Send> Sync for SlotTable<'_, T> {}
unsafe impl<T: Send> Send for SlotTable<'_, T> {}

impl<'a, T> SlotTable<'a, T> {
    pub(crate) fn new(buf: &'a mut [T]) -> Self {
        SlotTable {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
            _marker: PhantomData,
        }
    }

    /// Exclusive access to slot `i`.
    ///
    /// # Safety
    ///
    /// No other reference to slot `i` may exist while the returned
    /// borrow is alive.
    #[allow(clippy::mut_from_ref)] // the table is a capability, not the data
    pub(crate) unsafe fn slot_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "slot {i} out of range ({} slots)", self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// One commodity's routing-fraction row behind [`UnsafeCell`]s, so Γ
/// chunk tasks for the *same* commodity can update disjoint routers
/// concurrently (each router owns its out-edges, and every edge has
/// exactly one source router).
///
/// Reads and writes are plain (non-atomic) cell accesses; the callers'
/// contract — enforced by the Γ task layout — is that an element is
/// never written by one task while another task touches it.
#[derive(Clone, Copy)]
pub(crate) struct PhiRow<'a> {
    cells: &'a [UnsafeCell<f64>],
}

// SAFETY: `f64` is `Send`; disjoint-element access is the documented
// contract of every constructor and of the Γ task layout.
unsafe impl Sync for PhiRow<'_> {}
unsafe impl Send for PhiRow<'_> {}

impl<'a> PhiRow<'a> {
    /// Wraps an exclusively borrowed row (always sound: exclusivity
    /// subsumes the disjointness contract).
    pub(crate) fn from_mut(row: &'a mut [f64]) -> Self {
        // SAFETY: `UnsafeCell<f64>` has the same layout as `f64`, and
        // the exclusive borrow guarantees no aliasing.
        let cells = unsafe { &*(std::ptr::from_mut::<[f64]>(row) as *const [UnsafeCell<f64>]) };
        PhiRow { cells }
    }

    pub(crate) fn get(self, i: usize) -> f64 {
        // SAFETY: disjointness contract (no concurrent writer of `i`).
        unsafe { *self.cells[i].get() }
    }

    pub(crate) fn set(self, i: usize, value: f64) {
        // SAFETY: disjointness contract (sole accessor of `i`).
        unsafe { *self.cells[i].get() = value }
    }
}

/// The whole routing table (flat, row-major) as a grid of [`PhiRow`]s.
pub(crate) struct PhiTable<'a> {
    cells: &'a [UnsafeCell<f64>],
    row_len: usize,
}

// SAFETY: as for `PhiRow`.
unsafe impl Sync for PhiTable<'_> {}
unsafe impl Send for PhiTable<'_> {}

impl<'a> PhiTable<'a> {
    pub(crate) fn new(buf: &'a mut [f64], row_len: usize) -> Self {
        // SAFETY: layout-compatible cast under an exclusive borrow.
        let cells = unsafe { &*(std::ptr::from_mut::<[f64]>(buf) as *const [UnsafeCell<f64>]) };
        PhiTable { cells, row_len }
    }

    /// Commodity `ji`'s row, writable under the disjoint-element
    /// contract.
    pub(crate) fn row(&self, ji: usize) -> PhiRow<'a> {
        PhiRow {
            cells: &self.cells[ji * self.row_len..(ji + 1) * self.row_len],
        }
    }

    /// Commodity `ji`'s row as a plain shared slice.
    ///
    /// # Safety
    ///
    /// No writes to row `ji` may happen while the returned borrow is
    /// alive.
    pub(crate) unsafe fn row_slice(&self, ji: usize) -> &'a [f64] {
        let cells = &self.cells[ji * self.row_len..(ji + 1) * self.row_len];
        // SAFETY: layout-compatible cast; the caller guarantees no
        // concurrent writes.
        unsafe { &*(std::ptr::from_ref::<[UnsafeCell<f64>]>(cells) as *const [f64]) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_covers_every_task() {
        let pool = WorkerPool::new(4);
        let mut hits = [0u8; 13];
        {
            let table = SlotTable::new(&mut hits);
            pool.run_tasks(13, |task, _worker| {
                // SAFETY: each task index is claimed exactly once.
                let slot = unsafe { table.slot_mut(task) };
                *slot = u8::try_from(task).unwrap() + 1;
            });
        }
        for (i, &h) in hits.iter().enumerate() {
            assert_eq!(h, u8::try_from(i).unwrap() + 1, "task {i} not run once");
        }
    }

    #[test]
    fn pool_is_reusable_across_dispatches() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run_tasks(7, |_t, _w| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 700);
    }

    #[test]
    fn single_participant_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.participants(), 1);
        let counter = AtomicUsize::new(0);
        pool.run_tasks(5, |_t, worker| {
            assert_eq!(worker, 0);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        let live = Arc::clone(&pool.live);
        pool.run_tasks(16, |_t, _w| {});
        assert_eq!(live.load(Ordering::SeqCst), 3);
        drop(pool);
        assert_eq!(live.load(Ordering::SeqCst), 0, "drop leaked workers");
    }

    #[test]
    fn panicking_task_poisons_pool_without_deadlock() {
        let pool = WorkerPool::new(4);
        let first = catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks(8, |task, _w| {
                assert!(task != 3, "injected task failure");
            });
        }));
        assert!(first.is_err(), "task panic was swallowed");
        // The pool is poisoned: the next dispatch fails fast with a
        // clear message instead of hanging the condvar.
        let second = catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks(1, |_t, _w| {});
        }));
        let payload = second.expect_err("poisoned pool accepted a dispatch");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("poisoned"),
            "unclear poison message: {message:?}"
        );
        // Drop must still join cleanly.
        drop(pool);
    }

    #[test]
    fn poison_panic_carries_payload_and_participant() {
        let pool = WorkerPool::new(4);
        let first = catch_unwind(AssertUnwindSafe(|| {
            pool.run_participants(&|w| {
                assert!(w != 2, "chaos-injected fault #42 on participant 2");
            });
        }));
        let payload = first.expect_err("worker panic was swallowed");
        let message = payload_message(payload.as_ref());
        // The dispatching side re-raises with the original payload and
        // the participant index embedded, so a failure inside a long
        // chaos soak is diagnosable from the message alone.
        assert!(
            message.contains("chaos-injected fault #42") && message.contains("participant 2"),
            "poison panic lost provenance: {message:?}"
        );
        // ...and the next dispatch re-emits the same provenance.
        let second = catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks(1, |_t, _w| {});
        }));
        let message = payload_message(second.expect_err("poisoned pool accepted work").as_ref());
        assert!(
            message.contains("poisoned")
                && message.contains("chaos-injected fault #42")
                && message.contains("participant 2"),
            "stale poison panic lost provenance: {message:?}"
        );
    }

    #[test]
    fn phase_wait_synchronizes_all_participants() {
        let pool = WorkerPool::new(4);
        let before = AtomicUsize::new(0);
        let after = AtomicUsize::new(0);
        pool.run_participants(&|_w| {
            before.fetch_add(1, Ordering::SeqCst);
            pool.phase_wait();
            // Every participant must have passed the barrier.
            assert_eq!(before.load(Ordering::SeqCst), 4);
            after.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(after.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn phi_row_reads_and_writes_elements() {
        let mut row = vec![0.25, 0.75, 0.0];
        let phi = PhiRow::from_mut(&mut row);
        assert_eq!(phi.get(1), 0.75);
        phi.set(2, 1.0);
        assert_eq!(phi.get(2), 1.0);
        let _ = phi;
        assert_eq!(row, vec![0.25, 0.75, 1.0]);
    }
}
