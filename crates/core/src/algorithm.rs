//! The complete distributed gradient-based algorithm (§5) as a
//! synchronous in-process driver.
//!
//! Each [`GradientAlgorithm::step`] performs exactly one iteration of
//! the paper's protocol stack:
//!
//! 1. **Flow forecast** (eqs. (3)–(5)): node traffic `t` and resource
//!    usage `f` under the current routing decision;
//! 2. **Marginal-cost wave** (eq. (9)): `∂A/∂r_i(j)` swept upstream from
//!    each sink, with the blocking tags of eq. (18) piggybacked;
//! 3. **Routing update Γ** (eqs. (14)–(17)): every node shifts mass
//!    from expensive links to its best link.
//!
//! Resource allocation needs no extra step in the fluid model: a node's
//! optimal local allocation under forecasted flows *is* `c^j_il·t_i(j)·φ_il(j)`
//! per (commodity, out-edge) — reported via [`Report::node_allocations`].
//!
//! The message-level version of the same iteration — where the waves are
//! explicit messages with per-hop latency — lives in the `spn-sim`
//! crate and produces bit-identical routing tables (tested there).

use crate::active::ActiveSet;
use crate::blocked::{compute_tags_into, BlockedTags};
use crate::checkpoint::Checkpoint;
use crate::cost::{CostModel, TotalCostCache};
use crate::flows::{compute_flows_into, FlowState};
use crate::gamma::{apply_gamma_ws, GammaStats};
use crate::health::CoreError;
use crate::marginals::{compute_marginals_into, Marginals};
use crate::pool::WorkerPool;
use crate::routing::RoutingTable;
use crate::simd::SimdPolicy;
use crate::step::{fused_step, fused_step_sparse, sparse_step_serial};
use crate::workspace::IterationWorkspace;
use spn_graph::NodeId;
use spn_model::{CommodityId, Penalty, Problem};
use spn_transform::view::{physical_loads, PhysicalLoads};
use spn_transform::{CommodityDef, ExtendedNetwork};
use std::fmt;

/// Tunables of the gradient algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GradientConfig {
    /// The Γ scale factor `η`. Small values guarantee convergence but
    /// slowly; the paper's Figure 4 uses `0.04` and notes that "in
    /// practice, it is possible to choose a much larger η … e.g. in
    /// hundreds of iterations".
    pub eta: f64,
    /// The penalty weight `ε` (`0.2` in §6).
    pub epsilon: f64,
    /// The per-node capacity penalty family `D_i`.
    pub penalty: Penalty,
    /// Whether to compute blocked sets (eq. (18)). The paper's commodity
    /// subgraphs are DAGs, where loops cannot form; disabling this is an
    /// ablation, not a correctness risk (see DESIGN.md).
    pub use_blocked_sets: bool,
    /// Traffic below this is treated as zero in eq. (16)'s division.
    pub traffic_floor: f64,
    /// Rate limit on opening idle paths: eq. (16)'s divisor `t_i(j)` is
    /// floored at `opening_fraction · λ_j`. Gallager's literal
    /// convention (route everything to the best link when `t_i(j) = 0`)
    /// corresponds to `0.0` and is violently unstable in capacitated
    /// networks — an idle low-capacity path looks free, attracts a full
    /// reroute in one step, and the barrier then crashes admission (see
    /// the E2 stability experiment).
    pub opening_fraction: f64,
    /// Upper bound on any single routing-fraction shift `Δ_ik(j)` per
    /// iteration. Near a capacity barrier the marginal excess is
    /// unbounded and eq. (16) saturates at the full fraction — a
    /// one-step total reroute that floods the alternative path and
    /// oscillates. `1.0` disables the cap (the paper's literal rule).
    pub shift_cap: f64,
    /// Utilization fraction beyond which the ε-independent capacity
    /// wall activates (see [`CostModel`]).
    pub wall_threshold: f64,
    /// Wall scale `K`; `0.0` disables the wall (the paper's literal
    /// objective `A = Y + ε·D`).
    pub wall_strength: f64,
    /// Multiplicative ε-annealing factor applied every
    /// [`GradientConfig::epsilon_interval`] iterations (interior-point
    /// continuation: the relaxed optimum approaches the true optimum as
    /// ε → 0, so shrinking ε after the routing has settled closes the
    /// relaxation gap). `1.0` disables annealing (the paper keeps ε
    /// fixed).
    pub epsilon_factor: f64,
    /// Iterations between ε-annealing steps.
    pub epsilon_interval: usize,
    /// Annealing floor: ε never drops below this.
    pub epsilon_min: f64,
    /// Worker threads for the fused per-step passes (tags, Γ, flows,
    /// marginals). `0` resolves to
    /// [`std::thread::available_parallelism`] capped at the commodity
    /// count (extra workers would idle in the per-commodity phases);
    /// `1` forces the serial (zero-allocation, pool-free) path. Any
    /// value > 1 runs over a persistent [`WorkerPool`] owned by the
    /// algorithm — threads are spawned once at construction, parked
    /// between steps, and joined on drop. Results are bit-identical for
    /// every value (ARCHITECTURE invariant 9): each commodity owns its
    /// rows and all cross-commodity reductions run in fixed order.
    pub threads: usize,
    /// Selects the sparsity-aware active-set iteration engine. The
    /// engine skips the tag/Γ/flow chain of commodities whose inputs are
    /// bitwise-unchanged since their last run, restricts every sweep to
    /// the per-commodity *live arcs* (nonzero routing fraction) in
    /// topological router order, and re-runs marginal sweeps only when
    /// a commodity's φ row or the shared usage totals moved. Results are
    /// bit-identical to the dense engine for every thread count
    /// (ARCHITECTURE invariant 14). Defaults to `true` — the active-set
    /// engine *is* the engine; `false` selects the dense reference path
    /// (the explicit escape hatch, and the baseline the equivalence
    /// tests pin the engine against).
    pub sparsity: bool,
    /// Kernel policy for the sparse-engine sweeps (see [`crate::simd`]).
    /// The default, [`SimdPolicy::Scalar`], always runs the bit-exact
    /// scalar reference kernels — even when the crate is built with
    /// `--features simd` — so reproducibility is opt-out per run, never
    /// silently lost at build time. [`SimdPolicy::Auto`] selects the
    /// fastest vectorized kernels the CPU supports (a no-op without the
    /// `simd` feature); the tag/flow/totals kernels stay bit-identical
    /// under it, while the marginal and Γ-fill kernels agree with the
    /// scalar reference only within tolerance (ARCHITECTURE invariant
    /// 18). Forcing `Scalar` on a simd build is the supported A/B
    /// lever and is pinned bit-identical to the default build.
    pub simd: SimdPolicy,
}

impl Default for GradientConfig {
    /// The paper's `η = 0.04` with the stabilized penalty stack this
    /// crate recommends: the capacity-normalized barrier
    /// (`D(z) = Cz/(C−z)`, knee 0.98) at `ε = 0.002`, the soft capacity
    /// wall, a 0.1 shift cap and rate-limited path opening — running on
    /// the sparsity-aware active-set engine (bit-identical to dense,
    /// ARCHITECTURE invariant 14). The paper's
    /// literal setup (`ε = 0.2`, `D(z) = 1/(C−z)`, no wall, no caps) is
    /// reproducible by overriding `epsilon`, `penalty`, `wall_strength`,
    /// `shift_cap` and `opening_fraction`; the E2 experiment measures
    /// what each stabilizer contributes.
    fn default() -> Self {
        GradientConfig {
            eta: 0.04,
            epsilon: 5e-4,
            penalty: Penalty::new(spn_model::PenaltyKind::ScaledReciprocal, 0.98)
                .expect("valid knee"),
            use_blocked_sets: true,
            traffic_floor: 1e-12,
            opening_fraction: 0.05,
            shift_cap: 0.02,
            wall_threshold: 0.95,
            wall_strength: 4.0,
            epsilon_factor: 1.0,
            epsilon_interval: 1500,
            epsilon_min: 2e-5,
            threads: 0,
            sparsity: true,
            simd: SimdPolicy::Scalar,
        }
    }
}

/// Configuration errors for [`GradientAlgorithm::new`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `η` must be finite and positive.
    BadEta(f64),
    /// `ε` must be finite and positive.
    BadEpsilon(f64),
    /// The traffic floor must be finite and non-negative.
    BadTrafficFloor(f64),
    /// The opening fraction must be finite and non-negative.
    BadOpeningFraction(f64),
    /// The shift cap must be finite and positive.
    BadShiftCap(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadEta(v) => write!(f, "eta must be finite and positive, got {v}"),
            ConfigError::BadEpsilon(v) => {
                write!(f, "epsilon must be finite and positive, got {v}")
            }
            ConfigError::BadTrafficFloor(v) => {
                write!(f, "traffic floor must be finite and non-negative, got {v}")
            }
            ConfigError::BadOpeningFraction(v) => {
                write!(
                    f,
                    "opening fraction must be finite and non-negative, got {v}"
                )
            }
            ConfigError::BadShiftCap(v) => {
                write!(f, "shift cap must be finite and positive, got {v}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Outcome of [`GradientAlgorithm::run_until_stable`]: how many
/// iterations the call performed and whether it actually met the shift
/// tolerance (previously "converged on the last allowed step" and "hit
/// the iteration cap" were indistinguishable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StableOutcome {
    /// Iterations performed by this call.
    pub iterations: usize,
    /// `true` if the per-step total routing shift dropped below the
    /// tolerance; `false` if the iteration cap stopped the run first.
    pub converged: bool,
}

/// Statistics of one iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepStats {
    /// Cost `A = Y + ε·D` *before* the routing update.
    pub cost_before: f64,
    /// Routing-mass movement of the Γ application.
    pub gamma: GammaStats,
}

/// A solution snapshot mapped back to problem terms.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Iterations performed so far.
    pub iterations: usize,
    /// Overall system utility `Σ_j U_j(a_j)`.
    pub utility: f64,
    /// The relaxed cost `A = Y + ε·D` (what the algorithm minimizes).
    pub cost: f64,
    /// Admitted rate `a_j` per commodity.
    pub admitted: Vec<f64>,
    /// Data rate delivered at each commodity's sink.
    pub delivered: Vec<f64>,
    /// Physical node/link resource usage.
    pub loads: PhysicalLoads,
    /// Highest node or link utilization (fraction of capacity).
    pub max_utilization: f64,
}

impl Report {
    /// Per-(commodity, out-edge) resource allocation at a node: how much
    /// of the node's budget the local optimization assigns to each
    /// processing task, given this snapshot's flows.
    #[must_use]
    pub fn node_allocations(
        alg: &GradientAlgorithm,
        node: NodeId,
    ) -> Vec<(spn_model::CommodityId, spn_graph::EdgeId, f64)> {
        let ext = alg.extended();
        let state = alg.flows();
        let mut out = Vec::new();
        for j in ext.commodity_ids() {
            for l in ext.commodity_out_edges(j, node) {
                let alloc = state.traffic(j, node) * alg.routing().fraction(j, l) * ext.cost(j, l);
                if alloc > 0.0 {
                    out.push((j, l, alloc));
                }
            }
        }
        out
    }
}

/// Resolves a requested thread count: `0` means "auto" — the machine's
/// available parallelism, capped at the commodity count (the fused
/// step's phases are per-commodity, so extra workers would only park).
/// Explicit requests are honored as given (the Γ phase can still split
/// a commodity across workers by router chunk).
fn resolve_threads(requested: usize, available: usize, commodities: usize) -> usize {
    if requested == 0 {
        available.min(commodities.max(1)).max(1)
    } else {
        requested.max(1)
    }
}

/// The distributed gradient-based algorithm over an extended network.
#[derive(Debug)]
pub struct GradientAlgorithm {
    ext: ExtendedNetwork,
    cost: CostModel,
    config: GradientConfig,
    routing: RoutingTable,
    state: FlowState,
    marginals: Marginals,
    iterations: usize,
    /// Resolved worker count (see [`resolve_threads`]).
    threads: usize,
    /// Reusable scratch: per-commodity usage partials and Γ lanes.
    workspace: IterationWorkspace,
    /// Reusable blocking-tag buffer (eq. (18)).
    tags: BlockedTags,
    /// Activity tracker + live-arc sub-lists for the sparsity-aware
    /// engine ([`GradientConfig::sparsity`]); dormant (never sized)
    /// while the dense engine runs.
    active: ActiveSet,
    /// Persistent worker pool (`Some` iff the resolved thread count is
    /// above 1): spawned once, parked between steps, joined on drop.
    pool: Option<WorkerPool>,
    /// Commodity-set epoch: bumped by every
    /// [`admit_commodity`](GradientAlgorithm::admit_commodity) /
    /// [`evict_commodity`](GradientAlgorithm::evict_commodity) reshape
    /// so checkpoints taken against a different commodity set are
    /// rejected structurally on restore.
    epoch: u64,
    /// Incremental per-node penalty/wall values for the `cost_before`
    /// probe (bit-identical to the naive scan; see [`TotalCostCache`]).
    cost_cache: TotalCostCache,
}

impl Clone for GradientAlgorithm {
    /// Clones the full algorithm state; the clone gets its own fresh
    /// worker pool of the same size (threads are not shareable).
    fn clone(&self) -> Self {
        GradientAlgorithm {
            ext: self.ext.clone(),
            cost: self.cost,
            config: self.config,
            routing: self.routing.clone(),
            state: self.state.clone(),
            marginals: self.marginals.clone(),
            iterations: self.iterations,
            threads: self.threads,
            workspace: self.workspace.clone(),
            tags: self.tags.clone(),
            active: self.active.clone(),
            pool: self
                .pool
                .as_ref()
                .map(|p| WorkerPool::new(p.participants())),
            epoch: self.epoch,
            cost_cache: self.cost_cache.clone(),
        }
    }
}

impl GradientAlgorithm {
    /// Builds the algorithm for a validated problem: applies the §3
    /// transformations and installs the fully-rejecting initial routing.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-positive `η`/`ε` or a negative
    /// traffic floor.
    pub fn new(problem: &Problem, config: GradientConfig) -> Result<Self, ConfigError> {
        Self::from_extended(ExtendedNetwork::build(problem), config)
    }

    /// Builds the algorithm over an already-transformed network (shared
    /// with the simulator and with experiment code that mutates
    /// capacities).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid tunables.
    pub fn from_extended(
        ext: ExtendedNetwork,
        config: GradientConfig,
    ) -> Result<Self, ConfigError> {
        if !(config.eta.is_finite() && config.eta > 0.0) {
            return Err(ConfigError::BadEta(config.eta));
        }
        if !(config.epsilon.is_finite() && config.epsilon > 0.0) {
            return Err(ConfigError::BadEpsilon(config.epsilon));
        }
        if !(config.traffic_floor.is_finite() && config.traffic_floor >= 0.0) {
            return Err(ConfigError::BadTrafficFloor(config.traffic_floor));
        }
        if !(config.opening_fraction.is_finite() && config.opening_fraction >= 0.0) {
            return Err(ConfigError::BadOpeningFraction(config.opening_fraction));
        }
        if !(config.shift_cap.is_finite() && config.shift_cap > 0.0) {
            return Err(ConfigError::BadShiftCap(config.shift_cap));
        }
        let cost = CostModel {
            penalty: config.penalty,
            epsilon: config.epsilon,
            wall_threshold: config.wall_threshold,
            wall_strength: config.wall_strength,
        };
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let threads = resolve_threads(config.threads, available, ext.num_commodities());
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        let routing = RoutingTable::initial(&ext);
        let mut workspace = IterationWorkspace::new(&ext);
        workspace.ensure_workers(&ext, threads);
        let mut state = FlowState::zeros(&ext);
        compute_flows_into(&ext, &routing, &mut state, &mut workspace, pool.as_ref());
        let mut marginals = Marginals::zeros(&ext);
        compute_marginals_into(&ext, &cost, &routing, &state, &mut marginals, pool.as_ref());
        let tags = BlockedTags::none(&ext);
        Ok(GradientAlgorithm {
            ext,
            cost,
            config,
            routing,
            state,
            marginals,
            iterations: 0,
            threads,
            workspace,
            tags,
            active: ActiveSet::default(),
            pool,
            epoch: 0,
            cost_cache: TotalCostCache::default(),
        })
    }

    /// Performs one full protocol iteration; returns its statistics.
    ///
    /// Heap-allocation-free in steady state for every resolved thread
    /// count: the serial path reads and writes the preallocated buffers
    /// owned by `self`, and the pooled path additionally performs zero
    /// thread spawns — one fused dispatch wakes the persistent workers,
    /// carries each commodity through tags → Γ → flows, reduces the
    /// usage totals in fixed commodity order, and sweeps the marginals
    /// (both properties are pinned by tests).
    pub fn step(&mut self) -> StepStats {
        let backend = crate::simd::resolve(self.config.simd);
        let cost_before = self.cost.total_cost_cached(
            &self.ext,
            &self.state,
            &mut self.cost_cache,
            |usages, bits, changed| crate::simd::scan_changed(backend, usages, bits, changed),
            |xs| crate::simd::sum_row(backend, xs),
        );
        // ε-annealing schedule (no-op when epsilon_factor == 1.0),
        // decided up front so the fused path can split its dispatch
        // around the epsilon mutation.
        let will_anneal = self.config.epsilon_factor < 1.0
            && (self.iterations + 1).is_multiple_of(self.config.epsilon_interval)
            && self.cost.epsilon > self.config.epsilon_min;
        let anneal_to = will_anneal
            .then(|| (self.cost.epsilon * self.config.epsilon_factor).max(self.config.epsilon_min));
        let gamma = if let Some(pool) = &self.pool {
            if self.config.sparsity {
                fused_step_sparse(
                    &self.ext,
                    &mut self.cost,
                    &self.config,
                    pool,
                    &mut self.routing,
                    &mut self.state,
                    &mut self.marginals,
                    &mut self.tags,
                    &mut self.workspace,
                    &mut self.active,
                    anneal_to,
                )
            } else {
                fused_step(
                    &self.ext,
                    &mut self.cost,
                    &self.config,
                    pool,
                    &mut self.routing,
                    &mut self.state,
                    &mut self.marginals,
                    &mut self.tags,
                    &mut self.workspace,
                    anneal_to,
                )
            }
        } else if self.config.sparsity {
            sparse_step_serial(
                &self.ext,
                &mut self.cost,
                &self.config,
                &mut self.routing,
                &mut self.state,
                &mut self.marginals,
                &mut self.tags,
                &mut self.workspace,
                &mut self.active,
                anneal_to,
            )
        } else {
            if self.config.use_blocked_sets {
                compute_tags_into(
                    &self.ext,
                    &self.cost,
                    &self.routing,
                    &self.state,
                    &self.marginals,
                    self.config.eta,
                    self.config.traffic_floor,
                    &mut self.tags,
                    None,
                );
            } else {
                self.tags.reset(&self.ext);
            }
            let gamma = apply_gamma_ws(
                &self.ext,
                &self.cost,
                &mut self.routing,
                &self.state,
                &self.marginals,
                &self.tags,
                self.config.eta,
                self.config.traffic_floor,
                self.config.opening_fraction,
                self.config.shift_cap,
                &mut self.workspace,
                None,
            );
            // Forecast flows for the new decision and refresh marginals
            // so the next iteration (and external reports) see
            // consistent state.
            compute_flows_into(
                &self.ext,
                &self.routing,
                &mut self.state,
                &mut self.workspace,
                None,
            );
            if let Some(eps) = anneal_to {
                self.cost.epsilon = eps;
            }
            compute_marginals_into(
                &self.ext,
                &self.cost,
                &self.routing,
                &self.state,
                &mut self.marginals,
                None,
            );
            gamma
        };
        self.iterations += 1;
        StepStats { cost_before, gamma }
    }

    /// Runs `iterations` steps, returning the final report.
    pub fn run(&mut self, iterations: usize) -> Report {
        for _ in 0..iterations {
            self.step();
        }
        self.report()
    }

    /// Runs until the per-step total routing shift drops below
    /// `shift_tolerance` or `max_iterations` is hit. The returned
    /// [`StableOutcome`] says how many iterations this call performed
    /// *and* whether the tolerance was actually met — previously the
    /// bare count made "converged on the final allowed step" and "gave
    /// up at the cap" indistinguishable.
    pub fn run_until_stable(
        &mut self,
        shift_tolerance: f64,
        max_iterations: usize,
    ) -> StableOutcome {
        for done in 0..max_iterations {
            let stats = self.step();
            if stats.gamma.total_shift < shift_tolerance {
                return StableOutcome {
                    iterations: done + 1,
                    converged: true,
                };
            }
        }
        StableOutcome {
            iterations: max_iterations,
            converged: false,
        }
    }

    /// Like [`run_until_stable`](GradientAlgorithm::run_until_stable),
    /// but also stops when the run enters a **limit cycle**: at a fixed
    /// step rate the routing can orbit the optimum forever, so the
    /// per-step total shift plateaus above any useful tolerance and the
    /// plain loop burns the whole iteration cap learning nothing.
    ///
    /// The detector tracks the minimum total shift seen so far; if no
    /// *meaningfully* lower minimum appears for `window` consecutive
    /// steps, the shift norm has stopped improving and the call returns
    /// early. "Meaningful" is a relative margin (0.1%): a genuinely
    /// converging run descends geometrically and clears it easily,
    /// while the slow float-noise drift of a limit cycle's envelope
    /// does not get to postpone the stop forever.
    ///
    /// The returned [`StableOutcome`] keeps its contract: `converged`
    /// is `true` only when the shift tolerance was actually met. An
    /// oscillation stop reports `converged: false` with
    /// `iterations < max_iterations`, distinguishing it from cap
    /// exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (every step would look like a
    /// plateau).
    pub fn run_until_stable_windowed(
        &mut self,
        shift_tolerance: f64,
        window: usize,
        max_iterations: usize,
    ) -> StableOutcome {
        assert!(window > 0, "window must be at least 1");
        /// A new minimum must undercut the previous best by this
        /// relative margin to count as progress.
        const MIN_RELATIVE_IMPROVEMENT: f64 = 1e-3;
        let mut best_shift = f64::INFINITY;
        let mut steps_since_improvement = 0usize;
        for done in 0..max_iterations {
            let stats = self.step();
            if stats.gamma.total_shift < shift_tolerance {
                return StableOutcome {
                    iterations: done + 1,
                    converged: true,
                };
            }
            if stats.gamma.total_shift < best_shift * (1.0 - MIN_RELATIVE_IMPROVEMENT) {
                best_shift = stats.gamma.total_shift;
                steps_since_improvement = 0;
            } else {
                steps_since_improvement += 1;
                if steps_since_improvement >= window {
                    return StableOutcome {
                        iterations: done + 1,
                        converged: false,
                    };
                }
            }
        }
        StableOutcome {
            iterations: max_iterations,
            converged: false,
        }
    }

    /// Current total utility `Σ_j U_j(a_j)` — the scalar the watchdog
    /// tracks every step. Allocation-free, unlike the full
    /// [`report`](GradientAlgorithm::report).
    #[must_use]
    pub fn utility(&self) -> f64 {
        self.ext
            .commodity_ids()
            .map(|j| {
                self.ext
                    .commodity(j)
                    .utility
                    .value(self.state.admitted(&self.ext, j))
            })
            .sum()
    }

    /// Snapshots the full trajectory-determining state — routing `φ`,
    /// flows, marginals, iteration counter, and the runtime-drifting
    /// tunables (annealed ε, watchdog-adjusted η) — into a fresh
    /// [`Checkpoint`]. Prefer
    /// [`checkpoint_into`](GradientAlgorithm::checkpoint_into) in loops:
    /// it reuses the buffers and is allocation-free after the first
    /// capture.
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        let mut ck = Checkpoint::new();
        self.checkpoint_into(&mut ck);
        ck
    }

    /// Refreshes `into` with the current state. Buffers are refilled in
    /// place (`clear` + `extend_from_slice`), so once `into` has seen a
    /// capture of this shape the call performs no heap allocation —
    /// pinned by the zero-alloc suite.
    pub fn checkpoint_into(&self, into: &mut Checkpoint) {
        Checkpoint::refill(&mut into.phi, self.routing.flat());
        Checkpoint::refill(&mut into.t, &self.state.t);
        Checkpoint::refill(&mut into.x, &self.state.x);
        Checkpoint::refill(&mut into.f_edge, &self.state.f_edge);
        Checkpoint::refill(&mut into.f_node, &self.state.f_node);
        Checkpoint::refill(&mut into.d, &self.marginals.d);
        into.iterations = self.iterations;
        into.epsilon = self.cost.epsilon;
        into.eta = self.config.eta;
        into.epoch = self.epoch;
        into.captured = true;
    }

    /// Rolls the algorithm back to `ck`, bit-for-bit: straight buffer
    /// copies, no recomputation — stepping from the restored state
    /// replays the original trajectory exactly. The environment (the
    /// extended network's capacities and demands) is *not* part of the
    /// checkpoint: rolling back past a failure does not un-fail the
    /// node, which is exactly what recovery experiments need.
    /// Allocation-free.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyCheckpoint`] if `ck` never captured state;
    /// [`CoreError::EpochMismatch`] if the commodity set was reshaped
    /// (admit/evict) since the capture — even when the buffer sizes
    /// happen to agree, the row layouts describe different commodities;
    /// [`CoreError::ShapeMismatch`] if it was captured from a
    /// differently-shaped instance. The algorithm is unchanged on error.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), CoreError> {
        if !ck.captured {
            return Err(CoreError::EmptyCheckpoint);
        }
        if ck.epoch != self.epoch {
            return Err(CoreError::EpochMismatch {
                expected: self.epoch,
                got: ck.epoch,
            });
        }
        let check = |what: &'static str, expected: usize, got: usize| {
            if expected == got {
                Ok(())
            } else {
                Err(CoreError::ShapeMismatch {
                    what,
                    expected,
                    got,
                })
            }
        };
        check("phi", self.routing.flat().len(), ck.phi.len())?;
        check("t", self.state.t.len(), ck.t.len())?;
        check("x", self.state.x.len(), ck.x.len())?;
        check("f_edge", self.state.f_edge.len(), ck.f_edge.len())?;
        check("f_node", self.state.f_node.len(), ck.f_node.len())?;
        check("d", self.marginals.d.len(), ck.d.len())?;
        self.routing.flat_mut().copy_from_slice(&ck.phi);
        self.state.t.copy_from_slice(&ck.t);
        self.state.x.copy_from_slice(&ck.x);
        self.state.f_edge.copy_from_slice(&ck.f_edge);
        self.state.f_node.copy_from_slice(&ck.f_node);
        self.marginals.d.copy_from_slice(&ck.d);
        self.iterations = ck.iterations;
        self.cost.epsilon = ck.epsilon;
        self.config.eta = ck.eta;
        // The restored state has nothing to do with what the active-set
        // tracker observed last step; force one dense iteration.
        self.active.invalidate();
        Ok(())
    }

    /// Overrides the step size `η` mid-run — the watchdog's backoff
    /// hook (and its slow recovery after an incident clears).
    ///
    /// # Panics
    ///
    /// Panics unless `eta` is finite and positive (the same contract
    /// [`GradientAlgorithm::new`] validates).
    pub fn set_eta(&mut self, eta: f64) {
        assert!(
            eta.is_finite() && eta > 0.0,
            "eta must be finite and positive, got {eta}"
        );
        self.config.eta = eta;
        // η scales every Γ shift: quiescent commodities may move again.
        self.active.invalidate();
    }

    /// Current solution snapshot in problem terms.
    #[must_use]
    pub fn report(&self) -> Report {
        let admitted: Vec<f64> = self
            .ext
            .commodity_ids()
            .map(|j| self.state.admitted(&self.ext, j))
            .collect();
        let delivered: Vec<f64> = self
            .ext
            .commodity_ids()
            .map(|j| self.state.delivered(&self.ext, j))
            .collect();
        let utility: f64 = self
            .ext
            .commodity_ids()
            .zip(&admitted)
            .map(|(j, &a)| self.ext.commodity(j).utility.value(a))
            .sum();
        let loads = physical_loads(&self.ext, self.state.node_usages());
        let max_utilization = self
            .ext
            .graph()
            .nodes()
            .map(|v| self.ext.capacity(v).utilization(self.state.node_usage(v)))
            .fold(0.0, f64::max);
        Report {
            iterations: self.iterations,
            utility,
            cost: self.cost.total_cost(&self.ext, &self.state),
            admitted,
            delivered,
            loads,
            max_utilization,
        }
    }

    /// The extended network the algorithm runs on.
    #[must_use]
    pub fn extended(&self) -> &ExtendedNetwork {
        &self.ext
    }

    /// Mutable access to the extended network, for dynamic-demand and
    /// failure experiments (`set_max_rate`, `set_capacity`). Flows and
    /// marginals refresh on the next [`GradientAlgorithm::step`].
    pub fn extended_mut(&mut self) -> &mut ExtendedNetwork {
        // Capacity/demand edits change every pass's inputs behind the
        // tracker's back; force one dense iteration.
        self.active.invalidate();
        &mut self.ext
    }

    /// The current routing decision.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The current flow state (consistent with [`Self::routing`]).
    #[must_use]
    pub fn flows(&self) -> &FlowState {
        &self.state
    }

    /// Mutable flow state — a corruption hook for fault-injection tests
    /// (pair with [`FlowState::traffic_mut`]). Not part of the stable
    /// API.
    #[doc(hidden)]
    pub fn flows_mut(&mut self) -> &mut FlowState {
        self.active.invalidate();
        &mut self.state
    }

    /// The current marginal costs.
    #[must_use]
    pub fn marginals(&self) -> &Marginals {
        &self.marginals
    }

    /// The cost model in effect.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &GradientConfig {
        &self.config
    }

    /// Iterations performed so far.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The resolved worker count in effect (≥ 1; `1` means the serial,
    /// pool-free path).
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        self.threads
    }

    /// Reconfigures the worker count mid-run: re-resolves `threads`
    /// (`0` = auto, capped at the commodity count) and rebuilds or
    /// drops the persistent pool accordingly. The trajectory is
    /// unaffected — results are bit-identical for every thread count
    /// (ARCHITECTURE invariant 9).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let resolved = resolve_threads(threads, available, self.ext.num_commodities());
        if resolved == self.threads {
            return;
        }
        self.threads = resolved;
        self.pool = (resolved > 1).then(|| WorkerPool::new(resolved));
        self.workspace.ensure_workers(&self.ext, resolved);
    }

    /// Overwrites the routing decision (used by failure-injection
    /// experiments to apply local repairs) and recomputes flows and
    /// marginals.
    ///
    /// # Panics
    ///
    /// Panics if the new table fails [`RoutingTable::validate`].
    pub fn install_routing(&mut self, routing: RoutingTable) {
        routing
            .validate(&self.ext)
            .expect("installed routing must be valid");
        self.routing = routing;
        self.active.invalidate();
        compute_flows_into(
            &self.ext,
            &self.routing,
            &mut self.state,
            &mut self.workspace,
            self.pool.as_ref(),
        );
        compute_marginals_into(
            &self.ext,
            &self.cost,
            &self.routing,
            &self.state,
            &mut self.marginals,
            self.pool.as_ref(),
        );
    }

    /// The commodity-set epoch: starts at 0 and is bumped by every
    /// [`admit_commodity`](GradientAlgorithm::admit_commodity) /
    /// [`evict_commodity`](GradientAlgorithm::evict_commodity) reshape.
    /// Checkpoints record the epoch at capture, and
    /// [`restore`](GradientAlgorithm::restore) rejects a capture from a
    /// different epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Admits a new commodity online: extends the shared extended
    /// network in place ([`ExtendedNetwork::add_commodity`]) and
    /// restrides every state buffer, without rebuilding the physical or
    /// bandwidth layers. Survivors keep their routing fractions, flows,
    /// and marginals bit-for-bit (pinned by tests): the newcomer starts
    /// fully rejecting, and its only load — its own dummy node and
    /// difference edge — lies outside every survivor's subgraph, so
    /// recomputation reproduces the survivors' values exactly. Bumps
    /// the commodity-set epoch, invalidating earlier checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `def` is invalid (see
    /// [`ExtendedNetwork::add_commodity`]).
    pub fn admit_commodity(&mut self, def: CommodityDef) -> CommodityId {
        let j = self.ext.add_commodity(def);
        self.routing.admit(&self.ext, j);
        self.reshape_state();
        // The newcomer needs a consistent marginal view before its
        // first step; survivors' marginals recompute bit-identically
        // (their flows and the shared usage totals they see are
        // unchanged — the newcomer's load sits on its private dummy
        // node and difference edge).
        compute_marginals_into(
            &self.ext,
            &self.cost,
            &self.routing,
            &self.state,
            &mut self.marginals,
            self.pool.as_ref(),
        );
        j
    }

    /// Evicts a live commodity online: removes its dummy source, input
    /// and difference edges, and per-commodity rows from the shared
    /// extended network ([`ExtendedNetwork::remove_commodity`]) and
    /// restrides every state buffer. Survivors keep their routing
    /// fractions and marginals bit-for-bit (pinned by tests); flows are
    /// recomputed because the departed commodity's contribution leaves
    /// the shared usage totals. Later commodities shift down one id,
    /// mirroring the extended network's renumbering. Bumps the
    /// commodity-set epoch, invalidating earlier checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or is the last remaining commodity
    /// (an empty commodity set has no meaningful iteration).
    pub fn evict_commodity(&mut self, j: CommodityId) {
        let j_count = self.ext.num_commodities();
        assert!(j.index() < j_count, "commodity {j} is not in the network");
        assert!(j_count > 1, "cannot evict the last commodity");
        let jr = j.index();
        let d = self.ext.dummy_source(j).index();
        let er0 = self.ext.input_edge(j).index();
        self.ext.remove_commodity(j);
        self.routing.evict(jr, er0);
        self.marginals.evict(jr, d);
        self.reshape_state();
    }

    /// Shared tail of a commodity-set reshape: re-resolves the worker
    /// count (auto mode caps at the commodity count), resizes the
    /// workspace, recomputes flows for the new commodity set (survivor
    /// rows reproduce bit-for-bit; the totals reduce in ascending
    /// commodity order as always), clears blocking tags, forces one
    /// dense iteration, and bumps the epoch.
    fn reshape_state(&mut self) {
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let resolved = resolve_threads(self.config.threads, available, self.ext.num_commodities());
        if resolved != self.threads {
            self.threads = resolved;
            self.pool = (resolved > 1).then(|| WorkerPool::new(resolved));
        }
        self.workspace.ensure_workers(&self.ext, self.threads);
        compute_flows_into(
            &self.ext,
            &self.routing,
            &mut self.state,
            &mut self.workspace,
            self.pool.as_ref(),
        );
        self.tags.reset(&self.ext);
        self.active.invalidate();
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::builder::ProblemBuilder;
    use spn_model::{CommodityId, UtilityFn};

    /// s → x → t; capacity allows ~5 units through (x: cap 10, c=2).
    fn bottleneck_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let s = b.server(100.0);
        let x = b.server(10.0);
        let t = b.server(100.0);
        let e1 = b.link(s, x, 100.0);
        let e2 = b.link(x, t, 100.0);
        let j = b.commodity(s, t, 20.0, UtilityFn::throughput());
        b.uses(j, e1, 1.0, 1.0).uses(j, e2, 2.0, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn config_validation() {
        let p = bottleneck_problem();
        let bad_eta = GradientConfig {
            eta: 0.0,
            ..GradientConfig::default()
        };
        assert!(matches!(
            GradientAlgorithm::new(&p, bad_eta),
            Err(ConfigError::BadEta(_))
        ));
        let bad_eps = GradientConfig {
            epsilon: -1.0,
            ..GradientConfig::default()
        };
        assert!(matches!(
            GradientAlgorithm::new(&p, bad_eps),
            Err(ConfigError::BadEpsilon(_))
        ));
        let bad_floor = GradientConfig {
            traffic_floor: f64::NAN,
            ..GradientConfig::default()
        };
        assert!(matches!(
            GradientAlgorithm::new(&p, bad_floor),
            Err(ConfigError::BadTrafficFloor(_))
        ));
        assert!(!format!("{}", ConfigError::BadEta(0.0)).is_empty());
    }

    #[test]
    fn starts_fully_rejecting() {
        let p = bottleneck_problem();
        let alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let r = alg.report();
        assert_eq!(r.iterations, 0);
        assert_eq!(r.utility, 0.0);
        assert_eq!(r.admitted, vec![0.0]);
        assert_eq!(r.max_utilization, 0.0);
    }

    #[test]
    fn admission_grows_and_respects_capacity() {
        let p = bottleneck_problem();
        let cfg = GradientConfig {
            eta: 0.5,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        let r = alg.run(800);
        // the x bottleneck admits at most 10/2 = 5 units
        assert!(r.admitted[0] > 3.5, "admitted {} too low", r.admitted[0]);
        assert!(
            r.admitted[0] <= 5.0 + 1e-6,
            "admitted {} exceeds capacity",
            r.admitted[0]
        );
        assert!(r.max_utilization <= 1.0 + 1e-9);
        assert!(r.utility > 0.0);
        alg.routing().validate(alg.extended()).unwrap();
        assert!(alg.routing().is_loop_free(alg.extended()));
    }

    #[test]
    fn utility_is_near_monotone() {
        let p = bottleneck_problem();
        // larger ε smooths the barrier; with the default ε = 5e-4 and a
        // large η the equilibrium is a benign ±shift_cap limit cycle
        let cfg = GradientConfig {
            eta: 0.2,
            epsilon: 0.002,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        let mut last = 0.0;
        let mut max_drop: f64 = 0.0;
        for _ in 0..400 {
            alg.step();
            let u = alg.report().utility;
            max_drop = max_drop.max(last - u);
            last = u;
        }
        assert!(max_drop < 0.05, "utility dropped by {max_drop}");
    }

    #[test]
    fn unconstrained_problem_admits_everything() {
        let mut b = ProblemBuilder::new();
        let s = b.server(1e6);
        let t = b.server(1e6);
        let e = b.link(s, t, 1e6);
        let j = b.commodity(s, t, 5.0, UtilityFn::throughput());
        b.uses(j, e, 1.0, 1.0);
        let p = b.build().unwrap();
        let cfg = GradientConfig {
            eta: 0.5,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        let r = alg.run(500);
        assert!(r.admitted[0] > 4.9, "admitted {} of 5", r.admitted[0]);
        assert!((r.delivered[0] - r.admitted[0]).abs() < 1e-9);
    }

    #[test]
    fn run_until_stable_terminates() {
        let p = bottleneck_problem();
        let cfg = GradientConfig {
            eta: 0.3,
            epsilon: 0.002,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        let outcome = alg.run_until_stable(1e-10, 20_000);
        assert!(outcome.converged, "did not stabilize");
        assert!(outcome.iterations < 20_000);
        assert_eq!(alg.iterations(), outcome.iterations);
        let r = alg.report();
        assert!(r.admitted[0] > 3.0);
    }

    #[test]
    fn run_until_stable_reports_cap_exhaustion() {
        let p = bottleneck_problem();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        // A tolerance of zero can never be met (shifts are >= 0).
        let outcome = alg.run_until_stable(0.0, 7);
        assert_eq!(
            outcome,
            StableOutcome {
                iterations: 7,
                converged: false
            }
        );
    }

    #[test]
    fn windowed_stop_converges_like_plain_when_descending() {
        let p = bottleneck_problem();
        let cfg = GradientConfig {
            eta: 0.3,
            epsilon: 0.002,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        let outcome = alg.run_until_stable_windowed(1e-10, 200, 20_000);
        assert!(outcome.converged, "descending run should meet tolerance");
        assert!(outcome.iterations < 20_000);
        let r = alg.report();
        assert!(r.admitted[0] > 3.0);
    }

    #[test]
    fn windowed_stop_detects_limit_cycle() {
        // The default (large) step rate on the bottleneck problem
        // orbits the optimum: the total shift plateaus above any
        // useful tolerance, so the plain loop would burn the whole
        // cap. The window-min rule must cut the run short.
        let p = bottleneck_problem();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let cap = 50_000;
        let outcome = alg.run_until_stable_windowed(0.0, 50, cap);
        assert!(!outcome.converged, "tolerance of zero can never be met");
        assert!(
            outcome.iterations < cap,
            "oscillation was not detected: ran all {} iterations",
            outcome.iterations
        );
        // The stop must still leave a sensible solution behind.
        let r = alg.report();
        assert!(r.admitted[0] > 3.0);
    }

    #[test]
    fn step_stats_reflect_progress() {
        let p = bottleneck_problem();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let s1 = alg.step();
        assert!(s1.gamma.rows > 0);
        // initial cost = full utility loss = λ = 20
        assert!((s1.cost_before - 20.0).abs() < 1e-9);
    }

    #[test]
    fn report_allocations_decompose_node_usage() {
        let p = bottleneck_problem();
        let cfg = GradientConfig {
            eta: 0.5,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        alg.run(300);
        let x = spn_graph::NodeId::from_index(1);
        let allocs = Report::node_allocations(&alg, x);
        let total: f64 = allocs.iter().map(|&(_, _, a)| a).sum();
        assert!((total - alg.flows().node_usage(x)).abs() < 1e-9);
        assert!(!allocs.is_empty());
        assert_eq!(allocs[0].0, CommodityId::from_index(0));
    }

    #[test]
    fn blocked_sets_do_not_change_dag_fixed_point() {
        let p = bottleneck_problem();
        let with = GradientConfig {
            eta: 0.3,
            ..GradientConfig::default()
        };
        let without = GradientConfig {
            eta: 0.3,
            use_blocked_sets: false,
            ..GradientConfig::default()
        };
        let mut a = GradientAlgorithm::new(&p, with).unwrap();
        let mut b = GradientAlgorithm::new(&p, without).unwrap();
        let ra = a.run(2000);
        let rb = b.run(2000);
        assert!(
            (ra.utility - rb.utility).abs() < 1e-3,
            "blocked sets changed the DAG fixed point: {} vs {}",
            ra.utility,
            rb.utility
        );
    }

    #[test]
    fn thread_resolution_caps_auto_at_commodities() {
        // auto: capped by both available parallelism and commodities
        assert_eq!(resolve_threads(0, 8, 3), 3);
        assert_eq!(resolve_threads(0, 2, 5), 2);
        assert_eq!(resolve_threads(0, 8, 0), 1);
        assert_eq!(resolve_threads(0, 1, 5), 1);
        // explicit requests are honored (Γ still splits by chunk)
        assert_eq!(resolve_threads(4, 1, 1), 4);
        assert_eq!(resolve_threads(1, 8, 5), 1);
    }

    #[test]
    fn set_threads_rebuilds_or_drops_the_pool() {
        let p = bottleneck_problem();
        let cfg = GradientConfig {
            threads: 3,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        assert_eq!(alg.resolved_threads(), 3);
        alg.step();
        alg.set_threads(1);
        assert_eq!(alg.resolved_threads(), 1);
        alg.step();
        alg.set_threads(2);
        assert_eq!(alg.resolved_threads(), 2);
        alg.step();
        // auto on this problem: capped at 1 commodity ⇒ serial
        alg.set_threads(0);
        assert_eq!(alg.resolved_threads(), 1);
        alg.step();
    }

    #[test]
    fn clone_gets_its_own_pool_and_identical_trajectory() {
        let p = bottleneck_problem();
        let cfg = GradientConfig {
            threads: 2,
            ..GradientConfig::default()
        };
        let mut a = GradientAlgorithm::new(&p, cfg).unwrap();
        a.run(10);
        let mut b = a.clone();
        let ra = a.run(25);
        let rb = b.run(25);
        assert_eq!(ra.utility.to_bits(), rb.utility.to_bits());
        assert_eq!(a.routing(), b.routing());
    }

    #[test]
    fn install_routing_resets_state() {
        let p = bottleneck_problem();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        alg.run(50);
        let fresh = RoutingTable::initial(alg.extended());
        alg.install_routing(fresh);
        let r = alg.report();
        assert_eq!(r.admitted, vec![0.0]);
    }

    fn random_three() -> Problem {
        spn_model::random::RandomInstance::builder()
            .nodes(15)
            .commodities(3)
            .seed(11)
            .build()
            .unwrap()
            .problem
    }

    /// Routing fraction bits for commodity `j` over the first `l_count`
    /// edge ids.
    fn phi_bits(alg: &GradientAlgorithm, j: usize, l_count: usize) -> Vec<u64> {
        let j = CommodityId::from_index(j);
        (0..l_count)
            .map(|l| {
                alg.routing()
                    .fraction(j, spn_graph::EdgeId::from_index(l))
                    .to_bits()
            })
            .collect()
    }

    /// (traffic, marginal) bits for commodity `j` over the first
    /// `v_count` node ids.
    fn node_bits(alg: &GradientAlgorithm, j: usize, v_count: usize) -> Vec<(u64, u64)> {
        let j = CommodityId::from_index(j);
        (0..v_count)
            .map(|v| {
                let v = NodeId::from_index(v);
                (
                    alg.flows().traffic(j, v).to_bits(),
                    alg.marginals().node(j, v).to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn admit_preserves_survivors_bitwise() {
        let p = random_three();
        let cfg = GradientConfig {
            eta: 0.2,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        alg.run(150);
        let old_l = alg.extended().graph().edge_count();
        let old_v = alg.extended().graph().node_count();
        let phi_before: Vec<_> = (0..3).map(|j| phi_bits(&alg, j, old_l)).collect();
        let nodes_before: Vec<_> = (0..3).map(|j| node_bits(&alg, j, old_v)).collect();
        // Admit a twin of commodity 0 (same endpoints, rate, subgraph).
        let def = alg.extended().commodity_def(CommodityId::from_index(0));
        let j_new = alg.admit_commodity(def);
        assert_eq!(j_new.index(), 3);
        assert_eq!(alg.epoch(), 1);
        assert_eq!(alg.extended().num_commodities(), 4);
        for j in 0..3 {
            assert_eq!(phi_bits(&alg, j, old_l), phi_before[j], "phi moved for {j}");
            assert_eq!(
                node_bits(&alg, j, old_v),
                nodes_before[j],
                "flows/marginals moved for {j}"
            );
        }
        // The newcomer starts fully rejecting, like a fresh build would.
        assert_eq!(alg.flows().admitted(alg.extended(), j_new), 0.0);
        // And iteration proceeds from the reshaped state.
        alg.step();
        assert!(alg.utility().is_finite());
    }

    #[test]
    fn evict_preserves_survivors_bitwise() {
        let p = random_three();
        let cfg = GradientConfig {
            eta: 0.2,
            ..GradientConfig::default()
        };
        let mut alg = GradientAlgorithm::new(&p, cfg).unwrap();
        alg.run(150);
        let old_l = alg.extended().graph().edge_count();
        let old_v = alg.extended().graph().node_count();
        let victim = CommodityId::from_index(1);
        let d = alg.extended().dummy_source(victim).index();
        let er0 = alg.extended().input_edge(victim).index();
        let phi_before: Vec<_> = [0, 2].map(|j| phi_bits(&alg, j, old_l)).into();
        let nodes_before: Vec<_> = [0, 2].map(|j| node_bits(&alg, j, old_v)).into();
        alg.evict_commodity(victim);
        assert_eq!(alg.epoch(), 1);
        assert_eq!(alg.extended().num_commodities(), 2);
        for (new_j, old_row) in phi_before.iter().enumerate() {
            let after = phi_bits(&alg, new_j, old_l - 2);
            for (old_e, &bits) in old_row.iter().enumerate() {
                if old_e == er0 || old_e == er0 + 1 {
                    continue; // the victim's dummy links are gone
                }
                let new_e = if old_e > er0 + 1 { old_e - 2 } else { old_e };
                assert_eq!(after[new_e], bits, "phi moved at edge {old_e}");
            }
        }
        for (new_j, old_row) in nodes_before.iter().enumerate() {
            let after = node_bits(&alg, new_j, old_v - 1);
            for (old_v_id, &(_, marg)) in old_row.iter().enumerate() {
                if old_v_id == d {
                    continue; // the victim's dummy source is gone
                }
                let new_v = if old_v_id > d { old_v_id - 1 } else { old_v_id };
                // Marginals are preserved verbatim (not recomputed);
                // traffic rows recompute bit-identically but the test
                // pins only the preserved quantity here — flows are
                // covered by the integration suite.
                assert_eq!(after[new_v].1, marg, "marginal moved at node {old_v_id}");
                assert_eq!(
                    after[new_v].0, old_row[old_v_id].0,
                    "traffic moved at node {old_v_id}"
                );
            }
        }
        alg.step();
        assert!(alg.utility().is_finite());
    }

    #[test]
    fn evicting_the_last_commodity_panics() {
        let p = bottleneck_problem();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            alg.evict_commodity(CommodityId::from_index(0));
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| err.downcast_ref::<String>().map(String::as_str))
            .unwrap();
        assert!(msg.contains("last commodity"), "unexpected panic: {msg}");
    }

    #[test]
    fn restore_across_reshape_is_rejected() {
        let p = random_three();
        let mut alg = GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        alg.run(40);
        let ck = alg.checkpoint();
        let def = alg.extended().commodity_def(CommodityId::from_index(2));
        alg.evict_commodity(CommodityId::from_index(2));
        assert_eq!(
            alg.restore(&ck),
            Err(CoreError::EpochMismatch {
                expected: 1,
                got: 0
            })
        );
        // Re-admitting the same commodity does not resurrect the epoch:
        // the buffer sizes match again, but the capture is still stale.
        alg.admit_commodity(def);
        assert!(matches!(
            alg.restore(&ck),
            Err(CoreError::EpochMismatch {
                expected: 2,
                got: 0
            })
        ));
        // A capture at the current epoch round-trips as usual.
        let ck2 = alg.checkpoint();
        alg.step();
        assert!(alg.restore(&ck2).is_ok());
    }
}
