//! Second-derivative (Newton-scaled) step rule.
//!
//! Gallager's minimum-delay paper — which §5 generalizes — observes that
//! a well-chosen step should scale with the objective's *curvature*: a
//! fixed `η` is too timid where the cost surface is flat and too bold
//! where it is steep. The Bertsekas–Gafni–Gallager refinement divides
//! the fraction shift by an upper estimate of `∂²A/∂φ²`, which
//! propagates upstream exactly like the marginal costs:
//!
//! ```text
//! H_i(j) = Σ_k φ_ik(j) [ (c^j_ik)²·A''_ik + (β^j_ik)²·H_k(j) ]
//! Δ_ik(j) = min( φ_ik, η·a_ik(j) / (t_i(j) · max(κ_ik, floor)) )
//! κ_ik    = (c^j_ik)²·A''_ik + (β^j_ik)²·H_k(j)
//! ```
//!
//! with `A''` the per-edge cost curvature (penalty `ε·D'' + wall W''`,
//! or `−U''(λ−f)` on difference links). [`NewtonGradient`] drives the
//! same protocol as [`crate::GradientAlgorithm`] with this step rule;
//! the `newton_ablation` experiment compares the two.

use crate::blocked::{compute_tags, BlockedTags};
use crate::cost::CostModel;
use crate::flows::{compute_flows, FlowState};
use crate::marginals::{compute_marginals, Marginals};
use crate::routing::RoutingTable;
use crate::{ConfigError, GradientConfig};
use spn_graph::{EdgeId, NodeId};
use spn_model::{CommodityId, Problem};
use spn_transform::{EdgeKind, ExtendedNetwork};

/// Per-edge cost curvature `A''_l` (second derivative of the node cost
/// in the edge's resource usage).
fn edge_curvature(ext: &ExtendedNetwork, cost: &CostModel, state: &FlowState, l: EdgeId) -> f64 {
    match ext.edge_kind(l) {
        EdgeKind::DummyDifference(j) => {
            let c = ext.commodity(j);
            let rejected = state.edge_usage(l).clamp(0.0, c.max_rate);
            -c.utility.second_derivative(c.max_rate - rejected)
        }
        _ => {
            let tail = ext.graph().source(l);
            let cap = ext.capacity(tail);
            let load = state.node_usage(tail);
            cost.epsilon * cost.penalty.second_derivative(cap, load)
                + wall_second_derivative(cost, cap, load)
        }
    }
}

fn wall_second_derivative(cost: &CostModel, c: spn_model::Capacity, z: f64) -> f64 {
    if cost.wall_strength == 0.0 || c.is_infinite() {
        return 0.0;
    }
    let cap = c.value();
    let theta = cost.wall_threshold;
    let s = (z / cap - theta) / (1.0 - theta);
    if s <= 0.0 {
        0.0
    } else {
        2.0 * cost.wall_strength * s / (cap * (1.0 - theta))
    }
}

/// Per-commodity per-node curvature estimates `H_i(j)`, computed by the
/// same upstream sweep as the marginal costs.
#[must_use]
pub fn compute_curvatures(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
) -> Vec<Vec<f64>> {
    let v_count = ext.graph().node_count();
    let mut h = vec![vec![0.0; v_count]; ext.num_commodities()];
    for j in ext.commodity_ids() {
        let ji = j.index();
        let sink = ext.commodity(j).sink();
        for &v in ext.topo_order(j).iter().rev() {
            if v == sink {
                continue;
            }
            let mut acc = 0.0;
            for l in ext.commodity_out_edges(j, v) {
                let phi = routing.fraction(j, l);
                if phi == 0.0 {
                    continue;
                }
                let head = ext.graph().target(l);
                let c = ext.cost(j, l);
                let b = ext.beta(j, l);
                acc += phi
                    * (c * c * edge_curvature(ext, cost, state, l) + b * b * h[ji][head.index()]);
            }
            h[ji][v.index()] = acc;
        }
    }
    h
}

/// The gradient algorithm with the Newton-scaled step rule.
#[derive(Clone, Debug)]
pub struct NewtonGradient {
    ext: ExtendedNetwork,
    cost: CostModel,
    config: GradientConfig,
    /// Curvature floor: steps are never scaled by less than this (flat
    /// regions would otherwise produce unbounded moves).
    curvature_floor: f64,
    routing: RoutingTable,
    state: FlowState,
    iterations: usize,
}

impl NewtonGradient {
    /// Builds the Newton-scaled driver. `config.eta` plays the role of a
    /// (dimensionless) damping factor; `1.0` is the pure Newton step.
    ///
    /// # Errors
    ///
    /// Same configuration errors as [`crate::GradientAlgorithm`].
    pub fn new(
        problem: &Problem,
        config: GradientConfig,
        curvature_floor: f64,
    ) -> Result<Self, ConfigError> {
        let ext = ExtendedNetwork::build(problem);
        crate::GradientAlgorithm::from_extended(ext.clone(), config)?;
        let cost = CostModel {
            penalty: config.penalty,
            epsilon: config.epsilon,
            wall_threshold: config.wall_threshold,
            wall_strength: config.wall_strength,
        };
        let routing = RoutingTable::initial(&ext);
        let state = compute_flows(&ext, &routing);
        Ok(NewtonGradient {
            cost,
            config,
            curvature_floor: curvature_floor.max(1e-12),
            routing,
            state,
            iterations: 0,
            ext,
        })
    }

    /// One Newton-scaled iteration.
    pub fn step(&mut self) {
        let marginals = compute_marginals(&self.ext, &self.cost, &self.routing, &self.state);
        let curvatures = compute_curvatures(&self.ext, &self.cost, &self.routing, &self.state);
        let tags = if self.config.use_blocked_sets {
            compute_tags(
                &self.ext,
                &self.cost,
                &self.routing,
                &self.state,
                &marginals,
                self.config.eta,
                self.config.traffic_floor,
            )
        } else {
            BlockedTags::none(&self.ext)
        };
        for j in self.ext.commodity_ids() {
            let opening_floor = self.config.opening_fraction * self.ext.commodity(j).max_rate;
            let routers: Vec<NodeId> = self.routing.routers(&self.ext, j).collect();
            for i in routers {
                let row = self.newton_row(&marginals, &curvatures, &tags, opening_floor, j, i);
                self.routing.set_row(&self.ext, j, i, &row);
            }
        }
        self.state = compute_flows(&self.ext, &self.routing);
        self.iterations += 1;
    }

    fn newton_row(
        &self,
        marginals: &Marginals,
        curvatures: &[Vec<f64>],
        tags: &BlockedTags,
        opening_floor: f64,
        j: CommodityId,
        i: NodeId,
    ) -> Vec<(EdgeId, f64)> {
        let ext = &self.ext;
        let edges: Vec<EdgeId> = ext.commodity_out_edges(j, i).collect();
        if edges.len() == 1 {
            return vec![(edges[0], 1.0)];
        }
        let m: Vec<f64> = edges
            .iter()
            .map(|&l| marginals.edge(ext, &self.cost, &self.state, j, l))
            .collect();
        let blocked: Vec<bool> = edges
            .iter()
            .map(|&l| tags.is_blocked(&self.routing, j, l, ext))
            .collect();
        let best = edges
            .iter()
            .enumerate()
            .filter(|&(idx, _)| !blocked[idx])
            .min_by(|a, b| m[a.0].total_cmp(&m[b.0]))
            .map(|(idx, _)| idx)
            .expect("at least one unblocked out-edge");
        let t_i = self.state.traffic(j, i).max(opening_floor);
        if t_i <= self.config.traffic_floor {
            return edges
                .iter()
                .enumerate()
                .map(|(idx, &l)| (l, if idx == best { 1.0 } else { 0.0 }))
                .collect();
        }
        let m_min = m[best];
        let mut collected = 0.0;
        let mut row = Vec::with_capacity(edges.len());
        for (idx, &l) in edges.iter().enumerate() {
            if idx == best {
                continue;
            }
            if blocked[idx] {
                row.push((l, 0.0));
                continue;
            }
            let phi = self.routing.fraction(j, l);
            let a = (m[idx] - m_min).max(0.0);
            // curvature along this link (edge + downstream estimate)
            let head = ext.graph().target(l);
            let c = ext.cost(j, l);
            let b = ext.beta(j, l);
            let kappa = (c * c * edge_curvature(ext, &self.cost, &self.state, l)
                + b * b * curvatures[j.index()][head.index()])
            .max(self.curvature_floor);
            let delta = phi
                .min(self.config.eta * a / (t_i * kappa))
                .min(self.config.shift_cap);
            collected += delta;
            row.push((l, phi - delta));
        }
        row.push((
            edges[best],
            self.routing.fraction(j, edges[best]) + collected,
        ));
        row
    }

    /// Current overall utility.
    #[must_use]
    pub fn utility(&self) -> f64 {
        self.ext
            .commodity_ids()
            .map(|j| {
                self.ext
                    .commodity(j)
                    .utility
                    .value(self.state.admitted(&self.ext, j))
            })
            .sum()
    }

    /// Iterations elapsed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The routing decision.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The extended network.
    #[must_use]
    pub fn extended(&self) -> &ExtendedNetwork {
        &self.ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::random::RandomInstance;

    fn instance() -> Problem {
        RandomInstance::builder()
            .nodes(16)
            .commodities(2)
            .seed(4)
            .build()
            .unwrap()
            .problem
    }

    #[test]
    fn curvatures_are_nonnegative_and_zero_at_sink() {
        let p = instance();
        let mut alg = crate::GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        alg.run(100);
        let h = compute_curvatures(alg.extended(), alg.cost_model(), alg.routing(), alg.flows());
        for j in alg.extended().commodity_ids() {
            for v in alg.extended().graph().nodes() {
                assert!(h[j.index()][v.index()] >= 0.0);
            }
            assert_eq!(
                h[j.index()][alg.extended().commodity(j).sink().index()],
                0.0
            );
        }
    }

    #[test]
    fn newton_converges_and_stays_valid() {
        let p = instance();
        let cfg = GradientConfig {
            eta: 0.5,
            ..GradientConfig::default()
        };
        let mut alg = NewtonGradient::new(&p, cfg, 1e-6).unwrap();
        for _ in 0..2000 {
            alg.step();
        }
        alg.routing().validate(alg.extended()).unwrap();
        assert!(alg.utility() > 0.0);
    }

    #[test]
    fn newton_tracks_fixed_eta_quality() {
        let p = instance();
        let mut fixed = crate::GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let newton_cfg = GradientConfig {
            eta: 0.5,
            ..GradientConfig::default()
        };
        let mut newton = NewtonGradient::new(&p, newton_cfg, 1e-6).unwrap();
        let fixed_final = fixed.run(6000).utility;
        for _ in 0..6000 {
            newton.step();
        }
        assert!(
            newton.utility() > 0.85 * fixed_final,
            "newton {} vs fixed {fixed_final}",
            newton.utility()
        );
    }

    #[test]
    fn curvature_floor_guards_flat_regions() {
        let p = instance();
        let cfg = GradientConfig::default();
        // tiny floor with flat (linear-utility, idle) regions must not
        // produce NaNs or invalid rows
        let mut alg = NewtonGradient::new(&p, cfg, 1e-12).unwrap();
        for _ in 0..50 {
            alg.step();
        }
        alg.routing().validate(alg.extended()).unwrap();
        assert!(alg.utility().is_finite());
    }
}
