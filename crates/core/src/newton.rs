//! Second-derivative (Newton-scaled) step rule.
//!
//! Gallager's minimum-delay paper — which §5 generalizes — observes that
//! a well-chosen step should scale with the objective's *curvature*: a
//! fixed `η` is too timid where the cost surface is flat and too bold
//! where it is steep. The Bertsekas–Gafni–Gallager refinement divides
//! the fraction shift by an upper estimate of `∂²A/∂φ²`, which
//! propagates upstream exactly like the marginal costs:
//!
//! ```text
//! H_i(j) = Σ_k φ_ik(j) [ (c^j_ik)²·A''_ik + (β^j_ik)²·H_k(j) ]
//! Δ_ik(j) = min( φ_ik, η·a_ik(j) / (t_i(j) · max(κ_ik, floor)) )
//! κ_ik    = (c^j_ik)²·A''_ik + (β^j_ik)²·H_k(j)
//! ```
//!
//! with `A''` the per-edge cost curvature (penalty `ε·D'' + wall W''`,
//! or `−U''(λ−f)` on difference links). [`NewtonGradient`] drives the
//! same protocol as [`crate::GradientAlgorithm`] with this step rule;
//! the `newton_ablation` experiment compares the two.
//!
//! With `GradientConfig::sparsity` (the default) the driver runs on the
//! active-set engine of [`crate::active`]: curvatures propagate over the
//! live-arc sub-lists, the tag → Newton-row → flow chain runs only for
//! commodities whose inputs moved, and the flow/marginal state carries
//! forward bit-identically instead of being re-densified every sweep
//! (ARCHITECTURE invariant 17). `sparsity: false` selects the dense
//! reference step the equivalence tests pin the engine against.

use crate::active::ActiveSet;
use crate::blocked::{compute_tags, tag_sweep_active, BlockedTags};
use crate::cost::CostModel;
use crate::flows::{compute_flows, flow_sweep_active, FlowState};
use crate::marginals::{compute_marginals, marginal_sweep_active, Marginals};
use crate::pool::PhiRow;
use crate::routing::{apply_row_tracked, RoutingTable};
use crate::step::{
    bits_differ, clear_tags_scoped, reduce_usage_totals_scoped, sparse_carry_forward,
    sparse_prepare, zero_flow_rows_scoped,
};
use crate::workspace::IterationWorkspace;
use crate::{ConfigError, GradientConfig};
use spn_graph::{EdgeId, NodeId};
use spn_model::{CommodityId, Problem};
use spn_transform::{EdgeKind, ExtendedNetwork};

/// Per-edge cost curvature `A''_l` (second derivative of the node cost
/// in the edge's resource usage).
fn edge_curvature(ext: &ExtendedNetwork, cost: &CostModel, state: &FlowState, l: EdgeId) -> f64 {
    match ext.edge_kind(l) {
        EdgeKind::DummyDifference(j) => {
            let c = ext.commodity(j);
            let rejected = state.edge_usage(l).clamp(0.0, c.max_rate);
            -c.utility.second_derivative(c.max_rate - rejected)
        }
        _ => {
            let tail = ext.graph().source(l);
            let cap = ext.capacity(tail);
            let load = state.node_usage(tail);
            cost.epsilon * cost.penalty.second_derivative(cap, load)
                + wall_second_derivative(cost, cap, load)
        }
    }
}

fn wall_second_derivative(cost: &CostModel, c: spn_model::Capacity, z: f64) -> f64 {
    if cost.wall_strength == 0.0 || c.is_infinite() {
        return 0.0;
    }
    let cap = c.value();
    let theta = cost.wall_threshold;
    let s = (z / cap - theta) / (1.0 - theta);
    if s <= 0.0 {
        0.0
    } else {
        2.0 * cost.wall_strength * s / (cap * (1.0 - theta))
    }
}

/// Per-commodity per-node curvature estimates `H_i(j)`, computed by the
/// same upstream sweep as the marginal costs.
#[must_use]
pub fn compute_curvatures(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
) -> Vec<Vec<f64>> {
    let v_count = ext.graph().node_count();
    let mut h = vec![vec![0.0; v_count]; ext.num_commodities()];
    for j in ext.commodity_ids() {
        let ji = j.index();
        let sink = ext.commodity(j).sink();
        for &v in ext.topo_order(j).iter().rev() {
            if v == sink {
                continue;
            }
            let mut acc = 0.0;
            for l in ext.commodity_out_edges(j, v) {
                let phi = routing.fraction(j, l);
                if phi == 0.0 {
                    continue;
                }
                let head = ext.graph().target(l);
                let c = ext.cost(j, l);
                let b = ext.beta(j, l);
                acc += phi
                    * (c * c * edge_curvature(ext, cost, state, l) + b * b * h[ji][head.index()]);
            }
            h[ji][v.index()] = acc;
        }
    }
    h
}

/// [`compute_curvatures`] for one commodity over its live-arc sub-list
/// (the active-set engine's curvature pass). The dense sweep skips
/// `φ = 0` arcs and only ever accumulates at routers (non-router,
/// non-sink nodes have no out-edges, so their `H` stays the zero it was
/// initialised to), so a reverse walk of the topo-ordered routers over
/// exactly the nonzero-fraction arcs performs the identical sequence of
/// float operations — bit-identical `H` rows.
#[allow(clippy::too_many_arguments)] // a commodity's full sweep context
fn curvature_sweep_active(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    state: &FlowState,
    phi: &[f64],
    j: CommodityId,
    h: &mut [f64],
    arc_len: &[u32],
    arcs: &[EdgeId],
    live: usize,
) {
    let routers = ext.commodity_routers_topo(j);
    let mut idx = live;
    for (r, &v) in routers.iter().enumerate().rev() {
        let n = arc_len[r] as usize;
        idx -= n;
        let mut acc = 0.0;
        for &l in &arcs[idx..idx + n] {
            debug_assert!(phi[l.index()] != 0.0, "live arc {l} with zero fraction");
            let head = ext.graph().target(l);
            let c = ext.cost(j, l);
            let b = ext.beta(j, l);
            acc += phi[l.index()]
                * (c * c * edge_curvature(ext, cost, state, l) + b * b * h[head.index()]);
        }
        h[v.index()] = acc;
    }
    debug_assert_eq!(idx, 0, "live-arc row shorter than its length prefix");
}

/// Fills `row` with router `i`'s Newton-scaled fraction update. Shared
/// verbatim by the dense and the active-set step, so the two paths'
/// float operations are the same code — the equivalence tests compare
/// their outputs bit-for-bit. `h_row` is commodity `j`'s curvature row
/// (`H_k(j)` indexed by extended node); `m_buf`/`blocked_buf` are
/// caller-owned scratch reused across routers.
#[allow(clippy::too_many_arguments)] // one router's full decision context
fn newton_row_into(
    ext: &ExtendedNetwork,
    cost: &CostModel,
    routing: &RoutingTable,
    state: &FlowState,
    marginals: &Marginals,
    tags: &BlockedTags,
    h_row: &[f64],
    config: &GradientConfig,
    curvature_floor: f64,
    opening_floor: f64,
    j: CommodityId,
    i: NodeId,
    m_buf: &mut Vec<f64>,
    blocked_buf: &mut Vec<bool>,
    row: &mut Vec<(EdgeId, f64)>,
) {
    row.clear();
    let edges = ext.commodity_out_slice(j, i);
    if edges.len() == 1 {
        row.push((edges[0], 1.0));
        return;
    }
    m_buf.clear();
    m_buf.extend(
        edges
            .iter()
            .map(|&l| marginals.edge(ext, cost, state, j, l)),
    );
    blocked_buf.clear();
    blocked_buf.extend(edges.iter().map(|&l| tags.is_blocked(routing, j, l, ext)));
    let best = edges
        .iter()
        .enumerate()
        .filter(|&(idx, _)| !blocked_buf[idx])
        .min_by(|a, b| m_buf[a.0].total_cmp(&m_buf[b.0]))
        .map(|(idx, _)| idx)
        .expect("at least one unblocked out-edge");
    let t_i = state.traffic(j, i).max(opening_floor);
    if t_i <= config.traffic_floor {
        row.extend(
            edges
                .iter()
                .enumerate()
                .map(|(idx, &l)| (l, if idx == best { 1.0 } else { 0.0 })),
        );
        return;
    }
    let m_min = m_buf[best];
    let mut collected = 0.0;
    for (idx, &l) in edges.iter().enumerate() {
        if idx == best {
            continue;
        }
        if blocked_buf[idx] {
            row.push((l, 0.0));
            continue;
        }
        let phi = routing.fraction(j, l);
        let a = (m_buf[idx] - m_min).max(0.0);
        // curvature along this link (edge + downstream estimate)
        let head = ext.graph().target(l);
        let c = ext.cost(j, l);
        let b = ext.beta(j, l);
        let kappa = (c * c * edge_curvature(ext, cost, state, l) + b * b * h_row[head.index()])
            .max(curvature_floor);
        let delta = phi
            .min(config.eta * a / (t_i * kappa))
            .min(config.shift_cap);
        collected += delta;
        row.push((l, phi - delta));
    }
    row.push((edges[best], routing.fraction(j, edges[best]) + collected));
}

/// The gradient algorithm with the Newton-scaled step rule.
#[derive(Clone, Debug)]
pub struct NewtonGradient {
    ext: ExtendedNetwork,
    cost: CostModel,
    config: GradientConfig,
    /// Curvature floor: steps are never scaled by less than this (flat
    /// regions would otherwise produce unbounded moves).
    curvature_floor: f64,
    routing: RoutingTable,
    state: FlowState,
    iterations: usize,
    /// Marginal costs carried across iterations (active-set path): row
    /// `j` always holds what a fresh reverse sweep of the current state
    /// would produce, refreshed in phase B only when its inputs moved.
    marginals: Marginals,
    /// Blocked tags carried across iterations (recomputed per dirty
    /// commodity at the head of its chain).
    tags: BlockedTags,
    /// Persistent per-commodity usage partials + chunk geometry.
    ws: IterationWorkspace,
    /// The dirty-set tracker and live-arc sub-lists.
    active: ActiveSet,
    /// Flat `[j·V + v]` curvature estimates `H_v(j)`, maintained with
    /// the same skip algebra as the marginals.
    h: Vec<f64>,
    /// Reusable Newton-row scratch (sized once to the max out-degree).
    row_buf: Vec<(EdgeId, f64)>,
    m_buf: Vec<f64>,
    blocked_buf: Vec<bool>,
}

impl NewtonGradient {
    /// Builds the Newton-scaled driver. `config.eta` plays the role of a
    /// (dimensionless) damping factor; `1.0` is the pure Newton step.
    ///
    /// # Errors
    ///
    /// Same configuration errors as [`crate::GradientAlgorithm`].
    pub fn new(
        problem: &Problem,
        config: GradientConfig,
        curvature_floor: f64,
    ) -> Result<Self, ConfigError> {
        let ext = ExtendedNetwork::build(problem);
        crate::GradientAlgorithm::from_extended(ext.clone(), config)?;
        let cost = CostModel {
            penalty: config.penalty,
            epsilon: config.epsilon,
            wall_threshold: config.wall_threshold,
            wall_strength: config.wall_strength,
        };
        let routing = RoutingTable::initial(&ext);
        let state = compute_flows(&ext, &routing);
        // m_0 up front: the sparse step's tag pass reads the carried
        // marginals, which must equal what the dense step computes at
        // the head of its first iteration.
        let marginals = compute_marginals(&ext, &cost, &routing, &state);
        let tags = BlockedTags::none(&ext);
        let v_count = ext.graph().node_count();
        let h = vec![0.0; ext.num_commodities() * v_count];
        let max_deg = ext
            .commodity_ids()
            .map(|j| ext.max_out_degree(j))
            .max()
            .unwrap_or(0);
        Ok(NewtonGradient {
            cost,
            config,
            curvature_floor: curvature_floor.max(1e-12),
            routing,
            state,
            iterations: 0,
            marginals,
            tags,
            ws: IterationWorkspace::default(),
            active: ActiveSet::default(),
            h,
            row_buf: Vec::with_capacity(max_deg),
            m_buf: Vec::with_capacity(max_deg),
            blocked_buf: Vec::with_capacity(max_deg),
            ext,
        })
    }

    /// One Newton-scaled iteration: the active-set step when
    /// `config.sparsity` (the default), the dense reference step
    /// otherwise. Bit-identical either way (ARCHITECTURE invariant 17).
    pub fn step(&mut self) {
        if self.config.sparsity {
            self.sparse_step();
        } else {
            self.dense_step();
        }
        self.iterations += 1;
    }

    /// The dense reference step: recompute marginals, curvatures, and
    /// tags from scratch, update every router, re-derive all flows.
    fn dense_step(&mut self) {
        let marginals = compute_marginals(&self.ext, &self.cost, &self.routing, &self.state);
        let curvatures = compute_curvatures(&self.ext, &self.cost, &self.routing, &self.state);
        let tags = if self.config.use_blocked_sets {
            compute_tags(
                &self.ext,
                &self.cost,
                &self.routing,
                &self.state,
                &marginals,
                self.config.eta,
                self.config.traffic_floor,
            )
        } else {
            BlockedTags::none(&self.ext)
        };
        for j in self.ext.commodity_ids() {
            let opening_floor = self.config.opening_fraction * self.ext.commodity(j).max_rate;
            let routers: Vec<NodeId> = self.routing.routers(&self.ext, j).collect();
            for i in routers {
                newton_row_into(
                    &self.ext,
                    &self.cost,
                    &self.routing,
                    &self.state,
                    &marginals,
                    &tags,
                    &curvatures[j.index()],
                    &self.config,
                    self.curvature_floor,
                    opening_floor,
                    j,
                    i,
                    &mut self.m_buf,
                    &mut self.blocked_buf,
                    &mut self.row_buf,
                );
                self.routing.set_row(&self.ext, j, i, &self.row_buf);
            }
        }
        self.state = compute_flows(&self.ext, &self.routing);
    }

    /// The active-set step: the same skip algebra as
    /// [`crate::step`]'s sparse gradient step with Γ replaced by the
    /// Newton rule plus a live-arc curvature pass. A commodity's
    /// tag → curvature → Newton-row → flow chain runs only while its
    /// fractions or the shared totals are moving; everything it skips
    /// is bitwise what a re-run would reproduce, so the trajectory is
    /// bit-identical to [`Self::dense_step`]'s.
    fn sparse_step(&mut self) {
        let NewtonGradient {
            ext,
            cost,
            config,
            curvature_floor,
            routing,
            state,
            marginals,
            tags,
            ws,
            active,
            h,
            row_buf,
            m_buf,
            blocked_buf,
            ..
        } = self;
        let ext: &ExtendedNetwork = ext;
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        if !ws.sized_for_workers(ext, 1) {
            active.invalidate();
        }
        ws.ensure_workers(ext, 1);
        active.ensure(ext);
        sparse_prepare(active, ext, routing, &ws.chunk_base, false);

        // Phase A: tag → curvature → Newton rows → flow for the dirty
        // commodities only.
        for di in 0..active.dirty_list.len() {
            let ji = active.dirty_list[di] as usize;
            let j = CommodityId::from_index(ji);
            let tag_row = &mut tags.tagged[ji * v_count..(ji + 1) * v_count];
            clear_tags_scoped(ext, j, tag_row);
            if config.use_blocked_sets {
                let (lens, arcs, live) = active.arcs.row(ji);
                tag_sweep_active(
                    ext,
                    cost,
                    routing.row(j),
                    state.t_row(j),
                    state.usage_view(),
                    marginals.row(j),
                    config.eta,
                    config.traffic_floor,
                    j,
                    tag_row,
                    lens,
                    arcs,
                    live,
                );
            }
            {
                // H over the pre-update fractions and current totals —
                // exactly the dense step's curvature inputs.
                let h_row = &mut h[ji * v_count..(ji + 1) * v_count];
                let (lens, arcs, live) = active.arcs.row(ji);
                curvature_sweep_active(
                    ext,
                    cost,
                    state,
                    routing.row(j),
                    j,
                    h_row,
                    lens,
                    arcs,
                    live,
                );
            }
            let opening_floor = config.opening_fraction * ext.commodity(j).max_rate;
            let mut value = false;
            let mut support = false;
            let routers = ext.commodity_routers(j);
            for &i in routers {
                newton_row_into(
                    ext,
                    cost,
                    routing,
                    state,
                    marginals,
                    tags,
                    &h[ji * v_count..(ji + 1) * v_count],
                    config,
                    *curvature_floor,
                    opening_floor,
                    j,
                    i,
                    m_buf,
                    blocked_buf,
                    row_buf,
                );
                let (vc, sc) =
                    apply_row_tracked(PhiRow::from_mut(routing.row_mut(j)), ext, j, i, row_buf);
                value |= vc;
                support |= sc;
            }
            active.phi_changed[ji] = value;
            if support {
                active.arcs.rebuild(ext, j, routing.row(j));
            }
            if value || active.flow_dirty[ji] {
                let t = &mut state.t[ji * v_count..(ji + 1) * v_count];
                let x = &mut state.x[ji * l_count..(ji + 1) * l_count];
                let fe = &mut ws.f_edge_part[ji * l_count..(ji + 1) * l_count];
                let fnode = &mut ws.f_node_part[ji * v_count..(ji + 1) * v_count];
                zero_flow_rows_scoped(ext, j, t, x, fe, fnode);
                let (lens, arcs, _live) = active.arcs.row(ji);
                flow_sweep_active(ext, routing.row(j), j, t, x, fe, fnode, lens, arcs);
                active.flow_ran[ji] = true;
            }
        }

        // Totals: reduce (and bitwise-compare) only if any flow pass ran.
        let any_flows = active
            .dirty_list
            .iter()
            .any(|&ji| active.flow_ran[ji as usize]);
        let mut totals_changed = false;
        if any_flows {
            active.prev_f_edge.copy_from_slice(&state.f_edge);
            active.prev_f_node.copy_from_slice(&state.f_node);
            reduce_usage_totals_scoped(
                ext,
                &mut state.f_edge,
                &mut state.f_node,
                &ws.f_edge_part,
                &ws.f_node_part,
                l_count,
                v_count,
                j_count,
            );
            totals_changed = bits_differ(&active.prev_f_edge, &state.f_edge)
                || bits_differ(&active.prev_f_node, &state.f_node);
        }
        let effective = totals_changed || active.force_totals;

        // Phase B: refresh marginal rows for the next iteration — the
        // values the dense step would compute at its next head.
        for ji in 0..j_count {
            if !(effective || active.phi_changed[ji]) {
                continue;
            }
            let j = CommodityId::from_index(ji);
            let d = &mut marginals.d[ji * v_count..(ji + 1) * v_count];
            let (lens, arcs, live) = active.arcs.row(ji);
            marginal_sweep_active(
                ext,
                cost,
                routing.row(j),
                state.usage_view(),
                j,
                d,
                lens,
                arcs,
                live,
            );
        }

        sparse_carry_forward(active, effective, false);
    }

    /// Current overall utility.
    #[must_use]
    pub fn utility(&self) -> f64 {
        self.ext
            .commodity_ids()
            .map(|j| {
                self.ext
                    .commodity(j)
                    .utility
                    .value(self.state.admitted(&self.ext, j))
            })
            .sum()
    }

    /// Iterations elapsed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The routing decision.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The extended network.
    #[must_use]
    pub fn extended(&self) -> &ExtendedNetwork {
        &self.ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::random::RandomInstance;

    fn instance() -> Problem {
        RandomInstance::builder()
            .nodes(16)
            .commodities(2)
            .seed(4)
            .build()
            .unwrap()
            .problem
    }

    #[test]
    fn curvatures_are_nonnegative_and_zero_at_sink() {
        let p = instance();
        let mut alg = crate::GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        alg.run(100);
        let h = compute_curvatures(alg.extended(), alg.cost_model(), alg.routing(), alg.flows());
        for j in alg.extended().commodity_ids() {
            for v in alg.extended().graph().nodes() {
                assert!(h[j.index()][v.index()] >= 0.0);
            }
            assert_eq!(
                h[j.index()][alg.extended().commodity(j).sink().index()],
                0.0
            );
        }
    }

    #[test]
    fn newton_converges_and_stays_valid() {
        let p = instance();
        let cfg = GradientConfig {
            eta: 0.5,
            ..GradientConfig::default()
        };
        let mut alg = NewtonGradient::new(&p, cfg, 1e-6).unwrap();
        for _ in 0..2000 {
            alg.step();
        }
        alg.routing().validate(alg.extended()).unwrap();
        assert!(alg.utility() > 0.0);
    }

    #[test]
    fn newton_tracks_fixed_eta_quality() {
        let p = instance();
        let mut fixed = crate::GradientAlgorithm::new(&p, GradientConfig::default()).unwrap();
        let newton_cfg = GradientConfig {
            eta: 0.5,
            ..GradientConfig::default()
        };
        let mut newton = NewtonGradient::new(&p, newton_cfg, 1e-6).unwrap();
        let fixed_final = fixed.run(6000).utility;
        for _ in 0..6000 {
            newton.step();
        }
        assert!(
            newton.utility() > 0.85 * fixed_final,
            "newton {} vs fixed {fixed_final}",
            newton.utility()
        );
    }

    #[test]
    fn curvature_floor_guards_flat_regions() {
        let p = instance();
        let cfg = GradientConfig::default();
        // tiny floor with flat (linear-utility, idle) regions must not
        // produce NaNs or invalid rows
        let mut alg = NewtonGradient::new(&p, cfg, 1e-12).unwrap();
        for _ in 0..50 {
            alg.step();
        }
        alg.routing().validate(alg.extended()).unwrap();
        assert!(alg.utility().is_finite());
    }

    /// Invariant 17: the active-set Newton step reproduces the dense
    /// reference trajectory bit-for-bit — fractions, flows, totals, and
    /// utility — across overload, midrange, and near-converged regimes.
    #[test]
    fn sparse_newton_is_bitwise_identical_to_dense() {
        for (nodes, commodities, seed, scale) in [
            (16usize, 2usize, 4u64, 1.0),
            (24, 3, 9, 3.0),
            (20, 4, 11, 0.2),
        ] {
            let p = RandomInstance::builder()
                .nodes(nodes)
                .commodities(commodities)
                .seed(seed)
                .build()
                .unwrap()
                .problem
                .scale_demand(scale);
            let cfg = GradientConfig {
                eta: 0.5,
                ..GradientConfig::default()
            };
            let dense_cfg = GradientConfig {
                sparsity: false,
                ..cfg
            };
            let sparse_cfg = GradientConfig {
                sparsity: true,
                ..cfg
            };
            let mut dense = NewtonGradient::new(&p, dense_cfg, 1e-6).unwrap();
            let mut sparse = NewtonGradient::new(&p, sparse_cfg, 1e-6).unwrap();
            for it in 0..300 {
                dense.step();
                sparse.step();
                let df = dense.routing.flat();
                let sf = sparse.routing.flat();
                for (idx, (a, b)) in df.iter().zip(sf).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "fraction {idx} diverged at iteration {it} \
                         (seed {seed}, scale {scale}): dense {a} sparse {b}"
                    );
                }
                assert!(
                    !bits_differ(&dense.state.f_edge, &sparse.state.f_edge)
                        && !bits_differ(&dense.state.f_node, &sparse.state.f_node),
                    "usage totals diverged at iteration {it} (seed {seed}, scale {scale})"
                );
                assert_eq!(
                    dense.utility().to_bits(),
                    sparse.utility().to_bits(),
                    "utility diverged at iteration {it} (seed {seed}, scale {scale})"
                );
            }
        }
    }

    /// The point of routing Newton through the active-set engine: once
    /// the trajectory reaches a fixpoint the dirty set drains to empty
    /// (no re-densification), and steps keep reproducing the same
    /// fractions.
    #[test]
    fn sparse_newton_drains_dirty_set_at_fixpoint() {
        use spn_model::builder::ProblemBuilder;
        use spn_model::UtilityFn;
        // A single-path chain: every router has one out-edge, so the
        // Newton rule reproduces φ bit-for-bit from the first step and
        // the chain must go clean immediately after.
        let mut b = ProblemBuilder::new();
        let s = b.server(10.0);
        let x = b.server(10.0);
        let t = b.server(10.0);
        let e1 = b.link(s, x, 5.0);
        let e2 = b.link(x, t, 5.0);
        let j = b.commodity(s, t, 2.0, UtilityFn::throughput());
        b.uses(j, e1, 1.0, 1.0).uses(j, e2, 1.0, 1.0);
        let p = b.build().unwrap();
        let mut alg = NewtonGradient::new(&p, GradientConfig::default(), 1e-6).unwrap();
        // The interior routers are single-path, but the dummy source
        // keeps shifting admission mass until it reaches its corner —
        // step until one iteration reproduces every fraction bit-for-bit.
        let mut reached = false;
        for _ in 0..2000 {
            let before: Vec<u64> = alg.routing.flat().iter().map(|f| f.to_bits()).collect();
            alg.step();
            let after: Vec<u64> = alg.routing.flat().iter().map(|f| f.to_bits()).collect();
            if before == after {
                reached = true;
                break;
            }
        }
        assert!(reached, "chain instance never reached a Newton fixpoint");
        // A bit-reproducing step with unchanged totals must drain the
        // dirty set: the very next iteration runs no chains at all.
        assert!(
            alg.active.chain_dirty.iter().all(|&d| !d),
            "dirty set not drained after a bit-identical step"
        );
        let before: Vec<u64> = alg.routing.flat().iter().map(|f| f.to_bits()).collect();
        alg.step();
        assert!(alg.active.dirty_list.is_empty());
        let after: Vec<u64> = alg.routing.flat().iter().map(|f| f.to_bits()).collect();
        assert_eq!(before, after);
        assert!(alg.utility() > 0.0);
    }
}
