//! The fused pooled iteration: one worker-pool dispatch per step.
//!
//! The serial [`GradientAlgorithm::step`](crate::GradientAlgorithm::step)
//! sequence — tags → Γ → flows → marginals — fans each pass out over
//! commodities, but dispatching the pool four times per step pays four
//! wake/sleep round-trips. This module fuses the passes into
//! per-commodity *task chains* so each worker carries a commodity
//! through every phase per wake, with barriers only where a
//! cross-commodity reduction genuinely requires one.
//!
//! ## Why the chain is sound
//!
//! Per commodity `j`, the tag sweep, Γ update, and flow sweep read only
//! `j`'s own rows (fraction, traffic, marginal, tag) plus the shared
//! usage totals `f_edge`/`f_node` — and the totals are *stale by
//! design*: the step's semantics evaluate tags, Γ, and the new flows
//! against the previous iteration's usage. The totals are only
//! rewritten at the reduction barrier, after every chain has finished
//! reading them; the marginal phase then runs against the new totals.
//! So the dependency structure per step is
//!
//! ```text
//! phase A   (per commodity)  tags(j) → Γ(j) → flows(j)   [old totals]
//! barrier   participant 0 reduces per-commodity usage partials
//!           into f_edge/f_node, in ascending commodity order
//! barrier
//! phase B   (per commodity)  marginals(j)                [new totals]
//! ```
//!
//! which is exactly two barriers per step (the serial step's data flow,
//! minus three pool dispatches). When there are fewer commodities than
//! participants, phase A instead runs tags / Γ / flows as separate
//! sub-phases so the Γ work can additionally split *within* a commodity
//! by router chunk ([`GAMMA_CHUNK`]) — distinct routers write disjoint
//! entries of the commodity's fraction row, so chunk tasks share the
//! row soundly through [`PhiTable`]'s per-element cells.
//!
//! ## Bit-identity (ARCHITECTURE invariant 9)
//!
//! Workers only ever compute rows they own; every cross-commodity
//! reduction — the usage-partial merge and the Γ-statistics fold — runs
//! in a fixed order (ascending commodity, ascending router chunk) no
//! matter which worker produced the inputs. ε-annealing iterations
//! split the step into two dispatches (the epsilon mutation must happen
//! between flows and marginals, and the cost model is shared by every
//! task), with the reduction done by the caller between them — the same
//! helper, hence the same float-addition order, as participant 0 uses
//! in the single-dispatch case.

#![allow(unsafe_code)] // phase-protocol row ownership; contracts documented inline

use crate::active::{rebuild_active_row, ActiveSet, SCRATCH_MARG_LEN, SCRATCH_TOTALS_EFFECTIVE};
use crate::blocked::{tag_sweep, BlockedTags};
use crate::cost::CostModel;
use crate::flows::{flow_sweep, FlowState, UsageView};
use crate::gamma::{gamma_chunk, gamma_chunk_tracked, reduce_gamma_stats, GammaCtx, GammaStats};
use crate::marginals::{marginal_sweep, Marginals};
use crate::pool::{PhiRow, PhiTable, RowTable, SlotTable, WorkerPool};
use crate::routing::RoutingTable;
use crate::simd::{self, SimdBackend};
use crate::workspace::{GammaLane, IterationWorkspace, GAMMA_CHUNK};
use crate::GradientConfig;
use spn_graph::EdgeId;
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Claims indices `0..n` from a shared counter and runs `f` on each —
/// the work-stealing loop every phase uses. Claim order is arbitrary;
/// every consumer writes only what it owns, so order never matters.
fn claim(counter: &AtomicUsize, n: usize, mut f: impl FnMut(usize)) {
    loop {
        let i = counter.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        f(i);
    }
}

/// Adds the per-commodity usage partials into the totals, in ascending
/// commodity order (edge partial then node partial per commodity) —
/// the one float-addition order every path shares, so totals are
/// bit-identical however the partials were produced.
pub(crate) fn reduce_usage_totals(
    fe_tot: &mut [f64],
    fn_tot: &mut [f64],
    fe_part: &[f64],
    fn_part: &[f64],
    l_count: usize,
    v_count: usize,
    j_count: usize,
) {
    fe_tot.fill(0.0);
    fn_tot.fill(0.0);
    for ji in 0..j_count {
        let fe = &fe_part[ji * l_count..(ji + 1) * l_count];
        for (acc, &p) in fe_tot.iter_mut().zip(fe) {
            *acc += p;
        }
        let fnode = &fn_part[ji * v_count..(ji + 1) * v_count];
        for (acc, &p) in fn_tot.iter_mut().zip(fnode) {
            *acc += p;
        }
    }
}

/// [`reduce_usage_totals`] restricted to each commodity's member edge
/// and router lists — `O(Σ_j members_j)` instead of `O(J·(V + L))`,
/// the sparse paths' totals reduction. Bit-identical to the dense
/// reduction: the skipped partial entries are exactly `+0.0` (zeroed
/// at reset and never written by any sweep), adding `+0.0` leaves an
/// accumulator's bits unchanged unless it is `-0.0`, and no
/// accumulator here can be `-0.0` (every partial is a product/sum of
/// non-negative values). Within one commodity every member edge and
/// router appears exactly once and targets a distinct accumulator, so
/// only the cross-commodity order — ascending, as in the dense
/// reduction — affects the float-addition order.
#[allow(clippy::too_many_arguments)] // a commodity's full sweep context
pub(crate) fn reduce_usage_totals_scoped(
    ext: &ExtendedNetwork,
    fe_tot: &mut [f64],
    fn_tot: &mut [f64],
    fe_part: &[f64],
    fn_part: &[f64],
    l_count: usize,
    v_count: usize,
    j_count: usize,
) {
    fe_tot.fill(0.0);
    fn_tot.fill(0.0);
    for ji in 0..j_count {
        let j = CommodityId::from_index(ji);
        let fe = &fe_part[ji * l_count..(ji + 1) * l_count];
        for &l in ext.commodity_edges(j) {
            fe_tot[l.index()] += fe[l.index()];
        }
        let fnode = &fn_part[ji * v_count..(ji + 1) * v_count];
        for &v in ext.commodity_routers(j) {
            fn_tot[v.index()] += fnode[v.index()];
        }
    }
}

/// Zeroes one commodity's traffic/edge-flow rows and usage partials
/// over its member sets only — `O(members)` instead of `O(V + L)` per
/// dirty commodity. Sound because entries outside the member sets are
/// never written by any sweep (dense or sparse): they are `+0.0` from
/// [`FlowState::reset`] / the workspace fills and stay that way, so
/// re-zeroing them is a no-op the sparse paths can skip.
pub(crate) fn zero_flow_rows_scoped(
    ext: &ExtendedNetwork,
    j: CommodityId,
    t: &mut [f64],
    x: &mut [f64],
    fe: &mut [f64],
    fnode: &mut [f64],
) {
    for &v in ext.commodity_member_nodes(j) {
        t[v.index()] = 0.0;
    }
    for &l in ext.commodity_edges(j) {
        x[l.index()] = 0.0;
        fe[l.index()] = 0.0;
    }
    for &v in ext.commodity_routers(j) {
        fnode[v.index()] = 0.0;
    }
}

/// Clears one commodity's blocked-tag row over its router set only —
/// the only entries a tag sweep (dense or active) ever writes, so
/// non-router entries are invariantly `false`.
pub(crate) fn clear_tags_scoped(ext: &ExtendedNetwork, j: CommodityId, tag_row: &mut [bool]) {
    for &v in ext.commodity_routers(j) {
        tag_row[v.index()] = false;
    }
}

/// Shared-view bundle one fused dispatch operates on. All tables are
/// raw-pointer views over the algorithm's buffers; soundness rests on
/// the phase protocol documented at module level (each task touches
/// only rows/chunks it claimed, totals are written only between
/// barriers).
struct FusedViews<'a> {
    ext: &'a ExtendedNetwork,
    cost: &'a CostModel,
    phi: PhiTable<'a>,
    t: RowTable<'a, f64>,
    x: RowTable<'a, f64>,
    fe_part: RowTable<'a, f64>,
    fn_part: RowTable<'a, f64>,
    fe_tot: RowTable<'a, f64>,
    fn_tot: RowTable<'a, f64>,
    d: RowTable<'a, f64>,
    tags: RowTable<'a, bool>,
    lanes: SlotTable<'a, GammaLane>,
    stats: SlotTable<'a, (f64, f64, usize)>,
    chunk_base: &'a [usize],
    j_count: usize,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    use_blocked_sets: bool,
    /// Kernel set the sparse sweeps run with ([`crate::simd`]); always
    /// `Scalar` on the dense paths, which are the bit-exact reference.
    backend: SimdBackend,
    /// Per-edge head (target-node) gather indices for the vectorized
    /// sweeps; empty (and never read) under the scalar backend.
    heads: &'a [u32],
    /// Split phase A into tag / Γ-chunk / flow sub-phases (used when
    /// commodities alone cannot occupy every participant).
    split: bool,
    c_a: AtomicUsize,
    c_gamma: AtomicUsize,
    c_flows: AtomicUsize,
    c_marg: AtomicUsize,
}

impl FusedViews<'_> {
    /// The usage totals as a view. Sound per the phase protocol: the
    /// totals are never written while any task holds this view.
    fn usage(&self) -> UsageView<'_> {
        // SAFETY: rows 0 cover the whole single-row total buffers; no
        // mutable access exists outside the reduction barrier.
        unsafe {
            UsageView {
                f_edge: self.fe_tot.row(0),
                f_node: self.fn_tot.row(0),
            }
        }
    }

    /// Phase-A tag task for commodity `ji`: clears and recomputes the
    /// tag row (a cleared row *is* the result when blocked sets are
    /// disabled).
    fn tag_task(&self, ji: usize) {
        let j = CommodityId::from_index(ji);
        // SAFETY: this task is row `ji`'s sole writer in this phase.
        let row = unsafe { self.tags.row_mut(ji) };
        row.fill(false);
        if !self.use_blocked_sets {
            return;
        }
        // SAFETY: commodity `ji`'s fraction/traffic/marginal rows are
        // not written during this phase (Γ and flows for `ji` run
        // strictly after its tag task).
        unsafe {
            tag_sweep(
                self.ext,
                self.cost,
                self.phi.row_slice(ji),
                self.t.row(ji),
                self.usage(),
                self.d.row(ji),
                self.eta,
                self.traffic_floor,
                j,
                row,
            );
        }
    }

    /// The Γ context for commodity `ji` — valid only before the
    /// commodity's flow task overwrites its traffic row.
    fn gamma_ctx(&self, ji: usize) -> GammaCtx<'_> {
        let j = CommodityId::from_index(ji);
        // SAFETY: the traffic, marginal, and tag rows of `ji` are
        // stable while Γ runs (flows for `ji` run strictly after).
        unsafe {
            GammaCtx {
                ext: self.ext,
                cost: self.cost,
                phi: self.phi.row(ji),
                t_row: self.t.row(ji),
                usage: self.usage(),
                d_row: self.d.row(ji),
                tag_row: self.tags.row(ji),
                eta: self.eta,
                traffic_floor: self.traffic_floor,
                opening_floor: self.opening_fraction * self.ext.commodity(j).max_rate,
                shift_cap: self.shift_cap,
                j,
                backend: self.backend,
                heads: self.heads,
            }
        }
    }

    /// Phase-A Γ task covering all of commodity `ji` (chain mode), with
    /// statistics still recorded per router chunk so the final fold is
    /// identical to split mode's.
    fn gamma_commodity(&self, ji: usize, worker: usize) {
        let ctx = self.gamma_ctx(ji);
        // SAFETY: lane `worker` is exclusive to this participant; the
        // stat slots of commodity `ji` are exclusive to this task.
        let lane = unsafe { self.lanes.slot_mut(worker) };
        let routers = self.ext.commodity_routers(ctx.j);
        for (c, chunk) in routers.chunks(GAMMA_CHUNK).enumerate() {
            let stat = unsafe { self.stats.slot_mut(self.chunk_base[ji] + c) };
            gamma_chunk(&ctx, chunk, lane, stat);
        }
    }

    /// Phase-A Γ task for one global router chunk (split mode). Chunk
    /// tasks of the same commodity write disjoint fraction-row entries
    /// (each router owns its out-edge set), shared via [`PhiRow`] cells.
    ///
    /// [`PhiRow`]: crate::pool::PhiRow
    fn gamma_chunk_task(&self, ci: usize, worker: usize) {
        let ji = self.chunk_base.partition_point(|&b| b <= ci) - 1;
        let local = ci - self.chunk_base[ji];
        let ctx = self.gamma_ctx(ji);
        let routers = self.ext.commodity_routers(ctx.j);
        let lo = local * GAMMA_CHUNK;
        let hi = routers.len().min(lo + GAMMA_CHUNK);
        // SAFETY: lane `worker` is exclusive to this participant; stat
        // slot `ci` is exclusive to this task.
        let lane = unsafe { self.lanes.slot_mut(worker) };
        let stat = unsafe { self.stats.slot_mut(ci) };
        gamma_chunk(&ctx, &routers[lo..hi], lane, stat);
    }

    /// Phase-A flow task for commodity `ji`: zeroes and recomputes the
    /// traffic/edge-flow rows and the commodity's usage partials.
    fn flow_task(&self, ji: usize) {
        let j = CommodityId::from_index(ji);
        // SAFETY: this task is the sole accessor of row `ji` of each
        // table in this phase; Γ for `ji` has already finished (chain
        // order or the preceding barrier), so reading the fraction row
        // while no one writes it is sound.
        unsafe {
            let t = self.t.row_mut(ji);
            let x = self.x.row_mut(ji);
            let fe = self.fe_part.row_mut(ji);
            let fnode = self.fn_part.row_mut(ji);
            t.fill(0.0);
            x.fill(0.0);
            fe.fill(0.0);
            fnode.fill(0.0);
            flow_sweep(self.ext, self.phi.row_slice(ji), j, t, x, fe, fnode);
        }
    }

    /// Everything before the reduction barrier, for participant `w`.
    fn phase_a(&self, w: usize, pool: &WorkerPool) {
        if self.split {
            claim(&self.c_a, self.j_count, |ji| self.tag_task(ji));
            pool.phase_wait();
            let total_chunks = self.chunk_base[self.j_count];
            claim(&self.c_gamma, total_chunks, |ci| {
                self.gamma_chunk_task(ci, w)
            });
            pool.phase_wait();
            claim(&self.c_flows, self.j_count, |ji| self.flow_task(ji));
        } else {
            claim(&self.c_a, self.j_count, |ji| {
                self.tag_task(ji);
                self.gamma_commodity(ji, w);
                self.flow_task(ji);
            });
        }
    }

    /// The usage reduction (participant 0 only, between barriers).
    ///
    /// # Safety
    ///
    /// Caller must guarantee no other participant accesses the totals
    /// or partials concurrently (i.e. call only between phase barriers,
    /// or after the dispatch returned).
    unsafe fn reduce_totals(&self) {
        let l_count = self.fe_tot.row_len();
        let v_count = self.fn_tot.row_len();
        // SAFETY: exclusive access per the caller contract; the partial
        // tables are contiguous row-major buffers.
        unsafe {
            reduce_usage_totals(
                self.fe_tot.row_mut(0),
                self.fn_tot.row_mut(0),
                self.fe_part.as_slice(),
                self.fn_part.as_slice(),
                l_count,
                v_count,
                self.j_count,
            );
        }
    }

    /// The marginal phase (after the reduction barrier).
    fn phase_b(&self) {
        claim(&self.c_marg, self.j_count, |ji| {
            let j = CommodityId::from_index(ji);
            // SAFETY: this task is row `ji`'s sole writer in this
            // phase; fraction rows are read-only after phase A.
            unsafe {
                let row = self.d.row_mut(ji);
                row.fill(0.0);
                marginal_sweep(
                    self.ext,
                    self.cost,
                    self.phi.row_slice(ji),
                    self.usage(),
                    j,
                    row,
                );
            }
        });
    }
}

/// One full protocol iteration over the persistent pool: tags → Γ →
/// flows → (ε-anneal) → marginals, in at most two dispatches (one when
/// `anneal_to` is `None`). Returns the Γ statistics; bit-identical to
/// the serial step for every participant count.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's state fields
pub(crate) fn fused_step(
    ext: &ExtendedNetwork,
    cost: &mut CostModel,
    config: &GradientConfig,
    pool: &WorkerPool,
    routing: &mut RoutingTable,
    state: &mut FlowState,
    marginals: &mut Marginals,
    tags: &mut BlockedTags,
    ws: &mut IterationWorkspace,
    anneal_to: Option<f64>,
) -> GammaStats {
    let v_count = ext.graph().node_count();
    let l_count = ext.graph().edge_count();
    let j_count = ext.num_commodities();
    // Cold-path shape guards: the algorithm keeps these consistent, but
    // a stale buffer after a network swap must resize, not corrupt.
    if state.t.len() != j_count * v_count || state.x.len() != j_count * l_count {
        state.reset(ext);
    }
    if marginals.d.len() != j_count * v_count {
        marginals.reset(ext);
    }
    if tags.tagged.len() != j_count * v_count {
        tags.reset(ext);
    }
    ws.ensure_workers(ext, pool.participants());
    let split = j_count < pool.participants();

    let build_and_run = |routing: &mut RoutingTable,
                         state: &mut FlowState,
                         marginals: &mut Marginals,
                         tags: &mut BlockedTags,
                         ws: &mut IterationWorkspace,
                         cost: &CostModel,
                         body: &dyn Fn(&FusedViews<'_>)| {
        let parts = ws.parts();
        let views = FusedViews {
            ext,
            cost,
            phi: PhiTable::new(routing.flat_mut(), l_count.max(1)),
            t: RowTable::new(&mut state.t, v_count.max(1)),
            x: RowTable::new(&mut state.x, l_count.max(1)),
            fe_part: RowTable::new(parts.f_edge_part, l_count.max(1)),
            fn_part: RowTable::new(parts.f_node_part, v_count.max(1)),
            fe_tot: RowTable::new(&mut state.f_edge, l_count.max(1)),
            fn_tot: RowTable::new(&mut state.f_node, v_count.max(1)),
            d: RowTable::new(&mut marginals.d, v_count.max(1)),
            tags: RowTable::new(&mut tags.tagged, v_count.max(1)),
            lanes: SlotTable::new(parts.lanes),
            stats: SlotTable::new(parts.stats),
            chunk_base: parts.chunk_base,
            j_count,
            eta: config.eta,
            traffic_floor: config.traffic_floor,
            opening_fraction: config.opening_fraction,
            shift_cap: config.shift_cap,
            use_blocked_sets: config.use_blocked_sets,
            backend: SimdBackend::Scalar,
            heads: &[],
            split,
            c_a: AtomicUsize::new(0),
            c_gamma: AtomicUsize::new(0),
            c_flows: AtomicUsize::new(0),
            c_marg: AtomicUsize::new(0),
        };
        body(&views);
    };

    if anneal_to.is_none() {
        build_and_run(routing, state, marginals, tags, ws, cost, &|views| {
            pool.run_participants(&|w| {
                views.phase_a(w, pool);
                pool.phase_wait();
                if w == 0 {
                    // SAFETY: between barriers; all other participants
                    // are parked on the next phase_wait.
                    unsafe { views.reduce_totals() }
                }
                pool.phase_wait();
                views.phase_b();
            });
        });
        return reduce_gamma_stats(ws, j_count);
    }

    // ε-annealing iteration: the epsilon mutation must land between
    // flows and marginals, and every task shares the cost model — so
    // split the step into two dispatches with a caller-side reduction
    // (same helper as participant 0's, hence bit-identical totals).
    build_and_run(routing, state, marginals, tags, ws, cost, &|views| {
        pool.run_participants(&|w| views.phase_a(w, pool));
    });
    reduce_usage_totals(
        &mut state.f_edge,
        &mut state.f_node,
        &ws.f_edge_part,
        &ws.f_node_part,
        l_count,
        v_count,
        j_count,
    );
    let stats = reduce_gamma_stats(ws, j_count);
    if let Some(eps) = anneal_to {
        cost.epsilon = eps;
    }
    build_and_run(routing, state, marginals, tags, ws, cost, &|views| {
        pool.run_participants(&|_w| views.phase_b());
    });
    stats
}

/// `true` when two equal-length float slices differ in any bit.
pub(crate) fn bits_differ(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
}

/// Active-set views layered over [`FusedViews`] for a sparse dispatch.
/// The work lists are read-only (built by the caller before dispatch);
/// the flag tables and live-arc rows are written through the same
/// slot/row ownership discipline as the dense tables: each `(commodity,
/// chunk)` slot has exactly one writer per phase, and participant 0
/// alone writes `marg_list`/`scratch` between the reduction barriers.
struct SparseCtl<'a> {
    /// Commodities whose tag → Γ → flow chain runs this iteration.
    dirty_list: &'a [u32],
    /// Global Γ-chunk ids of the dirty commodities (split mode).
    chunk_list: &'a [u32],
    /// Commodities whose flow pass must run even if Γ is a no-op.
    flow_dirty: &'a [bool],
    phi_changed: SlotTable<'a, bool>,
    flow_ran: SlotTable<'a, bool>,
    chunk_flags: SlotTable<'a, (bool, bool)>,
    marg_list: SlotTable<'a, u32>,
    scratch: SlotTable<'a, u64>,
    prev_fe: RowTable<'a, f64>,
    prev_fn: RowTable<'a, f64>,
    arc_len: RowTable<'a, u32>,
    arcs: RowTable<'a, EdgeId>,
    live: SlotTable<'a, usize>,
    force_totals: bool,
}

impl FusedViews<'_> {
    /// Sparse phase-A tag task: clear the row, then recompute router
    /// entries from the live-arc sub-list.
    fn sparse_tag_task(&self, sp: &SparseCtl<'_>, ji: usize) {
        let j = CommodityId::from_index(ji);
        // SAFETY: this task is row `ji`'s sole writer in this phase.
        let row = unsafe { self.tags.row_mut(ji) };
        clear_tags_scoped(self.ext, j, row);
        if !self.use_blocked_sets {
            return;
        }
        // SAFETY: commodity `ji`'s fraction/traffic/marginal rows and
        // live-arc rows are not written during this phase (Γ, rebuild,
        // and flows for `ji` run strictly after its tag task).
        unsafe {
            simd::tag_sweep_active(
                self.backend,
                self.ext,
                self.cost,
                self.phi.row_slice(ji),
                self.t.row(ji),
                self.usage(),
                self.d.row(ji),
                self.eta,
                self.traffic_floor,
                j,
                row,
                sp.arc_len.row(ji),
                sp.arcs.row(ji),
                *sp.live.slot_mut(ji),
                self.heads,
            );
        }
    }

    /// Sparse Γ over all of commodity `ji` (chain mode): tracked chunks,
    /// returning the folded `(value_changed, support_changed)`.
    fn sparse_gamma_commodity(&self, sp: &SparseCtl<'_>, ji: usize, worker: usize) -> (bool, bool) {
        let ctx = self.gamma_ctx(ji);
        // SAFETY: lane `worker` is exclusive to this participant; the
        // stat/flag slots of commodity `ji` are exclusive to this task.
        let lane = unsafe { self.lanes.slot_mut(worker) };
        let routers = self.ext.commodity_routers(ctx.j);
        let mut folded = (false, false);
        for (c, chunk) in routers.chunks(GAMMA_CHUNK).enumerate() {
            let stat = unsafe { self.stats.slot_mut(self.chunk_base[ji] + c) };
            let flag = unsafe { sp.chunk_flags.slot_mut(self.chunk_base[ji] + c) };
            gamma_chunk_tracked(&ctx, chunk, lane, stat, flag);
            folded.0 |= flag.0;
            folded.1 |= flag.1;
        }
        folded
    }

    /// Sparse Γ task for one global router chunk (split mode).
    fn sparse_gamma_chunk_task(&self, sp: &SparseCtl<'_>, ci: usize, worker: usize) {
        let ji = self.chunk_base.partition_point(|&b| b <= ci) - 1;
        let local = ci - self.chunk_base[ji];
        let ctx = self.gamma_ctx(ji);
        let routers = self.ext.commodity_routers(ctx.j);
        let lo = local * GAMMA_CHUNK;
        let hi = routers.len().min(lo + GAMMA_CHUNK);
        // SAFETY: lane `worker` is exclusive to this participant; stat
        // and flag slot `ci` are exclusive to this task.
        let lane = unsafe { self.lanes.slot_mut(worker) };
        let stat = unsafe { self.stats.slot_mut(ci) };
        let flag = unsafe { sp.chunk_flags.slot_mut(ci) };
        gamma_chunk_tracked(&ctx, &routers[lo..hi], lane, stat, flag);
    }

    /// Sparse flow pass for commodity `ji` over its live arcs.
    fn sparse_flow_task(&self, sp: &SparseCtl<'_>, ji: usize) {
        let j = CommodityId::from_index(ji);
        // SAFETY: this task is the sole accessor of row `ji` of each
        // table in this phase; Γ and the live-arc rebuild for `ji` have
        // already finished (chain order or the preceding barrier).
        unsafe {
            let t = self.t.row_mut(ji);
            let x = self.x.row_mut(ji);
            let fe = self.fe_part.row_mut(ji);
            let fnode = self.fn_part.row_mut(ji);
            zero_flow_rows_scoped(self.ext, j, t, x, fe, fnode);
            simd::flow_sweep_active(
                self.backend,
                self.ext,
                self.phi.row_slice(ji),
                j,
                t,
                x,
                fe,
                fnode,
                sp.arc_len.row(ji),
                sp.arcs.row(ji),
                self.heads,
            );
        }
    }

    /// Post-Γ bookkeeping for one dirty commodity: record whether its
    /// fractions moved, rebuild its live arcs if the support changed,
    /// and run the flow pass when anything (or an invalidation) demands
    /// it. Skipping the flow pass is sound because the commodity's
    /// traffic/edge-flow rows and usage-partial rows all persist and Γ
    /// reproduced the exact fraction row that produced them.
    fn sparse_finish_commodity(&self, sp: &SparseCtl<'_>, ji: usize, value: bool, support: bool) {
        // SAFETY: per-commodity slots/rows `ji` are exclusive to this
        // task in this phase; the fraction row is read-only after Γ.
        unsafe {
            *sp.phi_changed.slot_mut(ji) = value;
            if support {
                let live = rebuild_active_row(
                    self.ext,
                    CommodityId::from_index(ji),
                    self.phi.row_slice(ji),
                    sp.arc_len.row_mut(ji),
                    sp.arcs.row_mut(ji),
                );
                *sp.live.slot_mut(ji) = live;
            }
            if value || sp.flow_dirty[ji] {
                self.sparse_flow_task(sp, ji);
                *sp.flow_ran.slot_mut(ji) = true;
            }
        }
    }

    /// Sparse phase A for participant `w`: the same structure as the
    /// dense [`FusedViews::phase_a`], but every claiming loop splits the
    /// compacted dirty work lists instead of `0..J` — quiescent
    /// commodities cost nothing.
    fn sparse_phase_a(&self, sp: &SparseCtl<'_>, w: usize, pool: &WorkerPool) {
        if self.split {
            claim(&self.c_a, sp.dirty_list.len(), |di| {
                self.sparse_tag_task(sp, sp.dirty_list[di] as usize);
            });
            pool.phase_wait();
            claim(&self.c_gamma, sp.chunk_list.len(), |ci| {
                self.sparse_gamma_chunk_task(sp, sp.chunk_list[ci] as usize, w);
            });
            pool.phase_wait();
            claim(&self.c_flows, sp.dirty_list.len(), |di| {
                let ji = sp.dirty_list[di] as usize;
                // Fold this commodity's chunk flags — read-only now,
                // every Γ chunk finished at the preceding barrier.
                let mut value = false;
                let mut support = false;
                for ci in self.chunk_base[ji]..self.chunk_base[ji + 1] {
                    // SAFETY: read-only after the Γ barrier.
                    let flag = unsafe { &*sp.chunk_flags.slot_mut(ci) };
                    value |= flag.0;
                    support |= flag.1;
                }
                self.sparse_finish_commodity(sp, ji, value, support);
            });
        } else {
            claim(&self.c_a, sp.dirty_list.len(), |di| {
                let ji = sp.dirty_list[di] as usize;
                self.sparse_tag_task(sp, ji);
                let (value, support) = self.sparse_gamma_commodity(sp, ji, w);
                self.sparse_finish_commodity(sp, ji, value, support);
            });
        }
    }

    /// Participant 0's sparse critical section (between the barriers):
    /// reduce the usage totals only if any flow pass ran, decide whether
    /// they changed (exact bitwise comparison against the previous
    /// totals), and publish the marginal work list for phase B.
    ///
    /// # Safety
    ///
    /// Caller must guarantee exclusive access to totals, partials, and
    /// the sparse control tables (between phase barriers only).
    unsafe fn sparse_reduce(&self, sp: &SparseCtl<'_>) {
        // SAFETY: exclusive access per the caller contract.
        unsafe {
            let mut any_flows = false;
            for &ji in sp.dirty_list {
                any_flows |= *sp.flow_ran.slot_mut(ji as usize);
            }
            let mut totals_changed = false;
            if any_flows {
                let l_count = self.fe_tot.row_len();
                let v_count = self.fn_tot.row_len();
                sp.prev_fe.row_mut(0).copy_from_slice(self.fe_tot.row(0));
                sp.prev_fn.row_mut(0).copy_from_slice(self.fn_tot.row(0));
                simd::reduce_usage_totals_scoped(
                    self.backend,
                    self.ext,
                    self.fe_tot.row_mut(0),
                    self.fn_tot.row_mut(0),
                    self.fe_part.as_slice(),
                    self.fn_part.as_slice(),
                    l_count,
                    v_count,
                    self.j_count,
                );
                totals_changed = bits_differ(sp.prev_fe.row(0), self.fe_tot.row(0))
                    || bits_differ(sp.prev_fn.row(0), self.fn_tot.row(0));
            }
            let effective = totals_changed || sp.force_totals;
            let mut n = 0usize;
            for ji in 0..self.j_count {
                if effective || *sp.phi_changed.slot_mut(ji) {
                    *sp.marg_list.slot_mut(n) = ji as u32;
                    n += 1;
                }
            }
            *sp.scratch.slot_mut(SCRATCH_MARG_LEN) = n as u64;
            *sp.scratch.slot_mut(SCRATCH_TOTALS_EFFECTIVE) = u64::from(effective);
        }
    }

    /// Sparse phase B: marginal sweeps for the published work list only.
    /// No row zero-fill — non-router `d` entries are invariantly zero
    /// (see [`crate::marginals::marginal_sweep_active`]).
    fn sparse_phase_b(&self, sp: &SparseCtl<'_>) {
        // SAFETY: written by participant 0 before the last barrier.
        let n = unsafe { *sp.scratch.slot_mut(SCRATCH_MARG_LEN) } as usize;
        claim(&self.c_marg, n, |mi| {
            // SAFETY: marg_list/live/arc rows are read-only in this
            // phase; this task is `d` row `ji`'s sole writer.
            unsafe {
                let ji = *sp.marg_list.slot_mut(mi) as usize;
                let j = CommodityId::from_index(ji);
                simd::marginal_sweep_active(
                    self.backend,
                    self.ext,
                    self.cost,
                    self.phi.row_slice(ji),
                    self.usage(),
                    j,
                    self.d.row_mut(ji),
                    sp.arc_len.row(ji),
                    sp.arcs.row(ji),
                    *sp.live.slot_mut(ji),
                    self.heads,
                );
            }
        });
    }
}

/// Builds the iteration's compacted work lists from the carried dirty
/// flags and rebuilds any live-arc row an invalidation marked stale
/// (cheap: only ever needed right after an invalidation). The dirty
/// lists are what the pool's claiming loops split — the active-set
/// weighted work splitting.
pub(crate) fn sparse_prepare(
    active: &mut ActiveSet,
    ext: &ExtendedNetwork,
    routing: &RoutingTable,
    chunk_base: &[usize],
    split: bool,
) {
    active.phi_changed.iter_mut().for_each(|x| *x = false);
    active.flow_ran.iter_mut().for_each(|x| *x = false);
    active.dirty_list.clear();
    active.chunk_list.clear();
    for ji in 0..active.chain_dirty.len() {
        if !active.chain_dirty[ji] {
            continue;
        }
        let j = CommodityId::from_index(ji);
        active.dirty_list.push(ji as u32);
        if active.arcs.stale[ji] {
            active.arcs.rebuild(ext, j, routing.row(j));
        }
        if split {
            for ci in chunk_base[ji]..chunk_base[ji + 1] {
                active.chunk_list.push(ci as u32);
            }
        }
    }
}

/// Applies the iteration's outcomes to the flags the next iteration
/// reads: a commodity's chain is dirty when its own fractions moved,
/// when the shared totals moved (every Γ input changed), or when ε was
/// annealed (the cost model changed under everyone).
pub(crate) fn sparse_carry_forward(active: &mut ActiveSet, effective_totals: bool, annealed: bool) {
    for ji in 0..active.chain_dirty.len() {
        active.chain_dirty[ji] = annealed || effective_totals || active.phi_changed[ji];
    }
    active.flow_dirty.iter_mut().for_each(|x| *x = false);
    active.force_totals = false;
}

/// The active-set engine's pooled step (`GradientConfig::sparsity` with
/// a worker pool): the dense fused protocol with every phase claiming
/// over compacted dirty lists and every sweep walking live-arc
/// sub-lists. Bit-identical to [`fused_step`] — each skipped pass is
/// one whose re-run would reproduce its outputs bit-for-bit, and each
/// sparse kernel performs the dense kernel's float operations in the
/// dense order.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's state fields
pub(crate) fn fused_step_sparse(
    ext: &ExtendedNetwork,
    cost: &mut CostModel,
    config: &GradientConfig,
    pool: &WorkerPool,
    routing: &mut RoutingTable,
    state: &mut FlowState,
    marginals: &mut Marginals,
    tags: &mut BlockedTags,
    ws: &mut IterationWorkspace,
    active: &mut ActiveSet,
    anneal_to: Option<f64>,
) -> GammaStats {
    let v_count = ext.graph().node_count();
    let l_count = ext.graph().edge_count();
    let j_count = ext.num_commodities();
    if state.t.len() != j_count * v_count || state.x.len() != j_count * l_count {
        state.reset(ext);
    }
    if marginals.d.len() != j_count * v_count {
        marginals.reset(ext);
    }
    if tags.tagged.len() != j_count * v_count {
        tags.reset(ext);
    }
    // A worker-count change re-zeroes the persistent usage partials, so
    // the workspace shape key must be checked *before* trusting them.
    if !ws.sized_for_workers(ext, pool.participants()) {
        active.invalidate();
    }
    ws.ensure_workers(ext, pool.participants());
    active.ensure(ext);
    let split = j_count < pool.participants();
    sparse_prepare(active, ext, routing, &ws.chunk_base, split);

    let backend = simd::resolve(config.simd);
    let force_totals = active.force_totals;
    let annealed = anneal_to.is_some();

    let build_and_run = |routing: &mut RoutingTable,
                         state: &mut FlowState,
                         marginals: &mut Marginals,
                         tags: &mut BlockedTags,
                         ws: &mut IterationWorkspace,
                         active: &mut ActiveSet,
                         cost: &CostModel,
                         body: &dyn Fn(&FusedViews<'_>, &SparseCtl<'_>)| {
        let parts = ws.parts();
        let views = FusedViews {
            ext,
            cost,
            phi: PhiTable::new(routing.flat_mut(), l_count.max(1)),
            t: RowTable::new(&mut state.t, v_count.max(1)),
            x: RowTable::new(&mut state.x, l_count.max(1)),
            fe_part: RowTable::new(parts.f_edge_part, l_count.max(1)),
            fn_part: RowTable::new(parts.f_node_part, v_count.max(1)),
            fe_tot: RowTable::new(&mut state.f_edge, l_count.max(1)),
            fn_tot: RowTable::new(&mut state.f_node, v_count.max(1)),
            d: RowTable::new(&mut marginals.d, v_count.max(1)),
            tags: RowTable::new(&mut tags.tagged, v_count.max(1)),
            lanes: SlotTable::new(parts.lanes),
            stats: SlotTable::new(parts.stats),
            chunk_base: parts.chunk_base,
            j_count,
            eta: config.eta,
            traffic_floor: config.traffic_floor,
            opening_fraction: config.opening_fraction,
            shift_cap: config.shift_cap,
            use_blocked_sets: config.use_blocked_sets,
            backend,
            heads: &active.heads,
            split,
            c_a: AtomicUsize::new(0),
            c_gamma: AtomicUsize::new(0),
            c_flows: AtomicUsize::new(0),
            c_marg: AtomicUsize::new(0),
        };
        let ctl = SparseCtl {
            dirty_list: &active.dirty_list,
            chunk_list: &active.chunk_list,
            flow_dirty: &active.flow_dirty,
            phi_changed: SlotTable::new(&mut active.phi_changed),
            flow_ran: SlotTable::new(&mut active.flow_ran),
            chunk_flags: SlotTable::new(&mut active.chunk_flags),
            marg_list: SlotTable::new(&mut active.marg_list),
            scratch: SlotTable::new(&mut active.scratch),
            prev_fe: RowTable::new(&mut active.prev_f_edge, l_count.max(1)),
            prev_fn: RowTable::new(&mut active.prev_f_node, v_count.max(1)),
            arc_len: RowTable::new(&mut active.arcs.arc_len, active.arcs.router_stride.max(1)),
            arcs: RowTable::new(&mut active.arcs.arcs, active.arcs.arc_stride.max(1)),
            live: SlotTable::new(&mut active.arcs.live),
            force_totals,
        };
        body(&views, &ctl);
    };

    if !annealed {
        build_and_run(
            routing,
            state,
            marginals,
            tags,
            ws,
            active,
            cost,
            &|views, ctl| {
                pool.run_participants(&|w| {
                    views.sparse_phase_a(ctl, w, pool);
                    pool.phase_wait();
                    if w == 0 {
                        // SAFETY: between barriers; all other
                        // participants are parked on the next
                        // phase_wait.
                        unsafe { views.sparse_reduce(ctl) }
                    }
                    pool.phase_wait();
                    views.sparse_phase_b(ctl);
                });
            },
        );
        let effective = active.scratch[SCRATCH_TOTALS_EFFECTIVE] != 0;
        sparse_carry_forward(active, effective, false);
        return reduce_gamma_stats(ws, j_count);
    }

    // ε-annealing iteration: the epsilon mutation must land between
    // flows and marginals — two dispatches, with the reduction and the
    // work-list publication done by the caller in between. Every
    // marginal sweep re-runs (the cost model changed), and every chain
    // is dirty next iteration.
    build_and_run(
        routing,
        state,
        marginals,
        tags,
        ws,
        active,
        cost,
        &|views, ctl| {
            pool.run_participants(&|w| views.sparse_phase_a(ctl, w, pool));
        },
    );
    let any_flows = active
        .dirty_list
        .iter()
        .any(|&ji| active.flow_ran[ji as usize]);
    let mut totals_changed = false;
    if any_flows {
        active.prev_f_edge.copy_from_slice(&state.f_edge);
        active.prev_f_node.copy_from_slice(&state.f_node);
        simd::reduce_usage_totals_scoped(
            backend,
            ext,
            &mut state.f_edge,
            &mut state.f_node,
            &ws.f_edge_part,
            &ws.f_node_part,
            l_count,
            v_count,
            j_count,
        );
        totals_changed = bits_differ(&active.prev_f_edge, &state.f_edge)
            || bits_differ(&active.prev_f_node, &state.f_node);
    }
    let effective = totals_changed || force_totals;
    let stats = reduce_gamma_stats(ws, j_count);
    if let Some(eps) = anneal_to {
        cost.epsilon = eps;
    }
    for ji in 0..j_count {
        active.marg_list[ji] = ji as u32;
    }
    active.scratch[SCRATCH_MARG_LEN] = j_count as u64;
    active.scratch[SCRATCH_TOTALS_EFFECTIVE] = u64::from(effective);
    build_and_run(
        routing,
        state,
        marginals,
        tags,
        ws,
        active,
        cost,
        &|views, ctl| {
            pool.run_participants(&|_w| views.sparse_phase_b(ctl));
        },
    );
    sparse_carry_forward(active, effective, true);
    stats
}

/// The active-set engine's serial step (`GradientConfig::sparsity`
/// without a pool): the same skip algebra as [`fused_step_sparse`] run
/// single-threaded, with the per-commodity usage partials persisting in
/// the workspace across iterations so a skipped flow pass contributes
/// its unchanged rows to the ascending-order totals reduction.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's state fields
pub(crate) fn sparse_step_serial(
    ext: &ExtendedNetwork,
    cost: &mut CostModel,
    config: &GradientConfig,
    routing: &mut RoutingTable,
    state: &mut FlowState,
    marginals: &mut Marginals,
    tags: &mut BlockedTags,
    ws: &mut IterationWorkspace,
    active: &mut ActiveSet,
    anneal_to: Option<f64>,
) -> GammaStats {
    let v_count = ext.graph().node_count();
    let l_count = ext.graph().edge_count();
    let j_count = ext.num_commodities();
    if state.t.len() != j_count * v_count || state.x.len() != j_count * l_count {
        state.reset(ext);
    }
    if marginals.d.len() != j_count * v_count {
        marginals.reset(ext);
    }
    if tags.tagged.len() != j_count * v_count {
        tags.reset(ext);
    }
    if !ws.sized_for_workers(ext, 1) {
        active.invalidate();
    }
    ws.ensure_workers(ext, 1);
    active.ensure(ext);
    sparse_prepare(active, ext, routing, &ws.chunk_base, false);
    let backend = simd::resolve(config.simd);

    // Phase A: tag → Γ → flow chains for the dirty commodities only.
    for di in 0..active.dirty_list.len() {
        let ji = active.dirty_list[di] as usize;
        let j = CommodityId::from_index(ji);
        let tag_row = &mut tags.tagged[ji * v_count..(ji + 1) * v_count];
        clear_tags_scoped(ext, j, tag_row);
        if config.use_blocked_sets {
            let (lens, arcs, live) = active.arcs.row(ji);
            simd::tag_sweep_active(
                backend,
                ext,
                cost,
                routing.row(j),
                state.t_row(j),
                state.usage_view(),
                marginals.row(j),
                config.eta,
                config.traffic_floor,
                j,
                tag_row,
                lens,
                arcs,
                live,
                &active.heads,
            );
        }
        let mut value = false;
        let mut support = false;
        {
            let ctx = GammaCtx {
                ext,
                cost,
                phi: PhiRow::from_mut(routing.row_mut(j)),
                t_row: state.t_row(j),
                usage: state.usage_view(),
                d_row: marginals.row(j),
                tag_row: tags.row(j),
                eta: config.eta,
                traffic_floor: config.traffic_floor,
                opening_floor: config.opening_fraction * ext.commodity(j).max_rate,
                shift_cap: config.shift_cap,
                j,
                backend,
                heads: &active.heads,
            };
            let routers = ext.commodity_routers(j);
            for (c, chunk) in routers.chunks(GAMMA_CHUNK).enumerate() {
                let slot = ws.chunk_base[ji] + c;
                gamma_chunk_tracked(
                    &ctx,
                    chunk,
                    &mut ws.lanes[0],
                    &mut ws.stats[slot],
                    &mut active.chunk_flags[slot],
                );
                value |= active.chunk_flags[slot].0;
                support |= active.chunk_flags[slot].1;
            }
        }
        active.phi_changed[ji] = value;
        if support {
            active.arcs.rebuild(ext, j, routing.row(j));
        }
        if value || active.flow_dirty[ji] {
            let t = &mut state.t[ji * v_count..(ji + 1) * v_count];
            let x = &mut state.x[ji * l_count..(ji + 1) * l_count];
            let fe = &mut ws.f_edge_part[ji * l_count..(ji + 1) * l_count];
            let fnode = &mut ws.f_node_part[ji * v_count..(ji + 1) * v_count];
            zero_flow_rows_scoped(ext, j, t, x, fe, fnode);
            let (lens, arcs, _live) = active.arcs.row(ji);
            simd::flow_sweep_active(
                backend,
                ext,
                routing.row(j),
                j,
                t,
                x,
                fe,
                fnode,
                lens,
                arcs,
                &active.heads,
            );
            active.flow_ran[ji] = true;
        }
    }

    // Totals: reduce (and bitwise-compare) only if any flow pass ran.
    let any_flows = active
        .dirty_list
        .iter()
        .any(|&ji| active.flow_ran[ji as usize]);
    let mut totals_changed = false;
    if any_flows {
        active.prev_f_edge.copy_from_slice(&state.f_edge);
        active.prev_f_node.copy_from_slice(&state.f_node);
        simd::reduce_usage_totals_scoped(
            backend,
            ext,
            &mut state.f_edge,
            &mut state.f_node,
            &ws.f_edge_part,
            &ws.f_node_part,
            l_count,
            v_count,
            j_count,
        );
        totals_changed = bits_differ(&active.prev_f_edge, &state.f_edge)
            || bits_differ(&active.prev_f_node, &state.f_node);
    }
    let effective = totals_changed || active.force_totals;
    let annealed = anneal_to.is_some();
    if let Some(eps) = anneal_to {
        cost.epsilon = eps;
    }

    // Phase B: marginal sweeps for moved commodities — everyone when the
    // shared totals (or ε) changed.
    for ji in 0..j_count {
        if !(annealed || effective || active.phi_changed[ji]) {
            continue;
        }
        let j = CommodityId::from_index(ji);
        let d = &mut marginals.d[ji * v_count..(ji + 1) * v_count];
        let (lens, arcs, live) = active.arcs.row(ji);
        simd::marginal_sweep_active(
            backend,
            ext,
            cost,
            routing.row(j),
            state.usage_view(),
            j,
            d,
            lens,
            arcs,
            live,
            &active.heads,
        );
    }

    sparse_carry_forward(active, effective, annealed);
    reduce_gamma_stats(ws, j_count)
}
