//! The fused pooled iteration: one worker-pool dispatch per step.
//!
//! The serial [`GradientAlgorithm::step`](crate::GradientAlgorithm::step)
//! sequence — tags → Γ → flows → marginals — fans each pass out over
//! commodities, but dispatching the pool four times per step pays four
//! wake/sleep round-trips. This module fuses the passes into
//! per-commodity *task chains* so each worker carries a commodity
//! through every phase per wake, with barriers only where a
//! cross-commodity reduction genuinely requires one.
//!
//! ## Why the chain is sound
//!
//! Per commodity `j`, the tag sweep, Γ update, and flow sweep read only
//! `j`'s own rows (fraction, traffic, marginal, tag) plus the shared
//! usage totals `f_edge`/`f_node` — and the totals are *stale by
//! design*: the step's semantics evaluate tags, Γ, and the new flows
//! against the previous iteration's usage. The totals are only
//! rewritten at the reduction barrier, after every chain has finished
//! reading them; the marginal phase then runs against the new totals.
//! So the dependency structure per step is
//!
//! ```text
//! phase A   (per commodity)  tags(j) → Γ(j) → flows(j)   [old totals]
//! barrier   participant 0 reduces per-commodity usage partials
//!           into f_edge/f_node, in ascending commodity order
//! barrier
//! phase B   (per commodity)  marginals(j)                [new totals]
//! ```
//!
//! which is exactly two barriers per step (the serial step's data flow,
//! minus three pool dispatches). When there are fewer commodities than
//! participants, phase A instead runs tags / Γ / flows as separate
//! sub-phases so the Γ work can additionally split *within* a commodity
//! by router chunk ([`GAMMA_CHUNK`]) — distinct routers write disjoint
//! entries of the commodity's fraction row, so chunk tasks share the
//! row soundly through [`PhiTable`]'s per-element cells.
//!
//! ## Bit-identity (ARCHITECTURE invariant 9)
//!
//! Workers only ever compute rows they own; every cross-commodity
//! reduction — the usage-partial merge and the Γ-statistics fold — runs
//! in a fixed order (ascending commodity, ascending router chunk) no
//! matter which worker produced the inputs. ε-annealing iterations
//! split the step into two dispatches (the epsilon mutation must happen
//! between flows and marginals, and the cost model is shared by every
//! task), with the reduction done by the caller between them — the same
//! helper, hence the same float-addition order, as participant 0 uses
//! in the single-dispatch case.

#![allow(unsafe_code)] // phase-protocol row ownership; contracts documented inline

use crate::blocked::{tag_sweep, BlockedTags};
use crate::cost::CostModel;
use crate::flows::{flow_sweep, FlowState, UsageView};
use crate::gamma::{gamma_chunk, reduce_gamma_stats, GammaCtx, GammaStats};
use crate::marginals::{marginal_sweep, Marginals};
use crate::pool::{PhiTable, RowTable, SlotTable, WorkerPool};
use crate::routing::RoutingTable;
use crate::workspace::{GammaLane, IterationWorkspace, GAMMA_CHUNK};
use crate::GradientConfig;
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Claims indices `0..n` from a shared counter and runs `f` on each —
/// the work-stealing loop every phase uses. Claim order is arbitrary;
/// every consumer writes only what it owns, so order never matters.
fn claim(counter: &AtomicUsize, n: usize, mut f: impl FnMut(usize)) {
    loop {
        let i = counter.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        f(i);
    }
}

/// Adds the per-commodity usage partials into the totals, in ascending
/// commodity order (edge partial then node partial per commodity) —
/// the one float-addition order every path shares, so totals are
/// bit-identical however the partials were produced.
fn reduce_usage_totals(
    fe_tot: &mut [f64],
    fn_tot: &mut [f64],
    fe_part: &[f64],
    fn_part: &[f64],
    l_count: usize,
    v_count: usize,
    j_count: usize,
) {
    fe_tot.fill(0.0);
    fn_tot.fill(0.0);
    for ji in 0..j_count {
        let fe = &fe_part[ji * l_count..(ji + 1) * l_count];
        for (acc, &p) in fe_tot.iter_mut().zip(fe) {
            *acc += p;
        }
        let fnode = &fn_part[ji * v_count..(ji + 1) * v_count];
        for (acc, &p) in fn_tot.iter_mut().zip(fnode) {
            *acc += p;
        }
    }
}

/// Shared-view bundle one fused dispatch operates on. All tables are
/// raw-pointer views over the algorithm's buffers; soundness rests on
/// the phase protocol documented at module level (each task touches
/// only rows/chunks it claimed, totals are written only between
/// barriers).
struct FusedViews<'a> {
    ext: &'a ExtendedNetwork,
    cost: &'a CostModel,
    phi: PhiTable<'a>,
    t: RowTable<'a, f64>,
    x: RowTable<'a, f64>,
    fe_part: RowTable<'a, f64>,
    fn_part: RowTable<'a, f64>,
    fe_tot: RowTable<'a, f64>,
    fn_tot: RowTable<'a, f64>,
    d: RowTable<'a, f64>,
    tags: RowTable<'a, bool>,
    lanes: SlotTable<'a, GammaLane>,
    stats: SlotTable<'a, (f64, f64, usize)>,
    chunk_base: &'a [usize],
    j_count: usize,
    eta: f64,
    traffic_floor: f64,
    opening_fraction: f64,
    shift_cap: f64,
    use_blocked_sets: bool,
    /// Split phase A into tag / Γ-chunk / flow sub-phases (used when
    /// commodities alone cannot occupy every participant).
    split: bool,
    c_a: AtomicUsize,
    c_gamma: AtomicUsize,
    c_flows: AtomicUsize,
    c_marg: AtomicUsize,
}

impl FusedViews<'_> {
    /// The usage totals as a view. Sound per the phase protocol: the
    /// totals are never written while any task holds this view.
    fn usage(&self) -> UsageView<'_> {
        // SAFETY: rows 0 cover the whole single-row total buffers; no
        // mutable access exists outside the reduction barrier.
        unsafe {
            UsageView {
                f_edge: self.fe_tot.row(0),
                f_node: self.fn_tot.row(0),
            }
        }
    }

    /// Phase-A tag task for commodity `ji`: clears and recomputes the
    /// tag row (a cleared row *is* the result when blocked sets are
    /// disabled).
    fn tag_task(&self, ji: usize) {
        let j = CommodityId::from_index(ji);
        // SAFETY: this task is row `ji`'s sole writer in this phase.
        let row = unsafe { self.tags.row_mut(ji) };
        row.fill(false);
        if !self.use_blocked_sets {
            return;
        }
        // SAFETY: commodity `ji`'s fraction/traffic/marginal rows are
        // not written during this phase (Γ and flows for `ji` run
        // strictly after its tag task).
        unsafe {
            tag_sweep(
                self.ext,
                self.cost,
                self.phi.row_slice(ji),
                self.t.row(ji),
                self.usage(),
                self.d.row(ji),
                self.eta,
                self.traffic_floor,
                j,
                row,
            );
        }
    }

    /// The Γ context for commodity `ji` — valid only before the
    /// commodity's flow task overwrites its traffic row.
    fn gamma_ctx(&self, ji: usize) -> GammaCtx<'_> {
        let j = CommodityId::from_index(ji);
        // SAFETY: the traffic, marginal, and tag rows of `ji` are
        // stable while Γ runs (flows for `ji` run strictly after).
        unsafe {
            GammaCtx {
                ext: self.ext,
                cost: self.cost,
                phi: self.phi.row(ji),
                t_row: self.t.row(ji),
                usage: self.usage(),
                d_row: self.d.row(ji),
                tag_row: self.tags.row(ji),
                eta: self.eta,
                traffic_floor: self.traffic_floor,
                opening_floor: self.opening_fraction * self.ext.commodity(j).max_rate,
                shift_cap: self.shift_cap,
                j,
            }
        }
    }

    /// Phase-A Γ task covering all of commodity `ji` (chain mode), with
    /// statistics still recorded per router chunk so the final fold is
    /// identical to split mode's.
    fn gamma_commodity(&self, ji: usize, worker: usize) {
        let ctx = self.gamma_ctx(ji);
        // SAFETY: lane `worker` is exclusive to this participant; the
        // stat slots of commodity `ji` are exclusive to this task.
        let lane = unsafe { self.lanes.slot_mut(worker) };
        let routers = self.ext.commodity_routers(ctx.j);
        for (c, chunk) in routers.chunks(GAMMA_CHUNK).enumerate() {
            let stat = unsafe { self.stats.slot_mut(self.chunk_base[ji] + c) };
            gamma_chunk(&ctx, chunk, lane, stat);
        }
    }

    /// Phase-A Γ task for one global router chunk (split mode). Chunk
    /// tasks of the same commodity write disjoint fraction-row entries
    /// (each router owns its out-edge set), shared via [`PhiRow`] cells.
    ///
    /// [`PhiRow`]: crate::pool::PhiRow
    fn gamma_chunk_task(&self, ci: usize, worker: usize) {
        let ji = self.chunk_base.partition_point(|&b| b <= ci) - 1;
        let local = ci - self.chunk_base[ji];
        let ctx = self.gamma_ctx(ji);
        let routers = self.ext.commodity_routers(ctx.j);
        let lo = local * GAMMA_CHUNK;
        let hi = routers.len().min(lo + GAMMA_CHUNK);
        // SAFETY: lane `worker` is exclusive to this participant; stat
        // slot `ci` is exclusive to this task.
        let lane = unsafe { self.lanes.slot_mut(worker) };
        let stat = unsafe { self.stats.slot_mut(ci) };
        gamma_chunk(&ctx, &routers[lo..hi], lane, stat);
    }

    /// Phase-A flow task for commodity `ji`: zeroes and recomputes the
    /// traffic/edge-flow rows and the commodity's usage partials.
    fn flow_task(&self, ji: usize) {
        let j = CommodityId::from_index(ji);
        // SAFETY: this task is the sole accessor of row `ji` of each
        // table in this phase; Γ for `ji` has already finished (chain
        // order or the preceding barrier), so reading the fraction row
        // while no one writes it is sound.
        unsafe {
            let t = self.t.row_mut(ji);
            let x = self.x.row_mut(ji);
            let fe = self.fe_part.row_mut(ji);
            let fnode = self.fn_part.row_mut(ji);
            t.fill(0.0);
            x.fill(0.0);
            fe.fill(0.0);
            fnode.fill(0.0);
            flow_sweep(self.ext, self.phi.row_slice(ji), j, t, x, fe, fnode);
        }
    }

    /// Everything before the reduction barrier, for participant `w`.
    fn phase_a(&self, w: usize, pool: &WorkerPool) {
        if self.split {
            claim(&self.c_a, self.j_count, |ji| self.tag_task(ji));
            pool.phase_wait();
            let total_chunks = self.chunk_base[self.j_count];
            claim(&self.c_gamma, total_chunks, |ci| {
                self.gamma_chunk_task(ci, w)
            });
            pool.phase_wait();
            claim(&self.c_flows, self.j_count, |ji| self.flow_task(ji));
        } else {
            claim(&self.c_a, self.j_count, |ji| {
                self.tag_task(ji);
                self.gamma_commodity(ji, w);
                self.flow_task(ji);
            });
        }
    }

    /// The usage reduction (participant 0 only, between barriers).
    ///
    /// # Safety
    ///
    /// Caller must guarantee no other participant accesses the totals
    /// or partials concurrently (i.e. call only between phase barriers,
    /// or after the dispatch returned).
    unsafe fn reduce_totals(&self) {
        let l_count = self.fe_tot.row_len();
        let v_count = self.fn_tot.row_len();
        // SAFETY: exclusive access per the caller contract; the partial
        // tables are contiguous row-major buffers.
        unsafe {
            reduce_usage_totals(
                self.fe_tot.row_mut(0),
                self.fn_tot.row_mut(0),
                self.fe_part.as_slice(),
                self.fn_part.as_slice(),
                l_count,
                v_count,
                self.j_count,
            );
        }
    }

    /// The marginal phase (after the reduction barrier).
    fn phase_b(&self) {
        claim(&self.c_marg, self.j_count, |ji| {
            let j = CommodityId::from_index(ji);
            // SAFETY: this task is row `ji`'s sole writer in this
            // phase; fraction rows are read-only after phase A.
            unsafe {
                let row = self.d.row_mut(ji);
                row.fill(0.0);
                marginal_sweep(
                    self.ext,
                    self.cost,
                    self.phi.row_slice(ji),
                    self.usage(),
                    j,
                    row,
                );
            }
        });
    }
}

/// One full protocol iteration over the persistent pool: tags → Γ →
/// flows → (ε-anneal) → marginals, in at most two dispatches (one when
/// `anneal_to` is `None`). Returns the Γ statistics; bit-identical to
/// the serial step for every participant count.
#[allow(clippy::too_many_arguments)] // mirrors the algorithm's state fields
pub(crate) fn fused_step(
    ext: &ExtendedNetwork,
    cost: &mut CostModel,
    config: &GradientConfig,
    pool: &WorkerPool,
    routing: &mut RoutingTable,
    state: &mut FlowState,
    marginals: &mut Marginals,
    tags: &mut BlockedTags,
    ws: &mut IterationWorkspace,
    anneal_to: Option<f64>,
) -> GammaStats {
    let v_count = ext.graph().node_count();
    let l_count = ext.graph().edge_count();
    let j_count = ext.num_commodities();
    // Cold-path shape guards: the algorithm keeps these consistent, but
    // a stale buffer after a network swap must resize, not corrupt.
    if state.t.len() != j_count * v_count || state.x.len() != j_count * l_count {
        state.reset(ext);
    }
    if marginals.d.len() != j_count * v_count {
        marginals.reset(ext);
    }
    if tags.tagged.len() != j_count * v_count {
        tags.reset(ext);
    }
    ws.ensure_workers(ext, pool.participants());
    let split = j_count < pool.participants();

    let build_and_run = |routing: &mut RoutingTable,
                         state: &mut FlowState,
                         marginals: &mut Marginals,
                         tags: &mut BlockedTags,
                         ws: &mut IterationWorkspace,
                         cost: &CostModel,
                         body: &dyn Fn(&FusedViews<'_>)| {
        let parts = ws.parts();
        let views = FusedViews {
            ext,
            cost,
            phi: PhiTable::new(routing.flat_mut(), l_count.max(1)),
            t: RowTable::new(&mut state.t, v_count.max(1)),
            x: RowTable::new(&mut state.x, l_count.max(1)),
            fe_part: RowTable::new(parts.f_edge_part, l_count.max(1)),
            fn_part: RowTable::new(parts.f_node_part, v_count.max(1)),
            fe_tot: RowTable::new(&mut state.f_edge, l_count.max(1)),
            fn_tot: RowTable::new(&mut state.f_node, v_count.max(1)),
            d: RowTable::new(&mut marginals.d, v_count.max(1)),
            tags: RowTable::new(&mut tags.tagged, v_count.max(1)),
            lanes: SlotTable::new(parts.lanes),
            stats: SlotTable::new(parts.stats),
            chunk_base: parts.chunk_base,
            j_count,
            eta: config.eta,
            traffic_floor: config.traffic_floor,
            opening_fraction: config.opening_fraction,
            shift_cap: config.shift_cap,
            use_blocked_sets: config.use_blocked_sets,
            split,
            c_a: AtomicUsize::new(0),
            c_gamma: AtomicUsize::new(0),
            c_flows: AtomicUsize::new(0),
            c_marg: AtomicUsize::new(0),
        };
        body(&views);
    };

    if anneal_to.is_none() {
        build_and_run(routing, state, marginals, tags, ws, cost, &|views| {
            pool.run_participants(&|w| {
                views.phase_a(w, pool);
                pool.phase_wait();
                if w == 0 {
                    // SAFETY: between barriers; all other participants
                    // are parked on the next phase_wait.
                    unsafe { views.reduce_totals() }
                }
                pool.phase_wait();
                views.phase_b();
            });
        });
        return reduce_gamma_stats(ws, j_count);
    }

    // ε-annealing iteration: the epsilon mutation must land between
    // flows and marginals, and every task shares the cost model — so
    // split the step into two dispatches with a caller-side reduction
    // (same helper as participant 0's, hence bit-identical totals).
    build_and_run(routing, state, marginals, tags, ws, cost, &|views| {
        pool.run_participants(&|w| views.phase_a(w, pool));
    });
    reduce_usage_totals(
        &mut state.f_edge,
        &mut state.f_node,
        &ws.f_edge_part,
        &ws.f_node_part,
        l_count,
        v_count,
        j_count,
    );
    let stats = reduce_gamma_stats(ws, j_count);
    if let Some(eps) = anneal_to {
        cost.epsilon = eps;
    }
    build_and_run(routing, state, marginals, tags, ws, cost, &|views| {
        pool.run_participants(&|_w| views.phase_b());
    });
    stats
}
