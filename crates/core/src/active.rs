//! Active-set bookkeeping for the sparsity-aware iteration engine
//! (`GradientConfig::sparsity`).
//!
//! Near convergence most routing rows stop moving: Γ reproduces the
//! same fractions bit-for-bit and the usage totals it would feed back
//! are unchanged. The structures here track exactly that — which
//! commodities must re-run their tag/Γ/flow chain this iteration, which
//! must re-run their marginal sweep, and the per-commodity *live arc*
//! sub-lists (arcs with nonzero fraction) that the sparse sweeps iterate
//! instead of the full topological order.
//!
//! Soundness of every skip reduces to one induction: a pass may be
//! skipped only when re-running it would reproduce its outputs
//! bit-for-bit, which holds when all of its inputs are bitwise-unchanged
//! *and* its previous run made no change (Γ is a `φ → φ'` map, so "no
//! change" is part of the input-unchanged condition). Anything that
//! mutates algorithm state behind the tracker's back — checkpoints
//! restored, capacities edited, η/thread changes — calls
//! [`ActiveSet::invalidate`], which forces one fully dense iteration.
//!
//! All buffers are sized once in [`ActiveSet::ensure`]; maintenance
//! afterwards is allocation-free (ARCHITECTURE invariant 15).

use crate::workspace::GAMMA_CHUNK;
use spn_graph::EdgeId;
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;

/// Scratch slot written by participant 0 between the fused barriers:
/// number of entries of `marg_list` that phase B must run.
pub(crate) const SCRATCH_MARG_LEN: usize = 0;
/// Scratch slot: 1 when this iteration's usage totals changed (or were
/// force-invalidated), i.e. every commodity's chain is dirty next
/// iteration.
pub(crate) const SCRATCH_TOTALS_EFFECTIVE: usize = 1;
pub(crate) const SCRATCH_SLOTS: usize = 2;

/// Per-commodity live-arc sub-lists in CSR form over
/// [`ExtendedNetwork::commodity_routers_topo`].
///
/// Rows use uniform strides (`router_stride`, `arc_stride` — the maxima
/// over commodities) so the fused step can hand concurrent tasks
/// disjoint per-commodity rows through the same unsafe row-table views
/// it already uses for flows and marginals.
#[derive(Clone, Debug, Default)]
pub(crate) struct ActiveArcs {
    pub(crate) router_stride: usize,
    pub(crate) arc_stride: usize,
    /// `arc_len[ji * router_stride + r]` — live out-degree of the
    /// `r`-th topo router of commodity `ji`.
    pub(crate) arc_len: Vec<u32>,
    /// `arcs[ji * arc_stride ..]` — the live arcs, grouped by router in
    /// topo order, CSR sub-order within a router.
    pub(crate) arcs: Vec<EdgeId>,
    /// Total live arcs per commodity (the filled prefix of its row).
    pub(crate) live: Vec<usize>,
    /// Row must be rebuilt before its next use (set by invalidation;
    /// support changes rebuild eagerly instead).
    pub(crate) stale: Vec<bool>,
}

impl ActiveArcs {
    /// The live-arc row of commodity `ji`: `(arc_len row, arcs row,
    /// live total)`.
    pub(crate) fn row(&self, ji: usize) -> (&[u32], &[EdgeId], usize) {
        let lens = &self.arc_len[ji * self.router_stride..(ji + 1) * self.router_stride];
        let arcs = &self.arcs[ji * self.arc_stride..(ji + 1) * self.arc_stride];
        (lens, arcs, self.live[ji])
    }

    /// Rebuilds commodity `j`'s live-arc row from its fraction row.
    pub(crate) fn rebuild(&mut self, ext: &ExtendedNetwork, j: CommodityId, phi: &[f64]) {
        let ji = j.index();
        let lens = &mut self.arc_len[ji * self.router_stride..(ji + 1) * self.router_stride];
        let arcs = &mut self.arcs[ji * self.arc_stride..(ji + 1) * self.arc_stride];
        self.live[ji] = rebuild_active_row(ext, j, phi, lens, arcs);
        self.stale[ji] = false;
    }
}

/// Fills one commodity's live-arc row (`phi != 0` arcs of each topo
/// router, CSR sub-order) and returns the live total. Row-slice form so
/// the fused step can run rebuilds for different commodities
/// concurrently over disjoint row views.
pub(crate) fn rebuild_active_row(
    ext: &ExtendedNetwork,
    j: CommodityId,
    phi: &[f64],
    arc_len: &mut [u32],
    arcs: &mut [EdgeId],
) -> usize {
    let mut idx = 0usize;
    for (r, &v) in ext.commodity_routers_topo(j).iter().enumerate() {
        let start = idx;
        for &l in ext.commodity_out_slice(j, v) {
            if phi[l.index()] != 0.0 {
                arcs[idx] = l;
                idx += 1;
            }
        }
        arc_len[r] = (idx - start) as u32;
    }
    idx
}

/// The activity tracker: dirty flags carried across iterations, change
/// flags produced within one, the previous usage totals for the exact
/// bitwise changed-totals test, the live-arc sub-lists, and the
/// preallocated work lists the fused step's claiming loops iterate.
#[derive(Clone, Debug, Default)]
pub(crate) struct ActiveSet {
    /// Commodity must run tags + Γ this iteration (its φ moved last
    /// run, the shared totals moved, or an invalidation forced it).
    pub(crate) chain_dirty: Vec<bool>,
    /// Commodity must run its flow pass even if Γ reproduces φ
    /// bit-for-bit — set by invalidation, when the persistent workspace
    /// partial rows or `FlowState` rows can no longer be trusted.
    pub(crate) flow_dirty: Vec<bool>,
    /// Output of this iteration's Γ: any fraction bit changed.
    pub(crate) phi_changed: Vec<bool>,
    /// This iteration ran the commodity's flow pass.
    pub(crate) flow_ran: Vec<bool>,
    /// Per-Γ-chunk `(value_changed, support_changed)`, laid out like the
    /// workspace's chunked Γ stats.
    pub(crate) chunk_flags: Vec<(bool, bool)>,
    /// Usage totals of the previous iteration, for the bitwise
    /// changed-totals test.
    pub(crate) prev_f_edge: Vec<f64>,
    pub(crate) prev_f_node: Vec<f64>,
    /// Treat totals as changed this iteration regardless of the
    /// comparison (set by invalidation).
    pub(crate) force_totals: bool,
    /// Commodities whose chain runs this iteration (compacted from
    /// `chain_dirty` — the claiming loops split *this*, not `0..J`).
    pub(crate) dirty_list: Vec<u32>,
    /// Global Γ-chunk ids of the dirty commodities (split-mode fan-out).
    pub(crate) chunk_list: Vec<u32>,
    /// Commodities whose marginal sweep runs (filled by participant 0
    /// between the fused barriers; length in `scratch`).
    pub(crate) marg_list: Vec<u32>,
    /// Cross-barrier scalars (see `SCRATCH_*`), written via a slot view.
    pub(crate) scratch: Vec<u64>,
    /// `heads[l]` — edge `l`'s target-node index, the gather-index form
    /// the vectorized sweeps ([`crate::simd`]) load head marginals
    /// through. Always maintained (it is shape-derived and rebuilt with
    /// the buffers here), read only by non-scalar backends.
    pub(crate) heads: Vec<u32>,
    pub(crate) arcs: ActiveArcs,
    sized_for: Option<(usize, usize, usize)>,
}

impl ActiveSet {
    /// Sizes every buffer for `ext`'s shape; re-entry with the same
    /// shape is a cheap no-op that preserves all tracking state. Any
    /// resize invalidates (the first iteration after construction or a
    /// shape change is fully dense).
    pub(crate) fn ensure(&mut self, ext: &ExtendedNetwork) {
        let j_count = ext.num_commodities();
        let v_count = ext.graph().node_count();
        let l_count = ext.graph().edge_count();
        let shape = (j_count, v_count, l_count);
        if self.sized_for == Some(shape) {
            return;
        }
        let router_stride = ext
            .commodity_ids()
            .map(|j| ext.commodity_routers_topo(j).len())
            .max()
            .unwrap_or(0);
        let arc_stride = ext
            .commodity_ids()
            .map(|j| ext.commodity_router_arc_total(j))
            .max()
            .unwrap_or(0);
        let total_chunks: usize = ext
            .commodity_ids()
            .map(|j| ext.commodity_routers(j).len().div_ceil(GAMMA_CHUNK))
            .sum();
        self.chain_dirty.resize(j_count, false);
        self.flow_dirty.resize(j_count, false);
        self.phi_changed.resize(j_count, false);
        self.flow_ran.resize(j_count, false);
        self.chunk_flags.resize(total_chunks, (false, false));
        self.prev_f_edge.resize(l_count, 0.0);
        self.prev_f_node.resize(v_count, 0.0);
        self.dirty_list.clear();
        self.dirty_list.reserve(j_count);
        self.chunk_list.clear();
        self.chunk_list.reserve(total_chunks);
        self.marg_list.resize(j_count, 0);
        self.scratch.resize(SCRATCH_SLOTS, 0);
        self.heads.clear();
        self.heads.reserve(l_count);
        self.heads
            .extend((0..l_count).map(|l| ext.graph().target(EdgeId::from_index(l)).index() as u32));
        self.arcs.router_stride = router_stride;
        self.arcs.arc_stride = arc_stride;
        self.arcs.arc_len.resize(j_count * router_stride, 0);
        self.arcs
            .arcs
            .resize(j_count * arc_stride, EdgeId::from_index(0));
        self.arcs.live.resize(j_count, 0);
        self.arcs.stale.resize(j_count, true);
        self.sized_for = Some(shape);
        self.invalidate();
    }

    /// Forces the next iteration to run fully dense: every chain and
    /// flow pass dirty, every live-arc row stale, totals treated as
    /// changed. Called whenever algorithm state is mutated outside the
    /// step loop (restore, capacity edits, η/thread changes, raw state
    /// access).
    pub(crate) fn invalidate(&mut self) {
        self.chain_dirty.iter_mut().for_each(|d| *d = true);
        self.flow_dirty.iter_mut().for_each(|d| *d = true);
        self.arcs.stale.iter_mut().for_each(|s| *s = true);
        self.force_totals = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::builder::ProblemBuilder;
    use spn_model::UtilityFn;

    fn ext() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(10.0);
        let x = b.server(10.0);
        let t = b.server(10.0);
        let e1 = b.link(s, x, 5.0);
        let e2 = b.link(x, t, 5.0);
        let j = b.commodity(s, t, 2.0, UtilityFn::throughput());
        b.uses(j, e1, 1.0, 1.0).uses(j, e2, 1.0, 1.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    #[test]
    fn ensure_sizes_and_invalidates_once() {
        let ext = ext();
        let mut active = ActiveSet::default();
        active.ensure(&ext);
        let j_count = ext.num_commodities();
        assert_eq!(active.chain_dirty, vec![true; j_count]);
        assert!(active.force_totals);
        // Same shape: state must be preserved, not re-invalidated.
        active.chain_dirty[0] = false;
        active.force_totals = false;
        active.ensure(&ext);
        assert!(!active.chain_dirty[0]);
        assert!(!active.force_totals);
    }

    #[test]
    fn rebuild_collects_exactly_the_nonzero_arcs() {
        let ext = ext();
        let mut active = ActiveSet::default();
        active.ensure(&ext);
        let j = CommodityId::from_index(0);
        let routing = crate::routing::RoutingTable::initial(&ext);
        active.arcs.rebuild(&ext, j, routing.row(j));
        let (lens, arcs, live) = active.arcs.row(j.index());
        let mut idx = 0usize;
        for (r, &v) in ext.commodity_routers_topo(j).iter().enumerate() {
            let expect: Vec<_> = ext
                .commodity_out_slice(j, v)
                .iter()
                .copied()
                .filter(|&l| routing.fraction(j, l) != 0.0)
                .collect();
            assert_eq!(lens[r] as usize, expect.len(), "router {v}");
            assert_eq!(&arcs[idx..idx + expect.len()], &expect[..]);
            idx += expect.len();
        }
        assert_eq!(live, idx);
        assert!(!active.arcs.stale[0]);
    }
}
