//! Property-based tests for the distributed algorithm's invariants.

use proptest::prelude::*;
use spn_core::flows::{balance_residual, compute_flows};
use spn_core::{GradientAlgorithm, GradientConfig};
use spn_model::random::RandomInstance;
use spn_model::Problem;

fn instance(seed: u64) -> Problem {
    RandomInstance::builder()
        .nodes(14)
        .commodities(2)
        .seed(seed)
        .build()
        .expect("valid instance")
        .problem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Across seeds and iteration counts, the routing decision stays
    /// structurally valid and loop-free, flows satisfy eq. (3), and the
    /// admitted rates respect their bounds.
    #[test]
    fn iteration_preserves_invariants(seed in 0u64..50, iters in 1usize..120) {
        let problem = instance(seed);
        let mut alg = GradientAlgorithm::new(&problem, GradientConfig::default()).unwrap();
        for _ in 0..iters {
            alg.step();
        }
        let ext = alg.extended();
        alg.routing().validate(ext).expect("routing valid");
        prop_assert!(alg.routing().is_loop_free(ext));
        let residual = balance_residual(ext, alg.routing(), alg.flows());
        prop_assert!(residual < 1e-8, "flow balance residual {residual}");
        let report = alg.report();
        for (j, &a) in ext.commodity_ids().zip(&report.admitted) {
            prop_assert!(a >= -1e-9);
            prop_assert!(a <= ext.commodity(j).max_rate + 1e-9);
        }
        // delivered = admitted × gain(sink): conservation-with-gain
        for j in problem.commodity_ids() {
            let expect = report.admitted[j.index()]
                * problem.gain(j, problem.commodity(j).sink());
            prop_assert!(
                (report.delivered[j.index()] - expect).abs() < 1e-6 * (1.0 + expect),
                "delivery/gain mismatch"
            );
        }
    }

    /// For a tiny step scale the relaxed cost A never increases — the
    /// descent property behind the paper's convergence claim.
    #[test]
    fn tiny_steps_descend(seed in 0u64..20) {
        let problem = instance(seed);
        let cfg = GradientConfig { eta: 0.002, epsilon: 0.002, ..GradientConfig::default() };
        let mut alg = GradientAlgorithm::new(&problem, cfg).unwrap();
        let mut last = f64::INFINITY;
        for _ in 0..60 {
            let stats = alg.step();
            prop_assert!(stats.cost_before <= last + 1e-7,
                "cost rose: {last} -> {}", stats.cost_before);
            last = stats.cost_before;
        }
    }

    /// Utility never exceeds the total offered load, and utilization
    /// stays within capacity at convergence-scale iteration counts.
    #[test]
    fn utility_and_utilization_bounds(seed in 0u64..30) {
        let problem = instance(seed);
        let mut alg = GradientAlgorithm::new(&problem, GradientConfig::default()).unwrap();
        let report = alg.run(800);
        prop_assert!(report.utility <= problem.total_demand() + 1e-6);
        prop_assert!(report.max_utilization <= 1.05, "utilization {}", report.max_utilization);
    }

    /// Re-evaluating flows from the final routing reproduces the
    /// algorithm's internal state (determinism / no hidden state).
    #[test]
    fn flows_are_pure_functions_of_routing(seed in 0u64..30, iters in 1usize..80) {
        let problem = instance(seed);
        let mut alg = GradientAlgorithm::new(&problem, GradientConfig::default()).unwrap();
        for _ in 0..iters {
            alg.step();
        }
        let recomputed = compute_flows(alg.extended(), alg.routing());
        for v in alg.extended().graph().nodes() {
            prop_assert!((recomputed.node_usage(v) - alg.flows().node_usage(v)).abs() < 1e-12);
        }
    }

    /// Two identically-configured runs are bit-identical (determinism).
    #[test]
    fn runs_are_deterministic(seed in 0u64..20) {
        let problem = instance(seed);
        let mut a = GradientAlgorithm::new(&problem, GradientConfig::default()).unwrap();
        let mut b = GradientAlgorithm::new(&problem, GradientConfig::default()).unwrap();
        for _ in 0..50 {
            a.step();
            b.step();
        }
        prop_assert_eq!(a.report().utility.to_bits(), b.report().utility.to_bits());
    }
}
