//! Concave increasing utility functions `U_j(a_j)`.
//!
//! The paper assumes each commodity's utility is concave and increasing
//! in the admitted rate `a_j`, "reflecting the decreasing marginal
//! returns of receiving more data". The distributed algorithm only ever
//! consumes the *derivative* `U'` — it appears as the marginal cost of
//! the dummy difference link (`Y'(x) = U'(λ_j − x)`, eq. (11)) — so every
//! variant implements both [`UtilityFn::value`] and
//! [`UtilityFn::derivative`] analytically.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A concave, increasing utility of the admitted rate.
///
/// All variants satisfy `U(0) = 0`, `U' ≥ 0` and `U'` non-increasing,
/// which [`UtilityFn::validate`] checks structurally (parameter signs)
/// and the crate's property tests check numerically.
///
/// ```
/// use spn_model::UtilityFn;
/// let u = UtilityFn::log(2.0);
/// assert_eq!(u.value(0.0), 0.0);
/// assert!(u.derivative(1.0) > u.derivative(5.0)); // diminishing returns
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum UtilityFn {
    /// `U(a) = w·a` — utility *is* throughput; the paper's evaluation
    /// (§6: "the system utility is taken to be the total throughput")
    /// uses this with `w = 1`.
    Linear {
        /// Marginal value `w > 0` of one unit of delivered data.
        weight: f64,
    },
    /// `U(a) = w·ln(1 + a/s)` — proportional fairness; `s` sets the rate
    /// scale at which returns start to diminish.
    Log {
        /// Overall scale `w > 0`.
        weight: f64,
        /// Rate scale `s > 0` (the "knee" of the curve).
        scale: f64,
    },
    /// `U(a) = w·(√(a + s) − √s)` — a 1/2-fair utility; the shift `s`
    /// keeps `U'(0) = w/(2√s)` finite so the algorithm's marginal costs
    /// stay bounded.
    Sqrt {
        /// Overall scale `w > 0`.
        weight: f64,
        /// Derivative-bounding shift `s > 0`.
        shift: f64,
    },
    /// α-fair utility `U(a) = w·((a+s)^{1−α} − s^{1−α})/(1−α)` for
    /// `α ≠ 1` (use [`UtilityFn::Log`] for `α = 1`). `α → 0` recovers
    /// linear, larger `α` is more fairness-biased.
    AlphaFair {
        /// Overall scale `w > 0`.
        weight: f64,
        /// Fairness exponent `α > 0`, `α ≠ 1`.
        alpha: f64,
        /// Derivative-bounding shift `s > 0`.
        shift: f64,
    },
    /// `U(a) = w·min(a, cap)` — linear value up to a satiation cap, zero
    /// marginal value beyond it (concave but not strictly; the algorithm
    /// follows the right-derivative at the kink).
    CappedLinear {
        /// Marginal value `w > 0` below the cap.
        weight: f64,
        /// Satiation rate `cap > 0`.
        cap: f64,
    },
}

impl UtilityFn {
    /// Unit-weight linear utility (pure throughput).
    #[must_use]
    pub fn throughput() -> Self {
        UtilityFn::Linear { weight: 1.0 }
    }

    /// Log utility with unit scale: `w·ln(1 + a)`.
    #[must_use]
    pub fn log(weight: f64) -> Self {
        UtilityFn::Log { weight, scale: 1.0 }
    }

    /// Square-root utility with the default derivative-bounding shift.
    #[must_use]
    pub fn sqrt(weight: f64) -> Self {
        UtilityFn::Sqrt {
            weight,
            shift: 1e-2,
        }
    }

    /// Utility of admitting rate `a ≥ 0`.
    #[must_use]
    pub fn value(&self, a: f64) -> f64 {
        debug_assert!(a >= -1e-9, "utility evaluated at negative rate {a}");
        let a = a.max(0.0);
        match *self {
            UtilityFn::Linear { weight } => weight * a,
            UtilityFn::Log { weight, scale } => weight * (1.0 + a / scale).ln(),
            UtilityFn::Sqrt { weight, shift } => weight * ((a + shift).sqrt() - shift.sqrt()),
            UtilityFn::AlphaFair {
                weight,
                alpha,
                shift,
            } => {
                let p = 1.0 - alpha;
                weight * ((a + shift).powf(p) - shift.powf(p)) / p
            }
            UtilityFn::CappedLinear { weight, cap } => weight * a.min(cap),
        }
    }

    /// Marginal utility `U'(a)` (right-derivative at kinks).
    #[must_use]
    pub fn derivative(&self, a: f64) -> f64 {
        let a = a.max(0.0);
        match *self {
            UtilityFn::Linear { weight } => weight,
            UtilityFn::Log { weight, scale } => weight / (scale + a),
            UtilityFn::Sqrt { weight, shift } => weight / (2.0 * (a + shift).sqrt()),
            UtilityFn::AlphaFair {
                weight,
                alpha,
                shift,
            } => weight * (a + shift).powf(-alpha),
            UtilityFn::CappedLinear { weight, cap } => {
                if a < cap {
                    weight
                } else {
                    0.0
                }
            }
        }
    }

    /// Curvature `U''(a) ≤ 0` (zero at and beyond kinks). The
    /// Newton-scaled step rule uses `−U''` as the difference link's
    /// cost curvature.
    #[must_use]
    pub fn second_derivative(&self, a: f64) -> f64 {
        let a = a.max(0.0);
        match *self {
            UtilityFn::Linear { .. } | UtilityFn::CappedLinear { .. } => 0.0,
            UtilityFn::Log { weight, scale } => -weight / ((scale + a) * (scale + a)),
            UtilityFn::Sqrt { weight, shift } => -weight / (4.0 * (a + shift).powf(1.5)),
            UtilityFn::AlphaFair {
                weight,
                alpha,
                shift,
            } => -weight * alpha * (a + shift).powf(-alpha - 1.0),
        }
    }

    /// Checks the parameter-sign conditions under which the variant is
    /// concave and increasing.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and positive, got {v}"))
            }
        }
        match *self {
            UtilityFn::Linear { weight } => pos("weight", weight),
            UtilityFn::Log { weight, scale } => {
                pos("weight", weight)?;
                pos("scale", scale)
            }
            UtilityFn::Sqrt { weight, shift } => {
                pos("weight", weight)?;
                pos("shift", shift)
            }
            UtilityFn::AlphaFair {
                weight,
                alpha,
                shift,
            } => {
                pos("weight", weight)?;
                pos("alpha", alpha)?;
                pos("shift", shift)?;
                if (alpha - 1.0).abs() < 1e-12 {
                    Err("alpha = 1 is the log utility; use UtilityFn::Log".to_string())
                } else {
                    Ok(())
                }
            }
            UtilityFn::CappedLinear { weight, cap } => {
                pos("weight", weight)?;
                pos("cap", cap)
            }
        }
    }
}

impl fmt::Display for UtilityFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            UtilityFn::Linear { weight } => write!(f, "{weight}·a"),
            UtilityFn::Log { weight, scale } => write!(f, "{weight}·ln(1+a/{scale})"),
            UtilityFn::Sqrt { weight, shift } => write!(f, "{weight}·(√(a+{shift})−√{shift})"),
            UtilityFn::AlphaFair { weight, alpha, .. } => write!(f, "{weight}·α-fair(α={alpha})"),
            UtilityFn::CappedLinear { weight, cap } => write!(f, "{weight}·min(a,{cap})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<UtilityFn> {
        vec![
            UtilityFn::Linear { weight: 2.0 },
            UtilityFn::Log {
                weight: 3.0,
                scale: 0.5,
            },
            UtilityFn::Sqrt {
                weight: 1.5,
                shift: 0.01,
            },
            UtilityFn::AlphaFair {
                weight: 1.0,
                alpha: 2.0,
                shift: 0.1,
            },
            UtilityFn::AlphaFair {
                weight: 1.0,
                alpha: 0.5,
                shift: 0.1,
            },
            UtilityFn::CappedLinear {
                weight: 2.0,
                cap: 4.0,
            },
        ]
    }

    #[test]
    fn zero_at_origin() {
        for u in all_variants() {
            assert!(u.value(0.0).abs() < 1e-12, "{u} not zero at origin");
        }
    }

    #[test]
    fn increasing() {
        for u in all_variants() {
            let mut prev = u.value(0.0);
            for i in 1..=50 {
                let a = i as f64 * 0.3;
                let v = u.value(a);
                assert!(v >= prev - 1e-12, "{u} not increasing at {a}");
                prev = v;
            }
        }
    }

    #[test]
    fn concave_derivative_nonincreasing() {
        for u in all_variants() {
            let mut prev = u.derivative(0.0);
            for i in 1..=50 {
                let a = i as f64 * 0.3;
                let d = u.derivative(a);
                assert!(d <= prev + 1e-12, "{u} derivative increases at {a}");
                assert!(d >= 0.0);
                prev = d;
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for u in all_variants() {
            for i in 0..20 {
                let a = 0.05 + i as f64 * 0.37;
                if matches!(u, UtilityFn::CappedLinear { cap, .. } if (a - cap).abs() < 0.1) {
                    continue; // kink
                }
                let fd = (u.value(a + h) - u.value(a - h)) / (2.0 * h);
                let an = u.derivative(a);
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "{u}: d/da at {a}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference() {
        let h = 1e-5;
        for u in all_variants() {
            for i in 1..15 {
                let a = 0.3 + i as f64 * 0.4;
                if matches!(u, UtilityFn::CappedLinear { cap, .. } if (a - cap).abs() < 0.5) {
                    continue;
                }
                let fd = (u.derivative(a + h) - u.derivative(a - h)) / (2.0 * h);
                let an = u.second_derivative(a);
                assert!(
                    (fd - an).abs() < 1e-3 * (1.0 + an.abs()),
                    "{u} at {a}: analytic {an} vs fd {fd}"
                );
                assert!(an <= 1e-12, "{u} not concave at {a}");
            }
        }
    }

    #[test]
    fn linear_is_throughput() {
        let u = UtilityFn::throughput();
        assert_eq!(u.value(7.25), 7.25);
        assert_eq!(u.derivative(100.0), 1.0);
    }

    #[test]
    fn capped_linear_kink() {
        let u = UtilityFn::CappedLinear {
            weight: 2.0,
            cap: 3.0,
        };
        assert_eq!(u.value(2.0), 4.0);
        assert_eq!(u.value(5.0), 6.0);
        assert_eq!(u.derivative(2.9), 2.0);
        assert_eq!(u.derivative(3.0), 0.0);
    }

    #[test]
    fn validation() {
        for u in all_variants() {
            assert!(u.validate().is_ok(), "{u}");
        }
        assert!(UtilityFn::Linear { weight: 0.0 }.validate().is_err());
        assert!(UtilityFn::Linear { weight: -1.0 }.validate().is_err());
        assert!(UtilityFn::Log {
            weight: 1.0,
            scale: 0.0
        }
        .validate()
        .is_err());
        assert!(UtilityFn::AlphaFair {
            weight: 1.0,
            alpha: 1.0,
            shift: 0.1
        }
        .validate()
        .is_err());
        assert!(UtilityFn::Sqrt {
            weight: 1.0,
            shift: f64::NAN
        }
        .validate()
        .is_err());
    }

    #[test]
    fn serde_round_trip() {
        for u in all_variants() {
            let json = serde_json_like(&u);
            assert!(!json.is_empty());
        }
    }

    // serde_json is not a dependency; exercise Serialize via the
    // `serde_test`-style token stream is overkill — round-trip through
    // the Debug representation instead and reserve true serde round-trips
    // for the spec module tests (which use a hand-rolled encoder).
    fn serde_json_like(u: &UtilityFn) -> String {
        format!("{u:?}")
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(format!("{}", UtilityFn::throughput()), "1·a");
        assert!(format!("{}", UtilityFn::log(2.0)).contains("ln"));
    }
}
