//! Hierarchical (region × rack × server) instances for the scale tier.
//!
//! The random generator of [`crate::random`] reproduces the paper's §6
//! evaluation shape — a flat 40-node cloud — but the protocol is meant
//! for planetary-scale stream processing. This module synthesizes the
//! topologies that tier actually looks like: a fixed hierarchy of
//! *regions*, each holding *racks* of *servers*, with tenant-aggregated
//! commodities whose pipelines start at a rack-local aggregation server,
//! spread through the home region, and terminate at a sink server in
//! the same or a remote region.
//!
//! Node ids are **region-major**: all servers of region 0 come first,
//! rack by rack, then region 1, and so on. Everything downstream keys
//! off this — the per-commodity router lists and live-arc sub-lists the
//! active-set engine walks are contiguous runs of nearby ids, so the
//! dirty-chain walks of a tenant stay inside its home/sink regions'
//! slice of every per-node buffer (see ARCHITECTURE, "Memory layout at
//! scale").
//!
//! Generation is deterministic per seed and sized by the hierarchy
//! (`regions × racks × servers`), so benches and tests can synthesize
//! 1k–100k-node problems from a one-line config.

use crate::capacity::Capacity;
use crate::commodity::Commodity;
use crate::error::ModelError;
use crate::problem::{EdgeParams, Problem};
use crate::utility::UtilityFn;
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{RngExt, SeedableRng};
use spn_graph::{DiGraph, NodeId};
use std::collections::HashMap;
use std::ops::RangeInclusive;

/// Configuration of the hierarchical instance generator.
///
/// The default is a small sanity shape (4 regions × 5 racks × 5 servers
/// = 100 nodes, 8 tenants); scale cases override the three hierarchy
/// knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchicalInstanceConfig {
    /// Number of regions (top level of the hierarchy).
    pub regions: usize,
    /// Racks per region.
    pub racks_per_region: usize,
    /// Servers per rack. Total node count is the product of the three.
    pub servers_per_rack: usize,
    /// Number of tenant commodities (source–sink pairs).
    pub commodities: usize,
    /// PRNG seed; equal seeds yield identical instances.
    pub seed: u64,
    /// Probability a tenant's sink stays in its home region.
    pub locality: f64,
    /// Server computing capacities, drawn uniformly.
    pub node_capacity: RangeInclusive<f64>,
    /// Intra-region link bandwidths, drawn uniformly.
    pub link_bandwidth: RangeInclusive<f64>,
    /// Inter-region (backbone) link bandwidths, drawn uniformly.
    pub backbone_bandwidth: RangeInclusive<f64>,
    /// Per-(commodity, node) gains, drawn uniformly (Property 1 holds
    /// by construction: `β^j_ik = g^j_k / g^j_i`).
    pub gain: RangeInclusive<f64>,
    /// Per-(commodity, edge) resource costs, drawn uniformly.
    pub cost: RangeInclusive<f64>,
    /// Maximum source rates `λ_j`, drawn uniformly.
    pub max_rate: RangeInclusive<f64>,
    /// Processing tasks per tenant pipeline.
    pub stages: RangeInclusive<usize>,
    /// Servers per intermediate task.
    pub width: RangeInclusive<usize>,
    /// Probability of each stage-to-stage edge beyond the ones required
    /// for connectivity.
    pub edge_prob: f64,
    /// Utility assigned to every tenant.
    pub utility: UtilityFn,
}

impl Default for HierarchicalInstanceConfig {
    fn default() -> Self {
        HierarchicalInstanceConfig {
            regions: 4,
            racks_per_region: 5,
            servers_per_rack: 5,
            commodities: 8,
            seed: 0,
            locality: 0.7,
            node_capacity: 20.0..=100.0,
            link_bandwidth: 20.0..=100.0,
            backbone_bandwidth: 10.0..=50.0,
            gain: 1.0..=10.0,
            cost: 1.0..=5.0,
            max_rate: 20.0..=60.0,
            stages: 3..=5,
            width: 2..=3,
            edge_prob: 0.3,
            utility: UtilityFn::throughput(),
        }
    }
}

impl HierarchicalInstanceConfig {
    /// Total physical node count (`regions × racks × servers`).
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.regions * self.racks_per_region * self.servers_per_rack
    }
}

/// A generated hierarchical instance: the validated [`Problem`] plus the
/// configuration that produced it.
#[derive(Clone, Debug)]
pub struct HierarchicalInstance {
    /// The validated problem.
    pub problem: Problem,
    /// The generating configuration (for manifests and re-generation).
    pub config: HierarchicalInstanceConfig,
}

impl HierarchicalInstance {
    /// Starts a builder with the default (100-node sanity) hierarchy.
    #[must_use]
    pub fn builder() -> HierarchicalInstanceBuilder {
        HierarchicalInstanceBuilder {
            config: HierarchicalInstanceConfig::default(),
        }
    }

    /// Generates an instance from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the configuration cannot produce a
    /// valid problem (zero commodities, or a hierarchy too small for
    /// the requested tenants and pipeline shapes).
    pub fn generate(config: HierarchicalInstanceConfig) -> Result<Self, ModelError> {
        let problem = generate_problem(&config)?;
        Ok(HierarchicalInstance { problem, config })
    }
}

/// Builder mirror of [`HierarchicalInstanceConfig`].
#[derive(Clone, Debug)]
pub struct HierarchicalInstanceBuilder {
    config: HierarchicalInstanceConfig,
}

impl HierarchicalInstanceBuilder {
    /// Sets the region count.
    #[must_use]
    pub fn regions(mut self, regions: usize) -> Self {
        self.config.regions = regions;
        self
    }

    /// Sets the racks per region.
    #[must_use]
    pub fn racks_per_region(mut self, racks: usize) -> Self {
        self.config.racks_per_region = racks;
        self
    }

    /// Sets the servers per rack.
    #[must_use]
    pub fn servers_per_rack(mut self, servers: usize) -> Self {
        self.config.servers_per_rack = servers;
        self
    }

    /// Sets the tenant (commodity) count.
    #[must_use]
    pub fn commodities(mut self, commodities: usize) -> Self {
        self.config.commodities = commodities;
        self
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the probability a tenant's sink stays in its home region.
    #[must_use]
    pub fn locality(mut self, locality: f64) -> Self {
        self.config.locality = locality;
        self
    }

    /// Sets the pipeline-depth range (tasks per tenant).
    #[must_use]
    pub fn stages(mut self, stages: RangeInclusive<usize>) -> Self {
        self.config.stages = stages;
        self
    }

    /// Sets the servers-per-task range.
    #[must_use]
    pub fn width(mut self, width: RangeInclusive<usize>) -> Self {
        self.config.width = width;
        self
    }

    /// Sets the maximum-rate range for `λ_j`.
    #[must_use]
    pub fn max_rate(mut self, max_rate: RangeInclusive<f64>) -> Self {
        self.config.max_rate = max_rate;
        self
    }

    /// Sets the utility assigned to every tenant.
    #[must_use]
    pub fn utility(mut self, utility: UtilityFn) -> Self {
        self.config.utility = utility;
        self
    }

    /// Generates the instance.
    ///
    /// # Errors
    ///
    /// See [`HierarchicalInstance::generate`].
    pub fn build(self) -> Result<HierarchicalInstance, ModelError> {
        HierarchicalInstance::generate(self.config)
    }
}

fn sample(rng: &mut StdRng, range: &RangeInclusive<f64>) -> f64 {
    if range.start() == range.end() {
        *range.start()
    } else {
        rng.random_range(range.clone())
    }
}

fn sample_usize(rng: &mut StdRng, range: &RangeInclusive<usize>) -> usize {
    if range.start() == range.end() {
        *range.start()
    } else {
        rng.random_range(range.clone())
    }
}

/// Region index of a region-major node id.
fn region_of(v: NodeId, nodes_per_region: usize) -> usize {
    v.index() / nodes_per_region
}

fn generate_problem(cfg: &HierarchicalInstanceConfig) -> Result<Problem, ModelError> {
    let j_count = cfg.commodities;
    if j_count == 0 {
        return Err(ModelError::NoCommodities);
    }
    let nodes = cfg.total_nodes();
    let nodes_per_region = cfg.racks_per_region * cfg.servers_per_rack;
    // Every tenant needs a dedicated sink and a distinct source, and the
    // narrowest pipeline needs distinct servers per interior stage drawn
    // from at most two regions.
    let min_stage_nodes = 1 + (cfg.stages.start().saturating_sub(1)) * cfg.width.start();
    let min_nodes = (j_count * 2).max(j_count + min_stage_nodes);
    if cfg.regions == 0 || nodes < min_nodes {
        return Err(ModelError::ShapeMismatch {
            what: "hierarchy node budget for requested tenants/stages/width",
            expected: min_nodes,
            actual: nodes,
        });
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graph = DiGraph::new();
    let all: Vec<NodeId> = graph.add_nodes(nodes);

    // Region-major slices of the node id space.
    let region_nodes: Vec<&[NodeId]> = (0..cfg.regions)
        .map(|r| &all[r * nodes_per_region..(r + 1) * nodes_per_region])
        .collect();

    // Sinks are dedicated (they never process); sources are distinct.
    let mut reserved_sink = vec![false; nodes];
    let mut used_source = vec![false; nodes];

    let mut edge_ids: HashMap<(NodeId, NodeId), spn_graph::EdgeId> = HashMap::new();
    let mut overlay_raw: Vec<Vec<(spn_graph::EdgeId, EdgeParams)>> = vec![Vec::new(); j_count];
    let mut commodities = Vec::with_capacity(j_count);

    // Pass 1: place every tenant's endpoints before any pipeline is
    // built — sinks are dedicated servers, so they must all be reserved
    // up front (a sink chosen late must not already be processing an
    // earlier tenant's stage).
    let mut endpoints = Vec::with_capacity(j_count);
    for ji in 0..j_count {
        // Home region round-robins over the hierarchy so tenants spread
        // evenly; the sink region is home with probability `locality`.
        let home = ji % cfg.regions;
        let sink_region = if cfg.regions == 1 || rng.random_bool(cfg.locality.clamp(0.0, 1.0)) {
            home
        } else {
            let mut r = rng.random_range(0..cfg.regions - 1);
            if r >= home {
                r += 1;
            }
            r
        };

        // Source: a rack-local aggregation server in the home region.
        let source_rack = rng.random_range(0..cfg.racks_per_region);
        let rack_base = home * nodes_per_region + source_rack * cfg.servers_per_rack;
        let source = (0..cfg.servers_per_rack)
            .map(|s| all[rack_base + s])
            .find(|&n| !reserved_sink[n.index()] && !used_source[n.index()])
            .or_else(|| {
                region_nodes[home]
                    .iter()
                    .copied()
                    .find(|&n| !reserved_sink[n.index()] && !used_source[n.index()])
            })
            .ok_or(ModelError::ShapeMismatch {
                what: "free source server in home region",
                expected: 1,
                actual: 0,
            })?;
        used_source[source.index()] = true;

        // Sink: a dedicated server in the sink region (globally
        // reserved, so no tenant ever routes *through* a sink).
        let mut sink_pool: Vec<NodeId> = region_nodes[sink_region]
            .iter()
            .copied()
            .filter(|&n| !reserved_sink[n.index()] && !used_source[n.index()])
            .collect();
        if sink_pool.is_empty() {
            sink_pool = all
                .iter()
                .copied()
                .filter(|&n| !reserved_sink[n.index()] && !used_source[n.index()])
                .collect();
        }
        let &sink = sink_pool
            .choose(&mut rng)
            .ok_or(ModelError::ShapeMismatch {
                what: "free sink server",
                expected: 1,
                actual: 0,
            })?;
        reserved_sink[sink.index()] = true;
        endpoints.push((home, sink_region, source_rack, rack_base, source, sink));
    }

    // Pass 2: build each tenant's pipeline with every sink reserved.
    for ji in 0..j_count {
        let (home, sink_region, source_rack, rack_base, source, sink) = endpoints[ji];

        // Interior-stage candidate pools, rack-aware: the source's rack
        // first (tenant aggregation starts rack-local), then the rest of
        // the home region, then — for cross-region tenants — the sink
        // region. Shuffled within each tier, consumed left to right, so
        // early stages stay rack- then region-local and late stages
        // migrate toward the sink's region.
        let excluded = |n: NodeId| reserved_sink[n.index()] || n == source || n == sink;
        let mut rack_tier: Vec<NodeId> = (0..cfg.servers_per_rack)
            .map(|s| all[rack_base + s])
            .filter(|&n| !excluded(n))
            .collect();
        rack_tier.shuffle(&mut rng);
        let mut home_tier: Vec<NodeId> = region_nodes[home]
            .iter()
            .copied()
            .filter(|&n| !excluded(n) && region_rack(n, cfg) != (home, source_rack))
            .collect();
        home_tier.shuffle(&mut rng);
        let mut remote_tier: Vec<NodeId> = if sink_region == home {
            Vec::new()
        } else {
            region_nodes[sink_region]
                .iter()
                .copied()
                .filter(|&n| !excluded(n))
                .collect()
        };
        remote_tier.shuffle(&mut rng);
        let mut candidates = rack_tier;
        candidates.extend(home_tier);
        candidates.extend(remote_tier);

        // Distinct servers per stage (a server processes at most one
        // task per tenant → the overlay is a DAG). Depth and width adapt
        // to the pool exactly as the flat generator does.
        let min_w = *cfg.width.start();
        let max_depth = 1 + candidates.len() / min_w;
        let hi = (*cfg.stages.end()).min(max_depth).max(*cfg.stages.start());
        let stages = sample_usize(&mut rng, &(*cfg.stages.start()..=hi));
        let mut layers: Vec<Vec<NodeId>> = vec![vec![source]];
        let mut cursor = 0;
        for layer_idx in 1..stages {
            let layers_after = stages - 1 - layer_idx;
            let available = candidates.len() - cursor;
            let cap = available.saturating_sub(layers_after * min_w).max(min_w);
            let width = sample_usize(&mut rng, &(min_w..=(*cfg.width.end()).min(cap).max(min_w)));
            let layer: Vec<NodeId> = candidates[cursor..cursor + width].to_vec();
            cursor += width;
            layers.push(layer);
        }
        layers.push(vec![sink]);

        // Gains only for the nodes this tenant touches, in layer order
        // (deterministic, and O(overlay) rather than O(nodes) per
        // tenant — the scale tier generates 100k-node instances).
        let mut gains: HashMap<NodeId, f64> = HashMap::new();
        for layer in &layers {
            for &n in layer {
                gains
                    .entry(n)
                    .or_insert_with(|| sample(&mut rng, &cfg.gain));
            }
        }

        // Connect consecutive layers: forward and backward coverage,
        // then extras with `edge_prob`.
        for w in layers.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let mut chosen: Vec<(NodeId, NodeId)> = Vec::new();
            for &x in a {
                let &y = b.choose(&mut rng).expect("layer nonempty");
                chosen.push((x, y));
            }
            for &y in b {
                if !chosen.iter().any(|&(_, t)| t == y) {
                    let &x = a.choose(&mut rng).expect("layer nonempty");
                    chosen.push((x, y));
                }
            }
            for &x in a {
                for &y in b {
                    if !chosen.contains(&(x, y)) && rng.random_bool(cfg.edge_prob) {
                        chosen.push((x, y));
                    }
                }
            }
            for (x, y) in chosen {
                let e = *edge_ids
                    .entry((x, y))
                    .or_insert_with(|| graph.add_edge(x, y));
                let beta = gains[&y] / gains[&x];
                let cost = sample(&mut rng, &cfg.cost);
                overlay_raw[ji].push((e, EdgeParams::new(cost, beta)));
            }
        }

        let max_rate = sample(&mut rng, &cfg.max_rate);
        commodities.push(Commodity::new(source, sink, max_rate, cfg.utility));
    }

    let node_capacity: Vec<Capacity> = (0..nodes)
        .map(|_| Capacity::finite(sample(&mut rng, &cfg.node_capacity)).expect("range positive"))
        .collect();
    let edge_bandwidth: Vec<Capacity> = graph
        .edges()
        .map(|e| {
            let cross = region_of(graph.source(e), nodes_per_region)
                != region_of(graph.target(e), nodes_per_region);
            let range = if cross {
                &cfg.backbone_bandwidth
            } else {
                &cfg.link_bandwidth
            };
            Capacity::finite(sample(&mut rng, range)).expect("range positive")
        })
        .collect();

    let mut overlay: Vec<Vec<Option<EdgeParams>>> = vec![vec![None; graph.edge_count()]; j_count];
    for (ji, entries) in overlay_raw.into_iter().enumerate() {
        for (e, p) in entries {
            overlay[ji][e.index()] = Some(p);
        }
    }

    Problem::from_parts(graph, node_capacity, edge_bandwidth, commodities, overlay)
}

/// `(region, rack)` of a region-major node id.
fn region_rack(v: NodeId, cfg: &HierarchicalInstanceConfig) -> (usize, usize) {
    let nodes_per_region = cfg.racks_per_region * cfg.servers_per_rack;
    let region = v.index() / nodes_per_region;
    let rack = (v.index() % nodes_per_region) / cfg.servers_per_rack;
    (region, rack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commodity::CommodityId;
    use crate::gains::property1_holds_by_enumeration;
    use spn_graph::topo::is_acyclic_filtered;

    #[test]
    fn default_hierarchy_builds_and_validates() {
        let inst = HierarchicalInstance::builder().seed(3).build().unwrap();
        let p = &inst.problem;
        assert_eq!(p.graph().node_count(), 100);
        assert_eq!(p.num_commodities(), 8);
        for j in p.commodity_ids() {
            let in_overlay: Vec<bool> = p.graph().edges().map(|e| p.in_overlay(j, e)).collect();
            let beta: Vec<f64> = p
                .graph()
                .edges()
                .map(|e| p.params(j, e).map_or(1.0, |pp| pp.beta))
                .collect();
            assert!(property1_holds_by_enumeration(
                p.graph(),
                p.commodity(j).source(),
                &in_overlay,
                &beta,
                2000,
            ));
        }
    }

    #[test]
    fn overlays_are_dags_and_sinks_never_process() {
        for seed in 0..6 {
            let inst = HierarchicalInstance::builder().seed(seed).build().unwrap();
            let p = &inst.problem;
            for j in p.commodity_ids() {
                assert!(is_acyclic_filtered(p.graph(), |e| p.in_overlay(j, e)));
                let sink = p.commodity(j).sink();
                for jj in p.commodity_ids() {
                    for e in p.overlay_edges(jj) {
                        assert_ne!(p.graph().source(e), sink, "sink {sink} has outgoing edge");
                    }
                }
            }
        }
    }

    #[test]
    fn sources_and_sinks_are_distinct_across_tenants() {
        let inst = HierarchicalInstance::builder().seed(9).build().unwrap();
        let p = &inst.problem;
        let mut seen = std::collections::HashSet::new();
        for j in p.commodity_ids() {
            assert!(seen.insert(p.commodity(j).source()));
            assert!(seen.insert(p.commodity(j).sink()));
        }
    }

    #[test]
    fn locality_keeps_tenants_in_their_home_region() {
        let cfg = HierarchicalInstanceConfig {
            regions: 4,
            racks_per_region: 4,
            servers_per_rack: 8,
            commodities: 16,
            locality: 1.0,
            seed: 11,
            ..HierarchicalInstanceConfig::default()
        };
        let nodes_per_region = cfg.racks_per_region * cfg.servers_per_rack;
        let inst = HierarchicalInstance::generate(cfg).unwrap();
        let p = &inst.problem;
        for j in p.commodity_ids() {
            let c = p.commodity(j);
            assert_eq!(
                region_of(c.source(), nodes_per_region),
                region_of(c.sink(), nodes_per_region),
                "locality=1.0 must keep source and sink co-regional"
            );
            // Region-major ids: every overlay node of a fully local
            // tenant lives inside one contiguous id slice.
            let home = region_of(c.source(), nodes_per_region);
            for e in p.overlay_edges(j) {
                for v in [p.graph().source(e), p.graph().target(e)] {
                    assert_eq!(region_of(v, nodes_per_region), home);
                }
            }
        }
    }

    #[test]
    fn rejects_zero_commodities_and_tiny_hierarchies() {
        let err = HierarchicalInstance::builder()
            .commodities(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NoCommodities));
        let err = HierarchicalInstance::builder()
            .regions(1)
            .racks_per_region(1)
            .servers_per_rack(3)
            .commodities(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::ShapeMismatch { .. }));
    }

    #[test]
    fn ten_thousand_node_generation_is_deterministic() {
        // The CI scale gate's shape: 10k nodes, 16 tenants. Two builds
        // from the same seed must agree on every structural and float
        // field; a different seed must diverge somewhere.
        let build = |seed| {
            HierarchicalInstance::builder()
                .regions(10)
                .racks_per_region(20)
                .servers_per_rack(50)
                .commodities(16)
                .seed(seed)
                .build()
                .unwrap()
        };
        let a = build(41);
        let b = build(41);
        let c = build(42);
        assert_eq!(a.problem.graph().node_count(), 10_000);
        assert_eq!(
            a.problem.graph().edge_count(),
            b.problem.graph().edge_count()
        );
        for (ja, jb) in a.problem.commodity_ids().zip(b.problem.commodity_ids()) {
            let (ca, cb) = (a.problem.commodity(ja), b.problem.commodity(jb));
            assert_eq!(ca.source(), cb.source());
            assert_eq!(ca.sink(), cb.sink());
            assert_eq!(ca.max_rate.to_bits(), cb.max_rate.to_bits());
        }
        for e in a.problem.graph().edges() {
            assert_eq!(a.problem.graph().source(e), b.problem.graph().source(e));
            for j in a.problem.commodity_ids() {
                match (a.problem.params(j, e), b.problem.params(j, e)) {
                    (None, None) => {}
                    (Some(pa), Some(pb)) => {
                        assert_eq!(pa.cost.to_bits(), pb.cost.to_bits());
                        assert_eq!(pa.beta.to_bits(), pb.beta.to_bits());
                    }
                    _ => panic!("overlay membership diverged at {e}"),
                }
            }
        }
        assert!(
            a.problem.graph().edge_count() != c.problem.graph().edge_count()
                || a.problem.commodity(CommodityId::from_index(0)).max_rate
                    != c.problem.commodity(CommodityId::from_index(0)).max_rate
        );
    }
}
