//! Validation errors for model construction.

use crate::commodity::CommodityId;
use spn_graph::{EdgeId, NodeId};
use std::fmt;

/// Why a [`Problem`](crate::problem::Problem) failed validation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The physical graph has no nodes.
    EmptyGraph,
    /// There are no commodities to route.
    NoCommodities,
    /// A node capacity is missing, non-positive, NaN, or (for physical
    /// nodes) infinite.
    BadNodeCapacity {
        /// The offending node.
        node: NodeId,
    },
    /// An edge bandwidth is non-positive, NaN, or infinite.
    BadBandwidth {
        /// The offending edge.
        edge: EdgeId,
    },
    /// Attribute arrays do not match the graph's node/edge counts.
    ShapeMismatch {
        /// Human-readable description of the mismatched array.
        what: &'static str,
        /// Expected length (node or edge count).
        expected: usize,
        /// Actual length provided.
        actual: usize,
    },
    /// A commodity's maximum input rate `λ_j` is not finite and positive.
    BadMaxRate {
        /// The offending commodity.
        commodity: CommodityId,
    },
    /// A commodity's utility function has invalid parameters.
    BadUtility {
        /// The offending commodity.
        commodity: CommodityId,
        /// Explanation from [`crate::UtilityFn::validate`].
        reason: String,
    },
    /// A commodity's source and sink coincide.
    DegenerateCommodity {
        /// The offending commodity.
        commodity: CommodityId,
    },
    /// A per-(commodity, edge) cost or shrinkage factor is not finite
    /// and positive.
    BadEdgeParams {
        /// The commodity whose overlay is invalid.
        commodity: CommodityId,
        /// The offending edge.
        edge: EdgeId,
    },
    /// A commodity subgraph contains a directed cycle — the paper
    /// requires each stream's task graph to be a DAG.
    CommodityCycle {
        /// The offending commodity.
        commodity: CommodityId,
        /// A node on the cycle.
        node: NodeId,
    },
    /// The sink is unreachable from the source within the commodity's
    /// subgraph.
    SinkUnreachable {
        /// The offending commodity.
        commodity: CommodityId,
    },
    /// The commodity's sink has outgoing edges in its own overlay; sinks
    /// only receive data.
    SinkProcesses {
        /// The offending commodity.
        commodity: CommodityId,
    },
    /// The shrinkage factors violate Property 1: two paths between the
    /// same endpoints have different `β` products, i.e. no consistent
    /// per-node gain assignment exists.
    InconsistentShrinkage {
        /// The offending commodity.
        commodity: CommodityId,
        /// Edge at which the inconsistency was detected.
        edge: EdgeId,
        /// Gain implied for the edge's target by earlier edges.
        expected_gain: f64,
        /// Gain implied via this edge.
        actual_gain: f64,
    },
    /// A commodity overlay contains an edge with parameters but whose
    /// endpoints cannot both lie on a source→sink path; call
    /// `Problem::prune_overlays` or fix the overlay.
    DisconnectedOverlayEdge {
        /// The offending commodity.
        commodity: CommodityId,
        /// The off-path edge.
        edge: EdgeId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyGraph => write!(f, "physical graph has no nodes"),
            ModelError::NoCommodities => write!(f, "problem has no commodities"),
            ModelError::BadNodeCapacity { node } => {
                write!(f, "node {node} has an invalid capacity")
            }
            ModelError::BadBandwidth { edge } => {
                write!(f, "edge {edge} has an invalid bandwidth")
            }
            ModelError::ShapeMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what}: expected length {expected}, got {actual}")
            }
            ModelError::BadMaxRate { commodity } => {
                write!(f, "commodity {commodity} has an invalid maximum rate")
            }
            ModelError::BadUtility { commodity, reason } => {
                write!(f, "commodity {commodity} has an invalid utility: {reason}")
            }
            ModelError::DegenerateCommodity { commodity } => {
                write!(f, "commodity {commodity} has identical source and sink")
            }
            ModelError::BadEdgeParams { commodity, edge } => {
                write!(
                    f,
                    "commodity {commodity} has invalid parameters on edge {edge}"
                )
            }
            ModelError::CommodityCycle { commodity, node } => {
                write!(
                    f,
                    "commodity {commodity} subgraph has a cycle through {node}"
                )
            }
            ModelError::SinkUnreachable { commodity } => {
                write!(
                    f,
                    "commodity {commodity} cannot reach its sink from its source"
                )
            }
            ModelError::SinkProcesses { commodity } => {
                write!(f, "commodity {commodity} sink has outgoing overlay edges")
            }
            ModelError::InconsistentShrinkage {
                commodity,
                edge,
                expected_gain,
                actual_gain,
            } => {
                write!(
                    f,
                    "commodity {commodity} violates Property 1 at edge {edge}: \
                     gain {actual_gain} vs {expected_gain} via another path"
                )
            }
            ModelError::DisconnectedOverlayEdge { commodity, edge } => {
                write!(
                    f,
                    "commodity {commodity} overlay edge {edge} is not on any source→sink path"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_distinct() {
        let errs = vec![
            ModelError::EmptyGraph,
            ModelError::NoCommodities,
            ModelError::BadNodeCapacity {
                node: NodeId::from_index(1),
            },
            ModelError::BadBandwidth {
                edge: EdgeId::from_index(2),
            },
            ModelError::ShapeMismatch {
                what: "capacities",
                expected: 3,
                actual: 4,
            },
            ModelError::BadMaxRate {
                commodity: CommodityId::from_index(0),
            },
            ModelError::DegenerateCommodity {
                commodity: CommodityId::from_index(0),
            },
            ModelError::SinkUnreachable {
                commodity: CommodityId::from_index(1),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errs {
            let s = format!("{e}");
            assert!(!s.is_empty());
            assert!(seen.insert(s));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(ModelError::EmptyGraph);
    }
}
