//! Resource capacities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-negative resource budget: a node's computing power `C_u`, a
/// link's bandwidth `B_ik`, or the unconstrained budget of a dummy node.
///
/// `Capacity` is a thin wrapper over `f64` that rules out negative and
/// NaN budgets at construction time, and makes the *infinite* budget of
/// the paper's dummy nodes (`C_{s̄_j} = +∞`) an explicit, queryable state
/// rather than a magic float.
///
/// ```
/// use spn_model::Capacity;
/// let c = Capacity::finite(42.0).unwrap();
/// assert_eq!(c.value(), 42.0);
/// assert!(!c.is_infinite());
/// assert!(Capacity::INFINITE.is_infinite());
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Capacity(f64);

impl Capacity {
    /// The unconstrained budget of a dummy node.
    pub const INFINITE: Capacity = Capacity(f64::INFINITY);

    /// Creates a finite capacity.
    ///
    /// Returns `None` if `value` is not strictly positive and finite —
    /// the model has no use for zero-capacity resources (a node that can
    /// process nothing simply has no outgoing edges).
    #[must_use]
    pub fn finite(value: f64) -> Option<Self> {
        (value.is_finite() && value > 0.0).then_some(Capacity(value))
    }

    /// The raw budget (possibly `f64::INFINITY`).
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` for the dummy-node budget.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Fraction of this capacity used by load `z`, or `0.0` when the
    /// capacity is infinite.
    #[must_use]
    pub fn utilization(self, z: f64) -> f64 {
        if self.is_infinite() {
            0.0
        } else {
            z / self.0
        }
    }

    /// Remaining headroom `C − z`; `f64::INFINITY` for dummy nodes.
    #[must_use]
    pub fn headroom(self, z: f64) -> f64 {
        self.0 - z
    }
}

impl fmt::Debug for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "Capacity(∞)")
        } else {
            write!(f, "Capacity({})", self.0)
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_rejects_bad_values() {
        assert!(Capacity::finite(1.5).is_some());
        assert!(Capacity::finite(0.0).is_none());
        assert!(Capacity::finite(-3.0).is_none());
        assert!(Capacity::finite(f64::NAN).is_none());
        assert!(Capacity::finite(f64::INFINITY).is_none());
    }

    #[test]
    fn utilization_and_headroom() {
        let c = Capacity::finite(10.0).unwrap();
        assert_eq!(c.utilization(2.5), 0.25);
        assert_eq!(c.headroom(2.5), 7.5);
        assert_eq!(Capacity::INFINITE.utilization(1e12), 0.0);
        assert!(Capacity::INFINITE.headroom(1e12).is_infinite());
    }

    #[test]
    fn formatting() {
        let c = Capacity::finite(3.0).unwrap();
        assert_eq!(format!("{c}"), "3");
        assert_eq!(format!("{c:?}"), "Capacity(3)");
        assert_eq!(format!("{}", Capacity::INFINITE), "∞");
        assert_eq!(format!("{:?}", Capacity::INFINITE), "Capacity(∞)");
    }

    #[test]
    fn ordering() {
        let a = Capacity::finite(1.0).unwrap();
        let b = Capacity::finite(2.0).unwrap();
        assert!(a < b);
        assert!(b < Capacity::INFINITE);
    }
}
