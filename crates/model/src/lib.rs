//! The stream processing system model of the paper's §2.
//!
//! A [`problem::Problem`] bundles everything the paper's
//! formulation takes as *given*:
//!
//! * a physical network: a [`spn_graph::DiGraph`] with per-node computing
//!   capacities `C_u` and per-link bandwidths `B_ik` ([`capacity`]);
//! * `J` commodities ([`commodity`]), each with a source, a sink, a
//!   maximum input rate `λ_j`, a concave increasing utility `U_j`
//!   ([`utility`]), and a DAG overlay of the physical graph describing
//!   the commodity's processing pipeline;
//! * per-(commodity, edge) processing parameters: the resource
//!   consumption `c^j_ik` and the shrinkage factor `β^j_ik`
//!   ([`problem::EdgeParams`]), with the paper's **Property 1**
//!   (path-invariance of `β` products) validated via per-node gains
//!   ([`gains`]);
//! * convex capacity penalties `D_i` ([`penalty`]) used by the
//!   barrier-relaxed objective `A = Y + ε·D`.
//!
//! [`random`] generates seeded instances with exactly the distributions
//! of the paper's evaluation (§6), [`hierarchy`] synthesizes
//! region × rack × server topologies for the 1k–100k-node scale tier,
//! and [`spec`] provides a serde-friendly exchange format so experiment
//! manifests are reproducible byte-for-byte.

pub mod builder;
pub mod capacity;
pub mod commodity;
pub mod error;
pub mod figures;
pub mod gains;
pub mod hierarchy;
pub mod penalty;
pub mod problem;
pub mod random;
pub mod spec;
pub mod utility;

pub use capacity::Capacity;
pub use commodity::{Commodity, CommodityId};
pub use error::ModelError;
pub use penalty::{Penalty, PenaltyKind};
pub use problem::{EdgeParams, Problem};
pub use utility::UtilityFn;
