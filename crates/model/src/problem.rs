//! The full optimization instance: graph, capacities, commodities, and
//! per-(commodity, edge) processing parameters.

use crate::capacity::Capacity;
use crate::commodity::{Commodity, CommodityId};
use crate::error::ModelError;
use crate::gains::gains_from_betas;
use spn_graph::reach::on_path_edges;
use spn_graph::{DiGraph, EdgeId, NodeId};

/// Per-(commodity, edge) processing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeParams {
    /// Computing power `c^j_ik` node `i` spends to process one unit of
    /// commodity-`j` input destined for `k`.
    pub cost: f64,
    /// Shrinkage factor `β^j_ik`: units of output per unit of input
    /// (`< 1` shrinks, `> 1` expands).
    pub beta: f64,
}

impl EdgeParams {
    /// Creates edge parameters.
    #[must_use]
    pub fn new(cost: f64, beta: f64) -> Self {
        EdgeParams { cost, beta }
    }

    fn is_valid(&self) -> bool {
        self.cost.is_finite() && self.cost > 0.0 && self.beta.is_finite() && self.beta > 0.0
    }
}

/// A validated instance of the paper's utility optimization problem
/// (§2): *Given network `G`, resource budgets `C`, consumption rates
/// `c`, shrinkage factors `β`, and input rates `Λ`, maximize
/// `Σ_j U_j(a_j)` subject to node, link, and flow-balance constraints.*
///
/// Construct via [`crate::builder::ProblemBuilder`] or
/// [`Problem::from_parts`]; both validate every structural assumption
/// the algorithms rely on (commodity DAGs, Property 1, reachability,
/// parameter signs), so downstream crates can use the data without
/// re-checking.
#[derive(Clone, Debug)]
pub struct Problem {
    graph: DiGraph,
    node_capacity: Vec<Capacity>,
    edge_bandwidth: Vec<Capacity>,
    commodities: Vec<Commodity>,
    /// `overlay[j][e]` — parameters of edge `e` for commodity `j`, or
    /// `None` if the commodity does not use the edge.
    overlay: Vec<Vec<Option<EdgeParams>>>,
    /// Cached per-commodity gains `g_j(n)`, from validation.
    gains: Vec<Vec<f64>>,
}

impl Problem {
    /// Assembles and validates a problem from raw parts.
    ///
    /// `overlay[j][e]` gives commodity `j`'s parameters on edge `e`
    /// (`None` when the commodity does not use the edge).
    ///
    /// # Errors
    ///
    /// Every structural defect is reported as a specific
    /// [`ModelError`]; see that type for the full catalogue. Notably,
    /// overlay edges not on any source→sink path are rejected — call
    /// [`Problem::prune_overlays`] on the raw overlay first if the
    /// source of your instance may include dead-end edges.
    pub fn from_parts(
        graph: DiGraph,
        node_capacity: Vec<Capacity>,
        edge_bandwidth: Vec<Capacity>,
        commodities: Vec<Commodity>,
        overlay: Vec<Vec<Option<EdgeParams>>>,
    ) -> Result<Self, ModelError> {
        if graph.node_count() == 0 {
            return Err(ModelError::EmptyGraph);
        }
        if commodities.is_empty() {
            return Err(ModelError::NoCommodities);
        }
        if node_capacity.len() != graph.node_count() {
            return Err(ModelError::ShapeMismatch {
                what: "node capacities",
                expected: graph.node_count(),
                actual: node_capacity.len(),
            });
        }
        if edge_bandwidth.len() != graph.edge_count() {
            return Err(ModelError::ShapeMismatch {
                what: "edge bandwidths",
                expected: graph.edge_count(),
                actual: edge_bandwidth.len(),
            });
        }
        if overlay.len() != commodities.len() {
            return Err(ModelError::ShapeMismatch {
                what: "commodity overlays",
                expected: commodities.len(),
                actual: overlay.len(),
            });
        }
        for v in graph.nodes() {
            let c = node_capacity[v.index()];
            if c.is_infinite() || c.value() <= 0.0 {
                return Err(ModelError::BadNodeCapacity { node: v });
            }
        }
        for e in graph.edges() {
            let b = edge_bandwidth[e.index()];
            if b.is_infinite() || b.value() <= 0.0 {
                return Err(ModelError::BadBandwidth { edge: e });
            }
        }

        let mut gains = Vec::with_capacity(commodities.len());
        for (ji, commodity) in commodities.iter().enumerate() {
            let j = CommodityId::from_index(ji);
            if overlay[ji].len() != graph.edge_count() {
                return Err(ModelError::ShapeMismatch {
                    what: "commodity overlay edges",
                    expected: graph.edge_count(),
                    actual: overlay[ji].len(),
                });
            }
            if !(commodity.max_rate.is_finite() && commodity.max_rate > 0.0) {
                return Err(ModelError::BadMaxRate { commodity: j });
            }
            commodity
                .utility
                .validate()
                .map_err(|reason| ModelError::BadUtility {
                    commodity: j,
                    reason,
                })?;
            if commodity.source() == commodity.sink() {
                return Err(ModelError::DegenerateCommodity { commodity: j });
            }

            let mut in_overlay = vec![false; graph.edge_count()];
            let mut beta = vec![1.0; graph.edge_count()];
            for e in graph.edges() {
                if let Some(p) = overlay[ji][e.index()] {
                    if !p.is_valid() {
                        return Err(ModelError::BadEdgeParams {
                            commodity: j,
                            edge: e,
                        });
                    }
                    in_overlay[e.index()] = true;
                    beta[e.index()] = p.beta;
                    if graph.source(e) == commodity.sink() {
                        return Err(ModelError::SinkProcesses { commodity: j });
                    }
                }
            }

            // DAG + Property 1 in one pass.
            let g = gains_from_betas(&graph, j, commodity.source(), &in_overlay, &beta)?;

            // Reachability and dead-edge checks.
            let useful = on_path_edges(&graph, commodity.source(), commodity.sink(), |e| {
                in_overlay[e.index()]
            });
            if !useful.iter().any(|&u| u) {
                return Err(ModelError::SinkUnreachable { commodity: j });
            }
            if let Some(e) = graph
                .edges()
                .find(|&e| in_overlay[e.index()] && !useful[e.index()])
            {
                return Err(ModelError::DisconnectedOverlayEdge {
                    commodity: j,
                    edge: e,
                });
            }
            gains.push(g);
        }

        Ok(Problem {
            graph,
            node_capacity,
            edge_bandwidth,
            commodities,
            overlay,
            gains,
        })
    }

    /// Removes overlay edges that lie on no source→sink path, in place
    /// on a raw overlay (before [`Problem::from_parts`]). Returns the
    /// number of entries cleared.
    pub fn prune_overlays(
        graph: &DiGraph,
        commodities: &[Commodity],
        overlay: &mut [Vec<Option<EdgeParams>>],
    ) -> usize {
        let mut removed = 0;
        for (ji, commodity) in commodities.iter().enumerate() {
            let useful = on_path_edges(graph, commodity.source(), commodity.sink(), |e| {
                overlay[ji][e.index()].is_some()
            });
            for e in graph.edges() {
                if overlay[ji][e.index()].is_some() && !useful[e.index()] {
                    overlay[ji][e.index()] = None;
                    removed += 1;
                }
            }
        }
        removed
    }

    /// The physical network.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Computing capacity `C_u` of a node.
    #[must_use]
    pub fn node_capacity(&self, node: NodeId) -> Capacity {
        self.node_capacity[node.index()]
    }

    /// Bandwidth `B_ik` of a link.
    #[must_use]
    pub fn edge_bandwidth(&self, edge: EdgeId) -> Capacity {
        self.edge_bandwidth[edge.index()]
    }

    /// Number of commodities `J`.
    #[must_use]
    pub fn num_commodities(&self) -> usize {
        self.commodities.len()
    }

    /// Iterates over commodity ids.
    pub fn commodity_ids(&self) -> impl ExactSizeIterator<Item = CommodityId> {
        (0..self.commodities.len()).map(CommodityId::from_index)
    }

    /// A commodity's descriptor.
    #[must_use]
    pub fn commodity(&self, j: CommodityId) -> &Commodity {
        &self.commodities[j.index()]
    }

    /// All commodities in id order.
    #[must_use]
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    /// Commodity `j`'s parameters on `edge`, if the edge is in its
    /// overlay.
    #[must_use]
    pub fn params(&self, j: CommodityId, edge: EdgeId) -> Option<EdgeParams> {
        self.overlay[j.index()][edge.index()]
    }

    /// Returns `true` if `edge` belongs to commodity `j`'s overlay.
    #[must_use]
    pub fn in_overlay(&self, j: CommodityId, edge: EdgeId) -> bool {
        self.overlay[j.index()][edge.index()].is_some()
    }

    /// Iterates over the edges of commodity `j`'s overlay.
    pub fn overlay_edges(&self, j: CommodityId) -> impl Iterator<Item = EdgeId> + '_ {
        let row = &self.overlay[j.index()];
        self.graph.edges().filter(move |e| row[e.index()].is_some())
    }

    /// The gain `g_j(n)`: output units observed at `n` per unit admitted
    /// at `s_j` (1.0 for nodes the commodity cannot reach).
    #[must_use]
    pub fn gain(&self, j: CommodityId, node: NodeId) -> f64 {
        self.gains[j.index()][node.index()]
    }

    /// Sum of the maximum input rates `Σ_j λ_j` — an upper bound on any
    /// admission vector.
    #[must_use]
    pub fn total_demand(&self) -> f64 {
        self.commodities.iter().map(|c| c.max_rate).sum()
    }

    /// Utility `Σ_j U_j(a_j)` of an admission vector.
    ///
    /// # Panics
    ///
    /// Panics if `admitted.len() != self.num_commodities()`.
    #[must_use]
    pub fn utility(&self, admitted: &[f64]) -> f64 {
        assert_eq!(admitted.len(), self.num_commodities());
        self.commodities
            .iter()
            .zip(admitted)
            .map(|(c, &a)| c.utility.value(a))
            .sum()
    }

    /// Returns a copy with every node capacity and edge bandwidth
    /// multiplied by `factor` (> 0). Useful for load-scaling experiments.
    #[must_use]
    pub fn scale_capacities(&self, factor: f64) -> Problem {
        assert!(factor.is_finite() && factor > 0.0);
        let mut p = self.clone();
        for c in &mut p.node_capacity {
            *c = Capacity::finite(c.value() * factor).expect("scaled capacity valid");
        }
        for b in &mut p.edge_bandwidth {
            *b = Capacity::finite(b.value() * factor).expect("scaled bandwidth valid");
        }
        p
    }

    /// Returns a copy with every maximum input rate multiplied by
    /// `factor` (> 0). Useful for overload/admission experiments.
    #[must_use]
    pub fn scale_demand(&self, factor: f64) -> Problem {
        assert!(factor.is_finite() && factor > 0.0);
        let mut p = self.clone();
        for c in &mut p.commodities {
            c.max_rate *= factor;
        }
        p
    }

    /// Returns a copy with commodity `j`'s utility replaced.
    #[must_use]
    pub fn with_utility(&self, j: CommodityId, utility: crate::UtilityFn) -> Problem {
        let mut p = self.clone();
        p.commodities[j.index()].utility = utility;
        p
    }

    /// Returns a copy with one node's computing capacity replaced
    /// (used by failure experiments to model a degraded or dead
    /// server).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is infinite (physical nodes are finite).
    #[must_use]
    pub fn with_node_capacity(&self, node: NodeId, capacity: Capacity) -> Problem {
        assert!(!capacity.is_infinite(), "physical capacities are finite");
        let mut p = self.clone();
        p.node_capacity[node.index()] = capacity;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityFn;

    /// Two-node, one-edge, one-commodity instance.
    pub(crate) fn tiny() -> Problem {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        Problem::from_parts(
            g,
            vec![
                Capacity::finite(10.0).unwrap(),
                Capacity::finite(10.0).unwrap(),
            ],
            vec![Capacity::finite(5.0).unwrap()],
            vec![Commodity::new(s, t, 4.0, UtilityFn::throughput())],
            vec![vec![Some(EdgeParams::new(2.0, 0.5))]],
        )
        .unwrap()
    }

    #[test]
    fn tiny_instance_validates() {
        let p = tiny();
        assert_eq!(p.num_commodities(), 1);
        assert_eq!(p.total_demand(), 4.0);
        let j = CommodityId::from_index(0);
        assert_eq!(p.params(j, EdgeId::from_index(0)).unwrap().beta, 0.5);
        assert_eq!(p.gain(j, NodeId::from_index(0)), 1.0);
        assert_eq!(p.gain(j, NodeId::from_index(1)), 0.5);
        assert_eq!(p.overlay_edges(j).count(), 1);
        assert!(p.in_overlay(j, EdgeId::from_index(0)));
    }

    #[test]
    fn utility_of_admission_vector() {
        let p = tiny();
        assert_eq!(p.utility(&[3.0]), 3.0);
    }

    #[test]
    fn rejects_empty_graph() {
        let err = Problem::from_parts(DiGraph::new(), vec![], vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, ModelError::EmptyGraph);
    }

    #[test]
    fn rejects_no_commodities() {
        let mut g = DiGraph::new();
        g.add_node();
        let err = Problem::from_parts(
            g,
            vec![Capacity::finite(1.0).unwrap()],
            vec![],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::NoCommodities);
    }

    #[test]
    fn rejects_shape_mismatches() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let commodity = Commodity::new(s, t, 1.0, UtilityFn::throughput());
        let err = Problem::from_parts(
            g.clone(),
            vec![Capacity::finite(1.0).unwrap()], // missing one
            vec![Capacity::finite(1.0).unwrap()],
            vec![commodity.clone()],
            vec![vec![Some(EdgeParams::new(1.0, 1.0))]],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ModelError::ShapeMismatch {
                what: "node capacities",
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_rate_and_degenerate_commodity() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let caps = vec![Capacity::finite(1.0).unwrap(); 2];
        let bw = vec![Capacity::finite(1.0).unwrap()];
        let ov = vec![vec![Some(EdgeParams::new(1.0, 1.0))]];
        let err = Problem::from_parts(
            g.clone(),
            caps.clone(),
            bw.clone(),
            vec![Commodity::new(s, t, -1.0, UtilityFn::throughput())],
            ov.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::BadMaxRate { .. }));
        let err = Problem::from_parts(
            g,
            caps,
            bw,
            vec![Commodity::new(s, s, 1.0, UtilityFn::throughput())],
            ov,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DegenerateCommodity { .. }));
    }

    #[test]
    fn rejects_unreachable_sink() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        let u = g.add_node();
        g.add_edge(s, u); // sink t unreachable
        let err = Problem::from_parts(
            g,
            vec![Capacity::finite(1.0).unwrap(); 3],
            vec![Capacity::finite(1.0).unwrap()],
            vec![Commodity::new(s, t, 1.0, UtilityFn::throughput())],
            vec![vec![Some(EdgeParams::new(1.0, 1.0))]],
        )
        .unwrap_err();
        // the s→u edge is also off-path; either error is structurally
        // correct, but unreachable-sink must win when nothing is useful
        assert!(matches!(err, ModelError::SinkUnreachable { .. }));
    }

    #[test]
    fn rejects_dead_end_overlay_edge() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        let u = g.add_node();
        g.add_edge(s, t);
        g.add_edge(s, u); // dead end
        let err = Problem::from_parts(
            g,
            vec![Capacity::finite(1.0).unwrap(); 3],
            vec![Capacity::finite(1.0).unwrap(); 2],
            vec![Commodity::new(s, t, 1.0, UtilityFn::throughput())],
            vec![vec![
                Some(EdgeParams::new(1.0, 1.0)),
                Some(EdgeParams::new(1.0, 1.0)),
            ]],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DisconnectedOverlayEdge { .. }));
    }

    #[test]
    fn prune_clears_dead_edges() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        let u = g.add_node();
        g.add_edge(s, t);
        g.add_edge(s, u);
        let commodities = vec![Commodity::new(s, t, 1.0, UtilityFn::throughput())];
        let mut overlay = vec![vec![
            Some(EdgeParams::new(1.0, 1.0)),
            Some(EdgeParams::new(1.0, 1.0)),
        ]];
        let removed = Problem::prune_overlays(&g, &commodities, &mut overlay);
        assert_eq!(removed, 1);
        assert!(overlay[0][1].is_none());
        assert!(Problem::from_parts(
            g,
            vec![Capacity::finite(1.0).unwrap(); 3],
            vec![Capacity::finite(1.0).unwrap(); 2],
            commodities,
            overlay,
        )
        .is_ok());
    }

    #[test]
    fn rejects_sink_with_outgoing_overlay_edge() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        g.add_edge(t, s);
        let err = Problem::from_parts(
            g,
            vec![Capacity::finite(1.0).unwrap(); 2],
            vec![Capacity::finite(1.0).unwrap(); 2],
            vec![Commodity::new(s, t, 1.0, UtilityFn::throughput())],
            vec![vec![
                Some(EdgeParams::new(1.0, 1.0)),
                Some(EdgeParams::new(1.0, 1.0)),
            ]],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::SinkProcesses { .. }));
    }

    #[test]
    fn rejects_bad_edge_params() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        for bad in [
            EdgeParams::new(0.0, 1.0),
            EdgeParams::new(1.0, 0.0),
            EdgeParams::new(f64::NAN, 1.0),
            EdgeParams::new(1.0, -2.0),
        ] {
            let err = Problem::from_parts(
                g.clone(),
                vec![Capacity::finite(1.0).unwrap(); 2],
                vec![Capacity::finite(1.0).unwrap()],
                vec![Commodity::new(s, t, 1.0, UtilityFn::throughput())],
                vec![vec![Some(bad)]],
            )
            .unwrap_err();
            assert!(matches!(err, ModelError::BadEdgeParams { .. }));
        }
    }

    #[test]
    fn scaling_helpers() {
        let p = tiny();
        let p2 = p.scale_capacities(2.0);
        assert_eq!(p2.node_capacity(NodeId::from_index(0)).value(), 20.0);
        assert_eq!(p2.edge_bandwidth(EdgeId::from_index(0)).value(), 10.0);
        let p3 = p.scale_demand(3.0);
        assert_eq!(p3.total_demand(), 12.0);
        let p4 = p.with_utility(CommodityId::from_index(0), UtilityFn::log(2.0));
        assert_eq!(
            p4.commodity(CommodityId::from_index(0)).utility,
            UtilityFn::log(2.0)
        );
    }
}
