//! Canonical instances from the paper's figures.
//!
//! [`figure1`] builds exactly the example of §2 (Figure 1): eight
//! servers and two sinks carrying two streams,
//!
//! * Stream S1 runs tasks A→B→C→D with the assignment
//!   `T1={A}, T2={B}, T3={B,E}, T4={C}, T5={C,F}, T6={D}`,
//! * Stream S2 runs tasks G→E→F→H with `T7={G}, T8={H}`,
//!
//! so servers 3 and 5 each process one task *per* stream (the paper's
//! "a server is assigned to process at most one task for each
//! commodity"), and the physical link 3→5 is shared by both streams
//! (B→C for S1, E→F for S2) — the contention the joint mechanism must
//! arbitrate.

use crate::builder::ProblemBuilder;
use crate::error::ModelError;
use crate::problem::Problem;
use crate::utility::UtilityFn;

/// Tunables of the Figure 1 instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Figure1Config {
    /// Computing capacity of every server.
    pub server_capacity: f64,
    /// Bandwidth of every link.
    pub link_bandwidth: f64,
    /// Offered load of each stream.
    pub max_rate: f64,
    /// Processing cost per unit on every hop.
    pub cost: f64,
    /// Shrinkage per processing hop (e.g. `0.8` = each task keeps 80%).
    pub beta: f64,
}

impl Default for Figure1Config {
    /// Moderate contention: server 3 and 5 are the shared bottlenecks.
    fn default() -> Self {
        Figure1Config {
            server_capacity: 30.0,
            link_bandwidth: 40.0,
            max_rate: 12.0,
            cost: 1.5,
            beta: 0.8,
        }
    }
}

/// Node indices of the Figure 1 instance, in construction order:
/// servers 1–8 are indices 0–7, sink 1 is 8, sink 2 is 9.
pub const FIGURE1_SERVERS: usize = 8;

/// Builds the Figure 1 instance.
///
/// # Errors
///
/// Returns [`ModelError`] if the configuration values are invalid
/// (non-positive capacities, rates, costs, or shrinkage).
pub fn figure1(config: Figure1Config) -> Result<Problem, ModelError> {
    let mut b = ProblemBuilder::new();
    // servers 1..=8 (indices 0..=7), then the two sinks
    let srv: Vec<_> = (0..FIGURE1_SERVERS)
        .map(|_| b.server(config.server_capacity))
        .collect();
    let sink1 = b.server(config.server_capacity);
    let sink2 = b.server(config.server_capacity);
    let link =
        |b: &mut ProblemBuilder, a: usize, c: usize| b.link(srv[a], srv[c], config.link_bandwidth);

    // Stream S1 edges (solid in the figure): A→B, B→C, C→D, D→sink1.
    let e12 = link(&mut b, 0, 1);
    let e13 = link(&mut b, 0, 2);
    let e24 = link(&mut b, 1, 3);
    let e25 = link(&mut b, 1, 4);
    let e34 = link(&mut b, 2, 3);
    let e35 = link(&mut b, 2, 4); // shared physical link 3→5
    let e46 = link(&mut b, 3, 5);
    let e56 = link(&mut b, 4, 5);
    let e6s = b.link(srv[5], sink1, config.link_bandwidth);
    // Stream S2 edges (dashed): G→E, E→F, F→H, H→sink2.
    let e73 = link(&mut b, 6, 2);
    let e58 = link(&mut b, 4, 7);
    let e8s = b.link(srv[7], sink2, config.link_bandwidth);

    let s1 = b.commodity(srv[0], sink1, config.max_rate, UtilityFn::throughput());
    let s2 = b.commodity(srv[6], sink2, config.max_rate, UtilityFn::throughput());
    for e in [e12, e13, e24, e25, e34, e35, e46, e56, e6s] {
        b.uses(s1, e, config.cost, config.beta);
    }
    for e in [e73, e35, e58, e8s] {
        b.uses(s2, e, config.cost, config.beta);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commodity::CommodityId;
    use spn_graph::paths::count_paths;

    #[test]
    fn builds_and_validates() {
        let p = figure1(Figure1Config::default()).unwrap();
        assert_eq!(p.graph().node_count(), 10);
        assert_eq!(p.graph().edge_count(), 12);
        assert_eq!(p.num_commodities(), 2);
    }

    #[test]
    fn stream_s1_has_four_paths() {
        // A → {2,3} → {4,5} → 6 → sink: 2×2 = 4 paths
        let p = figure1(Figure1Config::default()).unwrap();
        let j = CommodityId::from_index(0);
        let c = p.commodity(j);
        let n = count_paths(p.graph(), c.source(), c.sink(), |e| p.in_overlay(j, e)).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn stream_s2_is_a_chain() {
        let p = figure1(Figure1Config::default()).unwrap();
        let j = CommodityId::from_index(1);
        let c = p.commodity(j);
        let n = count_paths(p.graph(), c.source(), c.sink(), |e| p.in_overlay(j, e)).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn link_3_to_5_is_shared() {
        let p = figure1(Figure1Config::default()).unwrap();
        let shared: Vec<_> = p
            .graph()
            .edges()
            .filter(|&e| {
                p.in_overlay(CommodityId::from_index(0), e)
                    && p.in_overlay(CommodityId::from_index(1), e)
            })
            .collect();
        assert_eq!(shared.len(), 1);
        let (a, b) = p.graph().endpoints(shared[0]);
        assert_eq!(a.index(), 2); // server 3
        assert_eq!(b.index(), 4); // server 5
    }

    #[test]
    fn per_stream_subgraphs_are_dags() {
        let p = figure1(Figure1Config::default()).unwrap();
        for j in p.commodity_ids() {
            assert!(spn_graph::topo::is_acyclic_filtered(p.graph(), |e| p.in_overlay(j, e)));
        }
    }

    #[test]
    fn end_to_end_gain_is_beta_to_the_hops() {
        let p = figure1(Figure1Config::default()).unwrap();
        // S1: 4 processing hops (A→B→C→D→sink): gain 0.8⁴
        let j = CommodityId::from_index(0);
        let g = p.gain(j, p.commodity(j).sink());
        assert!((g - 0.8f64.powi(4)).abs() < 1e-12);
    }
}
