//! Commodities: the streams the system processes.

use crate::utility::UtilityFn;
use serde::{Deserialize, Serialize};
use spn_graph::NodeId;
use std::fmt;

/// Dense identifier of a commodity (the paper's index `j = 1..J`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CommodityId(pub u32);

impl CommodityId {
    /// Creates a commodity id from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        CommodityId(u32::try_from(index).expect("commodity index exceeds u32 range"))
    }

    /// Returns the dense index of this commodity.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CommodityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl fmt::Display for CommodityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// One stream: where it enters, where its results go, how fast data can
/// arrive, and how valuable delivered data is.
///
/// The commodity's processing pipeline — which physical edges it may use
/// and with what cost/shrinkage — lives in
/// [`Problem`](crate::problem::Problem) as a per-(commodity, edge)
/// overlay, because edge parameters are shared state between commodities
/// and the graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Commodity {
    /// Source node `s_j` where the stream enters the network.
    pub source: NodeIdRepr,
    /// Sink node where the fully processed stream is consumed. Sinks
    /// only receive data — they never process.
    pub sink: NodeIdRepr,
    /// Maximum generation rate `λ_j` of the source.
    pub max_rate: f64,
    /// Concave increasing utility `U_j` of the admitted rate.
    pub utility: UtilityFn,
}

/// Serde-friendly mirror of [`spn_graph::NodeId`].
///
/// The graph crate is deliberately serde-free; commodities store node
/// references as raw indices and convert at the API boundary.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeIdRepr(pub u32);

impl NodeIdRepr {
    /// The graph-side id this repr refers to.
    #[must_use]
    pub fn node(self) -> NodeId {
        NodeId::from_index(self.0 as usize)
    }
}

impl From<NodeId> for NodeIdRepr {
    fn from(n: NodeId) -> Self {
        NodeIdRepr(u32::try_from(n.index()).expect("node index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeIdRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl Commodity {
    /// Creates a commodity.
    #[must_use]
    pub fn new(source: NodeId, sink: NodeId, max_rate: f64, utility: UtilityFn) -> Self {
        Commodity {
            source: source.into(),
            sink: sink.into(),
            max_rate,
            utility,
        }
    }

    /// Source node `s_j`.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source.node()
    }

    /// Sink node.
    #[must_use]
    pub fn sink(&self) -> NodeId {
        self.sink.node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let j = CommodityId::from_index(3);
        assert_eq!(j.index(), 3);
        assert_eq!(format!("{j}"), "j3");
        assert_eq!(format!("{j:?}"), "j3");
    }

    #[test]
    fn node_repr_round_trip() {
        let n = NodeId::from_index(17);
        let r: NodeIdRepr = n.into();
        assert_eq!(r.node(), n);
        assert_eq!(format!("{r:?}"), "n17");
    }

    #[test]
    fn commodity_accessors() {
        let c = Commodity::new(
            NodeId::from_index(0),
            NodeId::from_index(5),
            12.5,
            UtilityFn::throughput(),
        );
        assert_eq!(c.source().index(), 0);
        assert_eq!(c.sink().index(), 5);
        assert_eq!(c.max_rate, 12.5);
    }
}
