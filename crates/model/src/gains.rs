//! Per-node gains and the paper's Property 1.
//!
//! Property 1 states that the product of shrinkage factors `β` along any
//! two paths with the same endpoints is identical — otherwise the amount
//! of output delivered to the sink would depend on the route taken, and
//! "the resulting outcome does not depend on the processing path" would
//! fail. Equivalently, there is a per-node *gain* `g_j(n)` — the amount
//! of commodity-`j` output observed at `n` per unit admitted at the
//! source — with `g_j(s_j) = 1` and `β^j_ik = g_j(k) / g_j(i)`.
//!
//! This module converts between the two representations:
//! [`gains_from_betas`] reconstructs gains from edge factors (detecting
//! Property 1 violations in `O(N + M)` instead of enumerating paths),
//! and [`betas_from_gains`] derives consistent factors from gains, which
//! is exactly how the paper's evaluation instantiates `β` ("the `g_nj`
//! parameters are real numbers uniformly distributed in [1, 10], from
//! which we then obtain the shrinkage parameter by setting
//! `β^j_ik = g^j_k / g^j_i`").

use crate::commodity::CommodityId;
use crate::error::ModelError;
use spn_graph::topo::topological_order_filtered;
use spn_graph::{DiGraph, NodeId};

/// Relative tolerance for gain-consistency checks.
///
/// Instances built from gains are consistent to machine precision;
/// hand-authored `β` tables are accepted if all paths agree within this
/// relative factor.
pub const GAIN_TOLERANCE: f64 = 1e-9;

/// Reconstructs per-node gains for one commodity from its per-edge
/// shrinkage factors.
///
/// `in_overlay[e]` selects the commodity's edges and `beta[e]` gives
/// `β^j` for selected edges (other entries are ignored). The returned
/// vector has `g = 1.0` for the source and for every node unreachable
/// from it (the paper's convention: "If node n is not reachable from
/// `s_j`, we also set `g_n(j) = 1`").
///
/// # Errors
///
/// * [`ModelError::CommodityCycle`] if the overlay is cyclic;
/// * [`ModelError::InconsistentShrinkage`] if two paths imply different
///   gains for some node (Property 1 violation).
pub fn gains_from_betas(
    graph: &DiGraph,
    commodity: CommodityId,
    source: NodeId,
    in_overlay: &[bool],
    beta: &[f64],
) -> Result<Vec<f64>, ModelError> {
    debug_assert_eq!(in_overlay.len(), graph.edge_count());
    debug_assert_eq!(beta.len(), graph.edge_count());
    let order = topological_order_filtered(graph, |e| in_overlay[e.index()]).map_err(|cycle| {
        ModelError::CommodityCycle {
            commodity,
            node: cycle.node_in_cycle,
        }
    })?;

    let mut gain: Vec<Option<f64>> = vec![None; graph.node_count()];
    gain[source.index()] = Some(1.0);
    for v in order {
        let Some(gv) = gain[v.index()] else { continue };
        for &e in graph.out_edges(v) {
            if !in_overlay[e.index()] {
                continue;
            }
            let t = graph.target(e);
            let implied = gv * beta[e.index()];
            match gain[t.index()] {
                None => gain[t.index()] = Some(implied),
                Some(existing) => {
                    let scale = existing.abs().max(implied.abs()).max(1.0);
                    if (existing - implied).abs() > GAIN_TOLERANCE * scale {
                        return Err(ModelError::InconsistentShrinkage {
                            commodity,
                            edge: e,
                            expected_gain: existing,
                            actual_gain: implied,
                        });
                    }
                }
            }
        }
    }
    Ok(gain.into_iter().map(|g| g.unwrap_or(1.0)).collect())
}

/// Derives per-edge shrinkage factors `β^j_ik = g_j(k)/g_j(i)` from
/// per-node gains, for the selected overlay edges (other entries are
/// `1.0`).
///
/// # Panics
///
/// Panics in debug builds if `gains` or `in_overlay` have the wrong
/// length; any non-positive gain yields a non-positive `β` that problem
/// validation will reject.
#[must_use]
pub fn betas_from_gains(graph: &DiGraph, in_overlay: &[bool], gains: &[f64]) -> Vec<f64> {
    debug_assert_eq!(in_overlay.len(), graph.edge_count());
    debug_assert_eq!(gains.len(), graph.node_count());
    graph
        .edges()
        .map(|e| {
            if in_overlay[e.index()] {
                let (s, t) = graph.endpoints(e);
                gains[t.index()] / gains[s.index()]
            } else {
                1.0
            }
        })
        .collect()
}

/// Checks Property 1 exhaustively by comparing `β` products along every
/// source→`goal` path (up to `path_limit` paths per goal node).
///
/// This is `O(paths)` and intended for tests; production validation uses
/// [`gains_from_betas`].
#[must_use]
pub fn property1_holds_by_enumeration(
    graph: &DiGraph,
    source: NodeId,
    in_overlay: &[bool],
    beta: &[f64],
    path_limit: usize,
) -> bool {
    for goal in graph.nodes() {
        let paths = spn_graph::paths::enumerate_paths(graph, source, goal, path_limit, |e| {
            in_overlay[e.index()]
        });
        let mut product: Option<f64> = None;
        for p in paths {
            let mut acc = 1.0;
            for w in p.windows(2) {
                let e = graph
                    .edges()
                    .find(|&e| {
                        in_overlay[e.index()] && graph.source(e) == w[0] && graph.target(e) == w[1]
                    })
                    .expect("path edge exists");
                acc *= beta[e.index()];
            }
            match product {
                None => product = Some(acc),
                Some(prev) => {
                    if (prev - acc).abs() > GAIN_TOLERANCE * prev.abs().max(acc.abs()).max(1.0) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3.
    fn diamond() -> (DiGraph, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[3]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[2], n[3]);
        (g, n)
    }

    #[test]
    fn round_trip_gains_betas() {
        let (g, n) = diamond();
        let overlay = vec![true; 4];
        let gains = vec![1.0, 2.0, 4.0, 6.0];
        let beta = betas_from_gains(&g, &overlay, &gains);
        assert_eq!(beta, vec![2.0, 3.0, 4.0, 1.5]);
        let re = gains_from_betas(&g, CommodityId::from_index(0), n[0], &overlay, &beta).unwrap();
        assert_eq!(re, gains);
        assert!(property1_holds_by_enumeration(
            &g, n[0], &overlay, &beta, 100
        ));
    }

    #[test]
    fn detects_property1_violation() {
        let (g, n) = diamond();
        let overlay = vec![true; 4];
        // path via 1 multiplies to 6, via 2 to 8 — inconsistent at node 3
        let beta = vec![2.0, 3.0, 4.0, 2.0];
        let err =
            gains_from_betas(&g, CommodityId::from_index(0), n[0], &overlay, &beta).unwrap_err();
        assert!(matches!(err, ModelError::InconsistentShrinkage { .. }));
        assert!(!property1_holds_by_enumeration(
            &g, n[0], &overlay, &beta, 100
        ));
    }

    #[test]
    fn unreachable_nodes_get_unit_gain() {
        let mut g = DiGraph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        // n2 isolated
        let overlay = vec![true];
        let beta = vec![0.5];
        let gains =
            gains_from_betas(&g, CommodityId::from_index(0), n[0], &overlay, &beta).unwrap();
        assert_eq!(gains, vec![1.0, 0.5, 1.0]);
    }

    #[test]
    fn overlay_filter_ignores_foreign_edges() {
        let (g, n) = diamond();
        // only the upper path belongs to the overlay; lower-path betas
        // are junk and must be ignored
        let overlay = vec![true, true, false, false];
        let beta = vec![2.0, 3.0, f64::NAN, -7.0];
        let gains =
            gains_from_betas(&g, CommodityId::from_index(0), n[0], &overlay, &beta).unwrap();
        assert_eq!(gains, vec![1.0, 2.0, 1.0, 6.0]);
    }

    #[test]
    fn cycle_is_reported() {
        let mut g = DiGraph::new();
        let n = g.add_nodes(2);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]);
        let err = gains_from_betas(
            &g,
            CommodityId::from_index(2),
            n[0],
            &[true, true],
            &[1.0, 1.0],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::CommodityCycle { commodity, .. }
            if commodity == CommodityId::from_index(2)));
    }

    #[test]
    fn tolerance_accepts_rounding_noise() {
        let (g, n) = diamond();
        let overlay = vec![true; 4];
        let beta = vec![2.0, 3.0, 4.0, 1.5 * (1.0 + 1e-12)];
        assert!(gains_from_betas(&g, CommodityId::from_index(0), n[0], &overlay, &beta).is_ok());
    }
}
