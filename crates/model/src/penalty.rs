//! Convex capacity penalty functions `D_i(z)`.
//!
//! §3 of the paper moves the per-node capacity constraints into the
//! objective through convex increasing penalties with
//! `lim_{z→C_i} D_i(z) → ∞`, giving the relaxed cost `A = Y + ε·D`. The
//! reference form named in the paper is the reciprocal barrier
//! `D_i(z) = 1/(C_i − z)`.
//!
//! A pure barrier is undefined past the capacity, but the iterative
//! algorithm can transiently *forecast* loads slightly above `C_i` before
//! the gradient pushes them back. Following standard practice we
//! therefore extend each barrier beyond a configurable *knee*
//! `θ·C_i` with the second-order Taylor polynomial of the barrier at the
//! knee: the extension is still convex, increasing and `C²`-smooth at the
//! junction, and grows fast enough (quadratically, with the barrier's
//! curvature at the knee) that iterates are immediately repelled.

use crate::capacity::Capacity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The analytic family of a penalty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PenaltyKind {
    /// `D(z) = 1/(C − z) − 1/C` — the paper's reference penalty,
    /// normalized so `D(0) = 0` (the constant does not affect gradients
    /// but keeps reported costs interpretable).
    ///
    /// Its derivative `1/(C−z)²` scales like `1/C²`, so one `ε` cannot
    /// fit heterogeneous capacities (a `C = 2` node is repelled at 40%
    /// utilization while a `C = 100` node overshoots its capacity). Use
    /// [`PenaltyKind::ScaledReciprocal`] when capacities span orders of
    /// magnitude, as in the paper's `U[1, 100]` evaluation setup.
    Reciprocal,
    /// `D(z) = C·z/(C − z)` — the capacity-normalized reciprocal
    /// barrier. Its derivative is `1/(1 − u)²` where `u = z/C` is the
    /// *utilization*, so the marginal penalty at a given utilization is
    /// identical for every capacity: one `ε` produces the same
    /// equilibrium utilization at a `C = 2` node and a `C = 100` node.
    ScaledReciprocal,
    /// `D(z) = −ln(1 − z/C)` — the classic logarithmic barrier; softer
    /// than the reciprocal away from capacity.
    LogBarrier,
}

/// A capacity penalty: a [`PenaltyKind`] plus the knee fraction at which
/// the barrier switches to its quadratic extension.
///
/// ```
/// use spn_model::{Capacity, Penalty};
/// let p = Penalty::default();
/// let c = Capacity::finite(10.0).unwrap();
/// assert_eq!(p.value(c, 0.0), 0.0);
/// assert!(p.value(c, 9.0) > p.value(c, 5.0));
/// // defined (and steep) even past the capacity:
/// assert!(p.value(c, 11.0).is_finite());
/// assert!(p.value(c, 11.0) > p.value(c, 9.9));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Penalty {
    kind: PenaltyKind,
    knee: f64,
}

impl Default for Penalty {
    /// The paper's reciprocal penalty with the knee at 98% utilization.
    fn default() -> Self {
        Penalty {
            kind: PenaltyKind::Reciprocal,
            knee: 0.98,
        }
    }
}

impl Penalty {
    /// Creates a penalty with the given knee fraction.
    ///
    /// # Errors
    ///
    /// Returns an error message unless `0 < knee < 1`.
    pub fn new(kind: PenaltyKind, knee: f64) -> Result<Self, String> {
        if knee.is_finite() && knee > 0.0 && knee < 1.0 {
            Ok(Penalty { kind, knee })
        } else {
            Err(format!(
                "knee must lie strictly between 0 and 1, got {knee}"
            ))
        }
    }

    /// The analytic family.
    #[must_use]
    pub fn kind(&self) -> PenaltyKind {
        self.kind
    }

    /// The knee fraction `θ`.
    #[must_use]
    pub fn knee(&self) -> f64 {
        self.knee
    }

    /// Barrier value, derivative and second derivative at load `z` for a
    /// *finite* capacity `c`, ignoring the knee extension.
    fn raw(&self, c: f64, z: f64) -> (f64, f64, f64) {
        let h = c - z;
        match self.kind {
            PenaltyKind::Reciprocal => (1.0 / h - 1.0 / c, 1.0 / (h * h), 2.0 / (h * h * h)),
            PenaltyKind::ScaledReciprocal => {
                (c * z / h, c * c / (h * h), 2.0 * c * c / (h * h * h))
            }
            PenaltyKind::LogBarrier => (-(h / c).ln(), 1.0 / h, 1.0 / (h * h)),
        }
    }

    /// Penalty `D(z)` of running load `z ≥ 0` on a resource of capacity
    /// `c`. Zero for infinite capacities (dummy nodes).
    #[must_use]
    pub fn value(&self, c: Capacity, z: f64) -> f64 {
        if c.is_infinite() {
            return 0.0;
        }
        let cap = c.value();
        let kz = self.knee * cap;
        if z <= kz {
            self.raw(cap, z).0
        } else {
            let (v, d, dd) = self.raw(cap, kz);
            let t = z - kz;
            v + d * t + 0.5 * dd * t * t
        }
    }

    /// Marginal penalty `D'(z)`. Zero for infinite capacities.
    #[must_use]
    pub fn derivative(&self, c: Capacity, z: f64) -> f64 {
        if c.is_infinite() {
            return 0.0;
        }
        let cap = c.value();
        let kz = self.knee * cap;
        if z <= kz {
            self.raw(cap, z).1
        } else {
            let (_, d, dd) = self.raw(cap, kz);
            d + dd * (z - kz)
        }
    }

    /// Penalty curvature `D''(z)` (constant beyond the knee, where the
    /// extension is quadratic). Zero for infinite capacities. Used by
    /// the Newton-scaled step rule.
    #[must_use]
    pub fn second_derivative(&self, c: Capacity, z: f64) -> f64 {
        if c.is_infinite() {
            return 0.0;
        }
        let cap = c.value();
        let kz = self.knee * cap;
        self.raw(cap, z.min(kz)).2
    }
}

impl fmt::Display for Penalty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            PenaltyKind::Reciprocal => write!(f, "1/(C−z), knee {}", self.knee),
            PenaltyKind::ScaledReciprocal => write!(f, "Cz/(C−z), knee {}", self.knee),
            PenaltyKind::LogBarrier => write!(f, "−ln(1−z/C), knee {}", self.knee),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> Vec<Penalty> {
        vec![
            Penalty::new(PenaltyKind::Reciprocal, 0.98).unwrap(),
            Penalty::new(PenaltyKind::ScaledReciprocal, 0.98).unwrap(),
            Penalty::new(PenaltyKind::LogBarrier, 0.95).unwrap(),
        ]
    }

    #[test]
    fn zero_at_origin() {
        let c = Capacity::finite(25.0).unwrap();
        for p in both() {
            assert!(p.value(c, 0.0).abs() < 1e-12, "{p}");
        }
    }

    #[test]
    fn convex_and_increasing() {
        let c = Capacity::finite(10.0).unwrap();
        for p in both() {
            let mut prev_v = p.value(c, 0.0);
            let mut prev_d = p.derivative(c, 0.0);
            // sweep well past capacity to cover the extension region
            for i in 1..=150 {
                let z = i as f64 * 0.1;
                let v = p.value(c, z);
                let d = p.derivative(c, z);
                assert!(v >= prev_v, "{p} value decreased at {z}");
                assert!(d >= prev_d - 1e-12, "{p} derivative decreased at {z}");
                assert!(v.is_finite() && d.is_finite());
                prev_v = v;
                prev_d = d;
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let c = Capacity::finite(10.0).unwrap();
        let h = 1e-6;
        for p in both() {
            for i in 0..130 {
                let z = i as f64 * 0.09;
                let fd = (p.value(c, z + h) - p.value(c, z - h)) / (2.0 * h);
                let an = p.derivative(c, z);
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "{p} at z={z}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn smooth_at_knee() {
        let c = Capacity::finite(10.0).unwrap();
        for p in both() {
            let kz = p.knee() * 10.0;
            let eps = 1e-9;
            let dv = (p.value(c, kz + eps) - p.value(c, kz - eps)).abs();
            let dd = (p.derivative(c, kz + eps) - p.derivative(c, kz - eps)).abs();
            let v_scale = p.value(c, kz).abs().max(1.0);
            let d_scale = p.derivative(c, kz).abs().max(1.0);
            assert!(dv < 1e-6 * v_scale, "{p} value jump at knee: {dv}");
            assert!(dd < 1e-4 * d_scale, "{p} derivative jump at knee: {dd}");
        }
    }

    #[test]
    fn infinite_capacity_is_free() {
        for p in both() {
            assert_eq!(p.value(Capacity::INFINITE, 1e9), 0.0);
            assert_eq!(p.derivative(Capacity::INFINITE, 1e9), 0.0);
        }
    }

    #[test]
    fn reciprocal_matches_paper_form() {
        // D(z) = 1/(C−z) − 1/C below the knee
        let p = Penalty::default();
        let c = Capacity::finite(8.0).unwrap();
        let z = 3.0;
        assert!((p.value(c, z) - (1.0 / 5.0 - 1.0 / 8.0)).abs() < 1e-12);
        assert!((p.derivative(c, z) - 1.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn knee_validation() {
        assert!(Penalty::new(PenaltyKind::Reciprocal, 0.5).is_ok());
        assert!(Penalty::new(PenaltyKind::Reciprocal, 0.0).is_err());
        assert!(Penalty::new(PenaltyKind::Reciprocal, 1.0).is_err());
        assert!(Penalty::new(PenaltyKind::Reciprocal, f64::NAN).is_err());
    }

    #[test]
    fn scaled_reciprocal_is_capacity_invariant() {
        // marginal penalty at a fixed utilization is the same for any C
        let p = Penalty::new(PenaltyKind::ScaledReciprocal, 0.98).unwrap();
        for u in [0.1, 0.5, 0.9, 0.95] {
            let small = Capacity::finite(2.0).unwrap();
            let large = Capacity::finite(100.0).unwrap();
            let d_small = p.derivative(small, 2.0 * u);
            let d_large = p.derivative(large, 100.0 * u);
            assert!(
                (d_small - d_large).abs() < 1e-9 * d_small.abs(),
                "u={u}: {d_small} vs {d_large}"
            );
            let expected = 1.0 / ((1.0 - u) * (1.0 - u));
            assert!((d_small - expected).abs() < 1e-9 * expected);
        }
    }

    #[test]
    fn steeper_near_capacity() {
        let p = Penalty::default();
        let c = Capacity::finite(100.0).unwrap();
        assert!(p.derivative(c, 95.0) > 10.0 * p.derivative(c, 50.0));
    }
}
