//! Serde-friendly exchange format for problems.
//!
//! [`ProblemSpec`] is a plain-data mirror of [`Problem`] that derives
//! `Serialize`/`Deserialize`, so experiment manifests can be stored as
//! JSON and re-validated on load. The graph crate stays serde-free; the
//! spec stores edges as index pairs.

use crate::capacity::Capacity;
use crate::commodity::Commodity;
use crate::error::ModelError;
use crate::problem::{EdgeParams, Problem};
use crate::utility::UtilityFn;
use serde::{Deserialize, Serialize};
use spn_graph::{DiGraph, EdgeId, NodeId};

/// One physical link in a [`ProblemSpec`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Source node index.
    pub src: u32,
    /// Target node index.
    pub dst: u32,
    /// Link bandwidth `B`.
    pub bandwidth: f64,
}

/// One overlay entry of a commodity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlayEdgeSpec {
    /// Edge index into [`ProblemSpec::edges`].
    pub edge: u32,
    /// Resource cost `c^j` on the edge.
    pub cost: f64,
    /// Shrinkage factor `β^j` on the edge.
    pub beta: f64,
}

/// One commodity, with its overlay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommoditySpec {
    /// Source node index.
    pub source: u32,
    /// Sink node index.
    pub sink: u32,
    /// Maximum input rate `λ`.
    pub max_rate: f64,
    /// Utility function.
    pub utility: UtilityFn,
    /// The commodity's usable edges with parameters.
    pub overlay: Vec<OverlayEdgeSpec>,
}

/// Plain-data mirror of a [`Problem`], suitable for JSON manifests.
///
/// ```
/// use spn_model::spec::ProblemSpec;
/// use spn_model::random::RandomInstance;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = RandomInstance::builder().nodes(12).commodities(2).seed(1).build()?;
/// let spec = ProblemSpec::from(&inst.problem);
/// let json = spec.to_json()?;
/// let back = ProblemSpec::from_json(&json)?;
/// let problem2 = back.into_problem()?;
/// assert_eq!(problem2.num_commodities(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Node computing capacities, indexed by node.
    pub node_capacities: Vec<f64>,
    /// Physical links.
    pub edges: Vec<EdgeSpec>,
    /// Commodities with their overlays.
    pub commodities: Vec<CommoditySpec>,
}

impl ProblemSpec {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors (shouldn't occur for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` parse error.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Validates the spec into a [`Problem`].
    ///
    /// # Errors
    ///
    /// See [`Problem::from_parts`]; additionally, out-of-range node or
    /// edge indices are reported as [`ModelError::ShapeMismatch`].
    pub fn into_problem(self) -> Result<Problem, ModelError> {
        let n = self.node_capacities.len();
        let m = self.edges.len();
        let mut graph = DiGraph::with_capacity(n, m);
        graph.add_nodes(n);
        for e in &self.edges {
            if e.src as usize >= n || e.dst as usize >= n {
                return Err(ModelError::ShapeMismatch {
                    what: "edge endpoint index",
                    expected: n,
                    actual: (e.src.max(e.dst)) as usize,
                });
            }
            graph.add_edge(
                NodeId::from_index(e.src as usize),
                NodeId::from_index(e.dst as usize),
            );
        }
        let node_capacity: Vec<Capacity> = self
            .node_capacities
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                Capacity::finite(c).ok_or(ModelError::BadNodeCapacity {
                    node: NodeId::from_index(i),
                })
            })
            .collect::<Result<_, _>>()?;
        let edge_bandwidth: Vec<Capacity> = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| {
                Capacity::finite(e.bandwidth).ok_or(ModelError::BadBandwidth {
                    edge: EdgeId::from_index(i),
                })
            })
            .collect::<Result<_, _>>()?;
        let mut commodities = Vec::with_capacity(self.commodities.len());
        let mut overlay = Vec::with_capacity(self.commodities.len());
        for c in self.commodities {
            if c.source as usize >= n || c.sink as usize >= n {
                return Err(ModelError::ShapeMismatch {
                    what: "commodity endpoint index",
                    expected: n,
                    actual: c.source.max(c.sink) as usize,
                });
            }
            let mut row = vec![None; m];
            for oe in c.overlay {
                if oe.edge as usize >= m {
                    return Err(ModelError::ShapeMismatch {
                        what: "overlay edge index",
                        expected: m,
                        actual: oe.edge as usize,
                    });
                }
                row[oe.edge as usize] = Some(EdgeParams::new(oe.cost, oe.beta));
            }
            commodities.push(Commodity::new(
                NodeId::from_index(c.source as usize),
                NodeId::from_index(c.sink as usize),
                c.max_rate,
                c.utility,
            ));
            overlay.push(row);
        }
        Problem::from_parts(graph, node_capacity, edge_bandwidth, commodities, overlay)
    }
}

impl From<&Problem> for ProblemSpec {
    fn from(p: &Problem) -> Self {
        let g = p.graph();
        ProblemSpec {
            node_capacities: g.nodes().map(|v| p.node_capacity(v).value()).collect(),
            edges: g
                .edges()
                .map(|e| {
                    let (s, t) = g.endpoints(e);
                    EdgeSpec {
                        src: s.index() as u32,
                        dst: t.index() as u32,
                        bandwidth: p.edge_bandwidth(e).value(),
                    }
                })
                .collect(),
            commodities: p
                .commodity_ids()
                .map(|j| {
                    let c = p.commodity(j);
                    CommoditySpec {
                        source: c.source().index() as u32,
                        sink: c.sink().index() as u32,
                        max_rate: c.max_rate,
                        utility: c.utility,
                        overlay: p
                            .overlay_edges(j)
                            .map(|e| {
                                let pp = p.params(j, e).expect("overlay edge has params");
                                OverlayEdgeSpec {
                                    edge: e.index() as u32,
                                    cost: pp.cost,
                                    beta: pp.beta,
                                }
                            })
                            .collect(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomInstance;

    #[test]
    fn round_trip_preserves_everything() {
        let inst = RandomInstance::builder()
            .nodes(16)
            .commodities(2)
            .seed(11)
            .build()
            .unwrap();
        let spec = ProblemSpec::from(&inst.problem);
        let json = spec.to_json().unwrap();
        let back = ProblemSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
        let p2 = back.into_problem().unwrap();
        assert_eq!(p2.graph().node_count(), inst.problem.graph().node_count());
        assert_eq!(p2.graph().edge_count(), inst.problem.graph().edge_count());
        for j in inst.problem.commodity_ids() {
            for e in inst.problem.graph().edges() {
                assert_eq!(inst.problem.params(j, e), p2.params(j, e));
            }
        }
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let spec = ProblemSpec {
            node_capacities: vec![1.0, 1.0],
            edges: vec![EdgeSpec {
                src: 0,
                dst: 5,
                bandwidth: 1.0,
            }],
            commodities: vec![],
        };
        assert!(matches!(
            spec.into_problem(),
            Err(ModelError::ShapeMismatch {
                what: "edge endpoint index",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_overlay_index() {
        let spec = ProblemSpec {
            node_capacities: vec![1.0, 1.0],
            edges: vec![EdgeSpec {
                src: 0,
                dst: 1,
                bandwidth: 1.0,
            }],
            commodities: vec![CommoditySpec {
                source: 0,
                sink: 1,
                max_rate: 1.0,
                utility: UtilityFn::throughput(),
                overlay: vec![OverlayEdgeSpec {
                    edge: 9,
                    cost: 1.0,
                    beta: 1.0,
                }],
            }],
        };
        assert!(matches!(
            spec.into_problem(),
            Err(ModelError::ShapeMismatch {
                what: "overlay edge index",
                ..
            })
        ));
    }

    #[test]
    fn json_is_human_readable() {
        let inst = RandomInstance::builder()
            .nodes(12)
            .commodities(1)
            .seed(2)
            .build()
            .unwrap();
        let json = ProblemSpec::from(&inst.problem).to_json().unwrap();
        assert!(json.contains("node_capacities"));
        assert!(json.contains("max_rate"));
    }
}
