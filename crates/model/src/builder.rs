//! Ergonomic incremental construction of [`Problem`]s.

use crate::capacity::Capacity;
use crate::commodity::{Commodity, CommodityId};
use crate::error::ModelError;
use crate::gains::betas_from_gains;
use crate::problem::{EdgeParams, Problem};
use crate::utility::UtilityFn;
use spn_graph::{DiGraph, EdgeId, NodeId};

/// One deferred gains-based overlay declaration:
/// `(commodity, per-node gains, (edge, cost) pairs)`.
type GainEntry = (CommodityId, Vec<f64>, Vec<(EdgeId, f64)>);

/// Builder for [`Problem`] instances.
///
/// The builder accumulates servers, links, commodities and overlay
/// entries, and defers all validation to [`ProblemBuilder::build`]
/// (which delegates to `Problem::from_parts`).
///
/// ```
/// use spn_model::builder::ProblemBuilder;
/// use spn_model::UtilityFn;
///
/// # fn main() -> Result<(), spn_model::ModelError> {
/// let mut b = ProblemBuilder::new();
/// let s = b.server(10.0);
/// let m = b.server(8.0);
/// let t = b.server(8.0);
/// let e1 = b.link(s, m, 5.0);
/// let e2 = b.link(m, t, 5.0);
/// let j = b.commodity(s, t, 4.0, UtilityFn::throughput());
/// b.uses(j, e1, 2.0, 0.5); // cost 2, shrinks by half
/// b.uses(j, e2, 1.0, 1.0);
/// let problem = b.build()?;
/// assert_eq!(problem.num_commodities(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProblemBuilder {
    graph: DiGraph,
    node_capacity: Vec<Capacity>,
    edge_bandwidth: Vec<Capacity>,
    commodities: Vec<Commodity>,
    entries: Vec<(CommodityId, EdgeId, EdgeParams)>,
    gain_entries: Vec<GainEntry>,
}

/// Shared rejection text for construction-time budgets, so the
/// panicking and `try_` constructors fail with identical wording.
fn budget_message(what: &str, value: f64) -> String {
    format!("{what} must be positive and finite: {value}")
}

impl ProblemBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a processing server with computing capacity `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive; budgets are
    /// construction-time constants, so failing fast beats threading a
    /// `Result` through every call site. Programmatic construction (a
    /// parser, a fuzzer) that would rather report than abort should use
    /// [`ProblemBuilder::try_server`].
    pub fn server(&mut self, capacity: f64) -> NodeId {
        self.try_server(capacity)
            .unwrap_or_else(|_| panic!("{}", budget_message("server capacity", capacity)))
    }

    /// Fallible form of [`ProblemBuilder::server`]: rejects a non-finite
    /// or non-positive budget with an error instead of a panic, leaving
    /// the builder untouched.
    ///
    /// # Errors
    ///
    /// [`ModelError::BadNodeCapacity`] naming the id the server would
    /// have received.
    pub fn try_server(&mut self, capacity: f64) -> Result<NodeId, ModelError> {
        let Some(c) = Capacity::finite(capacity) else {
            return Err(ModelError::BadNodeCapacity {
                node: NodeId::from_index(self.graph.node_count()),
            });
        };
        let id = self.graph.add_node();
        self.node_capacity.push(c);
        Ok(id)
    }

    /// Adds a directed link with the given bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not finite and positive, or if the
    /// endpoints are invalid (see [`DiGraph::add_edge`]). For an
    /// error-returning bandwidth check, use
    /// [`ProblemBuilder::try_link`].
    pub fn link(&mut self, src: NodeId, dst: NodeId, bandwidth: f64) -> EdgeId {
        self.try_link(src, dst, bandwidth)
            .unwrap_or_else(|_| panic!("{}", budget_message("link bandwidth", bandwidth)))
    }

    /// Fallible form of [`ProblemBuilder::link`]: rejects a non-finite
    /// or non-positive bandwidth with an error instead of a panic,
    /// leaving the builder untouched.
    ///
    /// # Errors
    ///
    /// [`ModelError::BadBandwidth`] naming the id the link would have
    /// received.
    ///
    /// # Panics
    ///
    /// Invalid endpoints still panic (see [`DiGraph::add_edge`]) — node
    /// ids come from this builder, so a bad one is a caller bug, not
    /// input data.
    pub fn try_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bandwidth: f64,
    ) -> Result<EdgeId, ModelError> {
        let Some(b) = Capacity::finite(bandwidth) else {
            return Err(ModelError::BadBandwidth {
                edge: EdgeId::from_index(self.graph.edge_count()),
            });
        };
        let id = self.graph.add_edge(src, dst);
        self.edge_bandwidth.push(b);
        Ok(id)
    }

    /// Declares a commodity entering at `source`, consumed at `sink`,
    /// generated at up to `max_rate`, valued by `utility`.
    pub fn commodity(
        &mut self,
        source: NodeId,
        sink: NodeId,
        max_rate: f64,
        utility: UtilityFn,
    ) -> CommodityId {
        let id = CommodityId::from_index(self.commodities.len());
        self.commodities
            .push(Commodity::new(source, sink, max_rate, utility));
        id
    }

    /// Declares that commodity `j` may use `edge`, spending `cost`
    /// compute per input unit and emitting `beta` output units per input
    /// unit.
    pub fn uses(&mut self, j: CommodityId, edge: EdgeId, cost: f64, beta: f64) -> &mut Self {
        self.entries.push((j, edge, EdgeParams::new(cost, beta)));
        self
    }

    /// Declares commodity `j`'s overlay from per-node gains (the paper's
    /// evaluation style): each `(edge, cost)` pair gets
    /// `β = g[target]/g[source]`, which satisfies Property 1 by
    /// construction.
    ///
    /// `gains` must have one entry per node added *so far*; call this
    /// after the topology is complete.
    pub fn uses_with_gains(
        &mut self,
        j: CommodityId,
        gains: Vec<f64>,
        edges: Vec<(EdgeId, f64)>,
    ) -> &mut Self {
        self.gain_entries.push((j, gains, edges));
        self
    }

    /// Nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// See [`Problem::from_parts`].
    pub fn build(self) -> Result<Problem, ModelError> {
        let mut overlay: Vec<Vec<Option<EdgeParams>>> =
            vec![vec![None; self.graph.edge_count()]; self.commodities.len()];
        for (j, e, p) in self.entries {
            overlay[j.index()][e.index()] = Some(p);
        }
        for (j, gains, edges) in self.gain_entries {
            let mut in_overlay = vec![false; self.graph.edge_count()];
            for &(e, _) in &edges {
                in_overlay[e.index()] = true;
            }
            if gains.len() != self.graph.node_count() {
                return Err(ModelError::ShapeMismatch {
                    what: "per-node gains",
                    expected: self.graph.node_count(),
                    actual: gains.len(),
                });
            }
            let betas = betas_from_gains(&self.graph, &in_overlay, &gains);
            for (e, cost) in edges {
                overlay[j.index()][e.index()] = Some(EdgeParams::new(cost, betas[e.index()]));
            }
        }
        Problem::from_parts(
            self.graph,
            self.node_capacity,
            self.edge_bandwidth,
            self.commodities,
            overlay,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_chain() {
        let mut b = ProblemBuilder::new();
        let s = b.server(10.0);
        let t = b.server(10.0);
        let e = b.link(s, t, 3.0);
        let j = b.commodity(s, t, 2.0, UtilityFn::throughput());
        b.uses(j, e, 1.5, 0.8);
        let p = b.build().unwrap();
        assert_eq!(p.params(j, e).unwrap(), EdgeParams::new(1.5, 0.8));
    }

    #[test]
    fn gains_based_overlay_satisfies_property1() {
        let mut b = ProblemBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.server(10.0)).collect();
        let e0 = b.link(n[0], n[1], 9.0);
        let e1 = b.link(n[1], n[3], 9.0);
        let e2 = b.link(n[0], n[2], 9.0);
        let e3 = b.link(n[2], n[3], 9.0);
        let j = b.commodity(n[0], n[3], 2.0, UtilityFn::throughput());
        b.uses_with_gains(
            j,
            vec![1.0, 3.0, 5.0, 7.5],
            vec![(e0, 1.0), (e1, 1.0), (e2, 1.0), (e3, 1.0)],
        );
        let p = b.build().unwrap();
        assert!((p.params(j, e0).unwrap().beta - 3.0).abs() < 1e-12);
        assert!((p.params(j, e3).unwrap().beta - 1.5).abs() < 1e-12);
        assert!((p.gain(j, n[3]) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn gains_shape_checked() {
        let mut b = ProblemBuilder::new();
        let s = b.server(1.0);
        let t = b.server(1.0);
        let e = b.link(s, t, 1.0);
        let j = b.commodity(s, t, 1.0, UtilityFn::throughput());
        b.uses_with_gains(j, vec![1.0], vec![(e, 1.0)]);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ShapeMismatch {
                what: "per-node gains",
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_server_capacity_panics() {
        ProblemBuilder::new().server(-1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn bad_bandwidth_panics() {
        let mut b = ProblemBuilder::new();
        let s = b.server(1.0);
        let t = b.server(1.0);
        b.link(s, t, f64::NAN);
    }

    #[test]
    fn try_constructors_report_instead_of_panicking() {
        let mut b = ProblemBuilder::new();
        let s = b.try_server(4.0).unwrap();
        assert_eq!(
            b.try_server(f64::INFINITY),
            Err(ModelError::BadNodeCapacity {
                node: NodeId::from_index(1)
            })
        );
        // The rejected server left no trace.
        assert_eq!(b.node_count(), 1);
        let t = b.try_server(4.0).unwrap();
        assert_eq!(t, NodeId::from_index(1));
        assert_eq!(
            b.try_link(s, t, -2.0),
            Err(ModelError::BadBandwidth {
                edge: EdgeId::from_index(0)
            })
        );
        assert_eq!(b.edge_count(), 0);
        let e = b.try_link(s, t, 2.0).unwrap();
        let j = b.commodity(s, t, 1.0, UtilityFn::throughput());
        b.uses(j, e, 1.0, 1.0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn counters() {
        let mut b = ProblemBuilder::new();
        let s = b.server(1.0);
        let t = b.server(1.0);
        b.link(s, t, 1.0);
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.edge_count(), 1);
    }
}
