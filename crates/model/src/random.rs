//! Seeded random instances in the style of the paper's evaluation (§6).
//!
//! The paper evaluates on "a synthetic (random) network containing 40
//! nodes, and 3 source and sink pairs", with
//!
//! * link and node capacities uniform in `[1, 100]`,
//! * per-(commodity, node) gains `g_nj` uniform in `[1, 10]`, from which
//!   `β^j_ik = g^j_k / g^j_i` (so Property 1 holds by construction),
//! * resource consumption parameters uniform in `[1, 5]`.
//!
//! The per-commodity topology follows the paper's task model (§2 and
//! Figure 1): each stream is a *series of tasks*, each task is assigned
//! to one or more servers, and a server processes at most one task per
//! commodity — which makes every commodity overlay a DAG by
//! construction. [`RandomInstanceConfig`] exposes the number of tasks
//! (`stages`) and servers per task (`width`) so experiments can control
//! the pipeline depth `L` (the paper's message-cost parameter).

use crate::capacity::Capacity;
use crate::commodity::Commodity;
use crate::error::ModelError;
use crate::problem::{EdgeParams, Problem};
use crate::utility::UtilityFn;
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{RngExt, SeedableRng};
use spn_graph::{DiGraph, NodeId};
use std::collections::HashMap;
use std::ops::RangeInclusive;

/// Configuration of the random instance generator.
///
/// Defaults reproduce the paper's §6 setup (40 nodes, 3 commodities,
/// capacities `U[1,100]`, gains `U[1,10]`, costs `U[1,5]`, throughput
/// utility).
#[derive(Clone, Debug, PartialEq)]
pub struct RandomInstanceConfig {
    /// Total number of physical nodes (processing servers + sinks).
    pub nodes: usize,
    /// Number of commodities (source–sink pairs).
    pub commodities: usize,
    /// PRNG seed; equal seeds yield identical instances.
    pub seed: u64,
    /// Node computing capacities are drawn uniformly from this range.
    pub node_capacity: RangeInclusive<f64>,
    /// Link bandwidths are drawn uniformly from this range.
    pub link_bandwidth: RangeInclusive<f64>,
    /// Per-(commodity, node) gains are drawn uniformly from this range.
    pub gain: RangeInclusive<f64>,
    /// Per-(commodity, edge) resource costs are drawn uniformly from
    /// this range.
    pub cost: RangeInclusive<f64>,
    /// Maximum source rates `λ_j` are drawn uniformly from this range.
    pub max_rate: RangeInclusive<f64>,
    /// Number of processing tasks per commodity (pipeline depth).
    pub stages: RangeInclusive<usize>,
    /// Servers per intermediate task.
    pub width: RangeInclusive<usize>,
    /// Probability of each possible stage-to-stage edge beyond the ones
    /// required for connectivity.
    pub edge_prob: f64,
    /// Utility assigned to every commodity.
    pub utility: UtilityFn,
}

impl Default for RandomInstanceConfig {
    fn default() -> Self {
        RandomInstanceConfig {
            nodes: 40,
            commodities: 3,
            seed: 0,
            node_capacity: 1.0..=100.0,
            link_bandwidth: 1.0..=100.0,
            gain: 1.0..=10.0,
            cost: 1.0..=5.0,
            max_rate: 20.0..=60.0,
            stages: 3..=5,
            width: 2..=4,
            edge_prob: 0.35,
            utility: UtilityFn::throughput(),
        }
    }
}

/// A generated instance: the validated [`Problem`] plus the
/// configuration that produced it.
#[derive(Clone, Debug)]
pub struct RandomInstance {
    /// The validated problem.
    pub problem: Problem,
    /// The generating configuration (for manifests and re-generation).
    pub config: RandomInstanceConfig,
}

impl RandomInstance {
    /// Starts a builder with the paper's default configuration.
    #[must_use]
    pub fn builder() -> RandomInstanceBuilder {
        RandomInstanceBuilder {
            config: RandomInstanceConfig::default(),
        }
    }

    /// Generates an instance from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the configuration cannot produce a
    /// valid problem (e.g. too few nodes for the requested commodities
    /// and pipeline widths).
    pub fn generate(config: RandomInstanceConfig) -> Result<Self, ModelError> {
        let problem = generate_problem(&config)?;
        Ok(RandomInstance { problem, config })
    }
}

/// Builder mirror of [`RandomInstanceConfig`].
#[derive(Clone, Debug)]
pub struct RandomInstanceBuilder {
    config: RandomInstanceConfig,
}

impl RandomInstanceBuilder {
    /// Sets the total node count.
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Sets the number of commodities.
    #[must_use]
    pub fn commodities(mut self, commodities: usize) -> Self {
        self.config.commodities = commodities;
        self
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the pipeline-depth range (tasks per commodity).
    #[must_use]
    pub fn stages(mut self, stages: RangeInclusive<usize>) -> Self {
        self.config.stages = stages;
        self
    }

    /// Sets the servers-per-task range.
    #[must_use]
    pub fn width(mut self, width: RangeInclusive<usize>) -> Self {
        self.config.width = width;
        self
    }

    /// Sets the utility assigned to every commodity.
    #[must_use]
    pub fn utility(mut self, utility: UtilityFn) -> Self {
        self.config.utility = utility;
        self
    }

    /// Sets the maximum-rate range for `λ_j`.
    #[must_use]
    pub fn max_rate(mut self, max_rate: RangeInclusive<f64>) -> Self {
        self.config.max_rate = max_rate;
        self
    }

    /// Sets the stage-to-stage extra edge probability.
    #[must_use]
    pub fn edge_prob(mut self, edge_prob: f64) -> Self {
        self.config.edge_prob = edge_prob;
        self
    }

    /// Generates the instance.
    ///
    /// # Errors
    ///
    /// See [`RandomInstance::generate`].
    pub fn build(self) -> Result<RandomInstance, ModelError> {
        RandomInstance::generate(self.config)
    }
}

fn sample(rng: &mut StdRng, range: &RangeInclusive<f64>) -> f64 {
    if range.start() == range.end() {
        *range.start()
    } else {
        rng.random_range(range.clone())
    }
}

fn sample_usize(rng: &mut StdRng, range: &RangeInclusive<usize>) -> usize {
    if range.start() == range.end() {
        *range.start()
    } else {
        rng.random_range(range.clone())
    }
}

fn generate_problem(cfg: &RandomInstanceConfig) -> Result<Problem, ModelError> {
    let j_count = cfg.commodities;
    if j_count == 0 {
        return Err(ModelError::NoCommodities);
    }
    // Each commodity needs a dedicated sink plus a dedicated source, and
    // the narrowest admissible pipeline needs distinct servers per stage.
    let min_stage_nodes = 1 + (cfg.stages.start().saturating_sub(1)) * cfg.width.start();
    let min_nodes = (j_count * 2).max(j_count + min_stage_nodes);
    if cfg.nodes < min_nodes {
        return Err(ModelError::ShapeMismatch {
            what: "node budget for requested commodities/stages/width",
            expected: min_nodes,
            actual: cfg.nodes,
        });
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graph = DiGraph::new();
    let all: Vec<NodeId> = graph.add_nodes(cfg.nodes);

    // Last J nodes are sinks; the rest form the processing pool.
    let pool: Vec<NodeId> = all[..cfg.nodes - j_count].to_vec();
    let sinks: Vec<NodeId> = all[cfg.nodes - j_count..].to_vec();

    // Distinct sources.
    let mut shuffled = pool.clone();
    shuffled.shuffle(&mut rng);
    let sources: Vec<NodeId> = shuffled[..j_count].to_vec();

    let mut edge_ids: HashMap<(NodeId, NodeId), spn_graph::EdgeId> = HashMap::new();
    let mut overlay_raw: Vec<Vec<(spn_graph::EdgeId, EdgeParams)>> = vec![Vec::new(); j_count];
    let mut commodities = Vec::with_capacity(j_count);

    for ji in 0..j_count {
        let source = sources[ji];
        let sink = sinks[ji];

        // Sample distinct servers per stage (a server processes at most
        // one task per commodity → the overlay is a DAG). Depth and
        // width adapt to the available pool: a requested range is capped
        // so the remaining stages can still get their minimum width.
        let mut candidates: Vec<NodeId> = pool.iter().copied().filter(|&n| n != source).collect();
        candidates.shuffle(&mut rng);
        let min_w = *cfg.width.start();
        let max_depth = 1 + candidates.len() / min_w;
        let hi = (*cfg.stages.end()).min(max_depth).max(*cfg.stages.start());
        let stages = sample_usize(&mut rng, &(*cfg.stages.start()..=hi));
        let mut layers: Vec<Vec<NodeId>> = vec![vec![source]];
        let mut cursor = 0;
        for layer_idx in 1..stages {
            let layers_after = stages - 1 - layer_idx;
            let available = candidates.len() - cursor;
            let cap = available.saturating_sub(layers_after * min_w).max(min_w);
            let width = sample_usize(&mut rng, &(min_w..=(*cfg.width.end()).min(cap).max(min_w)));
            let layer: Vec<NodeId> = candidates[cursor..cursor + width].to_vec();
            cursor += width;
            layers.push(layer);
        }
        layers.push(vec![sink]);

        // Gains per node for this commodity.
        let gains: Vec<f64> = (0..cfg.nodes)
            .map(|_| sample(&mut rng, &cfg.gain))
            .collect();

        // Connect consecutive layers: guarantee every node has a
        // forward edge and every next-layer node a backward edge, then
        // sprinkle extras with `edge_prob`.
        for w in layers.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let mut chosen: Vec<(NodeId, NodeId)> = Vec::new();
            for &x in a {
                let &y = b.choose(&mut rng).expect("layer nonempty");
                chosen.push((x, y));
            }
            for &y in b {
                if !chosen.iter().any(|&(_, t)| t == y) {
                    let &x = a.choose(&mut rng).expect("layer nonempty");
                    chosen.push((x, y));
                }
            }
            for &x in a {
                for &y in b {
                    if !chosen.contains(&(x, y)) && rng.random_bool(cfg.edge_prob) {
                        chosen.push((x, y));
                    }
                }
            }
            for (x, y) in chosen {
                let e = *edge_ids
                    .entry((x, y))
                    .or_insert_with(|| graph.add_edge(x, y));
                let beta = gains[y.index()] / gains[x.index()];
                let cost = sample(&mut rng, &cfg.cost);
                overlay_raw[ji].push((e, EdgeParams::new(cost, beta)));
            }
        }

        let max_rate = sample(&mut rng, &cfg.max_rate);
        commodities.push(Commodity::new(source, sink, max_rate, cfg.utility));
    }

    let node_capacity: Vec<Capacity> = (0..cfg.nodes)
        .map(|_| Capacity::finite(sample(&mut rng, &cfg.node_capacity)).expect("range positive"))
        .collect();
    let edge_bandwidth: Vec<Capacity> = (0..graph.edge_count())
        .map(|_| Capacity::finite(sample(&mut rng, &cfg.link_bandwidth)).expect("range positive"))
        .collect();

    let mut overlay: Vec<Vec<Option<EdgeParams>>> = vec![vec![None; graph.edge_count()]; j_count];
    for (ji, entries) in overlay_raw.into_iter().enumerate() {
        for (e, p) in entries {
            overlay[ji][e.index()] = Some(p);
        }
    }

    Problem::from_parts(graph, node_capacity, edge_bandwidth, commodities, overlay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commodity::CommodityId;
    use crate::gains::property1_holds_by_enumeration;
    use spn_graph::topo::is_acyclic_filtered;

    #[test]
    fn default_config_matches_paper() {
        let cfg = RandomInstanceConfig::default();
        assert_eq!(cfg.nodes, 40);
        assert_eq!(cfg.commodities, 3);
        assert_eq!(cfg.node_capacity, 1.0..=100.0);
        assert_eq!(cfg.gain, 1.0..=10.0);
        assert_eq!(cfg.cost, 1.0..=5.0);
    }

    #[test]
    fn generates_valid_default_instance() {
        let inst = RandomInstance::builder().seed(42).build().unwrap();
        let p = &inst.problem;
        assert_eq!(p.graph().node_count(), 40);
        assert_eq!(p.num_commodities(), 3);
        // validation already ran inside from_parts; spot-check Property 1
        for j in p.commodity_ids() {
            let in_overlay: Vec<bool> = p.graph().edges().map(|e| p.in_overlay(j, e)).collect();
            let beta: Vec<f64> = p
                .graph()
                .edges()
                .map(|e| p.params(j, e).map_or(1.0, |pp| pp.beta))
                .collect();
            assert!(property1_holds_by_enumeration(
                p.graph(),
                p.commodity(j).source(),
                &in_overlay,
                &beta,
                2000,
            ));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomInstance::builder().seed(7).build().unwrap();
        let b = RandomInstance::builder().seed(7).build().unwrap();
        let c = RandomInstance::builder().seed(8).build().unwrap();
        assert_eq!(
            a.problem.graph().edge_count(),
            b.problem.graph().edge_count()
        );
        assert_eq!(
            a.problem.commodity(CommodityId::from_index(0)).max_rate,
            b.problem.commodity(CommodityId::from_index(0)).max_rate,
        );
        // different seeds should (overwhelmingly) differ somewhere
        assert!(
            a.problem.graph().edge_count() != c.problem.graph().edge_count()
                || a.problem.commodity(CommodityId::from_index(0)).max_rate
                    != c.problem.commodity(CommodityId::from_index(0)).max_rate
        );
    }

    #[test]
    fn overlays_are_dags() {
        for seed in 0..10 {
            let inst = RandomInstance::builder().seed(seed).build().unwrap();
            let p = &inst.problem;
            for j in p.commodity_ids() {
                assert!(is_acyclic_filtered(p.graph(), |e| p.in_overlay(j, e)));
            }
        }
    }

    #[test]
    fn sinks_never_process() {
        let inst = RandomInstance::builder().seed(3).build().unwrap();
        let p = &inst.problem;
        for j in p.commodity_ids() {
            let sink = p.commodity(j).sink();
            for jj in p.commodity_ids() {
                for e in p.overlay_edges(jj) {
                    assert_ne!(p.graph().source(e), sink, "sink {sink} has outgoing edge");
                }
            }
        }
    }

    #[test]
    fn sources_and_sinks_are_distinct_across_commodities() {
        let inst = RandomInstance::builder().seed(9).build().unwrap();
        let p = &inst.problem;
        let mut seen = std::collections::HashSet::new();
        for j in p.commodity_ids() {
            assert!(seen.insert(p.commodity(j).source()));
            assert!(seen.insert(p.commodity(j).sink()));
        }
    }

    #[test]
    fn depth_is_controllable() {
        let shallow = RandomInstance::builder()
            .nodes(30)
            .commodities(1)
            .stages(2..=2)
            .seed(1)
            .build()
            .unwrap();
        let deep = RandomInstance::builder()
            .nodes(60)
            .commodities(1)
            .stages(10..=10)
            .width(2..=2)
            .seed(1)
            .build()
            .unwrap();
        let j = CommodityId::from_index(0);
        let depth = |p: &Problem| {
            spn_graph::paths::longest_path_len(p.graph(), |e| p.in_overlay(j, e)).unwrap()
        };
        assert_eq!(depth(&shallow.problem), 2);
        assert_eq!(depth(&deep.problem), 10);
    }

    #[test]
    fn rejects_insufficient_nodes() {
        let err = RandomInstance::builder()
            .nodes(5)
            .commodities(3)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::ShapeMismatch { .. }));
    }

    #[test]
    fn custom_utility_propagates() {
        let inst = RandomInstance::builder()
            .utility(UtilityFn::log(2.0))
            .seed(5)
            .build()
            .unwrap();
        for c in inst.problem.commodities() {
            assert_eq!(c.utility, UtilityFn::log(2.0));
        }
    }
}
