//! Property-based tests for the model crate: utilities, penalties,
//! Property 1, and the random instance generator.

use proptest::prelude::*;
use spn_graph::DiGraph;
use spn_model::gains::{betas_from_gains, gains_from_betas, property1_holds_by_enumeration};
use spn_model::random::RandomInstance;
use spn_model::{Capacity, CommodityId, Penalty, PenaltyKind, UtilityFn};

fn arb_utility() -> impl Strategy<Value = UtilityFn> {
    prop_oneof![
        (0.1..10.0f64).prop_map(|weight| UtilityFn::Linear { weight }),
        (0.1..10.0f64, 0.1..5.0f64).prop_map(|(weight, scale)| UtilityFn::Log { weight, scale }),
        (0.1..10.0f64, 0.01..1.0f64).prop_map(|(weight, shift)| UtilityFn::Sqrt { weight, shift }),
        (0.1..5.0f64, 1.2..4.0f64, 0.05..1.0f64).prop_map(|(weight, alpha, shift)| {
            UtilityFn::AlphaFair {
                weight,
                alpha,
                shift,
            }
        }),
        (0.1..10.0f64, 0.5..20.0f64)
            .prop_map(|(weight, cap)| UtilityFn::CappedLinear { weight, cap }),
    ]
}

fn arb_penalty() -> impl Strategy<Value = Penalty> {
    (
        prop_oneof![
            Just(PenaltyKind::Reciprocal),
            Just(PenaltyKind::ScaledReciprocal),
            Just(PenaltyKind::LogBarrier)
        ],
        0.5..0.99f64,
    )
        .prop_map(|(kind, knee)| Penalty::new(kind, knee).expect("valid knee"))
}

proptest! {
    #[test]
    fn utilities_are_concave_increasing_from_zero(u in arb_utility(), a in 0.0..50.0f64, b in 0.0..50.0f64) {
        prop_assert!(u.validate().is_ok());
        prop_assert!(u.value(0.0).abs() < 1e-9);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(u.value(hi) >= u.value(lo) - 1e-9, "not increasing");
        prop_assert!(u.derivative(hi) <= u.derivative(lo) + 1e-9, "not concave");
        // midpoint concavity: U((lo+hi)/2) ≥ (U(lo)+U(hi))/2
        let mid = u.value(0.5 * (lo + hi));
        prop_assert!(mid >= 0.5 * (u.value(lo) + u.value(hi)) - 1e-9);
    }

    #[test]
    fn penalties_are_convex_increasing_and_finite(
        p in arb_penalty(),
        cap in 0.5..200.0f64,
        z1 in 0.0..1.5f64,
        z2 in 0.0..1.5f64,
    ) {
        let c = Capacity::finite(cap).expect("positive");
        let (lo, hi) = if z1 <= z2 { (z1 * cap, z2 * cap) } else { (z2 * cap, z1 * cap) };
        prop_assert!(p.value(c, lo).is_finite());
        prop_assert!(p.value(c, hi) >= p.value(c, lo) - 1e-9);
        prop_assert!(p.derivative(c, hi) >= p.derivative(c, lo) - 1e-9);
        prop_assert!(p.value(c, 0.0).abs() < 1e-9);
    }

    #[test]
    fn gains_round_trip_through_betas(
        gains in proptest::collection::vec(0.1..10.0f64, 4..10),
        edges in proptest::collection::vec((0usize..8, 0usize..8), 3..20),
    ) {
        let n = gains.len();
        let mut g = DiGraph::new();
        let nodes = g.add_nodes(n);
        // DAG edges (low → high index) only
        let mut overlay = Vec::new();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a < b {
                g.add_edge(nodes[a], nodes[b]);
                overlay.push(true);
            }
        }
        prop_assume!(g.edge_count() > 0);
        let betas = betas_from_gains(&g, &overlay, &gains);
        let recovered = gains_from_betas(&g, CommodityId::from_index(0), nodes[0], &overlay, &betas)
            .expect("consistent by construction");
        // recovered gains equal original up to the source normalization
        let scale = gains[0] / recovered[0];
        let reach = spn_graph::reach::reachable_from(&g, nodes[0], |_| true);
        for v in g.nodes() {
            if reach[v.index()] {
                prop_assert!(
                    (recovered[v.index()] * scale - gains[v.index()]).abs()
                        < 1e-9 * gains[v.index()],
                    "gain mismatch at {v}"
                );
            }
        }
        prop_assert!(property1_holds_by_enumeration(&g, nodes[0], &overlay, &betas, 500));
    }

    #[test]
    fn random_instances_are_always_valid(seed in 0u64..200, nodes in 10usize..30, commodities in 1usize..4) {
        // generation either succeeds with a validated problem or reports
        // an explicit shape error for infeasible node budgets
        match RandomInstance::builder().nodes(nodes).commodities(commodities).seed(seed).build() {
            Ok(inst) => {
                let p = inst.problem;
                prop_assert_eq!(p.graph().node_count(), nodes);
                prop_assert_eq!(p.num_commodities(), commodities);
                // validation ran inside from_parts; re-check a few invariants
                for j in p.commodity_ids() {
                    prop_assert!(spn_graph::topo::is_acyclic_filtered(
                        p.graph(),
                        |e| p.in_overlay(j, e)
                    ));
                    prop_assert!(p.commodity(j).max_rate > 0.0);
                }
            }
            Err(e) => {
                let is_shape = matches!(e, spn_model::ModelError::ShapeMismatch { .. });
                prop_assert!(is_shape, "unexpected error kind");
            }
        }
    }

    #[test]
    fn spec_round_trip_is_lossless(seed in 0u64..50) {
        let inst = RandomInstance::builder().nodes(14).commodities(2).seed(seed).build().unwrap();
        let spec = spn_model::spec::ProblemSpec::from(&inst.problem);
        let json = spec.to_json().unwrap();
        let back = spn_model::spec::ProblemSpec::from_json(&json).unwrap();
        prop_assert_eq!(&spec, &back);
        let p2 = back.into_problem().unwrap();
        prop_assert_eq!(p2.graph().edge_count(), inst.problem.graph().edge_count());
    }
}
