//! Real-socket transport: wire-v2 frames over TCP or Unix-domain
//! streams, with marker-based readiness instead of a tick barrier.
//!
//! [`SocketTransport`] is the third [`Transport`]: every frame a worker
//! sends crosses a real kernel byte stream — one duplex connection per
//! unordered region pair ([`SocketKind::Unix`] via `socketpair(2)`,
//! [`SocketKind::Tcp`] via a loopback listener with `TCP_NODELAY`) —
//! so the protocol pays partial reads, arbitrary chunk boundaries, and
//! wall-clock skew. The stream carries two record types:
//!
//! ```text
//! frame record: tag 0u8, deliver_tick u64, order u64, wire-v2 frame
//! tick marker:  tag 1u8, tick u64
//! ```
//!
//! The wire frame is **self-delimiting** (its header carries the
//! payload length), so the receive side reframes with
//! [`crate::wire::frame_len`] — the same incremental length-prefix
//! logic [`crate::wire::FrameAssembler`] pins down at every split
//! offset — and never needs a redundant length field.
//!
//! **Why the envelope.** The in-process transports deliver in a
//! deterministic order (the driver's region order, refined by
//! `Chaotic`'s `(deliver_tick, order)` sort). The sender stamps each
//! record with exactly that key, and every receiver merges its peers'
//! streams by it — so a loopback socket run replays the *identical*
//! frame sequence the in-process transport would deliver, and the
//! `Lossless` bit-identity oracle (ARCHITECTURE invariant 21) survives
//! the kernel. A distributed deployment would stamp
//! `(deliver_tick, sender, per-sender seq)` instead; the merge logic is
//! unchanged.
//!
//! **Readiness without a barrier.** A batch is only sent when a worker
//! has something to say, so "nothing arrived from peer `p`" is
//! ambiguous — not sent, or not *yet* arrived? Each `begin_tick(T)`
//! therefore writes a marker meaning "everything I will ever send at
//! ticks ≤ T − 1 is already in this stream". Once a receiver holds
//! marker `T − 1` from a peer, every record from that peer with
//! `deliver_tick ≤ T` is provably in hand (records are written at send
//! time and streams are FIFO). [`Transport::ready`] reports exactly
//! that condition; the runtime's deadline driver polls it and advances
//! anyway — degrading to last-known peer state — when the phase
//! deadline expires.
//!
//! **Never-blocking sends.** Every socket is nonblocking; bytes the
//! kernel will not take sit in a per-link userland backlog that is
//! flushed on every pump. The single-threaded loopback driver can
//! therefore never deadlock on a full socket buffer: delivering for any
//! region first flushes *every* link's backlog, which frees the very
//! buffer a write was waiting for.
//!
//! [`FaultyStream`] is the netem-style shim: each directed link applies
//! the same seeded [`MeshFaultPlan`] draws `Chaotic` uses — loss,
//! duplication, bounded delay, partitions with staggered heal — *before
//! bytes reach the kernel*, and logs the same [`MeshIncident`]s keyed
//! on the same `(tick, from, to)`, so existing `MeshFaultConfig`
//! scripts, chaos soaks, and incident-log oracles transfer to the
//! socket layer unchanged: a same-seed faulty socket run is
//! record-for-record and incident-for-incident equal to `Chaotic`.
//! Markers are never faulted — the clock always advances, exactly as
//! `Chaotic::begin_tick` always runs. A seeded read-chunking knob
//! ([`SocketOptions::split_seed`]) additionally caps every read at a
//! drawn 1..=31 bytes, forcing the reframer through mid-header and
//! mid-payload states on real traffic.

use crate::fault::{MeshFaultConfig, MeshFaultPlan};
use crate::incident::MeshIncident;
use crate::transport::{push_or_log, Inbox, Transport};
use crate::wire::{frame_len, Frame};
use spn_sim::draws::{salts, unit_hash};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;

/// Frame-record tag byte.
const REC_FRAME: u8 = 0;
/// Tick-marker tag byte.
const REC_MARKER: u8 = 1;
/// Frame-record envelope: tag + deliver_tick + order.
const FRAME_ENVELOPE: usize = 1 + 8 + 8;
/// Marker record length: tag + tick.
const MARKER_LEN: usize = 1 + 8;
/// Read size per `read(2)` when seeded chunking is off.
const READ_CHUNK: usize = 16 * 1024;

/// Which kernel stream family carries the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketKind {
    /// Unix-domain stream sockets (`socketpair(2)` — no filesystem
    /// paths to manage).
    Unix,
    /// Loopback TCP (`127.0.0.1`, ephemeral ports, `TCP_NODELAY`).
    Tcp,
}

/// Socket transport tunables.
#[derive(Clone, Debug, PartialEq)]
pub struct SocketOptions {
    /// Stream family.
    pub kind: SocketKind,
    /// Sender-side netem-style fault plan applied by every link's
    /// [`FaultyStream`] (`None` = faithful delivery, the `Lossless`
    /// analogue).
    pub faults: Option<MeshFaultConfig>,
    /// When set, every `read(2)` is capped at a seeded 1..=31 bytes
    /// (drawn through [`spn_sim::draws`] under `SALT_SPLIT`), forcing
    /// the receive-side reframer through split headers and split
    /// payloads on real traffic. Parsing is split-invariant, so this
    /// changes nothing observable — which is exactly what the
    /// equivalence oracles pin.
    pub split_seed: Option<u64>,
}

impl Default for SocketOptions {
    fn default() -> Self {
        SocketOptions {
            kind: SocketKind::Unix,
            faults: None,
            split_seed: None,
        }
    }
}

/// One nonblocking duplex kernel stream.
#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

/// A netem-style shim around one **directed** link's stream: applies
/// the shared seeded [`MeshFaultPlan`] to every frame record before its
/// bytes reach the kernel (loss, duplication, bounded delay, partition
/// windows — the same draws, salts, and incident schema as `Chaotic`),
/// keeps a userland send backlog so writes never block, and caps reads
/// at seeded chunk sizes when split exercising is on.
///
/// Tick markers pass through unfaulted: the clock always advances.
#[derive(Debug)]
pub struct FaultyStream {
    io: Stream,
    plan: Option<MeshFaultPlan>,
    split_seed: Option<u64>,
    /// Userland send backlog: bytes the kernel has not yet taken.
    tx: Vec<u8>,
    tx_at: usize,
    /// Monotone read-call counter keying the seeded chunk-cap draws.
    reads: u64,
}

impl FaultyStream {
    fn new(io: Stream, plan: Option<MeshFaultPlan>, split_seed: Option<u64>) -> Self {
        FaultyStream {
            io,
            plan,
            split_seed,
            tx: Vec::new(),
            tx_at: 0,
            reads: 0,
        }
    }

    /// Applies the plan's draws for `(tick, from, to)` and writes the
    /// surviving record(s). `order` is the transport's shared monotone
    /// insertion counter; a duplicate consumes its slot *before* the
    /// original, exactly like `Chaotic::send`, so same-seed delivery
    /// order is identical.
    fn send_frame(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        frame: &[u8],
        order: &mut u64,
        log: &mut Vec<MeshIncident>,
    ) {
        let mut deliver_tick = tick + 1;
        if let Some(plan) = &self.plan {
            // frames come from our own workers; peeking cannot fail
            let kind = Frame::peek_kind(frame).expect("well-formed frame");
            if plan.link_blocked(tick, from, to) || plan.drops_frame(tick, from, to) {
                log.push(MeshIncident::FrameLost {
                    tick,
                    from,
                    to,
                    kind,
                });
                return;
            }
            let delay = plan.delay_ticks(tick, from, to);
            deliver_tick += delay;
            if delay > 0 {
                log.push(MeshIncident::FrameDelayed {
                    tick,
                    from,
                    to,
                    kind,
                    until: deliver_tick,
                });
            }
            if plan.duplicates_frame(tick, from, to) {
                log.push(MeshIncident::FrameDuplicated {
                    tick,
                    from,
                    to,
                    kind,
                });
                self.push_record(deliver_tick, *order, frame);
                *order += 1;
            }
        }
        self.push_record(deliver_tick, *order, frame);
        *order += 1;
        self.flush();
    }

    /// Appends one frame record to the send backlog.
    fn push_record(&mut self, deliver_tick: u64, order: u64, frame: &[u8]) {
        self.tx.push(REC_FRAME);
        self.tx.extend_from_slice(&deliver_tick.to_le_bytes());
        self.tx.extend_from_slice(&order.to_le_bytes());
        self.tx.extend_from_slice(frame);
    }

    /// Appends a tick marker ("all my sends through `tick` are in this
    /// stream") and pushes bytes toward the kernel.
    fn push_marker(&mut self, tick: u64) {
        self.tx.push(REC_MARKER);
        self.tx.extend_from_slice(&tick.to_le_bytes());
        self.flush();
    }

    /// Writes as much backlog as the kernel will take right now.
    /// Never blocks; leftover bytes stay queued for the next pump.
    fn flush(&mut self) {
        while self.tx_at < self.tx.len() {
            match self.io.write(&self.tx[self.tx_at..]) {
                Ok(0) => panic!("mesh socket peer closed mid-write"),
                Ok(n) => self.tx_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => panic!("mesh socket write failed: {e}"),
            }
        }
        if self.tx_at == self.tx.len() {
            self.tx.clear();
            self.tx_at = 0;
        }
    }

    /// Reads one chunk into the end of `rx`. Returns `false` once the
    /// stream has nothing more right now (or has closed).
    fn read_chunk(&mut self, rx: &mut Vec<u8>, owner: usize, peer: usize) -> bool {
        let cap = match self.split_seed {
            // seeded tiny reads: force the reframer through every
            // mid-record state on real traffic
            Some(seed) => {
                1 + (unit_hash(seed ^ salts::SALT_SPLIT, self.reads as usize, owner, peer) * 31.0)
                    as usize
            }
            None => READ_CHUNK,
        };
        self.reads += 1;
        let start = rx.len();
        rx.resize(start + cap, 0);
        match self.io.read(&mut rx[start..]) {
            Ok(0) => {
                rx.truncate(start);
                false
            }
            Ok(n) => {
                rx.truncate(start + n);
                true
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                rx.truncate(start);
                false
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                rx.truncate(start);
                true
            }
            Err(e) => panic!("mesh socket read failed: {e}"),
        }
    }
}

/// One region's end of one pair's duplex stream: the owning region
/// writes its frames to the peer here and reads the peer's records
/// back out of it.
#[derive(Debug)]
struct Endpoint {
    link: FaultyStream,
    owner: usize,
    peer: usize,
    /// Inbound bytes not yet parsed into records.
    rx: Vec<u8>,
    rx_at: usize,
    /// Highest "sends complete through tick" marker received.
    marker: Option<u64>,
}

impl Endpoint {
    fn new(link: FaultyStream, owner: usize, peer: usize) -> Self {
        Endpoint {
            link,
            owner,
            peer,
            rx: Vec::new(),
            rx_at: 0,
            marker: None,
        }
    }

    /// Flushes the send backlog, drains the kernel receive buffer, and
    /// parses complete records: markers update the watermark, frame
    /// records land in `pending` sorted by `(deliver_tick, order)` —
    /// the same order `Chaotic` enqueues in.
    fn pump(&mut self, pending: &mut Vec<(u64, u64, Vec<u8>)>, spare: &mut Vec<Vec<u8>>) {
        self.link.flush();
        while self.link.read_chunk(&mut self.rx, self.owner, self.peer) {}
        loop {
            let buf = &self.rx[self.rx_at..];
            if buf.is_empty() {
                break;
            }
            match buf[0] {
                REC_MARKER => {
                    if buf.len() < MARKER_LEN {
                        break;
                    }
                    let tick = u64::from_le_bytes(buf[1..MARKER_LEN].try_into().expect("8 bytes"));
                    self.marker = Some(self.marker.map_or(tick, |m| m.max(tick)));
                    self.rx_at += MARKER_LEN;
                }
                REC_FRAME => {
                    if buf.len() < FRAME_ENVELOPE {
                        break;
                    }
                    let total = match frame_len(&buf[FRAME_ENVELOPE..]) {
                        Ok(Some(len)) => len,
                        Ok(None) => break,
                        // the peer is our own worker over a connected
                        // stream; garbage here is a protocol bug
                        Err(e) => panic!("desynced mesh socket stream: {e}"),
                    };
                    if buf.len() < FRAME_ENVELOPE + total {
                        break;
                    }
                    let deliver = u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes"));
                    let order = u64::from_le_bytes(buf[9..17].try_into().expect("8 bytes"));
                    let mut owned = spare.pop().unwrap_or_default();
                    owned.clear();
                    owned.extend_from_slice(&buf[FRAME_ENVELOPE..FRAME_ENVELOPE + total]);
                    let at = pending.partition_point(|&(dt, o, _)| (dt, o) <= (deliver, order));
                    pending.insert(at, (deliver, order, owned));
                    self.rx_at += FRAME_ENVELOPE + total;
                }
                other => panic!("desynced mesh socket stream: unknown record tag {other}"),
            }
        }
        if self.rx_at == self.rx.len() {
            self.rx.clear();
            self.rx_at = 0;
        }
    }
}

/// The real-socket [`Transport`]: one duplex stream per unordered
/// region pair, frame records merged back into the in-process delivery
/// order by their `(deliver_tick, order)` envelope, readiness tracked
/// through per-peer tick markers. See the module docs for the protocol
/// and the equivalence argument.
#[derive(Debug)]
pub struct SocketTransport {
    regions: usize,
    /// `endpoints[owner * regions + peer]`; `None` on the diagonal.
    endpoints: Vec<Option<Endpoint>>,
    /// Per destination: `(deliver_tick, order, frame)`, sorted.
    pending: Vec<Vec<(u64, u64, Vec<u8>)>>,
    /// Shared monotone insertion counter (the deterministic tiebreak).
    order: u64,
    /// Recycled frame buffers.
    spare: Vec<Vec<u8>>,
    /// The compiled fault plan, kept for `begin_tick`'s partition
    /// schedule incidents (each link's [`FaultyStream`] holds its own
    /// clone for the per-frame draws — draws are pure, so clones answer
    /// identically).
    plan: Option<MeshFaultPlan>,
}

impl SocketTransport {
    /// Builds the full mesh of streams for `regions` workers: one
    /// connected nonblocking duplex stream per unordered pair.
    ///
    /// # Errors
    ///
    /// Any socket-layer failure (`socketpair`, `bind`, `connect`,
    /// `accept`, or option setting) is returned as the raw
    /// [`io::Error`].
    pub fn connect(regions: usize, options: &SocketOptions) -> io::Result<Self> {
        let plan = options
            .faults
            .as_ref()
            .map(|f| MeshFaultPlan::compile(f, regions));
        let mut endpoints: Vec<Option<Endpoint>> = (0..regions * regions).map(|_| None).collect();
        for a in 0..regions {
            for b in (a + 1)..regions {
                let (end_a, end_b) = match options.kind {
                    SocketKind::Unix => {
                        let (x, y) = UnixStream::pair()?;
                        x.set_nonblocking(true)?;
                        y.set_nonblocking(true)?;
                        (Stream::Unix(x), Stream::Unix(y))
                    }
                    SocketKind::Tcp => {
                        let listener = TcpListener::bind(("127.0.0.1", 0))?;
                        let addr = listener.local_addr()?;
                        let client = TcpStream::connect(addr)?;
                        let (server, _) = listener.accept()?;
                        for s in [&client, &server] {
                            s.set_nodelay(true)?;
                            s.set_nonblocking(true)?;
                        }
                        (Stream::Tcp(client), Stream::Tcp(server))
                    }
                };
                endpoints[a * regions + b] = Some(Endpoint::new(
                    FaultyStream::new(end_a, plan.clone(), options.split_seed),
                    a,
                    b,
                ));
                endpoints[b * regions + a] = Some(Endpoint::new(
                    FaultyStream::new(end_b, plan.clone(), options.split_seed),
                    b,
                    a,
                ));
            }
        }
        Ok(SocketTransport {
            regions,
            endpoints,
            pending: (0..regions).map(|_| Vec::new()).collect(),
            order: 0,
            spare: Vec::new(),
            plan,
        })
    }

    /// Flushes every link's backlog and parses everything the kernel
    /// has. Loopback holds both ends in this one object, so pumping
    /// everywhere is also what makes never-blocking sends deadlock-free.
    fn pump_all(&mut self) {
        for owner in 0..self.regions {
            for peer in 0..self.regions {
                if let Some(ep) = self.endpoints[owner * self.regions + peer].as_mut() {
                    ep.pump(&mut self.pending[owner], &mut self.spare);
                }
            }
        }
    }
}

impl Transport for SocketTransport {
    fn begin_tick(&mut self, tick: u64, log: &mut Vec<MeshIncident>) {
        // the same partition schedule incidents Chaotic logs
        if let Some(plan) = &self.plan {
            for p in plan.partitions() {
                if p.at == tick {
                    log.push(MeshIncident::PartitionStarted {
                        tick,
                        region: p.region,
                    });
                }
                for (peer, &heal) in p.heal.iter().enumerate() {
                    if peer != p.region && heal == tick {
                        log.push(MeshIncident::LinkHealed {
                            tick,
                            region: p.region,
                            peer,
                        });
                    }
                }
                if p.healed_at == tick && p.at < tick {
                    log.push(MeshIncident::PartitionHealed {
                        tick,
                        region: p.region,
                    });
                }
            }
        }
        // entering tick T, every send of T-1 has been issued: publish
        // the watermark on every directed link (markers are never
        // faulted — the clock always advances)
        if tick > 0 {
            for ep in self.endpoints.iter_mut().flatten() {
                ep.link.push_marker(tick - 1);
            }
        }
        self.pump_all();
    }

    fn ready(&mut self, tick: u64, to: usize) -> bool {
        self.pump_all();
        if tick == 0 {
            return true;
        }
        (0..self.regions).filter(|&p| p != to).all(|p| {
            self.endpoints[to * self.regions + p]
                .as_ref()
                .is_some_and(|ep| ep.marker.is_some_and(|m| m >= tick - 1))
        })
    }

    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: &[u8],
        log: &mut Vec<MeshIncident>,
    ) {
        let ep = self.endpoints[from * self.regions + to]
            .as_mut()
            .expect("send to self");
        ep.link
            .send_frame(tick, from, to, bytes, &mut self.order, log);
    }

    fn deliver_into(
        &mut self,
        tick: u64,
        to: usize,
        inbox: &mut Inbox,
        log: &mut Vec<MeshIncident>,
    ) {
        inbox.clear();
        self.pump_all();
        let queue = &mut self.pending[to];
        let due = queue.partition_point(|&(dt, _, _)| dt <= tick);
        for (_, _, bytes) in queue.drain(..due) {
            push_or_log(inbox, tick, to, &bytes, log);
            self.spare.push(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PartitionSpec;
    use crate::transport::{Chaotic, Lossless};
    use crate::wire::Payload;

    fn hb(from: u16, to: u16, round: u64) -> Vec<u8> {
        Frame {
            from,
            to,
            seq: 0,
            round,
            payload: Payload::Heartbeat,
        }
        .encode()
    }

    /// A delivered heartbeat: `(tick, to, from, round)`.
    type Delivery = (u64, usize, u16, u64);

    /// Drives `ticks` of an all-pairs heartbeat schedule and returns
    /// `(incidents, deliveries)` in delivery order.
    fn drive(
        t: &mut impl Transport,
        regions: usize,
        ticks: u64,
    ) -> (Vec<MeshIncident>, Vec<Delivery>) {
        let mut log = Vec::new();
        let mut seen = Vec::new();
        let mut inbox = Inbox::new();
        for tick in 0..ticks {
            t.begin_tick(tick, &mut log);
            for to in 0..regions {
                // TCP loopback delivery is not synchronous with write;
                // spin briefly instead of asserting instant readiness
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while !t.ready(tick, to) {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "tick {tick} region {to} never became ready"
                    );
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                t.deliver_into(tick, to, &mut inbox, &mut log);
                for bytes in inbox.iter() {
                    let f = Frame::decode(bytes).expect("well-formed");
                    seen.push((tick, to, f.from, f.round));
                }
                for peer in 0..regions {
                    if peer != to {
                        t.send(tick, to, peer, &hb(to as u16, peer as u16, tick), &mut log);
                    }
                }
            }
        }
        (log, seen)
    }

    #[test]
    fn loopback_sockets_match_lossless_delivery() {
        for kind in [SocketKind::Unix, SocketKind::Tcp] {
            let options = SocketOptions {
                kind,
                ..SocketOptions::default()
            };
            let mut socket = SocketTransport::connect(3, &options).expect("sockets");
            let mut lossless = Lossless::new(3);
            let (log_s, seen_s) = drive(&mut socket, 3, 12);
            let (log_l, seen_l) = drive(&mut lossless, 3, 12);
            assert_eq!(seen_s, seen_l, "{kind:?} delivery diverged");
            assert!(log_s.is_empty());
            assert!(log_l.is_empty());
        }
    }

    #[test]
    fn faulty_stream_matches_chaotic_exactly() {
        let faults = MeshFaultConfig {
            seed: 77,
            loss: 0.25,
            duplicate: 0.15,
            delay_prob: 0.25,
            max_delay: 3,
            partitions: vec![PartitionSpec {
                region: 1,
                at: 6,
                duration: 5,
                heal_stagger: 2,
            }],
        };
        let options = SocketOptions {
            kind: SocketKind::Unix,
            faults: Some(faults.clone()),
            split_seed: Some(9),
        };
        let mut socket = SocketTransport::connect(3, &options).expect("sockets");
        let mut chaotic = Chaotic::new(MeshFaultPlan::compile(&faults, 3), 3);
        let (log_s, seen_s) = drive(&mut socket, 3, 24);
        let (log_c, seen_c) = drive(&mut chaotic, 3, 24);
        assert_eq!(
            seen_s, seen_c,
            "faulty socket delivery diverged from Chaotic"
        );
        assert_eq!(
            log_s, log_c,
            "faulty socket incidents diverged from Chaotic"
        );
        assert!(log_s
            .iter()
            .any(|i| matches!(i, MeshIncident::FrameLost { .. })));
    }

    #[test]
    fn seeded_read_chunking_changes_nothing_observable() {
        let options = |seed| SocketOptions {
            kind: SocketKind::Unix,
            faults: None,
            split_seed: seed,
        };
        let mut plain = SocketTransport::connect(2, &options(None)).expect("sockets");
        let mut split = SocketTransport::connect(2, &options(Some(4))).expect("sockets");
        let a = drive(&mut plain, 2, 10);
        let b = drive(&mut split, 2, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn single_region_mesh_is_trivially_ready() {
        let mut t = SocketTransport::connect(1, &SocketOptions::default()).expect("sockets");
        let mut log = Vec::new();
        let mut inbox = Inbox::new();
        for tick in 0..5 {
            t.begin_tick(tick, &mut log);
            assert!(t.ready(tick, 0));
            t.deliver_into(tick, 0, &mut inbox, &mut log);
            assert!(inbox.is_empty());
        }
        assert!(log.is_empty());
    }
}
