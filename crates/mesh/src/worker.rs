//! One region's share of the mesh: a full state mirror, the sweep
//! phases over it, and the reliability machinery that keeps the mirror
//! honest under a faulty transport.
//!
//! Every worker mirrors the complete `(routing, flows, marginals)`
//! state but *owns* only its node range: Γ updates for owned routers
//! are computed locally and broadcast as serialized rows; peer rows
//! arrive over the wire and are merged in. Under a lossless transport
//! each worker's redundant full-mirror sweeps are bit-identical to
//! every peer's, so the merged trajectory is bit-identical to the
//! monolithic `GradientAlgorithm` (ARCHITECTURE invariant 19).
//!
//! Reliability, per peer link:
//!
//! * **Reliable stream** (Γ rows, recovery frames): sequence numbers
//!   starting at 1, cumulative acks, in-order delivery with an
//!   ahead-buffer, and retransmit under capped exponential backoff.
//! * **Watermarked broadcasts** (marginals, forecasts): a per-kind
//!   round watermark accepts only strictly newer rounds; duplicates
//!   and stale frames are logged and discarded, never applied twice.
//! * **Per-row round guards**: a Γ row is applied only if its round is
//!   newer than the row's last applied round, so late retransmits
//!   flushed after a recovery cannot regress restored state.
//! * **Heartbeats & suspicion**: a peer silent for longer than the
//!   suspect window is degraded to suspect — its rows simply stop
//!   updating (last-known Γ) and iteration continues. When *all*
//!   peers are suspect the worker is isolated; the first peer heard
//!   from again triggers the epoch-fenced recovery handshake.

use crate::incident::MeshIncident;
use crate::recovery::{payload_to_snapshot, snapshot_to_payload, state_digest};
use crate::wire::{ForecastEntry, Frame, FrameKind, GammaRow, MarginalEntry, Payload};
use spn_core::blocked::{compute_tags_into, BlockedTags};
use spn_core::flows::compute_flows_into;
use spn_core::gamma::{apply_gamma_selective, GammaStats};
use spn_core::marginals::compute_marginals_into;
use spn_core::{
    Checkpoint, CostModel, FlowState, GradientConfig, IterationWorkspace, Marginals, RoutingTable,
};
use spn_graph::EdgeId;
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;
use std::collections::{BTreeMap, VecDeque};

/// Which region owns extended node `v` of `v_count`, splitting the node
/// index space into `regions` contiguous ranges.
#[must_use]
pub fn owner_of(v_index: usize, v_count: usize, regions: usize) -> usize {
    debug_assert!(regions >= 1 && v_index < v_count);
    (v_index * regions / v_count).min(regions - 1)
}

/// Ticks after a send before the first retransmit check may fire: the
/// ack round trip is two ticks, plus slack so a lossless mesh never
/// retransmits.
const RETRY_GRACE: u64 = 4;

/// An unacked reliable frame awaiting retransmission.
struct Flight {
    seq: u64,
    bytes: Vec<u8>,
    /// Retransmit attempts so far (0 = never retransmitted).
    attempts: u32,
    /// Tick at which the next retransmit check fires.
    due: u64,
}

/// Per-peer link state: the reliable stream in both directions plus the
/// broadcast watermarks.
struct Link {
    /// Next sequence number to assign (reliable sends; starts at 1).
    next_seq: u64,
    /// Sent-but-unacked reliable frames, in seq order.
    in_flight: VecDeque<Flight>,
    /// Next reliable seq expected from the peer.
    recv_next: u64,
    /// Out-of-order reliable frames buffered until the gap fills.
    ahead: BTreeMap<u64, Frame>,
    /// Round watermark per broadcast kind: next acceptable round.
    wm_marginals: u64,
    wm_forecast: u64,
}

impl Link {
    fn new() -> Self {
        Link {
            next_seq: 1,
            in_flight: VecDeque::new(),
            recv_next: 1,
            ahead: BTreeMap::new(),
            wm_marginals: 0,
            wm_forecast: 0,
        }
    }
}

/// One region worker: full mirror, owned node range, link states.
pub struct RegionWorker {
    region: usize,
    regions: usize,
    v_count: usize,
    /// Mirror of the full trajectory state.
    routing: RoutingTable,
    state: FlowState,
    marginals: Marginals,
    workspace: IterationWorkspace,
    tags: BlockedTags,
    /// Iteration counter (advances after the flow phase).
    round: u64,
    /// Commodity-set epoch (the checkpoint fence; constant here — the
    /// mesh does not reshape commodities mid-run).
    epoch: u64,
    /// `ε` and `η` as constructed (the mesh never anneals, so these are
    /// the values every snapshot carries).
    epsilon: f64,
    eta: f64,
    /// Γ statistics of the worker's own rows, last iteration.
    last_gamma: GammaStats,
    /// Per-peer link state (`links[region]` is unused).
    links: Vec<Link>,
    /// Per-(commodity, node) round guard: next acceptable row round.
    row_round: Vec<u64>,
    /// Last tick any frame arrived from each peer.
    last_heard: Vec<u64>,
    suspect: Vec<bool>,
    /// Outstanding recovery token, if this worker is rejoining.
    recovering: Option<u64>,
    /// Latest per-commodity forecasts heard (own entries included).
    admitted_view: Vec<f64>,
    utility_view: Vec<f64>,
    /// Snapshot scratch, reused across captures.
    scratch: Checkpoint,
}

impl RegionWorker {
    /// Builds worker `region` of `regions` with the same initial mirror
    /// as `GradientAlgorithm::from_extended`: fully-rejecting routing,
    /// its flows, and its marginals.
    #[must_use]
    pub fn new(
        ext: &ExtendedNetwork,
        cost: &CostModel,
        gradient: &GradientConfig,
        region: usize,
        regions: usize,
    ) -> Self {
        let v_count = ext.graph().node_count();
        let j_count = ext.num_commodities();
        let routing = RoutingTable::initial(ext);
        let mut workspace = IterationWorkspace::new(ext);
        let mut state = FlowState::zeros(ext);
        compute_flows_into(ext, &routing, &mut state, &mut workspace, None);
        let mut marginals = Marginals::zeros(ext);
        compute_marginals_into(ext, cost, &routing, &state, &mut marginals, None);
        let tags = BlockedTags::none(ext);
        RegionWorker {
            region,
            regions,
            v_count,
            routing,
            state,
            marginals,
            workspace,
            tags,
            round: 0,
            epoch: 0,
            epsilon: cost.epsilon,
            eta: gradient.eta,
            last_gamma: GammaStats::default(),
            links: (0..regions).map(|_| Link::new()).collect(),
            row_round: vec![0; j_count * v_count],
            last_heard: vec![0; regions],
            suspect: vec![false; regions],
            recovering: None,
            admitted_view: vec![0.0; j_count],
            utility_view: vec![0.0; j_count],
            scratch: Checkpoint::new(),
        }
    }

    /// This worker's region index.
    #[must_use]
    pub fn region(&self) -> usize {
        self.region
    }

    /// Does this worker own extended node `v_index`?
    #[must_use]
    pub fn owns_node(&self, v_index: usize) -> bool {
        owner_of(v_index, self.v_count, self.regions) == self.region
    }

    /// Does this worker own commodity `j` (i.e. its dummy source)?
    #[must_use]
    pub fn owns_commodity(&self, ext: &ExtendedNetwork, j: CommodityId) -> bool {
        self.owns_node(ext.dummy_source(j).index())
    }

    /// The mirror's routing table.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The mirror's flow state.
    #[must_use]
    pub fn flows(&self) -> &FlowState {
        &self.state
    }

    /// The mirror's marginal costs.
    #[must_use]
    pub fn marginals(&self) -> &Marginals {
        &self.marginals
    }

    /// Γ statistics of this worker's own rows, last iteration.
    #[must_use]
    pub fn gamma_stats(&self) -> GammaStats {
        self.last_gamma
    }

    /// Admitted rate of commodity `j` under this worker's mirror.
    #[must_use]
    pub fn admitted(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        self.state.admitted(ext, j)
    }

    /// Latest per-commodity `(admitted, utility)` forecasts heard over
    /// the wire (the worker's own entries included).
    #[must_use]
    pub fn forecast_view(&self) -> (&[f64], &[f64]) {
        (&self.admitted_view, &self.utility_view)
    }

    /// Is `peer` currently degraded to suspect?
    #[must_use]
    pub fn is_suspect(&self, peer: usize) -> bool {
        self.suspect[peer]
    }

    /// Are *all* peers suspect (the recovery-trigger condition)?
    #[must_use]
    pub fn is_isolated(&self) -> bool {
        self.regions > 1
            && (0..self.regions)
                .filter(|&p| p != self.region)
                .all(|p| self.suspect[p])
    }

    /// Digest of the mirror's routing fractions (test/oracle hook).
    #[must_use]
    pub fn routing_digest(&mut self) -> u64 {
        self.capture_scratch();
        state_digest(self.scratch.phi())
    }

    fn capture_scratch(&mut self) {
        self.scratch.capture_state(
            &self.routing,
            &self.state,
            &self.marginals,
            self.round as usize,
            self.epsilon,
            self.eta,
            self.epoch,
        );
    }

    fn peers(&self) -> impl Iterator<Item = usize> + '_ {
        let me = self.region;
        (0..self.regions).filter(move |&p| p != me)
    }

    fn send_unreliable(&self, to: usize, payload: Payload, out: &mut Vec<(usize, Vec<u8>)>) {
        let frame = Frame {
            from: self.region as u16,
            to: to as u16,
            seq: 0,
            round: self.round,
            payload,
        };
        out.push((to, frame.encode()));
    }

    fn send_reliable(
        &mut self,
        tick: u64,
        to: usize,
        payload: Payload,
        out: &mut Vec<(usize, Vec<u8>)>,
    ) {
        let seq = self.links[to].next_seq;
        self.links[to].next_seq += 1;
        let frame = Frame {
            from: self.region as u16,
            to: to as u16,
            seq,
            round: self.round,
            payload,
        };
        let bytes = frame.encode();
        self.links[to].in_flight.push_back(Flight {
            seq,
            bytes: bytes.clone(),
            attempts: 0,
            due: tick + RETRY_GRACE,
        });
        out.push((to, bytes));
    }

    /// Drives one transport tick: drains the inbox, runs the sub-round
    /// the tick's phase selects, and (on the flow phase) performs the
    /// end-of-iteration housekeeping — retransmits, suspicion checks,
    /// and the round advance.
    #[allow(clippy::too_many_arguments)]
    pub fn run_phase(
        &mut self,
        ext: &ExtendedNetwork,
        cost: &CostModel,
        gradient: &GradientConfig,
        suspect_after: u64,
        backoff_cap: u64,
        tick: u64,
        inbox: Vec<Vec<u8>>,
        out: &mut Vec<(usize, Vec<u8>)>,
        log: &mut Vec<MeshIncident>,
    ) {
        self.process_inbox(tick, inbox, out, log);
        match tick % 3 {
            0 => self.phase_marginals(ext, cost, out),
            1 => self.phase_gamma(ext, cost, gradient, tick, out, log),
            _ => {
                self.phase_flows(ext, out);
                self.retransmit(tick, backoff_cap, out, log);
                self.check_suspects(tick, suspect_after, log);
                self.round += 1;
            }
        }
    }

    /// Phase 0: refresh the full-mirror marginal sweep and broadcast
    /// the owned nodes' entries.
    fn phase_marginals(
        &mut self,
        ext: &ExtendedNetwork,
        cost: &CostModel,
        out: &mut Vec<(usize, Vec<u8>)>,
    ) {
        compute_marginals_into(
            ext,
            cost,
            &self.routing,
            &self.state,
            &mut self.marginals,
            None,
        );
        if self.regions == 1 {
            return;
        }
        let mut entries = Vec::new();
        for j in ext.commodity_ids() {
            for v in 0..self.v_count {
                if self.owns_node(v) {
                    entries.push(MarginalEntry {
                        j: j.index() as u32,
                        v: v as u32,
                        d: self.marginals.node(j, spn_graph::NodeId::from_index(v)),
                    });
                }
            }
        }
        for peer in 0..self.regions {
            if peer != self.region {
                self.send_unreliable(peer, Payload::Marginals(entries.clone()), out);
            }
        }
    }

    /// Phase 1: blocking tags plus the Γ update restricted to owned
    /// routers; broadcast the owned rows on the reliable stream.
    fn phase_gamma(
        &mut self,
        ext: &ExtendedNetwork,
        cost: &CostModel,
        gradient: &GradientConfig,
        tick: u64,
        out: &mut Vec<(usize, Vec<u8>)>,
        _log: &mut Vec<MeshIncident>,
    ) {
        if gradient.use_blocked_sets {
            compute_tags_into(
                ext,
                cost,
                &self.routing,
                &self.state,
                &self.marginals,
                gradient.eta,
                gradient.traffic_floor,
                &mut self.tags,
                None,
            );
        } else {
            self.tags.reset(ext);
        }
        let (region, v_count, regions) = (self.region, self.v_count, self.regions);
        self.last_gamma = apply_gamma_selective(
            ext,
            cost,
            &mut self.routing,
            &self.state,
            &self.marginals,
            &self.tags,
            gradient.eta,
            gradient.traffic_floor,
            gradient.opening_fraction,
            gradient.shift_cap,
            |_, v| owner_of(v.index(), v_count, regions) == region,
        );
        // own rows advance their round guard locally
        let mut rows = Vec::new();
        for j in ext.commodity_ids() {
            for &v in ext.commodity_routers(j) {
                if !self.owns_node(v.index()) {
                    continue;
                }
                self.row_round[j.index() * self.v_count + v.index()] = self.round + 1;
                let edges: Vec<(u32, f64)> = ext
                    .commodity_out_slice(j, v)
                    .iter()
                    .map(|&l| (l.index() as u32, self.routing.fraction(j, l)))
                    .collect();
                rows.push(GammaRow {
                    j: j.index() as u32,
                    v: v.index() as u32,
                    edges,
                });
            }
        }
        for peer in self.peers().collect::<Vec<_>>() {
            self.send_reliable(tick, peer, Payload::GammaRows(rows.clone()), out);
        }
    }

    /// Phase 2: forecast flows for the merged routing decision; owners
    /// broadcast their commodities' forecasts; everyone heartbeats.
    fn phase_flows(&mut self, ext: &ExtendedNetwork, out: &mut Vec<(usize, Vec<u8>)>) {
        compute_flows_into(
            ext,
            &self.routing,
            &mut self.state,
            &mut self.workspace,
            None,
        );
        let mut entries = Vec::new();
        for j in ext.commodity_ids() {
            if self.owns_commodity(ext, j) {
                let admitted = self.state.admitted(ext, j);
                let utility = ext.commodity(j).utility.value(admitted);
                self.admitted_view[j.index()] = admitted;
                self.utility_view[j.index()] = utility;
                entries.push(ForecastEntry {
                    j: j.index() as u32,
                    admitted,
                    utility,
                });
            }
        }
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            if !entries.is_empty() {
                self.send_unreliable(peer, Payload::FlowForecast(entries.clone()), out);
            }
            self.send_unreliable(peer, Payload::Heartbeat, out);
        }
    }

    fn process_inbox(
        &mut self,
        tick: u64,
        inbox: Vec<Vec<u8>>,
        out: &mut Vec<(usize, Vec<u8>)>,
        log: &mut Vec<MeshIncident>,
    ) {
        for bytes in inbox {
            // frames originate from sibling workers; decode errors are a
            // bug in this crate, not an input condition
            let frame = Frame::decode(&bytes).expect("well-formed mesh frame");
            let from = frame.from as usize;
            self.note_heard(tick, from, out, log);
            if frame.payload.kind().is_reliable() {
                self.receive_reliable(tick, frame, out, log);
            } else {
                self.receive_unreliable(tick, frame, log);
            }
        }
    }

    /// Any frame from a peer proves liveness; hearing from the first
    /// peer after total isolation starts the recovery handshake.
    fn note_heard(
        &mut self,
        tick: u64,
        from: usize,
        out: &mut Vec<(usize, Vec<u8>)>,
        log: &mut Vec<MeshIncident>,
    ) {
        self.last_heard[from] = tick;
        if !self.suspect[from] {
            return;
        }
        let was_isolated = self.is_isolated();
        self.suspect[from] = false;
        log.push(MeshIncident::PeerRecovered {
            tick,
            region: self.region,
            peer: from,
        });
        if was_isolated && self.recovering.is_none() {
            let token = tick * self.regions as u64 + self.region as u64;
            self.recovering = Some(token);
            log.push(MeshIncident::RecoveryRequested {
                tick,
                region: self.region,
                survivor: from,
                token,
            });
            self.send_reliable(tick, from, Payload::RecoveryRequest { token }, out);
        }
    }

    fn receive_reliable(
        &mut self,
        tick: u64,
        frame: Frame,
        out: &mut Vec<(usize, Vec<u8>)>,
        log: &mut Vec<MeshIncident>,
    ) {
        let from = frame.from as usize;
        let kind = frame.payload.kind();
        if frame.seq < self.links[from].recv_next {
            log.push(MeshIncident::DuplicateFrameDiscarded {
                tick,
                region: self.region,
                from,
                kind,
            });
        } else if frame.seq == self.links[from].recv_next {
            self.links[from].recv_next += 1;
            self.apply_reliable(tick, frame, out, log);
            while let Some(next) = {
                let link = &mut self.links[from];
                link.ahead.remove(&link.recv_next)
            } {
                self.links[from].recv_next += 1;
                self.apply_reliable(tick, next, out, log);
            }
        } else if self.links[from].ahead.insert(frame.seq, frame).is_some() {
            log.push(MeshIncident::DuplicateFrameDiscarded {
                tick,
                region: self.region,
                from,
                kind,
            });
        }
        let cum = self.links[from].recv_next - 1;
        self.send_unreliable(from, Payload::Ack { cum }, out);
    }

    fn apply_reliable(
        &mut self,
        tick: u64,
        frame: Frame,
        out: &mut Vec<(usize, Vec<u8>)>,
        log: &mut Vec<MeshIncident>,
    ) {
        let from = frame.from as usize;
        match frame.payload {
            Payload::GammaRows(rows) => {
                for row in rows {
                    let idx = row.j as usize * self.v_count + row.v as usize;
                    // per-row guard: only strictly newer rounds apply
                    if frame.round + 1 > self.row_round[idx] {
                        self.row_round[idx] = frame.round + 1;
                        let j = CommodityId::from_index(row.j as usize);
                        for (edge, fraction) in row.edges {
                            self.routing.set_fraction(
                                j,
                                EdgeId::from_index(edge as usize),
                                fraction,
                            );
                        }
                    } else {
                        log.push(MeshIncident::StaleFrameDiscarded {
                            tick,
                            region: self.region,
                            from,
                            kind: FrameKind::GammaRows,
                            round: frame.round,
                        });
                    }
                }
            }
            Payload::RecoveryRequest { token } => {
                self.capture_scratch();
                let digest = state_digest(self.scratch.phi());
                let payload = snapshot_to_payload(&self.scratch, token);
                log.push(MeshIncident::RecoveryServed {
                    tick,
                    region: self.region,
                    peer: from,
                    token,
                    digest,
                });
                self.send_reliable(tick, from, Payload::RecoveryState(Box::new(payload)), out);
            }
            Payload::RecoveryState(payload) => {
                if self.recovering != Some(payload.token) {
                    log.push(MeshIncident::StaleFrameDiscarded {
                        tick,
                        region: self.region,
                        from,
                        kind: FrameKind::RecoveryState,
                        round: frame.round,
                    });
                    return;
                }
                let snapshot = payload_to_snapshot(&payload);
                match snapshot.apply_state(
                    &mut self.routing,
                    &mut self.state,
                    &mut self.marginals,
                    self.epoch,
                ) {
                    Ok(_) => {
                        // fence out every in-flight row at or before the
                        // snapshot round; strictly newer rounds re-apply
                        self.row_round.fill(frame.round + 1);
                        self.recovering = None;
                        self.capture_scratch();
                        let digest = state_digest(self.scratch.phi());
                        log.push(MeshIncident::RecoveryCompleted {
                            tick,
                            region: self.region,
                            epoch: snapshot.epoch(),
                            digest,
                        });
                    }
                    Err(_) => log.push(MeshIncident::StaleFrameDiscarded {
                        tick,
                        region: self.region,
                        from,
                        kind: FrameKind::RecoveryState,
                        round: frame.round,
                    }),
                }
            }
            _ => unreachable!("unreliable payload on the reliable path"),
        }
    }

    fn receive_unreliable(&mut self, tick: u64, frame: Frame, log: &mut Vec<MeshIncident>) {
        let from = frame.from as usize;
        match frame.payload {
            Payload::Heartbeat => {}
            Payload::Ack { cum } => {
                let link = &mut self.links[from];
                while matches!(link.in_flight.front(), Some(f) if f.seq <= cum) {
                    link.in_flight.pop_front();
                }
            }
            Payload::Marginals(entries) => {
                let wm = self.links[from].wm_marginals;
                if frame.round >= wm {
                    self.links[from].wm_marginals = frame.round + 1;
                    for e in entries {
                        self.marginals.set_node(
                            CommodityId::from_index(e.j as usize),
                            spn_graph::NodeId::from_index(e.v as usize),
                            e.d,
                        );
                    }
                } else {
                    log.push(Self::discard_incident(
                        tick,
                        self.region,
                        from,
                        FrameKind::Marginals,
                        frame.round,
                        wm,
                    ));
                }
            }
            Payload::FlowForecast(entries) => {
                let wm = self.links[from].wm_forecast;
                if frame.round >= wm {
                    self.links[from].wm_forecast = frame.round + 1;
                    for e in entries {
                        self.admitted_view[e.j as usize] = e.admitted;
                        self.utility_view[e.j as usize] = e.utility;
                    }
                } else {
                    log.push(Self::discard_incident(
                        tick,
                        self.region,
                        from,
                        FrameKind::FlowForecast,
                        frame.round,
                        wm,
                    ));
                }
            }
            _ => unreachable!("reliable payload on the unreliable path"),
        }
    }

    /// A below-watermark broadcast is a *duplicate* if it is exactly the
    /// last accepted round and *stale* if older still.
    fn discard_incident(
        tick: u64,
        region: usize,
        from: usize,
        kind: FrameKind,
        round: u64,
        wm: u64,
    ) -> MeshIncident {
        if round + 1 == wm {
            MeshIncident::DuplicateFrameDiscarded {
                tick,
                region,
                from,
                kind,
            }
        } else {
            MeshIncident::StaleFrameDiscarded {
                tick,
                region,
                from,
                kind,
                round,
            }
        }
    }

    /// Retransmits overdue unacked reliable frames under capped
    /// exponential backoff.
    fn retransmit(
        &mut self,
        tick: u64,
        backoff_cap: u64,
        out: &mut Vec<(usize, Vec<u8>)>,
        log: &mut Vec<MeshIncident>,
    ) {
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            let link = &mut self.links[peer];
            for flight in &mut link.in_flight {
                if flight.due > tick {
                    continue;
                }
                flight.attempts += 1;
                let backoff = 1u64
                    .checked_shl(flight.attempts)
                    .unwrap_or(backoff_cap)
                    .min(backoff_cap);
                flight.due = tick + RETRY_GRACE + backoff;
                log.push(MeshIncident::Retransmitted {
                    tick,
                    from: self.region,
                    to: peer,
                    seq: flight.seq,
                    attempt: flight.attempts,
                });
                out.push((peer, flight.bytes.clone()));
            }
        }
    }

    /// Degrades peers silent beyond the suspect window; iteration
    /// continues on their last-known Γ rows rather than stalling.
    fn check_suspects(&mut self, tick: u64, suspect_after: u64, log: &mut Vec<MeshIncident>) {
        for peer in 0..self.regions {
            if peer == self.region || self.suspect[peer] {
                continue;
            }
            if tick.saturating_sub(self.last_heard[peer]) > suspect_after {
                self.suspect[peer] = true;
                log.push(MeshIncident::PeerSuspect {
                    tick,
                    region: self.region,
                    peer,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_ranges_are_contiguous_and_cover() {
        for regions in 1..=5 {
            for v_count in [1usize, 2, 7, 16, 33] {
                if regions > v_count {
                    continue;
                }
                let owners: Vec<usize> = (0..v_count)
                    .map(|v| owner_of(v, v_count, regions))
                    .collect();
                assert_eq!(owners[0], 0);
                assert_eq!(owners[v_count - 1], regions - 1);
                for w in owners.windows(2) {
                    assert!(
                        w[1] == w[0] || w[1] == w[0] + 1,
                        "non-contiguous: {owners:?}"
                    );
                }
                for r in 0..regions {
                    assert!(owners.contains(&r), "region {r} owns nothing: {owners:?}");
                }
            }
        }
    }
}
