//! One region's share of the mesh: a full state mirror, the sweep
//! phases over it, and the reliability machinery that keeps the mirror
//! honest under a faulty transport.
//!
//! Every worker mirrors the complete `(routing, flows, marginals)`
//! state but *owns* only its node range: Γ updates for owned routers
//! are computed locally and broadcast as serialized rows; peer rows
//! arrive over the wire and are merged in. Under a lossless transport
//! each worker's redundant full-mirror sweeps are bit-identical to
//! every peer's, so the merged trajectory is bit-identical to the
//! monolithic `GradientAlgorithm` (ARCHITECTURE invariant 19).
//!
//! The send path is **delta-encoded, coalesced, and pooled**
//! (ARCHITECTURE invariant 20): per link, the worker fingerprints the
//! exact bit pattern of every row it last shipped and sends only rows
//! whose bits changed, inside exactly one [`FrameBuf`] batch per
//! (link, tick), with every buffer (batches, flights, scratch) owned
//! by the worker and reused across ticks — the converged steady state
//! sends a heartbeat-only batch per iteration and allocates nothing.
//! A periodic full refresh (`refresh_every` rounds) re-anchors every
//! delta chain, and a receiver that detects a broadcast round gap asks
//! the sender for full frames ([`Payload::Resend`]). Suppression never
//! changes what a receiver ends up holding — only whether the bytes
//! travel: a suppressed row is bitwise what the receiver already has.
//!
//! Reliability, per peer link:
//!
//! * **Reliable stream** (Γ rows, recovery frames): sequence numbers
//!   starting at 1, cumulative acks (one per link per tick), in-order
//!   delivery with an ahead-buffer, and retransmit under capped
//!   exponential backoff.
//! * **Watermarked broadcasts** (marginals, forecasts): a per-kind
//!   round watermark accepts only strictly newer rounds; duplicates
//!   and stale frames are logged and discarded, never applied twice.
//!   Each broadcast names its predecessor's round (`base`), so a
//!   receiver spots link-local loss and requests a resync.
//! * **Per-row round guards**: a Γ row is applied only if its round is
//!   newer than the row's last applied round, so late retransmits
//!   flushed after a recovery cannot regress restored state.
//! * **Heartbeats & suspicion**: a peer silent for longer than the
//!   suspect window is degraded to suspect — its rows simply stop
//!   updating (last-known Γ) and iteration continues. When *all*
//!   peers are suspect the worker is isolated; the first peer heard
//!   from again triggers the epoch-fenced recovery handshake.

use crate::incident::MeshIncident;
use crate::recovery::{payload_to_snapshot, snapshot_to_payload, state_digest};
use crate::transport::Inbox;
use crate::wire::{
    parse_ack, parse_recovery_request, parse_recovery_state, parse_resend, walk_forecast,
    walk_gamma_rows, walk_marginals, BatchReader, FrameBuf, FrameKind, Payload, SubView,
    RESEND_FORECAST, RESEND_MARGINALS,
};
use spn_core::blocked::{compute_tags_into, BlockedTags};
use spn_core::flows::compute_flows_into;
use spn_core::gamma::{apply_gamma_selective_scratch, GammaScratch, GammaStats};
use spn_core::marginals::compute_marginals_into;
use spn_core::{
    Checkpoint, CostModel, FlowState, GradientConfig, IterationWorkspace, Marginals, RoutingTable,
};
use spn_graph::{EdgeId, NodeId};
use spn_model::CommodityId;
use spn_transform::ExtendedNetwork;
use std::collections::{BTreeMap, VecDeque};

/// Which region owns extended node `v` of `v_count`, splitting the node
/// index space into `regions` contiguous ranges.
#[must_use]
pub fn owner_of(v_index: usize, v_count: usize, regions: usize) -> usize {
    debug_assert!(regions >= 1 && v_index < v_count);
    (v_index * regions / v_count).min(regions - 1)
}

/// Ticks after a send before the first retransmit check may fire: the
/// ack round trip is two ticks, plus slack so a lossless mesh never
/// retransmits.
const RETRY_GRACE: u64 = 4;

/// Fingerprint sentinel meaning "never shipped": `u64::MAX` is a NaN
/// bit pattern, which no finite row value can equal.
const NEVER_SENT: u64 = u64::MAX;

/// Per-link wire telemetry, counted at the sender's batch finish and
/// the receiver's inbox drain. Deterministic: two same-seed runs count
/// identical values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkWireStats {
    /// Batch frames shipped on this link.
    pub frames_sent: u64,
    /// Total frame bytes shipped (headers included).
    pub bytes_sent: u64,
    /// Sub-frames shipped inside those batches.
    pub subs_sent: u64,
    /// Marginal entries + Γ rows + forecast entries shipped.
    pub rows_sent: u64,
    /// Rows whose bits matched the link fingerprint and were *not*
    /// shipped (the delta win).
    pub rows_suppressed: u64,
    /// Batch frames received from this peer.
    pub frames_received: u64,
    /// Frame bytes received from this peer.
    pub bytes_received: u64,
    /// Broadcast round gaps detected on this link (resend requests
    /// issued to the peer).
    pub resyncs_requested: u64,
}

/// Wire telemetry aggregated over links (see
/// [`RegionWorker::wire_stats`]) or over a whole mesh
/// (`MeshReport::wire`). Send-side counters plus the resync count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeshWireStats {
    /// Batch frames shipped.
    pub frames: u64,
    /// Total frame bytes shipped.
    pub bytes: u64,
    /// Sub-frames shipped.
    pub subs: u64,
    /// Rows shipped.
    pub rows_sent: u64,
    /// Rows suppressed by delta fingerprints.
    pub rows_suppressed: u64,
    /// Broadcast round gaps detected (resend requests issued).
    pub resyncs: u64,
}

impl MeshWireStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: MeshWireStats) {
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.subs += other.subs;
        self.rows_sent += other.rows_sent;
        self.rows_suppressed += other.rows_suppressed;
        self.resyncs += other.resyncs;
    }
}

/// An unacked reliable sub-frame awaiting retransmission. Its byte
/// buffer is recycled through the link's spare pool on ack.
struct Flight {
    seq: u64,
    /// Encoded sub-frame bytes (sub header + payload).
    bytes: Vec<u8>,
    /// Retransmit attempts so far (0 = never retransmitted).
    attempts: u32,
    /// Tick at which the next retransmit check fires.
    due: u64,
}

/// An out-of-order reliable sub-frame buffered until its gap fills
/// (chaos-only; the copy is the one allocating receive path).
struct AheadSub {
    kind: FrameKind,
    round: u64,
    payload: Vec<u8>,
}

/// Per-peer link state: the reliable stream in both directions, the
/// broadcast watermarks, and the delta fingerprints of everything last
/// shipped to that peer.
struct Link {
    /// Next sequence number to assign (reliable sends; starts at 1).
    next_seq: u64,
    /// Sent-but-unacked reliable sub-frames, in seq order.
    in_flight: VecDeque<Flight>,
    /// Recycled flight buffers (capacity retained).
    spare: Vec<Vec<u8>>,
    /// Next reliable seq expected from the peer.
    recv_next: u64,
    /// Out-of-order reliable sub-frames buffered until the gap fills.
    ahead: BTreeMap<u64, AheadSub>,
    /// Round watermark per broadcast kind: next acceptable round.
    wm_marginals: u64,
    wm_forecast: u64,
    /// Bit fingerprint of the last marginal shipped per (j, v) slot
    /// (only owned slots are used).
    marg_sent: Vec<u64>,
    /// Round of the last marginals frame shipped (the next delta's
    /// `base`).
    marg_round: u64,
    /// Bit fingerprint of the last Γ fraction shipped per (j, edge).
    gamma_sent: Vec<u64>,
    /// Round of the last Γ frame shipped.
    gamma_round: u64,
    /// Bit fingerprints of the last forecast shipped per commodity.
    fc_sent: Vec<(u64, u64)>,
    /// Round of the last forecast frame shipped.
    fc_round: u64,
    /// Peer requested full frames (a received [`Payload::Resend`]).
    force_marginals: bool,
    force_forecast: bool,
    /// Resend bits to ship to this peer this tick (gaps detected while
    /// draining the inbox).
    want_resend: u8,
    /// A reliable sub arrived this tick; emit one cumulative ack.
    ack_pending: bool,
    stats: LinkWireStats,
}

impl Link {
    fn new(j_count: usize, v_count: usize, edge_count: usize) -> Self {
        Link {
            next_seq: 1,
            in_flight: VecDeque::new(),
            spare: Vec::new(),
            recv_next: 1,
            ahead: BTreeMap::new(),
            wm_marginals: 0,
            wm_forecast: 0,
            marg_sent: vec![NEVER_SENT; j_count * v_count],
            marg_round: 0,
            gamma_sent: vec![NEVER_SENT; j_count * edge_count],
            gamma_round: 0,
            fc_sent: vec![(NEVER_SENT, NEVER_SENT); j_count],
            fc_round: 0,
            force_marginals: false,
            force_forecast: false,
            want_resend: 0,
            ack_pending: false,
            stats: LinkWireStats::default(),
        }
    }
}

/// One region worker: full mirror, owned node range, link states.
pub struct RegionWorker {
    region: usize,
    regions: usize,
    v_count: usize,
    edge_count: usize,
    /// Owned node range `[owned_lo, owned_hi)` (ownership is
    /// contiguous by construction of [`owner_of`]).
    owned_lo: usize,
    owned_hi: usize,
    /// Full-refresh cadence in rounds (re-anchors every delta chain).
    refresh_every: u64,
    /// Mirror of the full trajectory state.
    routing: RoutingTable,
    state: FlowState,
    marginals: Marginals,
    workspace: IterationWorkspace,
    tags: BlockedTags,
    /// Iteration counter (advances after the flow phase).
    round: u64,
    /// Commodity-set epoch (the checkpoint fence; constant here — the
    /// mesh does not reshape commodities mid-run).
    epoch: u64,
    /// `ε` and `η` as constructed (the mesh never anneals, so these are
    /// the values every snapshot carries).
    epsilon: f64,
    eta: f64,
    /// Γ statistics of the worker's own rows, last iteration.
    last_gamma: GammaStats,
    /// Per-peer link state (`links[region]` is unused).
    links: Vec<Link>,
    /// One batch writer per peer, reused across ticks
    /// (`outbox[region]` is unused).
    outbox: Vec<FrameBuf>,
    /// Per-(commodity, node) round guard: next acceptable row round.
    row_round: Vec<u64>,
    /// Last tick any frame arrived from each peer.
    last_heard: Vec<u64>,
    suspect: Vec<bool>,
    /// Outstanding recovery token, if this worker is rejoining.
    recovering: Option<u64>,
    /// Latest per-commodity forecasts heard (own entries included).
    admitted_view: Vec<f64>,
    utility_view: Vec<f64>,
    /// Owned forecast entries of the current flow phase, reused.
    fc_scratch: Vec<(u32, f64, f64)>,
    /// Γ row-staging buffers, reused across ticks (the per-tick Γ phase
    /// must not allocate once warm).
    gamma_scratch: GammaScratch,
    /// Snapshot scratch, reused across captures.
    scratch: Checkpoint,
}

impl RegionWorker {
    /// Builds worker `region` of `regions` with the same initial mirror
    /// as `GradientAlgorithm::from_extended`: fully-rejecting routing,
    /// its flows, and its marginals.
    #[must_use]
    pub fn new(
        ext: &ExtendedNetwork,
        cost: &CostModel,
        gradient: &GradientConfig,
        region: usize,
        regions: usize,
        refresh_every: u64,
    ) -> Self {
        let v_count = ext.graph().node_count();
        let edge_count = ext.graph().edge_count();
        let j_count = ext.num_commodities();
        let routing = RoutingTable::initial(ext);
        let mut workspace = IterationWorkspace::new(ext);
        let mut state = FlowState::zeros(ext);
        compute_flows_into(ext, &routing, &mut state, &mut workspace, None);
        let mut marginals = Marginals::zeros(ext);
        compute_marginals_into(ext, cost, &routing, &state, &mut marginals, None);
        let tags = BlockedTags::none(ext);
        let owned_lo = (0..v_count)
            .find(|&v| owner_of(v, v_count, regions) == region)
            .expect("every region owns at least one node");
        let owned_hi = (owned_lo..v_count)
            .take_while(|&v| owner_of(v, v_count, regions) == region)
            .last()
            .expect("range starts owned")
            + 1;
        RegionWorker {
            region,
            regions,
            v_count,
            edge_count,
            owned_lo,
            owned_hi,
            refresh_every: refresh_every.max(1),
            routing,
            state,
            marginals,
            workspace,
            tags,
            round: 0,
            epoch: 0,
            epsilon: cost.epsilon,
            eta: gradient.eta,
            last_gamma: GammaStats::default(),
            links: (0..regions)
                .map(|_| Link::new(j_count, v_count, edge_count))
                .collect(),
            outbox: (0..regions).map(|_| FrameBuf::new()).collect(),
            row_round: vec![0; j_count * v_count],
            last_heard: vec![0; regions],
            suspect: vec![false; regions],
            recovering: None,
            admitted_view: vec![0.0; j_count],
            utility_view: vec![0.0; j_count],
            fc_scratch: Vec::new(),
            gamma_scratch: GammaScratch::default(),
            scratch: Checkpoint::new(),
        }
    }

    /// This worker's region index.
    #[must_use]
    pub fn region(&self) -> usize {
        self.region
    }

    /// Does this worker own extended node `v_index`?
    #[must_use]
    pub fn owns_node(&self, v_index: usize) -> bool {
        (self.owned_lo..self.owned_hi).contains(&v_index)
    }

    /// Does this worker own commodity `j` (i.e. its dummy source)?
    #[must_use]
    pub fn owns_commodity(&self, ext: &ExtendedNetwork, j: CommodityId) -> bool {
        self.owns_node(ext.dummy_source(j).index())
    }

    /// The mirror's routing table.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The mirror's flow state.
    #[must_use]
    pub fn flows(&self) -> &FlowState {
        &self.state
    }

    /// The mirror's marginal costs.
    #[must_use]
    pub fn marginals(&self) -> &Marginals {
        &self.marginals
    }

    /// Γ statistics of this worker's own rows, last iteration.
    #[must_use]
    pub fn gamma_stats(&self) -> GammaStats {
        self.last_gamma
    }

    /// Admitted rate of commodity `j` under this worker's mirror.
    #[must_use]
    pub fn admitted(&self, ext: &ExtendedNetwork, j: CommodityId) -> f64 {
        self.state.admitted(ext, j)
    }

    /// Latest per-commodity `(admitted, utility)` forecasts heard over
    /// the wire (the worker's own entries included).
    #[must_use]
    pub fn forecast_view(&self) -> (&[f64], &[f64]) {
        (&self.admitted_view, &self.utility_view)
    }

    /// Is `peer` currently degraded to suspect?
    #[must_use]
    pub fn is_suspect(&self, peer: usize) -> bool {
        self.suspect[peer]
    }

    /// Are *all* peers suspect (the recovery-trigger condition)?
    #[must_use]
    pub fn is_isolated(&self) -> bool {
        self.regions > 1
            && (0..self.regions)
                .filter(|&p| p != self.region)
                .all(|p| self.suspect[p])
    }

    /// Wire telemetry for the link to `peer` (zeros for `peer ==
    /// region()`).
    #[must_use]
    pub fn link_wire_stats(&self, peer: usize) -> LinkWireStats {
        self.links[peer].stats
    }

    /// Send-side wire telemetry summed over this worker's links.
    #[must_use]
    pub fn wire_stats(&self) -> MeshWireStats {
        let mut total = MeshWireStats::default();
        for link in &self.links {
            total.absorb(MeshWireStats {
                frames: link.stats.frames_sent,
                bytes: link.stats.bytes_sent,
                subs: link.stats.subs_sent,
                rows_sent: link.stats.rows_sent,
                rows_suppressed: link.stats.rows_suppressed,
                resyncs: link.stats.resyncs_requested,
            });
        }
        total
    }

    /// The batch this tick produced for `peer`, if non-empty. Valid
    /// after [`RegionWorker::run_phase`] until the next call.
    #[must_use]
    pub fn outgoing(&self, peer: usize) -> Option<&[u8]> {
        self.outbox[peer].bytes()
    }

    /// Digest of the mirror's routing fractions (test/oracle hook).
    #[must_use]
    pub fn routing_digest(&mut self) -> u64 {
        self.capture_scratch();
        state_digest(self.scratch.phi())
    }

    fn capture_scratch(&mut self) {
        self.scratch.capture_state(
            &self.routing,
            &self.state,
            &self.marginals,
            self.round as usize,
            self.epsilon,
            self.eta,
            self.epoch,
        );
    }

    /// Appends a reliable control sub-frame (recovery handshake) to
    /// `to`'s batch and enrolls it in the retransmit stream.
    fn send_reliable_control(&mut self, tick: u64, to: usize, payload: &Payload) {
        let round = self.round;
        let link = &mut self.links[to];
        let batch = &mut self.outbox[to];
        let seq = link.next_seq;
        link.next_seq += 1;
        batch.begin_sub(payload.kind(), seq, round);
        batch.put_payload(payload);
        batch.end_sub();
        let mut bytes = link.spare.pop().unwrap_or_default();
        bytes.clear();
        bytes.extend_from_slice(batch.last_sub());
        link.in_flight.push_back(Flight {
            seq,
            bytes,
            attempts: 0,
            due: tick + RETRY_GRACE,
        });
    }

    /// Drives one transport tick: opens this tick's per-link batches,
    /// drains the inbox, runs the sub-round the tick's phase selects,
    /// and (on the flow phase) performs the end-of-iteration
    /// housekeeping — retransmits, suspicion checks, and the round
    /// advance. The runtime then ships each non-empty batch via
    /// [`RegionWorker::outgoing`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_phase(
        &mut self,
        ext: &ExtendedNetwork,
        cost: &CostModel,
        gradient: &GradientConfig,
        suspect_after: u64,
        backoff_cap: u64,
        tick: u64,
        inbox: &Inbox,
        log: &mut Vec<MeshIncident>,
    ) {
        let (region, round) = (self.region as u16, self.round);
        for peer in 0..self.regions {
            if peer != self.region {
                self.outbox[peer].begin(region, peer as u16, round);
            }
        }
        self.process_inbox(tick, inbox, log);
        self.flush_control();
        match tick % 3 {
            0 => self.phase_marginals(ext, cost),
            1 => self.phase_gamma(ext, cost, gradient, tick),
            _ => {
                self.phase_flows(ext);
                self.retransmit(tick, backoff_cap, log);
                self.check_suspects(tick, suspect_after, log);
                self.round += 1;
            }
        }
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            if self.outbox[peer].finish() {
                let s = &mut self.links[peer].stats;
                s.frames_sent += 1;
                s.bytes_sent += self.outbox[peer].frame_len() as u64;
                s.subs_sent += u64::from(self.outbox[peer].sub_count());
            }
        }
    }

    /// One cumulative ack and/or resend request per link, from flags
    /// the inbox drain raised.
    fn flush_control(&mut self) {
        let round = self.round;
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            let link = &mut self.links[peer];
            let batch = &mut self.outbox[peer];
            if link.ack_pending {
                link.ack_pending = false;
                batch.begin_sub(FrameKind::Ack, 0, round);
                batch.put_u64(link.recv_next - 1);
                batch.end_sub();
            }
            if link.want_resend != 0 {
                batch.begin_sub(FrameKind::Resend, 0, round);
                batch.put_u8(link.want_resend);
                batch.end_sub();
                link.want_resend = 0;
            }
        }
    }

    /// Phase 0: refresh the full-mirror marginal sweep and ship each
    /// peer the owned entries whose bits changed since last shipped on
    /// that link (all owned entries on a refresh or forced-full round).
    fn phase_marginals(&mut self, ext: &ExtendedNetwork, cost: &CostModel) {
        compute_marginals_into(
            ext,
            cost,
            &self.routing,
            &self.state,
            &mut self.marginals,
            None,
        );
        if self.regions == 1 {
            return;
        }
        let refresh = self.round.is_multiple_of(self.refresh_every);
        let (lo, hi, v_count, round) = (self.owned_lo, self.owned_hi, self.v_count, self.round);
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            let link = &mut self.links[peer];
            let batch = &mut self.outbox[peer];
            let full = refresh || link.force_marginals;
            let mut opened = false;
            let mut count_at = 0usize;
            let mut n = 0u32;
            let mut suppressed = 0u64;
            for j in ext.commodity_ids() {
                for v in lo..hi {
                    let d = self.marginals.node(j, NodeId::from_index(v));
                    let bits = d.to_bits();
                    let idx = j.index() * v_count + v;
                    if full || link.marg_sent[idx] != bits {
                        link.marg_sent[idx] = bits;
                        if !opened {
                            batch.begin_sub(FrameKind::Marginals, 0, round);
                            batch.put_u64(if full { round } else { link.marg_round });
                            count_at = batch.mark_u32();
                            opened = true;
                        }
                        batch.put_u32(j.index() as u32);
                        batch.put_u32(v as u32);
                        batch.put_f64(d);
                        n += 1;
                    } else {
                        suppressed += 1;
                    }
                }
            }
            if opened {
                batch.patch_u32(count_at, n);
                batch.end_sub();
                link.marg_round = round;
                link.force_marginals = false;
                link.stats.rows_sent += u64::from(n);
            }
            link.stats.rows_suppressed += suppressed;
        }
    }

    /// Phase 1: blocking tags plus the Γ update restricted to owned
    /// routers; ship each peer the owned rows whose fraction bits
    /// changed, on the reliable stream (all owned rows on a refresh
    /// round — the backstop that bounds post-recovery divergence).
    fn phase_gamma(
        &mut self,
        ext: &ExtendedNetwork,
        cost: &CostModel,
        gradient: &GradientConfig,
        tick: u64,
    ) {
        if gradient.use_blocked_sets {
            compute_tags_into(
                ext,
                cost,
                &self.routing,
                &self.state,
                &self.marginals,
                gradient.eta,
                gradient.traffic_floor,
                &mut self.tags,
                None,
            );
        } else {
            self.tags.reset(ext);
        }
        let (region, v_count, regions) = (self.region, self.v_count, self.regions);
        self.last_gamma = apply_gamma_selective_scratch(
            ext,
            cost,
            &mut self.routing,
            &self.state,
            &self.marginals,
            &self.tags,
            gradient.eta,
            gradient.traffic_floor,
            gradient.opening_fraction,
            gradient.shift_cap,
            |_, v| owner_of(v.index(), v_count, regions) == region,
            &mut self.gamma_scratch,
        );
        let (lo, hi, edge_count, round) =
            (self.owned_lo, self.owned_hi, self.edge_count, self.round);
        // own rows advance their round guard locally
        for j in ext.commodity_ids() {
            for &v in ext.commodity_routers(j) {
                if (lo..hi).contains(&v.index()) {
                    self.row_round[j.index() * v_count + v.index()] = round + 1;
                }
            }
        }
        if self.regions == 1 {
            return;
        }
        let refresh = round % self.refresh_every == 0;
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            let link = &mut self.links[peer];
            let batch = &mut self.outbox[peer];
            let mut opened = false;
            let mut count_at = 0usize;
            let mut n = 0u32;
            let mut suppressed = 0u64;
            let mut seq = 0u64;
            for j in ext.commodity_ids() {
                for &v in ext.commodity_routers(j) {
                    if !(lo..hi).contains(&v.index()) {
                        continue;
                    }
                    let out = ext.commodity_out_slice(j, v);
                    let changed = refresh
                        || out.iter().any(|&l| {
                            link.gamma_sent[j.index() * edge_count + l.index()]
                                != self.routing.fraction(j, l).to_bits()
                        });
                    if !changed {
                        suppressed += 1;
                        continue;
                    }
                    if !opened {
                        seq = link.next_seq;
                        link.next_seq += 1;
                        batch.begin_sub(FrameKind::GammaRows, seq, round);
                        batch.put_u64(if refresh { round } else { link.gamma_round });
                        count_at = batch.mark_u32();
                        opened = true;
                    }
                    batch.put_u32(j.index() as u32);
                    batch.put_u32(v.index() as u32);
                    batch.put_u32(out.len() as u32);
                    for &l in out {
                        let phi = self.routing.fraction(j, l);
                        link.gamma_sent[j.index() * edge_count + l.index()] = phi.to_bits();
                        batch.put_u32(l.index() as u32);
                        batch.put_f64(phi);
                    }
                    n += 1;
                }
            }
            if opened {
                batch.patch_u32(count_at, n);
                batch.end_sub();
                link.gamma_round = round;
                link.stats.rows_sent += u64::from(n);
                // pooled flight copy for the retransmit stream
                let mut bytes = link.spare.pop().unwrap_or_default();
                bytes.clear();
                bytes.extend_from_slice(batch.last_sub());
                link.in_flight.push_back(Flight {
                    seq,
                    bytes,
                    attempts: 0,
                    due: tick + RETRY_GRACE,
                });
            }
            link.stats.rows_suppressed += suppressed;
        }
    }

    /// Phase 2: forecast flows for the merged routing decision; owners
    /// ship their commodities' changed forecasts; everyone heartbeats
    /// (the heartbeat keeps every phase-2 batch non-empty, so liveness
    /// never depends on data changing).
    fn phase_flows(&mut self, ext: &ExtendedNetwork) {
        compute_flows_into(
            ext,
            &self.routing,
            &mut self.state,
            &mut self.workspace,
            None,
        );
        self.fc_scratch.clear();
        for j in ext.commodity_ids() {
            if self.owns_commodity(ext, j) {
                let admitted = self.state.admitted(ext, j);
                let utility = ext.commodity(j).utility.value(admitted);
                self.admitted_view[j.index()] = admitted;
                self.utility_view[j.index()] = utility;
                self.fc_scratch.push((j.index() as u32, admitted, utility));
            }
        }
        if self.regions == 1 {
            return;
        }
        let refresh = self.round.is_multiple_of(self.refresh_every);
        let round = self.round;
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            let link = &mut self.links[peer];
            let batch = &mut self.outbox[peer];
            let full = refresh || link.force_forecast;
            let mut opened = false;
            let mut count_at = 0usize;
            let mut n = 0u32;
            let mut suppressed = 0u64;
            for &(j, admitted, utility) in &self.fc_scratch {
                let bits = (admitted.to_bits(), utility.to_bits());
                if full || link.fc_sent[j as usize] != bits {
                    link.fc_sent[j as usize] = bits;
                    if !opened {
                        batch.begin_sub(FrameKind::FlowForecast, 0, round);
                        batch.put_u64(if full { round } else { link.fc_round });
                        count_at = batch.mark_u32();
                        opened = true;
                    }
                    batch.put_u32(j);
                    batch.put_f64(admitted);
                    batch.put_f64(utility);
                    n += 1;
                } else {
                    suppressed += 1;
                }
            }
            if opened {
                batch.patch_u32(count_at, n);
                batch.end_sub();
                link.fc_round = round;
                link.force_forecast = false;
                link.stats.rows_sent += u64::from(n);
            }
            link.stats.rows_suppressed += suppressed;
            batch.begin_sub(FrameKind::Heartbeat, 0, round);
            batch.end_sub();
        }
    }

    fn process_inbox(&mut self, tick: u64, inbox: &Inbox, log: &mut Vec<MeshIncident>) {
        for bytes in inbox.iter() {
            // frames normally originate from sibling workers, but over a
            // real socket a desync or corruption must not take the node
            // down: discard the frame, log the incident, keep iterating
            // (the reliable layer retransmits, deltas re-anchor via the
            // periodic refresh / resync request)
            let mut reader = match BatchReader::parse(bytes) {
                Ok(reader) => reader,
                Err(e) => {
                    log.push(MeshIncident::MalformedFrameDiscarded {
                        tick,
                        region: self.region,
                        error: e.to_string(),
                    });
                    continue;
                }
            };
            let from = reader.from() as usize;
            {
                let s = &mut self.links[from].stats;
                s.frames_received += 1;
                s.bytes_received += bytes.len() as u64;
            }
            self.note_heard(tick, from, log);
            while let Some(sub) = reader.next_sub() {
                let sub = match sub {
                    Ok(sub) => sub,
                    Err(e) => {
                        log.push(MeshIncident::MalformedFrameDiscarded {
                            tick,
                            region: self.region,
                            error: e.to_string(),
                        });
                        break;
                    }
                };
                if sub.kind.is_reliable() {
                    self.receive_reliable(tick, from, &sub, log);
                } else {
                    self.receive_unreliable(tick, from, &sub, log);
                }
            }
        }
    }

    /// Any frame from a peer proves liveness; hearing from the first
    /// peer after total isolation starts the recovery handshake.
    fn note_heard(&mut self, tick: u64, from: usize, log: &mut Vec<MeshIncident>) {
        self.last_heard[from] = tick;
        if !self.suspect[from] {
            return;
        }
        let was_isolated = self.is_isolated();
        self.suspect[from] = false;
        log.push(MeshIncident::PeerRecovered {
            tick,
            region: self.region,
            peer: from,
        });
        if was_isolated && self.recovering.is_none() {
            let token = tick * self.regions as u64 + self.region as u64;
            self.recovering = Some(token);
            log.push(MeshIncident::RecoveryRequested {
                tick,
                region: self.region,
                survivor: from,
                token,
            });
            self.send_reliable_control(tick, from, &Payload::RecoveryRequest { token });
        }
    }

    fn receive_reliable(
        &mut self,
        tick: u64,
        from: usize,
        sub: &SubView<'_>,
        log: &mut Vec<MeshIncident>,
    ) {
        let link = &mut self.links[from];
        link.ack_pending = true;
        if sub.seq < link.recv_next {
            log.push(MeshIncident::DuplicateFrameDiscarded {
                tick,
                region: self.region,
                from,
                kind: sub.kind,
            });
        } else if sub.seq == link.recv_next {
            link.recv_next += 1;
            self.apply_reliable(tick, from, sub.kind, sub.round, sub.payload, log);
            loop {
                let link = &mut self.links[from];
                let next_seq = link.recv_next;
                let Some(next) = link.ahead.remove(&next_seq) else {
                    break;
                };
                link.recv_next += 1;
                self.apply_reliable(tick, from, next.kind, next.round, &next.payload, log);
            }
        } else if link
            .ahead
            .insert(
                sub.seq,
                AheadSub {
                    kind: sub.kind,
                    round: sub.round,
                    payload: sub.payload.to_vec(),
                },
            )
            .is_some()
        {
            log.push(MeshIncident::DuplicateFrameDiscarded {
                tick,
                region: self.region,
                from,
                kind: sub.kind,
            });
        }
    }

    fn apply_reliable(
        &mut self,
        tick: u64,
        from: usize,
        kind: FrameKind,
        round: u64,
        payload: &[u8],
        log: &mut Vec<MeshIncident>,
    ) {
        match kind {
            FrameKind::GammaRows => {
                let v_count = self.v_count;
                let row_round = &mut self.row_round;
                let routing = &mut self.routing;
                let mut stale = 0u64;
                walk_gamma_rows(
                    payload,
                    |j, v| {
                        let idx = j as usize * v_count + v as usize;
                        // per-row guard: only strictly newer rounds apply
                        if round + 1 > row_round[idx] {
                            row_round[idx] = round + 1;
                            true
                        } else {
                            stale += 1;
                            false
                        }
                    },
                    |j, _v, l, phi| {
                        routing.set_fraction(
                            CommodityId::from_index(j as usize),
                            EdgeId::from_index(l as usize),
                            phi,
                        );
                    },
                )
                .expect("well-formed gamma payload");
                for _ in 0..stale {
                    log.push(MeshIncident::StaleFrameDiscarded {
                        tick,
                        region: self.region,
                        from,
                        kind: FrameKind::GammaRows,
                        round,
                    });
                }
            }
            FrameKind::RecoveryRequest => {
                let token = parse_recovery_request(payload).expect("well-formed recovery request");
                self.capture_scratch();
                let digest = state_digest(self.scratch.phi());
                let snapshot = snapshot_to_payload(&self.scratch, token);
                log.push(MeshIncident::RecoveryServed {
                    tick,
                    region: self.region,
                    peer: from,
                    token,
                    digest,
                });
                self.send_reliable_control(tick, from, &Payload::RecoveryState(Box::new(snapshot)));
            }
            FrameKind::RecoveryState => {
                let payload = parse_recovery_state(payload).expect("well-formed recovery state");
                if self.recovering != Some(payload.token) {
                    log.push(MeshIncident::StaleFrameDiscarded {
                        tick,
                        region: self.region,
                        from,
                        kind: FrameKind::RecoveryState,
                        round,
                    });
                    return;
                }
                let snapshot = payload_to_snapshot(&payload);
                match snapshot.apply_state(
                    &mut self.routing,
                    &mut self.state,
                    &mut self.marginals,
                    self.epoch,
                ) {
                    Ok(_) => {
                        // fence out every in-flight row at or before the
                        // snapshot round; strictly newer rounds re-apply
                        self.row_round.fill(round + 1);
                        self.recovering = None;
                        // the restored mirror invalidates every delta
                        // chain this worker maintains as a *sender*:
                        // ship full frames next time on every link
                        for link in &mut self.links {
                            link.force_marginals = true;
                            link.force_forecast = true;
                            link.gamma_sent.fill(NEVER_SENT);
                        }
                        self.capture_scratch();
                        let digest = state_digest(self.scratch.phi());
                        log.push(MeshIncident::RecoveryCompleted {
                            tick,
                            region: self.region,
                            epoch: snapshot.epoch(),
                            digest,
                        });
                    }
                    Err(_) => log.push(MeshIncident::StaleFrameDiscarded {
                        tick,
                        region: self.region,
                        from,
                        kind: FrameKind::RecoveryState,
                        round,
                    }),
                }
            }
            _ => unreachable!("unreliable payload on the reliable path"),
        }
    }

    fn receive_unreliable(
        &mut self,
        tick: u64,
        from: usize,
        sub: &SubView<'_>,
        log: &mut Vec<MeshIncident>,
    ) {
        match sub.kind {
            FrameKind::Heartbeat => {}
            FrameKind::Ack => {
                let cum = parse_ack(sub.payload).expect("well-formed ack");
                let link = &mut self.links[from];
                while matches!(link.in_flight.front(), Some(f) if f.seq <= cum) {
                    let flight = link.in_flight.pop_front().expect("front checked");
                    link.spare.push(flight.bytes);
                }
            }
            FrameKind::Resend => {
                let kinds = parse_resend(sub.payload).expect("well-formed resend");
                let link = &mut self.links[from];
                if kinds & RESEND_MARGINALS != 0 {
                    link.force_marginals = true;
                }
                if kinds & RESEND_FORECAST != 0 {
                    link.force_forecast = true;
                }
            }
            FrameKind::Marginals => {
                let wm = self.links[from].wm_marginals;
                if sub.round >= wm {
                    let marginals = &mut self.marginals;
                    let base = walk_marginals(sub.payload, |e| {
                        marginals.set_node(
                            CommodityId::from_index(e.j as usize),
                            NodeId::from_index(e.v as usize),
                            e.d,
                        );
                    })
                    .expect("well-formed marginals payload");
                    let link = &mut self.links[from];
                    link.wm_marginals = sub.round + 1;
                    if base != sub.round && base + 1 != wm {
                        // a delta whose predecessor never arrived —
                        // link-local loss; ask the sender for a full frame
                        link.want_resend |= RESEND_MARGINALS;
                        link.stats.resyncs_requested += 1;
                        log.push(MeshIncident::ResyncRequested {
                            tick,
                            region: self.region,
                            peer: from,
                            kind: FrameKind::Marginals,
                        });
                    }
                } else {
                    log.push(Self::discard_incident(
                        tick,
                        self.region,
                        from,
                        FrameKind::Marginals,
                        sub.round,
                        wm,
                    ));
                }
            }
            FrameKind::FlowForecast => {
                let wm = self.links[from].wm_forecast;
                if sub.round >= wm {
                    let admitted_view = &mut self.admitted_view;
                    let utility_view = &mut self.utility_view;
                    let base = walk_forecast(sub.payload, |e| {
                        admitted_view[e.j as usize] = e.admitted;
                        utility_view[e.j as usize] = e.utility;
                    })
                    .expect("well-formed forecast payload");
                    let link = &mut self.links[from];
                    link.wm_forecast = sub.round + 1;
                    if base != sub.round && base + 1 != wm {
                        link.want_resend |= RESEND_FORECAST;
                        link.stats.resyncs_requested += 1;
                        log.push(MeshIncident::ResyncRequested {
                            tick,
                            region: self.region,
                            peer: from,
                            kind: FrameKind::FlowForecast,
                        });
                    }
                } else {
                    log.push(Self::discard_incident(
                        tick,
                        self.region,
                        from,
                        FrameKind::FlowForecast,
                        sub.round,
                        wm,
                    ));
                }
            }
            _ => unreachable!("reliable sub on the unreliable path"),
        }
    }

    /// A below-watermark broadcast is a *duplicate* if it is exactly the
    /// last accepted round and *stale* if older still.
    fn discard_incident(
        tick: u64,
        region: usize,
        from: usize,
        kind: FrameKind,
        round: u64,
        wm: u64,
    ) -> MeshIncident {
        if round + 1 == wm {
            MeshIncident::DuplicateFrameDiscarded {
                tick,
                region,
                from,
                kind,
            }
        } else {
            MeshIncident::StaleFrameDiscarded {
                tick,
                region,
                from,
                kind,
                round,
            }
        }
    }

    /// Retransmits overdue unacked reliable sub-frames under capped
    /// exponential backoff, into this tick's batches.
    fn retransmit(&mut self, tick: u64, backoff_cap: u64, log: &mut Vec<MeshIncident>) {
        for peer in 0..self.regions {
            if peer == self.region {
                continue;
            }
            let link = &mut self.links[peer];
            let batch = &mut self.outbox[peer];
            for flight in &mut link.in_flight {
                if flight.due > tick {
                    continue;
                }
                flight.attempts += 1;
                let backoff = 1u64
                    .checked_shl(flight.attempts)
                    .unwrap_or(backoff_cap)
                    .min(backoff_cap);
                flight.due = tick + RETRY_GRACE + backoff;
                log.push(MeshIncident::Retransmitted {
                    tick,
                    from: self.region,
                    to: peer,
                    seq: flight.seq,
                    attempt: flight.attempts,
                });
                batch.push_raw_sub(&flight.bytes);
            }
        }
    }

    /// Degrades peers silent beyond the suspect window; iteration
    /// continues on their last-known Γ rows rather than stalling.
    fn check_suspects(&mut self, tick: u64, suspect_after: u64, log: &mut Vec<MeshIncident>) {
        for peer in 0..self.regions {
            if peer == self.region || self.suspect[peer] {
                continue;
            }
            if tick.saturating_sub(self.last_heard[peer]) > suspect_after {
                self.suspect[peer] = true;
                log.push(MeshIncident::PeerSuspect {
                    tick,
                    region: self.region,
                    peer,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_ranges_are_contiguous_and_cover() {
        for regions in 1..=5 {
            for v_count in [1usize, 2, 7, 16, 33] {
                if regions > v_count {
                    continue;
                }
                let owners: Vec<usize> = (0..v_count)
                    .map(|v| owner_of(v, v_count, regions))
                    .collect();
                assert_eq!(owners[0], 0);
                assert_eq!(owners[v_count - 1], regions - 1);
                for w in owners.windows(2) {
                    assert!(
                        w[1] == w[0] || w[1] == w[0] + 1,
                        "non-contiguous: {owners:?}"
                    );
                }
                for r in 0..regions {
                    assert!(owners.contains(&r), "region {r} owns nothing: {owners:?}");
                }
            }
        }
    }
}
