//! The versioned wire format of the mesh.
//!
//! Region workers never share references — every marginal, Γ row, flow
//! forecast, and recovery snapshot crosses the transport as a
//! length-delimited byte frame in the format defined here, so the mesh
//! exercises real serialization boundaries even though the transport is
//! in-process. The format is explicit and versioned:
//!
//! ```text
//! magic   [u8; 2] = b"SM"
//! version u16     = WIRE_VERSION          (little-endian, like all ints)
//! kind    u8                              (FrameKind discriminant)
//! from    u16                             (sender region)
//! to      u16                             (destination region)
//! seq     u64                             (reliable-stream sequence; 0
//!                                          for unreliable kinds)
//! round   u64                             (iteration the frame belongs to)
//! len     u32                             (payload byte length)
//! payload [u8; len]                       (kind-specific, see Payload)
//! ```
//!
//! Version 2 adds two layers on top of the v1 row payloads:
//!
//! * **Coalescing** — workers send exactly one [`FrameKind::Batch`]
//!   frame per (link, tick). Its payload is a count followed by
//!   length-prefixed *sub-frames*, each carrying its own kind, reliable
//!   seq, round, and payload:
//!
//!   ```text
//!   count u32
//!   sub*: kind u8, seq u64, round u64, len u32, payload [u8; len]
//!   ```
//!
//!   A batch inside a batch is refused ([`WireError::NestedBatch`]).
//!
//! * **Deltas** — the three row payloads (`Marginals`, `GammaRows`,
//!   `FlowForecast`) open with a `base` round: the round of the
//!   previous frame of that kind the sender shipped on this link. A
//!   *full* frame is self-referential (`base == round`); a delta names
//!   its predecessor, so frames of one kind form a chain and a receiver
//!   whose watermark does not match `base + 1` knows a link-local gap
//!   occurred and can request a full resend ([`Payload::Resend`], a
//!   bitmask of [`RESEND_MARGINALS`] / [`RESEND_FORECAST`]).
//!
//! Floats travel as their IEEE-754 bit patterns (`f64::to_bits`,
//! little-endian) — encode→decode is *bit-identical*, which is what
//! lets the `Lossless` transport carry the bit-identity oracle. Decoding
//! validates everything it reads: magic, version skew (a structured
//! [`WireError::UnsupportedVersion`], never a panic — v1 bytes are
//! refused, not misparsed), unknown kinds, truncation, trailing bytes,
//! and **non-finite floats** — a NaN or ±Inf anywhere in a payload is
//! refused at the boundary ([`WireError::NonFinite`]) so corruption
//! cannot enter a worker's mirrors through the mesh.
//!
//! The allocation story: [`Frame`]/[`Frame::decode`] are the
//! owned-value API (tests, tooling, traces). The hot path uses
//! [`FrameBuf`] (a reusable batch writer that never reallocates once
//! warm) and [`BatchReader`]/[`SubView`] plus the `walk_*` functions,
//! which parse payload bytes in place with zero allocation. Both sides
//! share the same field order, so `Frame::encode` and `FrameBuf`
//! produce byte-identical frames (pinned by unit tests).
//!
//! **Byte streams** (the socket transport) deliver arbitrary chunk
//! boundaries, so frames must be *reassembled* before any of the above
//! decoders see them: [`frame_len`] classifies a partial header
//! (valid-so-far vs. provably garbage vs. complete, with the total
//! frame length) and [`FrameAssembler`] turns any split schedule —
//! pinned down to one byte at a time — back into whole frames.

use std::fmt;

/// The wire protocol version this build speaks. Decoders refuse frames
/// from any other version with [`WireError::UnsupportedVersion`].
pub const WIRE_VERSION: u16 = 2;

/// Frame magic: the first two bytes of every valid frame.
pub const MAGIC: [u8; 2] = *b"SM";

/// [`Payload::Resend`] bit: resend a full marginals frame.
pub const RESEND_MARGINALS: u8 = 0b01;

/// [`Payload::Resend`] bit: resend a full flow-forecast frame.
pub const RESEND_FORECAST: u8 = 0b10;

/// Frame kinds. The discriminant is the on-wire `kind` byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FrameKind {
    /// Liveness beacon (empty payload, unreliable).
    Heartbeat = 0,
    /// Marginal-cost broadcast for the sender's owned nodes
    /// (unreliable: listeners keep the last value heard).
    Marginals = 1,
    /// Changed Γ routing rows for the sender's owned routers (reliable:
    /// retransmitted until acknowledged).
    GammaRows = 2,
    /// Per-commodity admission/utility forecast from the commodity's
    /// owner region (unreliable).
    FlowForecast = 3,
    /// Cumulative acknowledgement of the reliable stream (unreliable —
    /// a lost ack just means one more retransmit).
    Ack = 4,
    /// A rejoining region asks a survivor for its state (reliable).
    RecoveryRequest = 5,
    /// A survivor's epoch-fenced state snapshot (reliable).
    RecoveryState = 6,
    /// A receiver detected a broadcast round gap and asks the sender
    /// for full (non-delta) frames of the flagged kinds (unreliable —
    /// the periodic refresh cadence backstops a lost request).
    Resend = 7,
    /// The per-(link, tick) container: every other kind travels as a
    /// length-prefixed sub-frame inside one of these.
    Batch = 8,
}

impl FrameKind {
    /// Whether frames of this kind ride the reliable (sequenced,
    /// retransmitted) stream.
    #[must_use]
    pub fn is_reliable(self) -> bool {
        matches!(
            self,
            FrameKind::GammaRows | FrameKind::RecoveryRequest | FrameKind::RecoveryState
        )
    }

    fn from_byte(byte: u8) -> Option<Self> {
        Some(match byte {
            0 => FrameKind::Heartbeat,
            1 => FrameKind::Marginals,
            2 => FrameKind::GammaRows,
            3 => FrameKind::FlowForecast,
            4 => FrameKind::Ack,
            5 => FrameKind::RecoveryRequest,
            6 => FrameKind::RecoveryState,
            7 => FrameKind::Resend,
            8 => FrameKind::Batch,
            _ => return None,
        })
    }

    /// Short name for traces and incident logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Heartbeat => "heartbeat",
            FrameKind::Marginals => "marginals",
            FrameKind::GammaRows => "gamma-rows",
            FrameKind::FlowForecast => "flow-forecast",
            FrameKind::Ack => "ack",
            FrameKind::RecoveryRequest => "recovery-request",
            FrameKind::RecoveryState => "recovery-state",
            FrameKind::Resend => "resend",
            FrameKind::Batch => "batch",
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One marginal-cost entry: node `v`'s commodity-`j` marginal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MarginalEntry {
    /// Commodity index.
    pub j: u32,
    /// Extended-node index.
    pub v: u32,
    /// The marginal cost `∂A/∂r_v(j)`.
    pub d: f64,
}

/// One Γ routing row: router `(j, v)`'s outgoing fractions.
#[derive(Clone, Debug, PartialEq)]
pub struct GammaRow {
    /// Commodity index.
    pub j: u32,
    /// Router (extended-node) index.
    pub v: u32,
    /// `(edge index, fraction)` pairs covering the router's out-edges.
    pub edges: Vec<(u32, f64)>,
}

/// One per-commodity forecast from the commodity's owner region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForecastEntry {
    /// Commodity index.
    pub j: u32,
    /// Admitted rate `a_j` under the owner's current mirror.
    pub admitted: f64,
    /// Utility `U_j(a_j)`.
    pub utility: f64,
}

/// A recovery snapshot: the survivor's full mirror state, epoch-fenced.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryStatePayload {
    /// The request token this snapshot answers.
    pub token: u64,
    /// Commodity-set epoch at capture (the restore fence).
    pub epoch: u64,
    /// Iteration counter at capture.
    pub iterations: u64,
    /// `cost.epsilon` at capture.
    pub epsilon: f64,
    /// `η` at capture.
    pub eta: f64,
    /// Routing fractions, flat row-major.
    pub phi: Vec<f64>,
    /// Node traffic rates, flat row-major.
    pub t: Vec<f64>,
    /// Per-edge commodity flows, flat row-major.
    pub x: Vec<f64>,
    /// Cross-commodity edge usage totals.
    pub f_edge: Vec<f64>,
    /// Cross-commodity node usage totals.
    pub f_node: Vec<f64>,
    /// Marginal costs, flat row-major.
    pub d: Vec<f64>,
}

/// One sub-frame of a [`Payload::Batch`]: its own kind, reliable seq,
/// and round, so every protocol unit keeps its identity inside the
/// per-(link, tick) container.
#[derive(Clone, Debug, PartialEq)]
pub struct SubFrame {
    /// Reliable-stream sequence number (0 for unreliable kinds).
    pub seq: u64,
    /// Iteration the sub-frame belongs to.
    pub round: u64,
    /// The sub-frame's payload (never itself a batch).
    pub payload: Payload,
}

/// A frame's kind-specific payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Empty liveness beacon.
    Heartbeat,
    /// Marginal broadcast entries (possibly a delta — see `base`).
    Marginals {
        /// Round of the sender's previous marginals frame on this link;
        /// `base == round` marks a full (non-delta) frame.
        base: u64,
        /// The entries that changed since `base` (all owned entries
        /// when full).
        entries: Vec<MarginalEntry>,
    },
    /// Changed Γ rows (possibly a delta — see `base`).
    GammaRows {
        /// Round of the sender's previous Γ frame on this link;
        /// `base == round` marks a full frame.
        base: u64,
        /// The rows that changed since `base` (all owned rows when
        /// full).
        rows: Vec<GammaRow>,
    },
    /// Owner forecasts (possibly a delta — see `base`).
    FlowForecast {
        /// Round of the sender's previous forecast frame on this link;
        /// `base == round` marks a full frame.
        base: u64,
        /// The entries that changed since `base`.
        entries: Vec<ForecastEntry>,
    },
    /// Cumulative ack: every reliable seq `<= cum` has been received.
    Ack {
        /// Highest contiguously-received reliable sequence number.
        cum: u64,
    },
    /// Request for full (non-delta) broadcast frames after a detected
    /// round gap.
    Resend {
        /// Bitmask of kinds to refresh ([`RESEND_MARGINALS`] |
        /// [`RESEND_FORECAST`]).
        kinds: u8,
    },
    /// Recovery request with its fencing token.
    RecoveryRequest {
        /// Token echoed by the matching [`Payload::RecoveryState`].
        token: u64,
    },
    /// Recovery snapshot.
    RecoveryState(Box<RecoveryStatePayload>),
    /// The per-(link, tick) container of sub-frames.
    Batch(Vec<SubFrame>),
}

impl Payload {
    /// The wire kind this payload encodes as.
    #[must_use]
    pub fn kind(&self) -> FrameKind {
        match self {
            Payload::Heartbeat => FrameKind::Heartbeat,
            Payload::Marginals { .. } => FrameKind::Marginals,
            Payload::GammaRows { .. } => FrameKind::GammaRows,
            Payload::FlowForecast { .. } => FrameKind::FlowForecast,
            Payload::Ack { .. } => FrameKind::Ack,
            Payload::Resend { .. } => FrameKind::Resend,
            Payload::RecoveryRequest { .. } => FrameKind::RecoveryRequest,
            Payload::RecoveryState(_) => FrameKind::RecoveryState,
            Payload::Batch(_) => FrameKind::Batch,
        }
    }
}

/// One mesh frame: header plus payload. [`Frame::encode`] and
/// [`Frame::decode`] are exact inverses for every valid frame (pinned
/// by round-trip proptests).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Sender region.
    pub from: u16,
    /// Destination region.
    pub to: u16,
    /// Reliable-stream sequence number (0 for unreliable kinds and for
    /// batch containers — subs carry their own).
    pub seq: u64,
    /// Iteration the frame belongs to (the staleness watermark key).
    pub round: u64,
    /// Kind-specific payload.
    pub payload: Payload,
}

/// Structured decode errors. Every malformed input is refused with one
/// of these — decoding never panics on untrusted bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Fewer bytes than the field being read required.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found.
        got: [u8; 2],
    },
    /// The frame's protocol version is not spoken by this build.
    UnsupportedVersion {
        /// Version on the wire.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The kind byte maps to no known [`FrameKind`].
    UnknownKind {
        /// The byte found.
        got: u8,
    },
    /// A float field decoded to NaN or ±Inf.
    NonFinite {
        /// Which payload field family.
        what: &'static str,
        /// Index of the offending float within that family.
        index: usize,
    },
    /// Bytes remained after the declared payload length was consumed.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The payload's declared length disagrees with its contents.
    BadLength {
        /// What was being decoded.
        what: &'static str,
    },
    /// A batch sub-frame was itself a batch.
    NestedBatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, {got} remain")
            }
            WireError::BadMagic { got } => write!(f, "bad magic {got:?}"),
            WireError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {supported})"
                )
            }
            WireError::UnknownKind { got } => write!(f, "unknown frame kind {got}"),
            WireError::NonFinite { what, index } => {
                write!(f, "non-finite float in {what} at index {index}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            WireError::BadLength { what } => write!(f, "inconsistent length in {what}"),
            WireError::NestedBatch => write!(f, "batch sub-frame is itself a batch"),
        }
    }
}

impl std::error::Error for WireError {}

// --- encoding ---------------------------------------------------------

/// Header byte length: magic(2) version(2) kind(1) from(2) to(2)
/// seq(8) round(8) len(4).
const HEADER_LEN: usize = 29;

/// Sub-frame header byte length: kind(1) seq(8) round(8) len(4).
const SUB_HEADER_LEN: usize = 21;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64_slice(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f64(out, v);
    }
}

fn patch_u32_at(out: &mut [u8], at: usize, v: u32) {
    out[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

/// Appends `payload`'s wire bytes to `out`. Shared by [`Frame::encode`]
/// and [`FrameBuf::put_payload`], so both producers are byte-identical.
///
/// # Panics
///
/// Panics on a nested batch (a batch's sub-payload that is itself a
/// [`Payload::Batch`]) — producing one is a bug, and decoders refuse
/// them with [`WireError::NestedBatch`].
fn encode_payload(payload: &Payload, out: &mut Vec<u8>) {
    match payload {
        Payload::Heartbeat => {}
        Payload::Marginals { base, entries } => {
            put_u64(out, *base);
            put_u32(out, entries.len() as u32);
            for e in entries {
                put_u32(out, e.j);
                put_u32(out, e.v);
                put_f64(out, e.d);
            }
        }
        Payload::GammaRows { base, rows } => {
            put_u64(out, *base);
            put_u32(out, rows.len() as u32);
            for row in rows {
                put_u32(out, row.j);
                put_u32(out, row.v);
                put_u32(out, row.edges.len() as u32);
                for &(l, phi) in &row.edges {
                    put_u32(out, l);
                    put_f64(out, phi);
                }
            }
        }
        Payload::FlowForecast { base, entries } => {
            put_u64(out, *base);
            put_u32(out, entries.len() as u32);
            for e in entries {
                put_u32(out, e.j);
                put_f64(out, e.admitted);
                put_f64(out, e.utility);
            }
        }
        Payload::Ack { cum } => put_u64(out, *cum),
        Payload::Resend { kinds } => out.push(*kinds),
        Payload::RecoveryRequest { token } => put_u64(out, *token),
        Payload::RecoveryState(s) => {
            put_u64(out, s.token);
            put_u64(out, s.epoch);
            put_u64(out, s.iterations);
            put_f64(out, s.epsilon);
            put_f64(out, s.eta);
            put_f64_slice(out, &s.phi);
            put_f64_slice(out, &s.t);
            put_f64_slice(out, &s.x);
            put_f64_slice(out, &s.f_edge);
            put_f64_slice(out, &s.f_node);
            put_f64_slice(out, &s.d);
        }
        Payload::Batch(subs) => {
            put_u32(out, subs.len() as u32);
            for sub in subs {
                let kind = sub.payload.kind();
                assert!(
                    kind != FrameKind::Batch,
                    "nested batch: a batch sub-frame cannot itself be a batch"
                );
                out.push(kind as u8);
                put_u64(out, sub.seq);
                put_u64(out, sub.round);
                let len_at = out.len();
                put_u32(out, 0);
                encode_payload(&sub.payload, out);
                let len = (out.len() - len_at - 4) as u32;
                patch_u32_at(out, len_at, len);
            }
        }
    }
}

impl Frame {
    /// Encodes the frame into its on-wire byte representation.
    ///
    /// # Panics
    ///
    /// Panics on a nested batch — see [`WireError::NestedBatch`].
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes the frame into `out`, clearing it first. Reusing one
    /// buffer across encodes keeps the path allocation-free once the
    /// buffer has grown to its steady-state capacity.
    ///
    /// # Panics
    ///
    /// Panics on a nested batch — see [`WireError::NestedBatch`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&MAGIC);
        put_u16(out, WIRE_VERSION);
        out.push(self.payload.kind() as u8);
        put_u16(out, self.from);
        put_u16(out, self.to);
        put_u64(out, self.seq);
        put_u64(out, self.round);
        let len_at = out.len();
        put_u32(out, 0);
        encode_payload(&self.payload, out);
        let len = (out.len() - len_at - 4) as u32;
        patch_u32_at(out, len_at, len);
    }

    /// Decodes a frame, validating magic, version, kind, lengths, and
    /// float finiteness.
    ///
    /// # Errors
    ///
    /// A [`WireError`] describing the first problem found; malformed
    /// bytes never panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { buf: bytes, at: 0 };
        let (kind, from, to, seq, round, len) = decode_header(&mut r)?;
        let payload_end = r.at + len;
        let payload = decode_payload(kind, &mut r, payload_end, true)?;
        if r.at != payload_end {
            return Err(WireError::BadLength { what: kind.name() });
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(Frame {
            from,
            to,
            seq,
            round,
            payload,
        })
    }

    /// Reads just the kind byte of an encoded frame (transports use it
    /// to label fault incidents without a full decode; worker traffic
    /// always peeks as [`FrameKind::Batch`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::UnknownKind`].
    pub fn peek_kind(bytes: &[u8]) -> Result<FrameKind, WireError> {
        let byte = *bytes.get(4).ok_or(WireError::Truncated {
            needed: 5,
            got: bytes.len(),
        })?;
        FrameKind::from_byte(byte).ok_or(WireError::UnknownKind { got: byte })
    }
}

/// Reads and validates the 27-byte header, returning
/// `(kind, from, to, seq, round, payload_len)` with the payload length
/// already checked against the remaining bytes.
fn decode_header(r: &mut Reader<'_>) -> Result<(FrameKind, u16, u16, u64, u64, usize), WireError> {
    let magic = [r.u8()?, r.u8()?];
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            got: version,
            supported: WIRE_VERSION,
        });
    }
    let kind_byte = r.u8()?;
    let kind = FrameKind::from_byte(kind_byte).ok_or(WireError::UnknownKind { got: kind_byte })?;
    let from = r.u16()?;
    let to = r.u16()?;
    let seq = r.u64()?;
    let round = r.u64()?;
    let len = r.u32()? as usize;
    if r.remaining() < len {
        return Err(WireError::Truncated {
            needed: len,
            got: r.remaining(),
        });
    }
    Ok((kind, from, to, seq, round, len))
}

// --- stream reframing -------------------------------------------------

/// Validates as much of a frame header as `prefix` contains and, once
/// the 29-byte header is complete, returns the **total** frame length
/// (header plus declared payload). `Ok(None)` means the prefix is valid
/// so far but the header is still incomplete — feed more bytes.
///
/// This is the primitive byte-stream transports reframe with: unlike
/// [`Frame::decode`], which assumes it was handed exactly one complete
/// frame and classifies a short buffer as a malformed frame
/// ([`WireError::Truncated`]), `frame_len` distinguishes "not yet
/// arrived" from "provably garbage" — magic, version, and kind are
/// checked as soon as their bytes exist, so a desynced stream is
/// refused at the first wrong byte instead of being misread as a
/// length.
///
/// # Errors
///
/// [`WireError::BadMagic`], [`WireError::UnsupportedVersion`], or
/// [`WireError::UnknownKind`] as soon as the offending bytes are
/// present. Never panics, never errors on a mere shortage of bytes.
pub fn frame_len(prefix: &[u8]) -> Result<Option<usize>, WireError> {
    if prefix.len() < 2 {
        return Ok(None);
    }
    let magic = [prefix[0], prefix[1]];
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    if prefix.len() < 4 {
        return Ok(None);
    }
    let version = u16::from_le_bytes([prefix[2], prefix[3]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            got: version,
            supported: WIRE_VERSION,
        });
    }
    if prefix.len() < 5 {
        return Ok(None);
    }
    if FrameKind::from_byte(prefix[4]).is_none() {
        return Err(WireError::UnknownKind { got: prefix[4] });
    }
    if prefix.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([
        prefix[HEADER_LEN - 4],
        prefix[HEADER_LEN - 3],
        prefix[HEADER_LEN - 2],
        prefix[HEADER_LEN - 1],
    ]) as usize;
    Ok(Some(HEADER_LEN + len))
}

/// Incremental reframer for wire frames arriving over a byte stream.
///
/// Sockets deliver arbitrary chunk boundaries: a read may end in the
/// middle of a header, a length field, or a payload. Feed whatever
/// bytes arrive with [`FrameAssembler::extend`] and pull complete
/// frames out with [`FrameAssembler::next_frame`] — each returned slice
/// is exactly one wire frame (header plus payload), suitable for
/// [`Frame::decode`] or `BatchReader::parse`. Reassembly is pure
/// length-prefix reframing via [`frame_len`]: header fields are
/// validated as soon as their bytes exist, so garbage is refused at the
/// earliest provable byte and a split header is simply *waited out*,
/// never misclassified (the pre-socket decoders assumed one complete
/// frame per buffer and reported a split header as a truncated frame).
///
/// The internal buffer is reused: consumed bytes are reclaimed whenever
/// the buffer fully drains (the steady state — ticks drain every
/// completed frame), so a warm assembler stops allocating once it has
/// seen its largest frame.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (frames already handed out).
    at: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    #[must_use]
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Appends a chunk of stream bytes (any length, including zero).
    pub fn extend(&mut self, chunk: &[u8]) {
        if self.at == self.buf.len() {
            // fully drained: reclaim the space before growing
            self.buf.clear();
            self.at = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Returns the next complete frame, `Ok(None)` if more bytes are
    /// needed, or the first structural error the stream contains.
    ///
    /// # Errors
    ///
    /// The [`WireError`] from [`frame_len`] — the stream is desynced or
    /// speaks a different protocol; no further frame can be trusted.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let pending = &self.buf[self.at..];
        match frame_len(pending)? {
            Some(total) if pending.len() >= total => {
                let start = self.at;
                self.at += total;
                Ok(Some(&self.buf[start..start + total]))
            }
            _ => Ok(None),
        }
    }

    /// Bytes buffered but not yet handed out as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Drops all buffered bytes (capacity kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.at = 0;
    }
}

/// Decodes one payload of `kind` from `r`, consuming up to
/// `payload_end`. `allow_batch` is false inside a batch — nesting is
/// refused structurally.
fn decode_payload(
    kind: FrameKind,
    r: &mut Reader<'_>,
    payload_end: usize,
    allow_batch: bool,
) -> Result<Payload, WireError> {
    Ok(match kind {
        FrameKind::Heartbeat => Payload::Heartbeat,
        FrameKind::Marginals => {
            let base = r.u64()?;
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(r.remaining() / 16));
            for i in 0..n {
                entries.push(MarginalEntry {
                    j: r.u32()?,
                    v: r.u32()?,
                    d: r.finite_f64("marginals", i)?,
                });
            }
            Payload::Marginals { base, entries }
        }
        FrameKind::GammaRows => {
            let base = r.u64()?;
            let n = r.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(r.remaining() / 12));
            let mut floats = 0usize;
            for _ in 0..n {
                let j = r.u32()?;
                let v = r.u32()?;
                let e = r.u32()? as usize;
                let mut edges = Vec::with_capacity(e.min(r.remaining() / 12));
                for _ in 0..e {
                    let l = r.u32()?;
                    let phi = r.finite_f64("gamma-rows", floats)?;
                    floats += 1;
                    edges.push((l, phi));
                }
                rows.push(GammaRow { j, v, edges });
            }
            Payload::GammaRows { base, rows }
        }
        FrameKind::FlowForecast => {
            let base = r.u64()?;
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(r.remaining() / 20));
            for i in 0..n {
                entries.push(ForecastEntry {
                    j: r.u32()?,
                    admitted: r.finite_f64("forecast", 2 * i)?,
                    utility: r.finite_f64("forecast", 2 * i + 1)?,
                });
            }
            Payload::FlowForecast { base, entries }
        }
        FrameKind::Ack => Payload::Ack { cum: r.u64()? },
        FrameKind::Resend => Payload::Resend { kinds: r.u8()? },
        FrameKind::RecoveryRequest => Payload::RecoveryRequest { token: r.u64()? },
        FrameKind::RecoveryState => {
            let token = r.u64()?;
            let epoch = r.u64()?;
            let iterations = r.u64()?;
            let epsilon = r.finite_f64("recovery-epsilon", 0)?;
            let eta = r.finite_f64("recovery-eta", 0)?;
            let phi = r.finite_f64_vec("recovery-phi")?;
            let t = r.finite_f64_vec("recovery-t")?;
            let x = r.finite_f64_vec("recovery-x")?;
            let f_edge = r.finite_f64_vec("recovery-f-edge")?;
            let f_node = r.finite_f64_vec("recovery-f-node")?;
            let d = r.finite_f64_vec("recovery-d")?;
            Payload::RecoveryState(Box::new(RecoveryStatePayload {
                token,
                epoch,
                iterations,
                epsilon,
                eta,
                phi,
                t,
                x,
                f_edge,
                f_node,
                d,
            }))
        }
        FrameKind::Batch => {
            if !allow_batch {
                return Err(WireError::NestedBatch);
            }
            let n = r.u32()? as usize;
            let mut subs = Vec::with_capacity(n.min(r.remaining() / SUB_HEADER_LEN));
            for _ in 0..n {
                let kind_byte = r.u8()?;
                let sub_kind = FrameKind::from_byte(kind_byte)
                    .ok_or(WireError::UnknownKind { got: kind_byte })?;
                let seq = r.u64()?;
                let round = r.u64()?;
                let len = r.u32()? as usize;
                if r.remaining() < len || r.at + len > payload_end {
                    return Err(WireError::Truncated {
                        needed: len,
                        got: r.remaining().min(payload_end - r.at),
                    });
                }
                let sub_end = r.at + len;
                let payload = decode_payload(sub_kind, r, sub_end, false)?;
                if r.at != sub_end {
                    return Err(WireError::BadLength {
                        what: sub_kind.name(),
                    });
                }
                subs.push(SubFrame {
                    seq,
                    round,
                    payload,
                });
            }
            Payload::Batch(subs)
        }
    })
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn finite_f64(&mut self, what: &'static str, index: usize) -> Result<f64, WireError> {
        let v = f64::from_bits(self.u64()?);
        if !v.is_finite() {
            return Err(WireError::NonFinite { what, index });
        }
        Ok(v)
    }

    fn finite_f64_vec(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 8));
        for i in 0..n {
            out.push(self.finite_f64(what, i)?);
        }
        Ok(out)
    }
}

// --- zero-alloc batch writer ------------------------------------------

/// A reusable writer that assembles one [`FrameKind::Batch`] frame in
/// place. Workers keep one per link: `begin` rewinds the buffer (its
/// capacity survives), sub-frames are appended with `begin_sub` /
/// field puts / `end_sub`, and `finish` patches the outer length and
/// sub count. Once warm the whole cycle performs zero allocations.
///
/// Length fields are patched rather than precomputed, so callers can
/// stream row data without knowing counts up front: `mark_u32`
/// reserves a count slot and `patch_u32` fills it after the rows are
/// written.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Position of the outer payload-length field.
    len_at: usize,
    /// Position of the sub-count field.
    count_at: usize,
    /// Position of the open sub's length field.
    sub_len_at: usize,
    /// Start of the most recent sub (its kind byte).
    sub_start: usize,
    subs: u32,
    open: bool,
    sub_open: bool,
    finished: bool,
}

impl FrameBuf {
    /// An empty writer (no capacity reserved yet).
    #[must_use]
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Rewinds the buffer and writes a batch header for `from → to` at
    /// `round`. The container's seq is 0 — sub-frames carry their own.
    pub fn begin(&mut self, from: u16, to: u16, round: u64) {
        assert!(!self.sub_open, "begin while a sub-frame is open");
        self.buf.clear();
        self.buf.extend_from_slice(&MAGIC);
        put_u16(&mut self.buf, WIRE_VERSION);
        self.buf.push(FrameKind::Batch as u8);
        put_u16(&mut self.buf, from);
        put_u16(&mut self.buf, to);
        put_u64(&mut self.buf, 0);
        put_u64(&mut self.buf, round);
        debug_assert_eq!(self.buf.len() + 4, HEADER_LEN);
        self.len_at = self.buf.len();
        put_u32(&mut self.buf, 0);
        self.count_at = self.buf.len();
        put_u32(&mut self.buf, 0);
        self.subs = 0;
        self.open = true;
        self.finished = false;
    }

    /// Opens a sub-frame of `kind` (never [`FrameKind::Batch`]).
    pub fn begin_sub(&mut self, kind: FrameKind, seq: u64, round: u64) {
        assert!(self.open && !self.sub_open, "begin_sub out of sequence");
        assert!(kind != FrameKind::Batch, "nested batch");
        self.sub_start = self.buf.len();
        self.buf.push(kind as u8);
        put_u64(&mut self.buf, seq);
        put_u64(&mut self.buf, round);
        self.sub_len_at = self.buf.len();
        put_u32(&mut self.buf, 0);
        self.sub_open = true;
    }

    /// Appends a raw byte to the open sub-frame's payload.
    pub fn put_u8(&mut self, v: u8) {
        debug_assert!(self.sub_open);
        self.buf.push(v);
    }

    /// Appends a little-endian `u32` to the open sub-frame's payload.
    pub fn put_u32(&mut self, v: u32) {
        debug_assert!(self.sub_open);
        put_u32(&mut self.buf, v);
    }

    /// Appends a little-endian `u64` to the open sub-frame's payload.
    pub fn put_u64(&mut self, v: u64) {
        debug_assert!(self.sub_open);
        put_u64(&mut self.buf, v);
    }

    /// Appends an `f64` bit pattern to the open sub-frame's payload.
    pub fn put_f64(&mut self, v: f64) {
        debug_assert!(self.sub_open);
        put_f64(&mut self.buf, v);
    }

    /// Reserves a `u32` slot (e.g. a row count not yet known) and
    /// returns its position for a later [`FrameBuf::patch_u32`].
    pub fn mark_u32(&mut self) -> usize {
        debug_assert!(self.sub_open);
        let at = self.buf.len();
        put_u32(&mut self.buf, 0);
        at
    }

    /// Fills a slot reserved by [`FrameBuf::mark_u32`].
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        patch_u32_at(&mut self.buf, at, v);
    }

    /// Appends `payload`'s wire bytes to the open sub-frame (control
    /// payloads — acks, resend requests, recovery frames).
    pub fn put_payload(&mut self, payload: &Payload) {
        debug_assert!(self.sub_open);
        encode_payload(payload, &mut self.buf);
    }

    /// Closes the open sub-frame, patching its length.
    pub fn end_sub(&mut self) {
        assert!(self.sub_open, "end_sub without begin_sub");
        let len = (self.buf.len() - self.sub_len_at - 4) as u32;
        patch_u32_at(&mut self.buf, self.sub_len_at, len);
        self.subs += 1;
        self.sub_open = false;
    }

    /// The bytes of the most recently closed sub-frame (header +
    /// payload) — what the reliable stream copies into a flight buffer
    /// for retransmission.
    #[must_use]
    pub fn last_sub(&self) -> &[u8] {
        debug_assert!(!self.sub_open && self.subs > 0);
        &self.buf[self.sub_start..]
    }

    /// Appends a pre-encoded sub-frame (a retransmitted flight's
    /// bytes).
    pub fn push_raw_sub(&mut self, sub: &[u8]) {
        assert!(self.open && !self.sub_open, "push_raw_sub out of sequence");
        self.sub_start = self.buf.len();
        self.buf.extend_from_slice(sub);
        self.subs += 1;
    }

    /// Closes the batch, patching the outer length and sub count.
    /// Returns `true` if the batch carries at least one sub-frame
    /// (empty batches are never sent).
    pub fn finish(&mut self) -> bool {
        assert!(self.open && !self.sub_open, "finish out of sequence");
        let len = (self.buf.len() - self.len_at - 4) as u32;
        patch_u32_at(&mut self.buf, self.len_at, len);
        let subs = self.subs;
        patch_u32_at(&mut self.buf, self.count_at, subs);
        self.open = false;
        self.finished = true;
        subs > 0
    }

    /// The finished frame's bytes, or `None` if the batch is empty or
    /// not yet finished.
    #[must_use]
    pub fn bytes(&self) -> Option<&[u8]> {
        (self.finished && self.subs > 0).then_some(&self.buf[..])
    }

    /// Sub-frames in the batch so far.
    #[must_use]
    pub fn sub_count(&self) -> u32 {
        self.subs
    }

    /// Total frame bytes so far (header included).
    #[must_use]
    pub fn frame_len(&self) -> usize {
        self.buf.len()
    }
}

// --- zero-copy batch reading ------------------------------------------

/// A view of one sub-frame inside a received batch: parsed header,
/// borrowed payload bytes. Consumers walk the payload in place with
/// [`walk_marginals`] / [`walk_gamma_rows`] / [`walk_forecast`] or the
/// `parse_*` helpers — no allocation on the receive path.
#[derive(Clone, Copy, Debug)]
pub struct SubView<'a> {
    /// The sub-frame's kind (never [`FrameKind::Batch`]).
    pub kind: FrameKind,
    /// Reliable-stream sequence number (0 for unreliable kinds).
    pub seq: u64,
    /// Iteration the sub-frame belongs to.
    pub round: u64,
    /// The raw payload bytes.
    pub payload: &'a [u8],
}

/// An in-place iterator over the sub-frames of an encoded batch. The
/// header is validated up front ([`BatchReader::parse`]); sub-frames
/// are surfaced one at a time as [`SubView`]s without copying.
#[derive(Debug)]
pub struct BatchReader<'a> {
    from: u16,
    to: u16,
    round: u64,
    buf: &'a [u8],
    at: usize,
    end: usize,
    left: u32,
}

impl<'a> BatchReader<'a> {
    /// Validates the outer header of `bytes` (magic, version, kind =
    /// batch, length vs actual bytes) and positions the reader at the
    /// first sub-frame.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] the header validation finds; sub-frame errors
    /// surface later from [`BatchReader::next_sub`].
    pub fn parse(bytes: &'a [u8]) -> Result<Self, WireError> {
        let mut r = Reader { buf: bytes, at: 0 };
        let (kind, from, to, _seq, round, len) = decode_header(&mut r)?;
        if kind != FrameKind::Batch {
            return Err(WireError::BadLength { what: "batch" });
        }
        let end = r.at + len;
        if bytes.len() > end {
            return Err(WireError::TrailingBytes {
                extra: bytes.len() - end,
            });
        }
        let left = r.u32()?;
        Ok(BatchReader {
            from,
            to,
            round,
            buf: bytes,
            at: r.at,
            end,
            left,
        })
    }

    /// Sender region from the outer header.
    #[must_use]
    pub fn from(&self) -> u16 {
        self.from
    }

    /// Destination region from the outer header.
    #[must_use]
    pub fn to(&self) -> u16 {
        self.to
    }

    /// The sender's round when the batch was assembled.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The next sub-frame, `None` when the batch is exhausted.
    ///
    /// # Errors
    ///
    /// `Some(Err(_))` on a malformed sub-frame (truncation, unknown
    /// kind, nesting, or count/length disagreement); iteration stops
    /// after an error.
    #[allow(clippy::should_implement_trait)] // lending-style: views borrow self.buf
    pub fn next_sub(&mut self) -> Option<Result<SubView<'a>, WireError>> {
        if self.left == 0 {
            if self.at != self.end {
                // count said we're done but payload bytes remain
                self.at = self.end;
                return Some(Err(WireError::BadLength { what: "batch" }));
            }
            return None;
        }
        let mut r = Reader {
            buf: &self.buf[..self.end],
            at: self.at,
        };
        let step = (|| {
            let kind_byte = r.u8()?;
            let kind =
                FrameKind::from_byte(kind_byte).ok_or(WireError::UnknownKind { got: kind_byte })?;
            if kind == FrameKind::Batch {
                return Err(WireError::NestedBatch);
            }
            let seq = r.u64()?;
            let round = r.u64()?;
            let len = r.u32()? as usize;
            if r.remaining() < len {
                return Err(WireError::Truncated {
                    needed: len,
                    got: r.remaining(),
                });
            }
            let payload = &self.buf[r.at..r.at + len];
            r.at += len;
            Ok(SubView {
                kind,
                seq,
                round,
                payload,
            })
        })();
        match step {
            Ok(view) => {
                self.at = r.at;
                self.left -= 1;
                Some(Ok(view))
            }
            Err(e) => {
                self.left = 0;
                self.at = self.end;
                Some(Err(e))
            }
        }
    }
}

/// Walks a [`FrameKind::Marginals`] payload in place, calling `f` per
/// entry, and returns the frame's `base` round. Validates lengths and
/// float finiteness exactly like [`Frame::decode`].
///
/// # Errors
///
/// Any [`WireError`] the payload bytes trigger.
pub fn walk_marginals(payload: &[u8], mut f: impl FnMut(MarginalEntry)) -> Result<u64, WireError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let base = r.u64()?;
    let n = r.u32()? as usize;
    for i in 0..n {
        f(MarginalEntry {
            j: r.u32()?,
            v: r.u32()?,
            d: r.finite_f64("marginals", i)?,
        });
    }
    if r.remaining() != 0 {
        return Err(WireError::BadLength { what: "marginals" });
    }
    Ok(base)
}

/// Walks a [`FrameKind::GammaRows`] payload in place and returns the
/// frame's `base` round. Per row, `row(j, v)` decides whether the row
/// applies; `edge(j, v, l, phi)` fires for each edge of an applied row.
/// Skipped rows are still fully validated (including finiteness).
///
/// # Errors
///
/// Any [`WireError`] the payload bytes trigger.
pub fn walk_gamma_rows(
    payload: &[u8],
    mut row: impl FnMut(u32, u32) -> bool,
    mut edge: impl FnMut(u32, u32, u32, f64),
) -> Result<u64, WireError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let base = r.u64()?;
    let n = r.u32()? as usize;
    let mut floats = 0usize;
    for _ in 0..n {
        let j = r.u32()?;
        let v = r.u32()?;
        let e = r.u32()? as usize;
        let apply = row(j, v);
        for _ in 0..e {
            let l = r.u32()?;
            let phi = r.finite_f64("gamma-rows", floats)?;
            floats += 1;
            if apply {
                edge(j, v, l, phi);
            }
        }
    }
    if r.remaining() != 0 {
        return Err(WireError::BadLength { what: "gamma-rows" });
    }
    Ok(base)
}

/// Walks a [`FrameKind::FlowForecast`] payload in place, calling `f`
/// per entry, and returns the frame's `base` round.
///
/// # Errors
///
/// Any [`WireError`] the payload bytes trigger.
pub fn walk_forecast(payload: &[u8], mut f: impl FnMut(ForecastEntry)) -> Result<u64, WireError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let base = r.u64()?;
    let n = r.u32()? as usize;
    for i in 0..n {
        f(ForecastEntry {
            j: r.u32()?,
            admitted: r.finite_f64("forecast", 2 * i)?,
            utility: r.finite_f64("forecast", 2 * i + 1)?,
        });
    }
    if r.remaining() != 0 {
        return Err(WireError::BadLength { what: "forecast" });
    }
    Ok(base)
}

fn parse_exact_u64(payload: &[u8], what: &'static str) -> Result<u64, WireError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let v = r.u64()?;
    if r.remaining() != 0 {
        return Err(WireError::BadLength { what });
    }
    Ok(v)
}

/// Parses a [`FrameKind::Ack`] payload: the cumulative seq.
///
/// # Errors
///
/// [`WireError::Truncated`] or [`WireError::BadLength`].
pub fn parse_ack(payload: &[u8]) -> Result<u64, WireError> {
    parse_exact_u64(payload, "ack")
}

/// Parses a [`FrameKind::Resend`] payload: the kind bitmask.
///
/// # Errors
///
/// [`WireError::Truncated`] or [`WireError::BadLength`].
pub fn parse_resend(payload: &[u8]) -> Result<u8, WireError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let kinds = r.u8()?;
    if r.remaining() != 0 {
        return Err(WireError::BadLength { what: "resend" });
    }
    Ok(kinds)
}

/// Parses a [`FrameKind::RecoveryRequest`] payload: the fencing token.
///
/// # Errors
///
/// [`WireError::Truncated`] or [`WireError::BadLength`].
pub fn parse_recovery_request(payload: &[u8]) -> Result<u64, WireError> {
    parse_exact_u64(payload, "recovery-request")
}

/// Parses a [`FrameKind::RecoveryState`] payload. Allocates (recovery
/// is a cold path).
///
/// # Errors
///
/// Any [`WireError`] the payload bytes trigger.
pub fn parse_recovery_state(payload: &[u8]) -> Result<RecoveryStatePayload, WireError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let end = payload.len();
    match decode_payload(FrameKind::RecoveryState, &mut r, end, false)? {
        Payload::RecoveryState(s) => {
            if r.remaining() != 0 {
                return Err(WireError::BadLength {
                    what: "recovery-state",
                });
            }
            Ok(*s)
        }
        _ => unreachable!("decode_payload returned a foreign payload"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame {
                from: 0,
                to: 1,
                seq: 0,
                round: 3,
                payload: Payload::Heartbeat,
            },
            Frame {
                from: 2,
                to: 0,
                seq: 0,
                round: 7,
                payload: Payload::Marginals {
                    base: 6,
                    entries: vec![
                        MarginalEntry {
                            j: 0,
                            v: 4,
                            d: 1.25,
                        },
                        MarginalEntry {
                            j: 1,
                            v: 9,
                            d: -3.5e-9,
                        },
                    ],
                },
            },
            Frame {
                from: 1,
                to: 3,
                seq: 42,
                round: 7,
                payload: Payload::GammaRows {
                    base: 7,
                    rows: vec![GammaRow {
                        j: 2,
                        v: 11,
                        edges: vec![(5, 0.25), (9, 0.75)],
                    }],
                },
            },
            Frame {
                from: 3,
                to: 2,
                seq: 0,
                round: 8,
                payload: Payload::FlowForecast {
                    base: 5,
                    entries: vec![ForecastEntry {
                        j: 1,
                        admitted: 4.5,
                        utility: 9.0,
                    }],
                },
            },
            Frame {
                from: 0,
                to: 2,
                seq: 0,
                round: 8,
                payload: Payload::Ack { cum: 41 },
            },
            Frame {
                from: 2,
                to: 1,
                seq: 0,
                round: 9,
                payload: Payload::Resend {
                    kinds: RESEND_MARGINALS | RESEND_FORECAST,
                },
            },
            Frame {
                from: 1,
                to: 0,
                seq: 43,
                round: 9,
                payload: Payload::RecoveryRequest { token: 77 },
            },
            Frame {
                from: 0,
                to: 1,
                seq: 17,
                round: 9,
                payload: Payload::RecoveryState(Box::new(RecoveryStatePayload {
                    token: 77,
                    epoch: 2,
                    iterations: 120,
                    epsilon: 5e-4,
                    eta: 0.04,
                    phi: vec![0.0, 0.5, 0.5],
                    t: vec![1.0, 2.0],
                    x: vec![0.25; 3],
                    f_edge: vec![3.5],
                    f_node: vec![0.75, 1.5],
                    d: vec![0.1, 0.2],
                })),
            },
            Frame {
                from: 1,
                to: 2,
                seq: 0,
                round: 12,
                payload: Payload::Batch(vec![
                    SubFrame {
                        seq: 0,
                        round: 12,
                        payload: Payload::Marginals {
                            base: 12,
                            entries: vec![MarginalEntry { j: 0, v: 1, d: 0.5 }],
                        },
                    },
                    SubFrame {
                        seq: 9,
                        round: 12,
                        payload: Payload::GammaRows {
                            base: 11,
                            rows: vec![GammaRow {
                                j: 0,
                                v: 3,
                                edges: vec![(2, 1.0)],
                            }],
                        },
                    },
                    SubFrame {
                        seq: 0,
                        round: 12,
                        payload: Payload::Ack { cum: 8 },
                    },
                    SubFrame {
                        seq: 0,
                        round: 12,
                        payload: Payload::Heartbeat,
                    },
                ]),
            },
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            assert_eq!(Frame::peek_kind(&bytes).unwrap(), frame.payload.kind());
            let back = Frame::decode(&bytes).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for frame in &frames {
            frame.encode_into(&mut buf);
            assert_eq!(buf, frame.encode());
        }
    }

    #[test]
    fn rejects_bad_magic_version_kind() {
        let mut bytes = sample_frames()[0].encode();
        let orig = bytes.clone();
        bytes[0] = b'X';
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadMagic { .. })
        ));
        bytes = orig.clone();
        bytes[2] = 0xFF; // version low byte
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::UnsupportedVersion {
                got: u16::from_le_bytes([0xFF, 0]),
                supported: WIRE_VERSION
            })
        );
        bytes = orig;
        bytes[4] = 0x7F; // kind
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::UnknownKind { got: 0x7F })
        );
    }

    #[test]
    fn rejects_v1_frames() {
        // a v1-stamped frame (version bytes 01 00) is refused up front,
        // whatever its payload claims to be
        let mut bytes = sample_frames()[1].encode();
        bytes[2..4].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::UnsupportedVersion {
                got: 1,
                supported: WIRE_VERSION
            })
        );
        assert!(matches!(
            BatchReader::parse(&bytes),
            Err(WireError::UnsupportedVersion { got: 1, .. })
        ));
    }

    #[test]
    fn rejects_non_finite_floats() {
        let frame = Frame {
            from: 0,
            to: 1,
            seq: 0,
            round: 0,
            payload: Payload::Marginals {
                base: 0,
                entries: vec![MarginalEntry { j: 0, v: 0, d: 1.0 }],
            },
        };
        let mut bytes = frame.encode();
        let float_at = bytes.len() - 8;
        bytes[float_at..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::NonFinite {
                what: "marginals",
                index: 0
            })
        );
        bytes[float_at..].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::NonFinite { .. })
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        for frame in [sample_frames()[2].clone(), sample_frames()[8].clone()] {
            let bytes = frame.encode();
            for cut in 1..bytes.len() {
                assert!(
                    Frame::decode(&bytes[..cut]).is_err(),
                    "truncation at {cut} accepted ({})",
                    frame.payload.kind()
                );
            }
            let mut extended = bytes;
            extended.push(0);
            assert!(Frame::decode(&extended).is_err());
        }
    }

    #[test]
    fn frame_len_classifies_prefixes() {
        let bytes = sample_frames()[2].encode();
        // every strict header prefix: valid-so-far, never an error
        for cut in 0..HEADER_LEN {
            assert_eq!(frame_len(&bytes[..cut]), Ok(None), "prefix {cut}");
        }
        // complete header (and anything longer): the exact total length
        for cut in HEADER_LEN..=bytes.len() {
            assert_eq!(frame_len(&bytes[..cut]), Ok(Some(bytes.len())));
        }
        // garbage is refused at the earliest provable byte
        assert!(matches!(
            frame_len(b"XY"),
            Err(WireError::BadMagic { got: [b'X', b'Y'] })
        ));
        let mut skew = bytes.clone();
        skew[2..4].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            frame_len(&skew[..4]),
            Err(WireError::UnsupportedVersion { got: 9, .. })
        ));
        let mut bad_kind = bytes;
        bad_kind[4] = 0x7F;
        assert!(matches!(
            frame_len(&bad_kind[..5]),
            Err(WireError::UnknownKind { got: 0x7F })
        ));
    }

    #[test]
    fn assembler_reframes_arbitrary_chunks() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        // feed the concatenated stream one byte at a time — the
        // harshest split schedule — and expect every frame back intact
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.extend(&[b]);
            while let Some(frame) = asm.next_frame().expect("valid stream") {
                got.push(Frame::decode(frame).expect("whole frame"));
            }
        }
        assert_eq!(got, frames);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_refuses_desynced_streams() {
        // a valid frame followed by garbage at the next frame boundary:
        // the frame is handed out intact, then the desync is refused as
        // soon as two bytes of wrong magic exist — never handed out as
        // a frame, never panicked on
        let frame = sample_frames()[0].clone();
        let mut asm = FrameAssembler::new();
        asm.extend(&frame.encode());
        asm.extend(b"garbage");
        {
            let first = asm.next_frame().expect("valid frame").expect("complete");
            assert_eq!(Frame::decode(first), Ok(frame));
        }
        assert!(matches!(
            asm.next_frame(),
            Err(WireError::BadMagic { got: [b'g', b'a'] })
        ));
        asm.clear();
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn rejects_nested_batches() {
        // craft by hand — encode panics on nesting by design, so splice
        // a batch kind byte into a sub-frame header
        let outer = Frame {
            from: 0,
            to: 1,
            seq: 0,
            round: 4,
            payload: Payload::Batch(vec![SubFrame {
                seq: 0,
                round: 4,
                payload: Payload::Heartbeat,
            }]),
        };
        let mut bytes = outer.encode();
        // sub kind byte sits right after the header + count(4)
        bytes[HEADER_LEN + 4] = FrameKind::Batch as u8;
        assert_eq!(Frame::decode(&bytes), Err(WireError::NestedBatch));
        let mut reader = BatchReader::parse(&bytes).unwrap();
        assert!(matches!(
            reader.next_sub(),
            Some(Err(WireError::NestedBatch))
        ));
        assert!(reader.next_sub().is_none());
    }

    #[test]
    fn frame_buf_matches_frame_encode() {
        // the streaming writer and the owned-value encoder must produce
        // byte-identical frames
        let frame = &sample_frames()[8];
        let Payload::Batch(subs) = &frame.payload else {
            unreachable!()
        };
        let mut buf = FrameBuf::new();
        buf.begin(frame.from, frame.to, frame.round);
        for sub in subs {
            buf.begin_sub(sub.payload.kind(), sub.seq, sub.round);
            buf.put_payload(&sub.payload);
            buf.end_sub();
        }
        assert!(buf.finish());
        assert_eq!(buf.bytes().unwrap(), frame.encode().as_slice());
        assert_eq!(buf.sub_count(), subs.len() as u32);

        // an empty batch finishes to None and is never sent
        let mut empty = FrameBuf::new();
        empty.begin(0, 1, 9);
        assert!(!empty.finish());
        assert!(empty.bytes().is_none());
    }

    #[test]
    fn frame_buf_streaming_fields_round_trip() {
        // build a delta marginals sub field-by-field (the worker's hot
        // path) and a raw retransmit copy; decode must see both
        let mut buf = FrameBuf::new();
        buf.begin(2, 0, 31);
        buf.begin_sub(FrameKind::Marginals, 0, 31);
        buf.put_u64(30); // base
        let count_at = buf.mark_u32();
        buf.put_u32(1); // j
        buf.put_u32(7); // v
        buf.put_f64(2.5);
        buf.patch_u32(count_at, 1);
        buf.end_sub();
        let flight: Vec<u8> = buf.last_sub().to_vec();
        buf.push_raw_sub(&flight);
        assert!(buf.finish());
        let frame = Frame::decode(buf.bytes().unwrap()).unwrap();
        let Payload::Batch(subs) = frame.payload else {
            panic!("not a batch")
        };
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0], subs[1]);
        assert_eq!(
            subs[0].payload,
            Payload::Marginals {
                base: 30,
                entries: vec![MarginalEntry { j: 1, v: 7, d: 2.5 }]
            }
        );
    }

    #[test]
    fn batch_reader_walks_subs_in_place() {
        let frame = &sample_frames()[8];
        let bytes = frame.encode();
        let mut reader = BatchReader::parse(&bytes).unwrap();
        assert_eq!(reader.from(), 1);
        assert_eq!(reader.to(), 2);
        assert_eq!(reader.round(), 12);

        let sub = reader.next_sub().unwrap().unwrap();
        assert_eq!(sub.kind, FrameKind::Marginals);
        let mut entries = Vec::new();
        let base = walk_marginals(sub.payload, |e| entries.push(e)).unwrap();
        assert_eq!(base, 12);
        assert_eq!(entries, vec![MarginalEntry { j: 0, v: 1, d: 0.5 }]);

        let sub = reader.next_sub().unwrap().unwrap();
        assert_eq!((sub.kind, sub.seq), (FrameKind::GammaRows, 9));
        let mut edges = Vec::new();
        let base = walk_gamma_rows(
            sub.payload,
            |j, v| {
                assert_eq!((j, v), (0, 3));
                true
            },
            |_, _, l, phi| edges.push((l, phi)),
        )
        .unwrap();
        assert_eq!(base, 11);
        assert_eq!(edges, vec![(2, 1.0)]);

        let sub = reader.next_sub().unwrap().unwrap();
        assert_eq!(sub.kind, FrameKind::Ack);
        assert_eq!(parse_ack(sub.payload).unwrap(), 8);

        let sub = reader.next_sub().unwrap().unwrap();
        assert_eq!(sub.kind, FrameKind::Heartbeat);
        assert!(sub.payload.is_empty());

        assert!(reader.next_sub().is_none());
    }

    #[test]
    fn gamma_walker_validates_skipped_rows() {
        // a row the guard rejects is still length- and
        // finiteness-checked; only the edge callback is suppressed
        let payload_frame = Frame {
            from: 0,
            to: 1,
            seq: 1,
            round: 0,
            payload: Payload::GammaRows {
                base: 0,
                rows: vec![GammaRow {
                    j: 0,
                    v: 0,
                    edges: vec![(0, 0.5)],
                }],
            },
        };
        let bytes = payload_frame.encode();
        let payload = &bytes[HEADER_LEN..];
        let mut fired = false;
        walk_gamma_rows(payload, |_, _| false, |_, _, _, _| fired = true).unwrap();
        assert!(!fired);
        // same payload with a NaN fraction: refused even when skipped
        let mut corrupt = payload.to_vec();
        let float_at = corrupt.len() - 8;
        corrupt[float_at..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            walk_gamma_rows(&corrupt, |_, _| false, |_, _, _, _| ()),
            Err(WireError::NonFinite { .. })
        ));
    }
}
