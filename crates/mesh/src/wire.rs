//! The versioned wire format of the mesh.
//!
//! Region workers never share references — every marginal, Γ row, flow
//! forecast, and recovery snapshot crosses the transport as a
//! length-delimited byte frame in the format defined here, so the mesh
//! exercises real serialization boundaries even though the transport is
//! in-process. The format is explicit and versioned:
//!
//! ```text
//! magic   [u8; 2] = b"SM"
//! version u16     = WIRE_VERSION          (little-endian, like all ints)
//! kind    u8                              (FrameKind discriminant)
//! from    u16                             (sender region)
//! to      u16                             (destination region)
//! seq     u64                             (reliable-stream sequence; 0
//!                                          for unreliable kinds)
//! round   u64                             (iteration the frame belongs to)
//! len     u32                             (payload byte length)
//! payload [u8; len]                       (kind-specific, see Payload)
//! ```
//!
//! Floats travel as their IEEE-754 bit patterns (`f64::to_bits`,
//! little-endian) — encode→decode is *bit-identical*, which is what
//! lets the `Lossless` transport carry the bit-identity oracle. Decoding
//! validates everything it reads: magic, version skew (a structured
//! [`WireError::UnsupportedVersion`], never a panic), unknown kinds,
//! truncation, trailing bytes, and **non-finite floats** — a NaN or
//! ±Inf anywhere in a payload is refused at the boundary
//! ([`WireError::NonFinite`]) so corruption cannot enter a worker's
//! mirrors through the mesh.

use std::fmt;

/// The wire protocol version this build speaks. Decoders refuse frames
/// from any other version with [`WireError::UnsupportedVersion`].
pub const WIRE_VERSION: u16 = 1;

/// Frame magic: the first two bytes of every valid frame.
pub const MAGIC: [u8; 2] = *b"SM";

/// Frame kinds. The discriminant is the on-wire `kind` byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FrameKind {
    /// Liveness beacon (empty payload, unreliable).
    Heartbeat = 0,
    /// Marginal-cost broadcast for the sender's owned nodes
    /// (unreliable: listeners keep the last value heard).
    Marginals = 1,
    /// Changed Γ routing rows for the sender's owned routers (reliable:
    /// retransmitted until acknowledged).
    GammaRows = 2,
    /// Per-commodity admission/utility forecast from the commodity's
    /// owner region (unreliable).
    FlowForecast = 3,
    /// Cumulative acknowledgement of the reliable stream (unreliable —
    /// a lost ack just means one more retransmit).
    Ack = 4,
    /// A rejoining region asks a survivor for its state (reliable).
    RecoveryRequest = 5,
    /// A survivor's epoch-fenced state snapshot (reliable).
    RecoveryState = 6,
}

impl FrameKind {
    /// Whether frames of this kind ride the reliable (sequenced,
    /// retransmitted) stream.
    #[must_use]
    pub fn is_reliable(self) -> bool {
        matches!(
            self,
            FrameKind::GammaRows | FrameKind::RecoveryRequest | FrameKind::RecoveryState
        )
    }

    fn from_byte(byte: u8) -> Option<Self> {
        Some(match byte {
            0 => FrameKind::Heartbeat,
            1 => FrameKind::Marginals,
            2 => FrameKind::GammaRows,
            3 => FrameKind::FlowForecast,
            4 => FrameKind::Ack,
            5 => FrameKind::RecoveryRequest,
            6 => FrameKind::RecoveryState,
            _ => return None,
        })
    }

    /// Short name for traces and incident logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Heartbeat => "heartbeat",
            FrameKind::Marginals => "marginals",
            FrameKind::GammaRows => "gamma-rows",
            FrameKind::FlowForecast => "flow-forecast",
            FrameKind::Ack => "ack",
            FrameKind::RecoveryRequest => "recovery-request",
            FrameKind::RecoveryState => "recovery-state",
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One marginal-cost entry: node `v`'s commodity-`j` marginal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MarginalEntry {
    /// Commodity index.
    pub j: u32,
    /// Extended-node index.
    pub v: u32,
    /// The marginal cost `∂A/∂r_v(j)`.
    pub d: f64,
}

/// One Γ routing row: router `(j, v)`'s outgoing fractions.
#[derive(Clone, Debug, PartialEq)]
pub struct GammaRow {
    /// Commodity index.
    pub j: u32,
    /// Router (extended-node) index.
    pub v: u32,
    /// `(edge index, fraction)` pairs covering the router's out-edges.
    pub edges: Vec<(u32, f64)>,
}

/// One per-commodity forecast from the commodity's owner region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForecastEntry {
    /// Commodity index.
    pub j: u32,
    /// Admitted rate `a_j` under the owner's current mirror.
    pub admitted: f64,
    /// Utility `U_j(a_j)`.
    pub utility: f64,
}

/// A recovery snapshot: the survivor's full mirror state, epoch-fenced.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryStatePayload {
    /// The request token this snapshot answers.
    pub token: u64,
    /// Commodity-set epoch at capture (the restore fence).
    pub epoch: u64,
    /// Iteration counter at capture.
    pub iterations: u64,
    /// `cost.epsilon` at capture.
    pub epsilon: f64,
    /// `η` at capture.
    pub eta: f64,
    /// Routing fractions, flat row-major.
    pub phi: Vec<f64>,
    /// Node traffic rates, flat row-major.
    pub t: Vec<f64>,
    /// Per-edge commodity flows, flat row-major.
    pub x: Vec<f64>,
    /// Cross-commodity edge usage totals.
    pub f_edge: Vec<f64>,
    /// Cross-commodity node usage totals.
    pub f_node: Vec<f64>,
    /// Marginal costs, flat row-major.
    pub d: Vec<f64>,
}

/// A frame's kind-specific payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Empty liveness beacon.
    Heartbeat,
    /// Marginal broadcast entries.
    Marginals(Vec<MarginalEntry>),
    /// Changed Γ rows.
    GammaRows(Vec<GammaRow>),
    /// Owner forecasts.
    FlowForecast(Vec<ForecastEntry>),
    /// Cumulative ack: every reliable seq `<= cum` has been received.
    Ack {
        /// Highest contiguously-received reliable sequence number.
        cum: u64,
    },
    /// Recovery request with its fencing token.
    RecoveryRequest {
        /// Token echoed by the matching [`Payload::RecoveryState`].
        token: u64,
    },
    /// Recovery snapshot.
    RecoveryState(Box<RecoveryStatePayload>),
}

impl Payload {
    /// The wire kind this payload encodes as.
    #[must_use]
    pub fn kind(&self) -> FrameKind {
        match self {
            Payload::Heartbeat => FrameKind::Heartbeat,
            Payload::Marginals(_) => FrameKind::Marginals,
            Payload::GammaRows(_) => FrameKind::GammaRows,
            Payload::FlowForecast(_) => FrameKind::FlowForecast,
            Payload::Ack { .. } => FrameKind::Ack,
            Payload::RecoveryRequest { .. } => FrameKind::RecoveryRequest,
            Payload::RecoveryState(_) => FrameKind::RecoveryState,
        }
    }
}

/// One mesh frame: header plus payload. [`Frame::encode`] and
/// [`Frame::decode`] are exact inverses for every valid frame (pinned
/// by round-trip proptests).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Sender region.
    pub from: u16,
    /// Destination region.
    pub to: u16,
    /// Reliable-stream sequence number (0 for unreliable kinds).
    pub seq: u64,
    /// Iteration the frame belongs to (the staleness watermark key).
    pub round: u64,
    /// Kind-specific payload.
    pub payload: Payload,
}

/// Structured decode errors. Every malformed input is refused with one
/// of these — decoding never panics on untrusted bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Fewer bytes than the field being read required.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found.
        got: [u8; 2],
    },
    /// The frame's protocol version is not spoken by this build.
    UnsupportedVersion {
        /// Version on the wire.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The kind byte maps to no known [`FrameKind`].
    UnknownKind {
        /// The byte found.
        got: u8,
    },
    /// A float field decoded to NaN or ±Inf.
    NonFinite {
        /// Which payload field family.
        what: &'static str,
        /// Index of the offending float within that family.
        index: usize,
    },
    /// Bytes remained after the declared payload length was consumed.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The payload's declared length disagrees with its contents.
    BadLength {
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, {got} remain")
            }
            WireError::BadMagic { got } => write!(f, "bad magic {got:?}"),
            WireError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {supported})"
                )
            }
            WireError::UnknownKind { got } => write!(f, "unknown frame kind {got}"),
            WireError::NonFinite { what, index } => {
                write!(f, "non-finite float in {what} at index {index}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            WireError::BadLength { what } => write!(f, "inconsistent length in {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// --- encoding ---------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64_slice(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f64(out, v);
    }
}

impl Frame {
    /// Encodes the frame into its on-wire byte representation.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match &self.payload {
            Payload::Heartbeat => {}
            Payload::Marginals(entries) => {
                put_u32(&mut payload, entries.len() as u32);
                for e in entries {
                    put_u32(&mut payload, e.j);
                    put_u32(&mut payload, e.v);
                    put_f64(&mut payload, e.d);
                }
            }
            Payload::GammaRows(rows) => {
                put_u32(&mut payload, rows.len() as u32);
                for row in rows {
                    put_u32(&mut payload, row.j);
                    put_u32(&mut payload, row.v);
                    put_u32(&mut payload, row.edges.len() as u32);
                    for &(l, phi) in &row.edges {
                        put_u32(&mut payload, l);
                        put_f64(&mut payload, phi);
                    }
                }
            }
            Payload::FlowForecast(entries) => {
                put_u32(&mut payload, entries.len() as u32);
                for e in entries {
                    put_u32(&mut payload, e.j);
                    put_f64(&mut payload, e.admitted);
                    put_f64(&mut payload, e.utility);
                }
            }
            Payload::Ack { cum } => put_u64(&mut payload, *cum),
            Payload::RecoveryRequest { token } => put_u64(&mut payload, *token),
            Payload::RecoveryState(s) => {
                put_u64(&mut payload, s.token);
                put_u64(&mut payload, s.epoch);
                put_u64(&mut payload, s.iterations);
                put_f64(&mut payload, s.epsilon);
                put_f64(&mut payload, s.eta);
                put_f64_slice(&mut payload, &s.phi);
                put_f64_slice(&mut payload, &s.t);
                put_f64_slice(&mut payload, &s.x);
                put_f64_slice(&mut payload, &s.f_edge);
                put_f64_slice(&mut payload, &s.f_node);
                put_f64_slice(&mut payload, &s.d);
            }
        }
        let mut out = Vec::with_capacity(27 + payload.len());
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, WIRE_VERSION);
        out.push(self.payload.kind() as u8);
        put_u16(&mut out, self.from);
        put_u16(&mut out, self.to);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.round);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a frame, validating magic, version, kind, lengths, and
    /// float finiteness.
    ///
    /// # Errors
    ///
    /// A [`WireError`] describing the first problem found; malformed
    /// bytes never panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader { buf: bytes, at: 0 };
        let magic = [r.u8()?, r.u8()?];
        if magic != MAGIC {
            return Err(WireError::BadMagic { got: magic });
        }
        let version = r.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                got: version,
                supported: WIRE_VERSION,
            });
        }
        let kind_byte = r.u8()?;
        let kind =
            FrameKind::from_byte(kind_byte).ok_or(WireError::UnknownKind { got: kind_byte })?;
        let from = r.u16()?;
        let to = r.u16()?;
        let seq = r.u64()?;
        let round = r.u64()?;
        let len = r.u32()? as usize;
        if r.remaining() < len {
            return Err(WireError::Truncated {
                needed: len,
                got: r.remaining(),
            });
        }
        let payload_end = r.at + len;
        let payload = match kind {
            FrameKind::Heartbeat => Payload::Heartbeat,
            FrameKind::Marginals => {
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(r.remaining() / 16));
                for i in 0..n {
                    entries.push(MarginalEntry {
                        j: r.u32()?,
                        v: r.u32()?,
                        d: r.finite_f64("marginals", i)?,
                    });
                }
                Payload::Marginals(entries)
            }
            FrameKind::GammaRows => {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(r.remaining() / 12));
                let mut floats = 0usize;
                for _ in 0..n {
                    let j = r.u32()?;
                    let v = r.u32()?;
                    let e = r.u32()? as usize;
                    let mut edges = Vec::with_capacity(e.min(r.remaining() / 12));
                    for _ in 0..e {
                        let l = r.u32()?;
                        let phi = r.finite_f64("gamma-rows", floats)?;
                        floats += 1;
                        edges.push((l, phi));
                    }
                    rows.push(GammaRow { j, v, edges });
                }
                Payload::GammaRows(rows)
            }
            FrameKind::FlowForecast => {
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(r.remaining() / 20));
                for i in 0..n {
                    entries.push(ForecastEntry {
                        j: r.u32()?,
                        admitted: r.finite_f64("forecast", 2 * i)?,
                        utility: r.finite_f64("forecast", 2 * i + 1)?,
                    });
                }
                Payload::FlowForecast(entries)
            }
            FrameKind::Ack => Payload::Ack { cum: r.u64()? },
            FrameKind::RecoveryRequest => Payload::RecoveryRequest { token: r.u64()? },
            FrameKind::RecoveryState => {
                let token = r.u64()?;
                let epoch = r.u64()?;
                let iterations = r.u64()?;
                let epsilon = r.finite_f64("recovery-epsilon", 0)?;
                let eta = r.finite_f64("recovery-eta", 0)?;
                let phi = r.finite_f64_vec("recovery-phi")?;
                let t = r.finite_f64_vec("recovery-t")?;
                let x = r.finite_f64_vec("recovery-x")?;
                let f_edge = r.finite_f64_vec("recovery-f-edge")?;
                let f_node = r.finite_f64_vec("recovery-f-node")?;
                let d = r.finite_f64_vec("recovery-d")?;
                Payload::RecoveryState(Box::new(RecoveryStatePayload {
                    token,
                    epoch,
                    iterations,
                    epsilon,
                    eta,
                    phi,
                    t,
                    x,
                    f_edge,
                    f_node,
                    d,
                }))
            }
        };
        if r.at != payload_end {
            return Err(WireError::BadLength { what: kind.name() });
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(Frame {
            from,
            to,
            seq,
            round,
            payload,
        })
    }

    /// Reads just the kind byte of an encoded frame (transports use it
    /// to label fault incidents without a full decode).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::UnknownKind`].
    pub fn peek_kind(bytes: &[u8]) -> Result<FrameKind, WireError> {
        let byte = *bytes.get(4).ok_or(WireError::Truncated {
            needed: 5,
            got: bytes.len(),
        })?;
        FrameKind::from_byte(byte).ok_or(WireError::UnknownKind { got: byte })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn finite_f64(&mut self, what: &'static str, index: usize) -> Result<f64, WireError> {
        let v = f64::from_bits(self.u64()?);
        if !v.is_finite() {
            return Err(WireError::NonFinite { what, index });
        }
        Ok(v)
    }

    fn finite_f64_vec(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 8));
        for i in 0..n {
            out.push(self.finite_f64(what, i)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame {
                from: 0,
                to: 1,
                seq: 0,
                round: 3,
                payload: Payload::Heartbeat,
            },
            Frame {
                from: 2,
                to: 0,
                seq: 0,
                round: 7,
                payload: Payload::Marginals(vec![
                    MarginalEntry {
                        j: 0,
                        v: 4,
                        d: 1.25,
                    },
                    MarginalEntry {
                        j: 1,
                        v: 9,
                        d: -3.5e-9,
                    },
                ]),
            },
            Frame {
                from: 1,
                to: 3,
                seq: 42,
                round: 7,
                payload: Payload::GammaRows(vec![GammaRow {
                    j: 2,
                    v: 11,
                    edges: vec![(5, 0.25), (9, 0.75)],
                }]),
            },
            Frame {
                from: 3,
                to: 2,
                seq: 0,
                round: 8,
                payload: Payload::FlowForecast(vec![ForecastEntry {
                    j: 1,
                    admitted: 4.5,
                    utility: 9.0,
                }]),
            },
            Frame {
                from: 0,
                to: 2,
                seq: 0,
                round: 8,
                payload: Payload::Ack { cum: 41 },
            },
            Frame {
                from: 1,
                to: 0,
                seq: 43,
                round: 9,
                payload: Payload::RecoveryRequest { token: 77 },
            },
            Frame {
                from: 0,
                to: 1,
                seq: 17,
                round: 9,
                payload: Payload::RecoveryState(Box::new(RecoveryStatePayload {
                    token: 77,
                    epoch: 2,
                    iterations: 120,
                    epsilon: 5e-4,
                    eta: 0.04,
                    phi: vec![0.0, 0.5, 0.5],
                    t: vec![1.0, 2.0],
                    x: vec![0.25; 3],
                    f_edge: vec![3.5],
                    f_node: vec![0.75, 1.5],
                    d: vec![0.1, 0.2],
                })),
            },
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            assert_eq!(Frame::peek_kind(&bytes).unwrap(), frame.payload.kind());
            let back = Frame::decode(&bytes).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn rejects_bad_magic_version_kind() {
        let mut bytes = sample_frames()[0].encode();
        let orig = bytes.clone();
        bytes[0] = b'X';
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadMagic { .. })
        ));
        bytes = orig.clone();
        bytes[2] = 0xFF; // version low byte
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::UnsupportedVersion {
                got: u16::from_le_bytes([0xFF, 0]),
                supported: WIRE_VERSION
            })
        );
        bytes = orig;
        bytes[4] = 0x7F; // kind
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::UnknownKind { got: 0x7F })
        );
    }

    #[test]
    fn rejects_non_finite_floats() {
        let frame = Frame {
            from: 0,
            to: 1,
            seq: 0,
            round: 0,
            payload: Payload::Marginals(vec![MarginalEntry { j: 0, v: 0, d: 1.0 }]),
        };
        let mut bytes = frame.encode();
        let float_at = bytes.len() - 8;
        bytes[float_at..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::NonFinite {
                what: "marginals",
                index: 0
            })
        );
        bytes[float_at..].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::NonFinite { .. })
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let bytes = sample_frames()[2].encode();
        for cut in 1..bytes.len() {
            assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut extended = bytes;
        extended.push(0);
        assert!(Frame::decode(&extended).is_err());
    }
}
