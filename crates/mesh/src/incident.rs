//! The mesh incident log: every fault the transport injected and every
//! protocol reaction a worker took, in one deterministic, serializable
//! stream.
//!
//! Semantics are `ChaosGradient`-compatible (`spn_sim::chaos`): a lost
//! broadcast means listeners act on the last value heard; a duplicate or
//! stale delivery is *detected* and discarded rather than applied twice;
//! a partition degrades peers to suspect instead of stalling the
//! survivors. Like [`spn_sim::ChaosIncident`], every variant is
//! serde-serializable so incident logs can be rendered to JSON and
//! diffed byte-for-byte across CI runs.

use crate::wire::FrameKind;
use serde::Serialize;

/// One entry of the mesh incident log.
///
/// Regions are identified by index; `tick` is the transport wall clock
/// (three ticks per iteration — marginal, Γ, and flow sub-rounds).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeshIncident {
    /// A scheduled partition cut every link of `region`.
    PartitionStarted {
        /// Wall-clock tick.
        tick: u64,
        /// The isolated region.
        region: usize,
    },
    /// One link of a partitioned region healed (heals are staggered).
    LinkHealed {
        /// Wall-clock tick.
        tick: u64,
        /// The partitioned region.
        region: usize,
        /// The peer whose link came back.
        peer: usize,
    },
    /// Every link of the partitioned region has healed.
    PartitionHealed {
        /// Wall-clock tick.
        tick: u64,
        /// The formerly isolated region.
        region: usize,
    },
    /// The transport dropped a frame in flight.
    FrameLost {
        /// Wall-clock tick.
        tick: u64,
        /// Sender region.
        from: usize,
        /// Destination region.
        to: usize,
        /// Frame kind.
        kind: FrameKind,
    },
    /// The transport delivered a frame twice.
    FrameDuplicated {
        /// Wall-clock tick.
        tick: u64,
        /// Sender region.
        from: usize,
        /// Destination region.
        to: usize,
        /// Frame kind.
        kind: FrameKind,
    },
    /// The transport held a frame back beyond the next tick.
    FrameDelayed {
        /// Wall-clock tick of the send.
        tick: u64,
        /// Sender region.
        from: usize,
        /// Destination region.
        to: usize,
        /// Frame kind.
        kind: FrameKind,
        /// Tick at which the frame becomes deliverable.
        until: u64,
    },
    /// A receiver discarded a frame older than its round watermark.
    StaleFrameDiscarded {
        /// Wall-clock tick.
        tick: u64,
        /// The discarding region.
        region: usize,
        /// The frame's sender.
        from: usize,
        /// Frame kind.
        kind: FrameKind,
        /// The frame's (stale) round.
        round: u64,
    },
    /// A receiver discarded an already-seen frame (transport duplicate
    /// or redundant retransmit).
    DuplicateFrameDiscarded {
        /// Wall-clock tick.
        tick: u64,
        /// The discarding region.
        region: usize,
        /// The frame's sender.
        from: usize,
        /// Frame kind.
        kind: FrameKind,
    },
    /// An unacknowledged reliable frame was retransmitted (capped
    /// exponential backoff).
    Retransmitted {
        /// Wall-clock tick.
        tick: u64,
        /// Sender region.
        from: usize,
        /// Destination region.
        to: usize,
        /// The frame's reliable sequence number.
        seq: u64,
        /// Retransmit attempt count (1 = first retry).
        attempt: u32,
    },
    /// A region stopped hearing from a peer and degraded it to suspect
    /// (the region keeps iterating on the peer's last-known state).
    PeerSuspect {
        /// Wall-clock tick.
        tick: u64,
        /// The observing region.
        region: usize,
        /// The silent peer.
        peer: usize,
    },
    /// A suspect peer was heard from again.
    PeerRecovered {
        /// Wall-clock tick.
        tick: u64,
        /// The observing region.
        region: usize,
        /// The recovered peer.
        peer: usize,
    },
    /// A receiver detected a gap in a delta broadcast chain (a delta
    /// frame named a predecessor round the receiver never applied) and
    /// asked the sender for full frames (ARCHITECTURE invariant 20).
    ResyncRequested {
        /// Wall-clock tick.
        tick: u64,
        /// The region that detected the gap.
        region: usize,
        /// The sender asked for a full frame.
        peer: usize,
        /// The broadcast kind whose chain broke.
        kind: FrameKind,
    },
    /// A formerly isolated region asked a survivor for state.
    RecoveryRequested {
        /// Wall-clock tick.
        tick: u64,
        /// The rejoining region.
        region: usize,
        /// The survivor asked.
        survivor: usize,
        /// The fencing token echoed by the snapshot.
        token: u64,
    },
    /// A survivor captured and sent its state snapshot.
    RecoveryServed {
        /// Wall-clock tick.
        tick: u64,
        /// The serving survivor.
        region: usize,
        /// The rejoining peer served.
        peer: usize,
        /// The fencing token.
        token: u64,
        /// Bit-digest of the routing state captured (compare with the
        /// matching [`MeshIncident::RecoveryCompleted`] digest to pin
        /// bit-for-bit restoration).
        digest: u64,
    },
    /// A rejoining region applied a survivor snapshot through the epoch
    /// fence.
    RecoveryCompleted {
        /// Wall-clock tick.
        tick: u64,
        /// The rejoined region.
        region: usize,
        /// Commodity-set epoch of the applied snapshot.
        epoch: u64,
        /// Bit-digest of the routing state after the restore.
        digest: u64,
    },
    /// A destination's per-tick inbox byte budget was exhausted and a
    /// frame was refused instead of growing the arena past its
    /// high-water mark (duplicate-flood backpressure; the refusal path
    /// itself allocates nothing).
    InboxOverflow {
        /// Wall-clock tick.
        tick: u64,
        /// The destination whose inbox refused the frame.
        region: usize,
        /// The refused frame's sender.
        from: usize,
        /// The refused frame's byte length.
        dropped: u64,
    },
    /// A region's phase deadline expired before every peer's traffic
    /// for the tick was known complete; the region advanced with what
    /// had arrived, degrading to last-known peer state instead of
    /// stalling (socket transport only — in-process transports are
    /// always ready behind their synchronous barrier).
    PhaseDeadlineExpired {
        /// Wall-clock tick.
        tick: u64,
        /// The region that stopped waiting.
        region: usize,
    },
    /// A receiver discarded an undecodable batch instead of panicking.
    /// In-process transports never hand a worker corrupt bytes; a
    /// desynced byte stream could, and the protocol treats it like a
    /// lost frame (retransmission and the periodic refresh re-anchor).
    MalformedFrameDiscarded {
        /// Wall-clock tick.
        tick: u64,
        /// The discarding region.
        region: usize,
        /// The decoder's structured reason, rendered.
        error: String,
    },
}

impl Serialize for MeshIncident {
    fn to_value(&self) -> serde::Value {
        fn tag(kind: &str, fields: &[(&str, u64)]) -> serde::Value {
            let mut entries = vec![("kind".to_owned(), serde::Value::Str(kind.to_owned()))];
            for &(name, v) in fields {
                entries.push((name.to_owned(), v.to_value()));
            }
            serde::Value::Map(entries)
        }
        fn frame_kind(entries: &mut serde::Value, kind: FrameKind) {
            if let serde::Value::Map(map) = entries {
                map.push((
                    "frame".to_owned(),
                    serde::Value::Str(kind.name().to_owned()),
                ));
            }
        }
        match *self {
            MeshIncident::PartitionStarted { tick, region } => tag(
                "PartitionStarted",
                &[("tick", tick), ("region", region as u64)],
            ),
            MeshIncident::LinkHealed { tick, region, peer } => tag(
                "LinkHealed",
                &[
                    ("tick", tick),
                    ("region", region as u64),
                    ("peer", peer as u64),
                ],
            ),
            MeshIncident::PartitionHealed { tick, region } => tag(
                "PartitionHealed",
                &[("tick", tick), ("region", region as u64)],
            ),
            MeshIncident::FrameLost {
                tick,
                from,
                to,
                kind,
            } => {
                let mut v = tag(
                    "FrameLost",
                    &[("tick", tick), ("from", from as u64), ("to", to as u64)],
                );
                frame_kind(&mut v, kind);
                v
            }
            MeshIncident::FrameDuplicated {
                tick,
                from,
                to,
                kind,
            } => {
                let mut v = tag(
                    "FrameDuplicated",
                    &[("tick", tick), ("from", from as u64), ("to", to as u64)],
                );
                frame_kind(&mut v, kind);
                v
            }
            MeshIncident::FrameDelayed {
                tick,
                from,
                to,
                kind,
                until,
            } => {
                let mut v = tag(
                    "FrameDelayed",
                    &[
                        ("tick", tick),
                        ("from", from as u64),
                        ("to", to as u64),
                        ("until", until),
                    ],
                );
                frame_kind(&mut v, kind);
                v
            }
            MeshIncident::StaleFrameDiscarded {
                tick,
                region,
                from,
                kind,
                round,
            } => {
                let mut v = tag(
                    "StaleFrameDiscarded",
                    &[
                        ("tick", tick),
                        ("region", region as u64),
                        ("from", from as u64),
                        ("round", round),
                    ],
                );
                frame_kind(&mut v, kind);
                v
            }
            MeshIncident::DuplicateFrameDiscarded {
                tick,
                region,
                from,
                kind,
            } => {
                let mut v = tag(
                    "DuplicateFrameDiscarded",
                    &[
                        ("tick", tick),
                        ("region", region as u64),
                        ("from", from as u64),
                    ],
                );
                frame_kind(&mut v, kind);
                v
            }
            MeshIncident::Retransmitted {
                tick,
                from,
                to,
                seq,
                attempt,
            } => tag(
                "Retransmitted",
                &[
                    ("tick", tick),
                    ("from", from as u64),
                    ("to", to as u64),
                    ("seq", seq),
                    ("attempt", u64::from(attempt)),
                ],
            ),
            MeshIncident::PeerSuspect { tick, region, peer } => tag(
                "PeerSuspect",
                &[
                    ("tick", tick),
                    ("region", region as u64),
                    ("peer", peer as u64),
                ],
            ),
            MeshIncident::PeerRecovered { tick, region, peer } => tag(
                "PeerRecovered",
                &[
                    ("tick", tick),
                    ("region", region as u64),
                    ("peer", peer as u64),
                ],
            ),
            MeshIncident::ResyncRequested {
                tick,
                region,
                peer,
                kind,
            } => {
                let mut v = tag(
                    "ResyncRequested",
                    &[
                        ("tick", tick),
                        ("region", region as u64),
                        ("peer", peer as u64),
                    ],
                );
                frame_kind(&mut v, kind);
                v
            }
            MeshIncident::RecoveryRequested {
                tick,
                region,
                survivor,
                token,
            } => tag(
                "RecoveryRequested",
                &[
                    ("tick", tick),
                    ("region", region as u64),
                    ("survivor", survivor as u64),
                    ("token", token),
                ],
            ),
            MeshIncident::RecoveryServed {
                tick,
                region,
                peer,
                token,
                digest,
            } => {
                // digests use the full 64-bit range, beyond f64's exact
                // integers — render as hex strings
                let mut v = tag(
                    "RecoveryServed",
                    &[
                        ("tick", tick),
                        ("region", region as u64),
                        ("peer", peer as u64),
                        ("token", token),
                    ],
                );
                if let serde::Value::Map(map) = &mut v {
                    map.push((
                        "digest".to_owned(),
                        serde::Value::Str(format!("{digest:016x}")),
                    ));
                }
                v
            }
            MeshIncident::RecoveryCompleted {
                tick,
                region,
                epoch,
                digest,
            } => {
                let mut v = tag(
                    "RecoveryCompleted",
                    &[("tick", tick), ("region", region as u64), ("epoch", epoch)],
                );
                if let serde::Value::Map(map) = &mut v {
                    map.push((
                        "digest".to_owned(),
                        serde::Value::Str(format!("{digest:016x}")),
                    ));
                }
                v
            }
            MeshIncident::InboxOverflow {
                tick,
                region,
                from,
                dropped,
            } => tag(
                "InboxOverflow",
                &[
                    ("tick", tick),
                    ("region", region as u64),
                    ("from", from as u64),
                    ("dropped", dropped),
                ],
            ),
            MeshIncident::PhaseDeadlineExpired { tick, region } => tag(
                "PhaseDeadlineExpired",
                &[("tick", tick), ("region", region as u64)],
            ),
            MeshIncident::MalformedFrameDiscarded {
                tick,
                region,
                ref error,
            } => {
                let mut v = tag(
                    "MalformedFrameDiscarded",
                    &[("tick", tick), ("region", region as u64)],
                );
                if let serde::Value::Map(map) = &mut v {
                    map.push(("error".to_owned(), serde::Value::Str(error.clone())));
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incidents_render_deterministically() {
        let log = vec![
            MeshIncident::PartitionStarted { tick: 9, region: 2 },
            MeshIncident::FrameLost {
                tick: 10,
                from: 2,
                to: 0,
                kind: FrameKind::GammaRows,
            },
            MeshIncident::RecoveryCompleted {
                tick: 40,
                region: 2,
                epoch: 0,
                digest: 0xDEAD,
            },
        ];
        let a = serde_json::to_string(&log).unwrap();
        let b = serde_json::to_string(&log).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"PartitionStarted\""));
        assert!(a.contains("\"gamma-rows\""));
    }
}
