//! Region-sharded mesh runtime for the gradient algorithm.
//!
//! Splits a hierarchical instance's nodes across region workers that
//! run local sweeps and exchange **serialized** marginal / Γ /
//! flow-forecast messages over an in-process transport. Two transports
//! back the two oracles:
//!
//! * [`Lossless`] — synchronous barriers; the mesh trajectory is
//!   **bit-identical** to `spn_core::GradientAlgorithm`.
//! * [`Chaotic`] — seeded per-link loss, duplication, bounded delay,
//!   and region partitions with staggered heal; the run emits a
//!   deterministic, serializable [`MeshIncident`] log and still reaches
//!   the same convergence verdict within tier-2 tolerance.
//!
//! Robustness machinery: per-message sequence numbers with
//! retry-under-capped-exponential-backoff for reliable frames,
//! per-region heartbeat timeouts that degrade silent peers to suspect
//! (iteration continues on last-known Γ), and epoch-fenced
//! checkpoint/recovery so a rejoining region restores survivor state
//! bit-for-bit.
//!
//! The wire path (format v2) is **delta-encoded, coalesced, and
//! pooled**: each worker fingerprints the exact bits last shipped per
//! link and sends only changed rows, inside one batched frame per
//! (link, tick), with every buffer reused across ticks — the
//! converged lossless steady state ships a heartbeat-sized batch per
//! link per iteration and allocates nothing. A periodic full refresh
//! plus a receiver-driven resync request ([`Payload::Resend`])
//! re-anchor any delta chain a lossy link breaks (ARCHITECTURE
//! invariant 20: suppression never changes received values, only
//! whether the bytes travel).
//!
//! Module map:
//!
//! * [`wire`] — versioned binary frame format with validating decode.
//! * [`transport`] — the [`Transport`] trait, [`Lossless`], [`Chaotic`].
//! * [`fault`] — seeded fault plan ([`MeshFaultConfig`]).
//! * [`incident`] — the [`MeshIncident`] log entries.
//! * [`worker`] — one region's mirrors, reliability state, and phases.
//! * [`recovery`] — state digests and snapshot encode/apply.
//! * [`runtime`] — [`MeshRuntime`]: configuration, tick loop, report.

pub mod fault;
pub mod incident;
pub mod recovery;
pub mod runtime;
pub mod transport;
pub mod wire;
pub mod worker;

pub use fault::{MeshFaultConfig, MeshFaultPlan, PartitionSpec};
pub use incident::MeshIncident;
pub use runtime::{MeshConfig, MeshError, MeshReport, MeshRuntime};
pub use transport::{Chaotic, Inbox, Lossless, Transport};
pub use wire::{
    BatchReader, Frame, FrameBuf, FrameKind, Payload, SubFrame, SubView, WireError, WIRE_VERSION,
};
pub use worker::{LinkWireStats, MeshWireStats, RegionWorker};
