//! Region-sharded mesh runtime for the gradient algorithm.
//!
//! Splits a hierarchical instance's nodes across region workers that
//! run local sweeps and exchange **serialized** marginal / Γ /
//! flow-forecast messages over a pluggable transport. Three transports
//! back the oracles:
//!
//! * [`Lossless`] — synchronous barriers; the mesh trajectory is
//!   **bit-identical** to `spn_core::GradientAlgorithm`.
//! * [`Chaotic`] — seeded per-link loss, duplication, bounded delay,
//!   and region partitions with staggered heal; the run emits a
//!   deterministic, serializable [`MeshIncident`] log and still reaches
//!   the same convergence verdict within tier-2 tolerance.
//! * [`SocketTransport`] — real kernel byte streams (TCP or
//!   Unix-domain, per [`SocketKind`]) carrying the same wire-v2 frames
//!   inside `(deliver_tick, order)` stream records, with per-peer tick
//!   markers replacing the barrier. A loopback socket run replays the
//!   in-process delivery order exactly, so both oracles above transfer
//!   across the kernel (ARCHITECTURE invariant 21); its
//!   [`FaultyStream`] links apply the same seeded [`MeshFaultConfig`]
//!   draws netem-style, before bytes hit the socket.
//!
//! Robustness machinery: per-message sequence numbers with
//! retry-under-capped-exponential-backoff for reliable frames,
//! per-region heartbeat timeouts that degrade silent peers to suspect
//! (iteration continues on last-known Γ), and epoch-fenced
//! checkpoint/recovery so a rejoining region restores survivor state
//! bit-for-bit.
//!
//! The wire path (format v2) is **delta-encoded, coalesced, and
//! pooled**: each worker fingerprints the exact bits last shipped per
//! link and sends only changed rows, inside one batched frame per
//! (link, tick), with every buffer reused across ticks — the
//! converged lossless steady state ships a heartbeat-sized batch per
//! link per iteration and allocates nothing. A periodic full refresh
//! plus a receiver-driven resync request ([`Payload::Resend`])
//! re-anchor any delta chain a lossy link breaks (ARCHITECTURE
//! invariant 20: suppression never changes received values, only
//! whether the bytes travel).
//!
//! Module map:
//!
//! * [`wire`] — versioned binary frame format with validating decode
//!   and incremental stream reframing ([`FrameAssembler`]).
//! * [`transport`] — the [`Transport`] trait, [`Lossless`], [`Chaotic`].
//! * [`socket`] — [`SocketTransport`] over TCP / Unix-domain streams.
//! * [`fault`] — seeded fault plan ([`MeshFaultConfig`]).
//! * [`incident`] — the [`MeshIncident`] log entries.
//! * [`worker`] — one region's mirrors, reliability state, and phases.
//! * [`recovery`] — state digests and snapshot encode/apply.
//! * [`runtime`] — [`MeshRuntime`]: configuration, tick loop, report.

pub mod fault;
pub mod incident;
pub mod recovery;
pub mod runtime;
pub mod socket;
pub mod transport;
pub mod wire;
pub mod worker;

pub use fault::{MeshFaultConfig, MeshFaultPlan, PartitionSpec};
pub use incident::MeshIncident;
pub use runtime::{MeshConfig, MeshError, MeshReport, MeshRuntime};
pub use socket::{FaultyStream, SocketKind, SocketOptions, SocketTransport};
pub use transport::{Chaotic, Inbox, Lossless, Transport};
pub use wire::{
    frame_len, BatchReader, Frame, FrameAssembler, FrameBuf, FrameKind, Payload, SubFrame, SubView,
    WireError, WIRE_VERSION,
};
pub use worker::{LinkWireStats, MeshWireStats, RegionWorker};
