//! The mesh transport's seeded fault plan.
//!
//! Same discipline as `spn_sim::chaos::FaultPlan`, same primitives
//! ([`spn_sim::draws`]): every decision is a pure function of
//! `(seed, wall-clock tick, link)`, so a scenario is a value, not a
//! log. Draws are keyed on the transport **tick**, which never rolls
//! back — a retransmitted frame at a later tick is a *fresh* draw, so a
//! retry never replays the fault that consumed its predecessor, and the
//! retry-with-backoff loop always terminates under sub-certain loss.
//!
//! Partitions cut every link of one region for a window and heal
//! **staggered**: each link gets its own seeded heal offset, so the
//! rejoining region first hears from one survivor while others are
//! still dark — exactly the asymmetric-visibility window the recovery
//! protocol has to survive.

use spn_sim::draws::{bounded_age, coin, salts, unit_hash};

/// Salt for the staggered-heal per-link offset draws (a mesh-local coin
/// family layered on the shared generator).
const SALT_HEAL: u64 = 0x6865_616C_6865_616C; // "heal"

/// One scheduled region partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// The region whose links are cut.
    pub region: usize,
    /// Tick at which every link of `region` goes dark.
    pub at: u64,
    /// Minimum dark window in ticks.
    pub duration: u64,
    /// Maximum extra per-link ticks before a link heals (`0` = all
    /// links heal together at `at + duration`).
    pub heal_stagger: u64,
}

/// Tunables of the chaotic transport. Probabilities are per
/// `(tick, link)`; everything is drawn deterministically from `seed`.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshFaultConfig {
    /// Seed of every pseudo-random draw.
    pub seed: u64,
    /// Probability that a frame is dropped in flight.
    pub loss: f64,
    /// Probability that a frame is delivered twice.
    pub duplicate: f64,
    /// Probability that a frame is delayed beyond the next tick.
    pub delay_prob: f64,
    /// Maximum extra delay in ticks; `0` disables delay regardless of
    /// `delay_prob`.
    pub max_delay: u64,
    /// Scheduled region partitions.
    pub partitions: Vec<PartitionSpec>,
}

impl MeshFaultConfig {
    /// Everything off. A `Chaotic` transport under this plan delivers
    /// exactly like `Lossless`.
    #[must_use]
    pub fn off() -> Self {
        MeshFaultConfig {
            seed: 0,
            loss: 0.0,
            duplicate: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            partitions: Vec::new(),
        }
    }
}

impl Default for MeshFaultConfig {
    fn default() -> Self {
        MeshFaultConfig::off()
    }
}

/// The compiled plan: pure query functions plus the pre-computed
/// per-link heal schedule.
#[derive(Clone, Debug)]
pub struct MeshFaultPlan {
    seed: u64,
    loss: f64,
    duplicate: f64,
    delay_prob: f64,
    max_delay: u64,
    /// Sorted by `at`; each with its per-peer heal ticks.
    partitions: Vec<CompiledPartition>,
}

#[derive(Clone, Debug)]
pub(crate) struct CompiledPartition {
    pub region: usize,
    pub at: u64,
    /// Heal tick per peer region (index = peer id; the entry for
    /// `region` itself is unused).
    pub heal: Vec<u64>,
    /// `max(heal)` — when the partition is fully healed.
    pub healed_at: u64,
}

impl MeshFaultPlan {
    /// Compiles a config for a mesh of `regions` workers: sorts the
    /// partition schedule and draws each link's staggered heal tick.
    #[must_use]
    pub fn compile(cfg: &MeshFaultConfig, regions: usize) -> Self {
        let mut specs = cfg.partitions.clone();
        specs.sort_by_key(|p| (p.at, p.region));
        let partitions = specs
            .iter()
            .map(|p| {
                let base = p.at + p.duration;
                let heal: Vec<u64> = (0..regions)
                    .map(|peer| {
                        if peer == p.region || p.heal_stagger == 0 {
                            base
                        } else {
                            // per-link offset in 0..=heal_stagger, keyed on
                            // the partition window and the unordered link
                            let (a, b) = (p.region.min(peer), p.region.max(peer));
                            let draw = unit_hash(cfg.seed ^ SALT_HEAL, p.at as usize, a, b);
                            base + (draw * (p.heal_stagger + 1) as f64) as u64
                        }
                    })
                    .collect();
                let healed_at = heal
                    .iter()
                    .enumerate()
                    .filter(|&(peer, _)| peer != p.region)
                    .map(|(_, &h)| h)
                    .max()
                    .unwrap_or(base);
                CompiledPartition {
                    region: p.region,
                    at: p.at,
                    heal,
                    healed_at,
                }
            })
            .collect();
        MeshFaultPlan {
            seed: cfg.seed,
            loss: cfg.loss,
            duplicate: cfg.duplicate,
            delay_prob: cfg.delay_prob,
            max_delay: cfg.max_delay,
            partitions,
        }
    }

    /// Is the `from → to` link severed by a partition at `tick`?
    #[must_use]
    pub fn link_blocked(&self, tick: u64, from: usize, to: usize) -> bool {
        self.partitions.iter().any(|p| {
            let peer = if p.region == from {
                to
            } else if p.region == to {
                from
            } else {
                return false;
            };
            tick >= p.at && tick < p.heal[peer]
        })
    }

    /// Is this frame dropped in flight?
    #[must_use]
    pub fn drops_frame(&self, tick: u64, from: usize, to: usize) -> bool {
        coin(
            self.seed,
            salts::SALT_LOSS,
            self.loss,
            tick as usize,
            from,
            to,
        )
    }

    /// Is this frame delivered twice?
    #[must_use]
    pub fn duplicates_frame(&self, tick: u64, from: usize, to: usize) -> bool {
        coin(
            self.seed,
            salts::SALT_DUP,
            self.duplicate,
            tick as usize,
            from,
            to,
        )
    }

    /// Extra delivery delay in ticks (`0` = on time).
    #[must_use]
    pub fn delay_ticks(&self, tick: u64, from: usize, to: usize) -> u64 {
        bounded_age(
            self.seed,
            salts::SALT_DELAY,
            salts::SALT_AGE,
            self.delay_prob,
            self.max_delay as usize,
            tick as usize,
            from,
            to,
        ) as u64
    }

    pub(crate) fn partitions(&self) -> &[CompiledPartition] {
        &self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_deterministic() {
        let cfg = MeshFaultConfig {
            seed: 11,
            loss: 0.1,
            duplicate: 0.05,
            delay_prob: 0.2,
            max_delay: 3,
            partitions: vec![PartitionSpec {
                region: 2,
                at: 30,
                duration: 12,
                heal_stagger: 6,
            }],
        };
        let a = MeshFaultPlan::compile(&cfg, 4);
        let b = MeshFaultPlan::compile(&cfg, 4);
        for tick in 0..200 {
            for from in 0..4 {
                for to in 0..4 {
                    assert_eq!(a.drops_frame(tick, from, to), b.drops_frame(tick, from, to));
                    assert_eq!(a.delay_ticks(tick, from, to), b.delay_ticks(tick, from, to));
                    assert_eq!(
                        a.link_blocked(tick, from, to),
                        b.link_blocked(tick, from, to)
                    );
                }
            }
        }
    }

    #[test]
    fn partition_blocks_both_directions_and_heals_staggered() {
        let cfg = MeshFaultConfig {
            partitions: vec![PartitionSpec {
                region: 1,
                at: 10,
                duration: 5,
                heal_stagger: 8,
            }],
            seed: 3,
            ..MeshFaultConfig::off()
        };
        let plan = MeshFaultPlan::compile(&cfg, 4);
        // dark window: both directions blocked, other links untouched
        assert!(plan.link_blocked(10, 1, 0));
        assert!(plan.link_blocked(12, 0, 1));
        assert!(!plan.link_blocked(12, 0, 2));
        assert!(!plan.link_blocked(9, 1, 0));
        // each link heals somewhere in [15, 23], and stays healed
        let p = &plan.partitions()[0];
        for peer in [0usize, 2, 3] {
            assert!((15..=23).contains(&p.heal[peer]), "heal {}", p.heal[peer]);
            assert!(!plan.link_blocked(p.heal[peer], 1, peer));
            assert!(plan.link_blocked(p.heal[peer] - 1, 1, peer));
        }
        assert_eq!(
            p.healed_at,
            *p.heal
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != 1)
                .map(|(_, h)| h)
                .max()
                .unwrap()
        );
    }

    #[test]
    fn retry_draws_are_fresh_per_tick() {
        // with 50% loss some tick must drop and a later tick must pass
        // for the same link — i.e. loss is keyed on the tick
        let cfg = MeshFaultConfig {
            loss: 0.5,
            seed: 21,
            ..MeshFaultConfig::off()
        };
        let plan = MeshFaultPlan::compile(&cfg, 2);
        let outcomes: Vec<bool> = (0..64).map(|t| plan.drops_frame(t, 0, 1)).collect();
        assert!(outcomes.iter().any(|&x| x));
        assert!(outcomes.iter().any(|&x| !x));
    }
}
