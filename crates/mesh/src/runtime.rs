//! The mesh runtime: configuration, the tick loop, and reporting.
//!
//! [`MeshRuntime`] owns the region workers and a [`Transport`], and
//! drives the three sub-round ticks of each iteration in fixed region
//! order — the whole run is a deterministic function of the problem,
//! the config, and the transport's fault plan. Under [`Lossless`] the
//! trajectory is bit-identical to `spn_core::GradientAlgorithm`; under
//! [`Chaotic`] the run additionally produces a deterministic
//! [`MeshIncident`] log (see [`MeshRuntime::incidents`]).
//!
//! The tick loop is allocation-free once warm: deliveries land in one
//! reusable [`Inbox`] arena, each worker writes its per-link batch
//! into a reusable buffer, and the transport borrows those bytes.
//!
//! **Phase advancement is deadline-driven, not barrier-driven.** Before
//! delivering a region's tick, the runtime polls
//! [`Transport::ready`]; in-process transports answer `true`
//! immediately (the old strict barrier, at zero cost), while the socket
//! transport answers once every live peer's tick markers are in hand.
//! If readiness does not arrive within [`MeshConfig::phase_deadline`],
//! the runtime logs [`MeshIncident::PhaseDeadlineExpired`] and advances
//! anyway — the worker iterates on last-known peer state (exactly the
//! suspect-degradation path), so one stalled peer bounds tick latency
//! instead of freezing the mesh.

use crate::fault::{MeshFaultConfig, MeshFaultPlan};
use crate::incident::MeshIncident;
use crate::socket::{SocketOptions, SocketTransport};
use crate::transport::{Chaotic, Inbox, Lossless, Transport};
use crate::worker::{owner_of, MeshWireStats, RegionWorker};
use spn_core::gamma::GammaStats;
use spn_core::{ConfigError, CostModel, GradientAlgorithm, GradientConfig, StableOutcome};
use spn_transform::ExtendedNetwork;
use std::time::{Duration, Instant};

/// Mesh tunables on top of the gradient config.
///
/// The gradient's `threads`, `simd`, and `sparsity` knobs are ignored:
/// every worker runs the serial dense sweeps over its full mirror
/// (bit-identical to any engine by ARCHITECTURE invariants 9/13/15, so
/// nothing is lost). ε-annealing is *rejected* — see
/// [`MeshError::AnnealingUnsupported`].
#[derive(Clone, Debug, PartialEq)]
pub struct MeshConfig {
    /// Number of region workers the node space is split across.
    pub regions: usize,
    /// The underlying gradient tunables (validated exactly like
    /// `GradientAlgorithm`).
    pub gradient: GradientConfig,
    /// Ticks of silence before a peer is degraded to suspect. Must
    /// exceed one full iteration (3 ticks) or healthy peers flap; the
    /// default (9 = three iterations) is comfortably clear.
    pub suspect_after: u64,
    /// Cap on the exponential retransmit backoff, in ticks.
    pub retry_backoff_cap: u64,
    /// Rounds between full-frame refreshes of the delta wire
    /// (ARCHITECTURE invariant 20): every `refresh_every`-th round each
    /// worker ships all owned rows instead of only changed ones,
    /// re-anchoring every delta chain. `1` degenerates to the v1
    /// full-broadcast wire (the bench baseline); must be ≥ 1.
    pub refresh_every: u64,
    /// Wall-clock budget for a region's phase to become ready (all
    /// live peers' frames in hand per [`Transport::ready`]). On expiry
    /// the runtime logs [`MeshIncident::PhaseDeadlineExpired`] and
    /// advances on last-known peer state. In-process transports are
    /// always ready, so the deadline only ever fires over sockets.
    pub phase_deadline: Duration,
    /// Byte budget of the per-tick delivery [`Inbox`]: deliveries past
    /// the cap are refused without allocating and logged as
    /// [`MeshIncident::InboxOverflow`], bounding memory against a
    /// flooding or runaway peer. Must be at least 1024 bytes (a budget
    /// below one frame would silently drop *all* traffic).
    pub inbox_budget: usize,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            regions: 2,
            gradient: GradientConfig::default(),
            suspect_after: 9,
            retry_backoff_cap: 32,
            refresh_every: 16,
            phase_deadline: Duration::from_secs(5),
            inbox_budget: 64 << 20,
        }
    }
}

/// Mesh construction errors.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MeshError {
    /// `regions` must be at least 1.
    NoRegions,
    /// More regions than extended nodes (some worker would own nothing)
    /// or than the wire's 16-bit region id can address.
    TooManyRegions {
        /// Requested region count.
        regions: usize,
        /// Extended node count (the upper bound).
        nodes: usize,
    },
    /// ε-annealing mutates a tunable mid-run; replicating that drift
    /// bit-identically across regions is out of scope, so a config with
    /// `epsilon_factor != 1.0` is refused rather than silently diverging
    /// from the monolithic algorithm.
    AnnealingUnsupported {
        /// The offending factor.
        epsilon_factor: f64,
    },
    /// `refresh_every` must be at least 1: a zero cadence would never
    /// re-anchor a delta chain, so a receiver that missed one delta
    /// could stay stale forever.
    ZeroRefreshCadence,
    /// `inbox_budget` must be at least 1024 bytes — smaller than one
    /// frame means every delivery is refused and the mesh runs deaf.
    InboxBudgetTooSmall {
        /// The offending budget.
        budget: usize,
    },
    /// The socket layer failed while building the mesh (`socketpair`,
    /// `bind`, `connect`, `accept`, or socket-option setting).
    Socket(String),
    /// The underlying gradient config is invalid.
    Config(ConfigError),
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::NoRegions => write!(f, "mesh needs at least one region"),
            MeshError::TooManyRegions { regions, nodes } => write!(
                f,
                "{regions} regions cannot split {nodes} extended nodes (max one region per node, \
                 and region ids must fit u16)"
            ),
            MeshError::AnnealingUnsupported { epsilon_factor } => write!(
                f,
                "mesh does not support ε-annealing (epsilon_factor = {epsilon_factor}); set it to 1.0"
            ),
            MeshError::ZeroRefreshCadence => {
                write!(f, "refresh_every must be at least 1 (1 = full broadcast every round)")
            }
            MeshError::InboxBudgetTooSmall { budget } => write!(
                f,
                "inbox_budget of {budget} bytes is below the 1024-byte floor (one frame would \
                 not fit; every delivery would be refused)"
            ),
            MeshError::Socket(e) => write!(f, "mesh socket setup: {e}"),
            MeshError::Config(e) => write!(f, "gradient config: {e}"),
        }
    }
}

impl std::error::Error for MeshError {}

impl From<ConfigError> for MeshError {
    fn from(e: ConfigError) -> Self {
        MeshError::Config(e)
    }
}

/// A mesh run's outcome, comparable across runs: two same-seed chaotic
/// runs must produce equal reports (pinned by `tests/mesh_equivalence`).
#[derive(Clone, Debug, PartialEq)]
pub struct MeshReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Overall utility `Σ_j U_j(a_j)`, each commodity read from its
    /// owner's mirror in commodity order.
    pub utility: f64,
    /// Admitted rate per commodity, from each owner's mirror.
    pub admitted: Vec<f64>,
    /// Summed per-region total routing shift of the final iteration.
    pub total_shift: f64,
    /// Wire telemetry summed over all workers' links (send side plus
    /// resync requests). Deterministic, so it participates in the
    /// same-seed report-equality oracle.
    pub wire: MeshWireStats,
}

/// The region-sharded mesh: workers, transport, incident log.
pub struct MeshRuntime<T: Transport> {
    ext: ExtendedNetwork,
    cost: CostModel,
    config: MeshConfig,
    workers: Vec<RegionWorker>,
    transport: T,
    tick: u64,
    incidents: Vec<MeshIncident>,
    /// Reusable delivery arena (one region's frames at a time).
    inbox: Inbox,
}

impl MeshRuntime<Lossless> {
    /// A mesh over a synchronous lossless transport (the bit-identity
    /// configuration).
    ///
    /// # Errors
    ///
    /// See [`MeshRuntime::with_transport`].
    pub fn lossless(ext: ExtendedNetwork, config: MeshConfig) -> Result<Self, MeshError> {
        let transport = Lossless::new(config.regions);
        MeshRuntime::with_transport(ext, config, transport)
    }
}

impl MeshRuntime<Chaotic> {
    /// A mesh over a fault-injecting transport compiled from `faults`.
    ///
    /// # Errors
    ///
    /// See [`MeshRuntime::with_transport`].
    pub fn chaotic(
        ext: ExtendedNetwork,
        config: MeshConfig,
        faults: &MeshFaultConfig,
    ) -> Result<Self, MeshError> {
        let transport = Chaotic::new(
            MeshFaultPlan::compile(faults, config.regions),
            config.regions,
        );
        MeshRuntime::with_transport(ext, config, transport)
    }
}

impl MeshRuntime<SocketTransport> {
    /// A mesh over real kernel streams — one loopback duplex socket per
    /// region pair, TCP or Unix-domain per [`SocketOptions::kind`],
    /// optionally fault-injected by the same seeded plan `chaotic` uses
    /// (applied netem-style in each link's `FaultyStream`).
    ///
    /// # Errors
    ///
    /// [`MeshError::Socket`] if building the socket mesh fails at the
    /// kernel; otherwise see [`MeshRuntime::with_transport`].
    pub fn socket(
        ext: ExtendedNetwork,
        config: MeshConfig,
        options: &SocketOptions,
    ) -> Result<Self, MeshError> {
        let transport = SocketTransport::connect(config.regions, options)
            .map_err(|e| MeshError::Socket(e.to_string()))?;
        MeshRuntime::with_transport(ext, config, transport)
    }
}

impl<T: Transport> MeshRuntime<T> {
    /// Builds the mesh: validates the config (rejecting region counts
    /// the node space or the wire cannot carry, ε-annealing, a zero
    /// refresh cadence, and any gradient tunable `GradientAlgorithm`
    /// itself would refuse) and initializes every worker with the same
    /// fully-rejecting mirror.
    ///
    /// # Errors
    ///
    /// Returns a [`MeshError`] describing the first violated rule.
    pub fn with_transport(
        ext: ExtendedNetwork,
        config: MeshConfig,
        transport: T,
    ) -> Result<Self, MeshError> {
        if config.regions == 0 {
            return Err(MeshError::NoRegions);
        }
        let nodes = ext.graph().node_count();
        if config.regions > nodes || config.regions > usize::from(u16::MAX) {
            return Err(MeshError::TooManyRegions {
                regions: config.regions,
                nodes,
            });
        }
        if config.gradient.epsilon_factor != 1.0 {
            return Err(MeshError::AnnealingUnsupported {
                epsilon_factor: config.gradient.epsilon_factor,
            });
        }
        if config.refresh_every == 0 {
            return Err(MeshError::ZeroRefreshCadence);
        }
        if config.inbox_budget < 1024 {
            return Err(MeshError::InboxBudgetTooSmall {
                budget: config.inbox_budget,
            });
        }
        // reuse the algorithm's own tunable validation (serial probe;
        // no worker pool spawned)
        let mut probe = config.gradient;
        probe.threads = 1;
        drop(GradientAlgorithm::from_extended(ext.clone(), probe)?);
        let cost = CostModel {
            penalty: config.gradient.penalty,
            epsilon: config.gradient.epsilon,
            wall_threshold: config.gradient.wall_threshold,
            wall_strength: config.gradient.wall_strength,
        };
        let workers = (0..config.regions)
            .map(|r| {
                RegionWorker::new(
                    &ext,
                    &cost,
                    &config.gradient,
                    r,
                    config.regions,
                    config.refresh_every,
                )
            })
            .collect();
        let inbox = Inbox::with_budget(config.inbox_budget);
        Ok(MeshRuntime {
            ext,
            cost,
            config,
            workers,
            transport,
            tick: 0,
            incidents: Vec::new(),
            inbox,
        })
    }

    /// Blocks until `region`'s tick is ready to deliver or the phase
    /// deadline expires (logging the incident and advancing anyway).
    /// In-process transports answer ready on the first poll, so the
    /// fast path reads no clock and allocates nothing.
    fn await_phase(&mut self, tick: u64, region: usize) {
        if self.transport.ready(tick, region) {
            return;
        }
        let deadline = Instant::now() + self.config.phase_deadline;
        loop {
            std::thread::sleep(Duration::from_micros(200));
            if self.transport.ready(tick, region) {
                return;
            }
            if Instant::now() >= deadline {
                self.incidents
                    .push(MeshIncident::PhaseDeadlineExpired { tick, region });
                return;
            }
        }
    }

    /// Performs one protocol iteration — three transport ticks, every
    /// worker driven in region order — and returns the iteration's Γ
    /// statistics summed across regions (max of maxima, region-ordered
    /// sums).
    pub fn step(&mut self) -> GammaStats {
        for _ in 0..3 {
            let tick = self.tick;
            self.transport.begin_tick(tick, &mut self.incidents);
            for r in 0..self.config.regions {
                self.await_phase(tick, r);
                self.transport
                    .deliver_into(tick, r, &mut self.inbox, &mut self.incidents);
                self.workers[r].run_phase(
                    &self.ext,
                    &self.cost,
                    &self.config.gradient,
                    self.config.suspect_after,
                    self.config.retry_backoff_cap,
                    tick,
                    &self.inbox,
                    &mut self.incidents,
                );
                let worker = &self.workers[r];
                for to in 0..self.config.regions {
                    if to == r {
                        continue;
                    }
                    if let Some(bytes) = worker.outgoing(to) {
                        self.transport.send(tick, r, to, bytes, &mut self.incidents);
                    }
                }
            }
            self.tick += 1;
        }
        let mut total = GammaStats::default();
        for w in &self.workers {
            let g = w.gamma_stats();
            total.max_shift = total.max_shift.max(g.max_shift);
            total.total_shift += g.total_shift;
            total.rows += g.rows;
        }
        total
    }

    /// Runs `iterations` steps and reports.
    pub fn run(&mut self, iterations: usize) -> MeshReport {
        let mut last = GammaStats::default();
        for _ in 0..iterations {
            last = self.step();
        }
        self.report(last)
    }

    /// Runs until the summed per-step routing shift drops below
    /// `shift_tolerance` or `max_iterations` is hit — the mesh analogue
    /// of `GradientAlgorithm::run_until_stable`, judging convergence on
    /// the same statistic.
    pub fn run_until_stable(
        &mut self,
        shift_tolerance: f64,
        max_iterations: usize,
    ) -> (MeshReport, StableOutcome) {
        let mut last = GammaStats::default();
        for done in 0..max_iterations {
            last = self.step();
            if last.total_shift < shift_tolerance {
                return (
                    self.report(last),
                    StableOutcome {
                        iterations: done + 1,
                        converged: true,
                    },
                );
            }
        }
        (
            self.report(last),
            StableOutcome {
                iterations: max_iterations,
                converged: false,
            },
        )
    }

    fn report(&self, last: GammaStats) -> MeshReport {
        let admitted: Vec<f64> = self
            .ext
            .commodity_ids()
            .map(|j| self.owner_worker(j).admitted(&self.ext, j))
            .collect();
        MeshReport {
            iterations: (self.tick / 3) as usize,
            utility: self.utility(),
            admitted,
            total_shift: last.total_shift,
            wire: self.wire_stats(),
        }
    }

    /// Overall utility `Σ_j U_j(a_j)`, each commodity read from its
    /// owner region's mirror, summed in commodity order — bit-identical
    /// to `GradientAlgorithm::utility` under a lossless transport.
    #[must_use]
    pub fn utility(&self) -> f64 {
        self.ext
            .commodity_ids()
            .map(|j| {
                let w = self.owner_worker(j);
                self.ext
                    .commodity(j)
                    .utility
                    .value(w.admitted(&self.ext, j))
            })
            .sum()
    }

    /// Wire telemetry summed over all workers' links so far (send side
    /// plus resync requests).
    #[must_use]
    pub fn wire_stats(&self) -> MeshWireStats {
        let mut total = MeshWireStats::default();
        for w in &self.workers {
            total.absorb(w.wire_stats());
        }
        total
    }

    fn owner_worker(&self, j: spn_model::CommodityId) -> &RegionWorker {
        let owner = owner_of(
            self.ext.dummy_source(j).index(),
            self.ext.graph().node_count(),
            self.config.regions,
        );
        &self.workers[owner]
    }

    /// The incident log so far.
    ///
    /// **Stable ordering guarantee.** The log is append-only and totally
    /// ordered by the deterministic schedule: ticks ascend, and within a
    /// tick incidents appear in a fixed sequence — transport schedule
    /// events (partition cuts and heals) first, then each region in
    /// index order (its deliveries, its protocol reactions, its sends).
    /// Two runs with the same problem, config, and fault seed produce
    /// **identical** logs, so serialized logs can be diffed
    /// byte-for-byte across CI runs. A lossless run's log is empty.
    #[must_use]
    pub fn incidents(&self) -> &[MeshIncident] {
        &self.incidents
    }

    /// Worker `region`'s state (oracle/inspection hook).
    #[must_use]
    pub fn worker(&self, region: usize) -> &RegionWorker {
        &self.workers[region]
    }

    /// Mutable worker access (digest hooks need `&mut`).
    #[must_use]
    pub fn worker_mut(&mut self, region: usize) -> &mut RegionWorker {
        &mut self.workers[region]
    }

    /// The extended network the mesh runs over.
    #[must_use]
    pub fn extended(&self) -> &ExtendedNetwork {
        &self.ext
    }

    /// Iterations performed so far.
    #[must_use]
    pub fn iterations(&self) -> usize {
        (self.tick / 3) as usize
    }

    /// The mesh configuration.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }
}
