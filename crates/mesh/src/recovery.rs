//! Snapshot plumbing between [`spn_core::Checkpoint`] and the wire.
//!
//! A survivor answers a [`crate::wire::Payload::RecoveryRequest`] by
//! capturing its mirror into a checkpoint, lifting the checkpoint into a
//! [`RecoveryStatePayload`], and sending it on the reliable stream. The
//! rejoiner lowers the payload back into a checkpoint and applies it
//! through the epoch fence (`Checkpoint::apply_state`), so a snapshot
//! captured against a different commodity set is refused structurally
//! rather than silently corrupting the mirror.
//!
//! Both ends digest the routing fractions they hold — the survivor at
//! capture, the rejoiner after restore. Equal digests pin the headline
//! guarantee: the rejoined region's state is **bit-for-bit** the
//! survivor's, not merely close.
//!
//! The handshake is transport-agnostic: it rides the reliable frame
//! stream (sequence numbers plus retry-under-backoff), so the same
//! request → snapshot → apply → digest dance runs unchanged over
//! [`crate::transport::Chaotic`]'s simulated faults and over
//! [`crate::socket::SocketTransport`]'s real kernel streams — the
//! faulty-socket equivalence oracle exercises a partition-and-rejoin
//! over actual sockets and pins the identical incident sequence.

use crate::wire::RecoveryStatePayload;
use spn_core::Checkpoint;

/// Order-sensitive FNV-1a fold over the exact bit patterns of a float
/// buffer. Any single-bit difference — value, position, or length —
/// changes the digest.
#[must_use]
pub fn state_digest(values: &[f64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Lifts a captured checkpoint into a wire payload.
///
/// # Panics
///
/// Panics if the checkpoint has never captured state (the survivor
/// always captures immediately before calling this).
#[must_use]
pub fn snapshot_to_payload(ck: &Checkpoint, token: u64) -> RecoveryStatePayload {
    assert!(ck.is_captured(), "snapshot of an empty checkpoint");
    RecoveryStatePayload {
        token,
        epoch: ck.epoch(),
        iterations: ck.iterations() as u64,
        epsilon: ck.epsilon(),
        eta: ck.eta(),
        phi: ck.phi().to_vec(),
        t: ck.t().to_vec(),
        x: ck.x().to_vec(),
        f_edge: ck.f_edge().to_vec(),
        f_node: ck.f_node().to_vec(),
        d: ck.d().to_vec(),
    }
}

/// Lowers a wire payload back into a checkpoint ready for
/// `Checkpoint::apply_state`.
#[must_use]
pub fn payload_to_snapshot(p: &RecoveryStatePayload) -> Checkpoint {
    Checkpoint::from_raw(
        p.phi.clone(),
        p.t.clone(),
        p.x.clone(),
        p.f_edge.clone(),
        p.f_node.clone(),
        p.d.clone(),
        p.iterations as usize,
        p.epsilon,
        p.eta,
        p.epoch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_bit_sensitive() {
        let base = vec![0.25f64, -1.5, 3.0];
        let d0 = state_digest(&base);
        assert_eq!(d0, state_digest(&[0.25, -1.5, 3.0]));
        // value flip
        assert_ne!(d0, state_digest(&[0.25, -1.5, 3.000_000_000_000_001]));
        // order flip
        assert_ne!(d0, state_digest(&[-1.5, 0.25, 3.0]));
        // length flip
        assert_ne!(d0, state_digest(&[0.25, -1.5, 3.0, 0.0]));
        // signed zero is a different bit pattern
        assert_ne!(state_digest(&[0.0]), state_digest(&[-0.0]));
    }

    #[test]
    fn payload_round_trips_through_a_checkpoint() {
        let ck = Checkpoint::from_raw(
            vec![0.5, 0.5],
            vec![1.0],
            vec![0.25, 0.25],
            vec![0.5],
            vec![1.5],
            vec![0.1, 0.2],
            7,
            0.2,
            0.05,
            3,
        );
        let payload = snapshot_to_payload(&ck, 99);
        assert_eq!(payload.token, 99);
        assert_eq!(payload.epoch, 3);
        let back = payload_to_snapshot(&payload);
        assert_eq!(back.phi(), ck.phi());
        assert_eq!(back.t(), ck.t());
        assert_eq!(back.x(), ck.x());
        assert_eq!(back.f_edge(), ck.f_edge());
        assert_eq!(back.f_node(), ck.f_node());
        assert_eq!(back.d(), ck.d());
        assert_eq!(back.iterations(), ck.iterations());
        assert_eq!(back.epoch(), ck.epoch());
        assert_eq!(state_digest(back.phi()), state_digest(ck.phi()));
    }
}
