//! The in-process mesh: how encoded frames travel between regions.
//!
//! A [`Transport`] carries opaque byte frames (already encoded in the
//! [`crate::wire`] format) from sender to destination inbox. Frames
//! sent at tick `T` become deliverable at tick `T + 1` — a synchronous
//! barrier per sub-round — and are handed out in deterministic order:
//! send order, which the runtime fixes by driving workers in region
//! order. Two implementations:
//!
//! * [`Lossless`] — every frame arrives exactly once, next tick, in
//!   order. Under this transport the mesh trajectory is bit-identical
//!   to `GradientAlgorithm` (the tentpole oracle).
//! * [`Chaotic`] — consults a seeded [`MeshFaultPlan`] per frame:
//!   loss, duplication, bounded delay, and region partitions with
//!   staggered heal. Every injected fault is logged as a
//!   [`MeshIncident`], and two runs from the same seed inject — and
//!   log — exactly the same faults.
//!
//! Since the wire v2 coalescing layer, a worker ships **one batch
//! frame per (link, tick)**, so each fault draw applies to the whole
//! batch (`kind = "batch"` in incidents) — exactly one draw per link
//! per tick, same as the v1 per-payload schedule at one frame per
//! link. Senders pass borrowed bytes and receivers drain into a
//! caller-owned [`Inbox`] arena; both transports recycle their
//! internal frame buffers through spare pools, so the steady-state
//! transport path allocates nothing.

use crate::fault::MeshFaultPlan;
use crate::incident::MeshIncident;
use crate::wire::Frame;
use std::collections::VecDeque;

/// A flat arena of received frames: one contiguous byte buffer plus
/// frame spans, reused across ticks so delivery never allocates once
/// warm.
///
/// Growth is **budgeted**: the arena is cleared at every delivery, so
/// [`Inbox::budget`] caps how many bytes one (tick, region) delivery
/// may hold. A peer flooding duplicates used to grow `bytes` without
/// bound within a tick; now [`Inbox::push`] refuses the frame once the
/// budget is reached (the transport logs a
/// [`MeshIncident::InboxOverflow`]) and the arena never allocates past
/// its high-water mark. The refusal path performs no allocation, so
/// the warm-path zero-alloc gates are preserved.
#[derive(Debug)]
pub struct Inbox {
    bytes: Vec<u8>,
    spans: Vec<(usize, usize)>,
    budget: usize,
}

impl Default for Inbox {
    fn default() -> Self {
        Inbox {
            bytes: Vec::new(),
            spans: Vec::new(),
            budget: usize::MAX,
        }
    }
}

impl Inbox {
    /// An empty inbox with an unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Inbox::default()
    }

    /// An empty inbox refusing frames past `budget` held bytes.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        Inbox {
            budget,
            ..Inbox::default()
        }
    }

    /// Sets the per-delivery byte budget (the cap on `bytes` held at
    /// once; the arena is cleared per delivery, so this bounds per-tick
    /// growth).
    pub fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    /// The per-delivery byte budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Forgets all frames, keeping capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.spans.clear();
    }

    /// Appends one frame. Returns `false` — refusing the frame without
    /// allocating — if holding it would exceed the byte budget.
    #[must_use]
    pub fn push(&mut self, frame: &[u8]) -> bool {
        let start = self.bytes.len();
        if start + frame.len() > self.budget {
            return false;
        }
        self.bytes.extend_from_slice(frame);
        self.spans.push((start, self.bytes.len()));
        true
    }

    /// The frames, in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.spans.iter().map(move |&(s, e)| &self.bytes[s..e])
    }

    /// Number of frames held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Is the inbox empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Sender region of a trusted, well-formed frame (header bytes 5..7).
fn frame_from(bytes: &[u8]) -> usize {
    usize::from(u16::from_le_bytes([bytes[5], bytes[6]]))
}

/// Pushes `bytes` into `inbox`, logging a
/// [`MeshIncident::InboxOverflow`] if the budget refuses the frame.
/// Returns whether the frame was accepted.
pub(crate) fn push_or_log(
    inbox: &mut Inbox,
    tick: u64,
    to: usize,
    bytes: &[u8],
    log: &mut Vec<MeshIncident>,
) -> bool {
    if inbox.push(bytes) {
        return true;
    }
    log.push(MeshIncident::InboxOverflow {
        tick,
        region: to,
        from: frame_from(bytes),
        dropped: bytes.len() as u64,
    });
    false
}

/// A frame conduit between region workers. All methods take the
/// current transport tick; implementations must be deterministic
/// functions of (construction arguments, call sequence).
pub trait Transport {
    /// Called once per tick before any send or deliver, so the
    /// transport can log scheduled events (partition cuts and heals).
    fn begin_tick(&mut self, tick: u64, log: &mut Vec<MeshIncident>);

    /// Pumps the transport and reports whether everything deliverable
    /// to `to` at `tick` is known to have arrived. In-process
    /// transports hold frames behind a synchronous barrier, so they are
    /// always ready; the socket transport tracks per-peer tick markers
    /// and reports readiness only once every live peer's sends through
    /// `tick - 1` are in hand. The runtime's deadline driver polls this
    /// and advances the phase anyway once the phase deadline expires
    /// (logging [`MeshIncident::PhaseDeadlineExpired`]).
    fn ready(&mut self, tick: u64, to: usize) -> bool {
        let _ = (tick, to);
        true
    }

    /// Queues an encoded frame from `from` to `to`. The transport
    /// copies the bytes it keeps; the caller retains the buffer.
    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: &[u8],
        log: &mut Vec<MeshIncident>,
    );

    /// Drains every frame deliverable to `to` at `tick` (frames sent
    /// strictly earlier, plus any delayed frames now due) into
    /// `inbox`, in deterministic order. Clears the inbox first.
    fn deliver_into(
        &mut self,
        tick: u64,
        to: usize,
        inbox: &mut Inbox,
        log: &mut Vec<MeshIncident>,
    );
}

/// Synchronous-barrier delivery: every frame arrives exactly once at
/// the tick after it was sent, in send order. Per-destination queues
/// hold frames back until their barrier tick; drained frame buffers
/// are recycled through a spare pool.
pub struct Lossless {
    /// Per destination: `(sent_tick, bytes)` in send order.
    lanes: Vec<VecDeque<(u64, Vec<u8>)>>,
    /// Recycled frame buffers.
    spare: Vec<Vec<u8>>,
}

impl Lossless {
    /// A lossless mesh between `regions` workers.
    #[must_use]
    pub fn new(regions: usize) -> Self {
        Lossless {
            lanes: (0..regions).map(|_| VecDeque::new()).collect(),
            spare: Vec::new(),
        }
    }

    fn buffer(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(bytes);
        buf
    }
}

impl Transport for Lossless {
    fn begin_tick(&mut self, _tick: u64, _log: &mut Vec<MeshIncident>) {}

    fn send(
        &mut self,
        tick: u64,
        _from: usize,
        to: usize,
        bytes: &[u8],
        _log: &mut Vec<MeshIncident>,
    ) {
        let buf = self.buffer(bytes);
        self.lanes[to].push_back((tick, buf));
    }

    fn deliver_into(
        &mut self,
        tick: u64,
        to: usize,
        inbox: &mut Inbox,
        log: &mut Vec<MeshIncident>,
    ) {
        inbox.clear();
        let lane = &mut self.lanes[to];
        // barrier: only frames sent strictly before this tick
        while matches!(lane.front(), Some(&(sent, _)) if sent < tick) {
            let (_, bytes) = lane.pop_front().expect("front checked");
            push_or_log(inbox, tick, to, &bytes, log);
            self.spare.push(bytes);
        }
    }
}

/// Fault-injecting delivery driven by a seeded [`MeshFaultPlan`]:
/// per-frame loss, duplication, and bounded delay draws plus region
/// partitions with staggered heal. Deterministic: the same plan and the
/// same call sequence inject the same faults and log the same
/// incidents.
pub struct Chaotic {
    plan: MeshFaultPlan,
    /// Pending frames per destination: `(deliver_tick, order, bytes)`,
    /// kept sorted by `(deliver_tick, order)`.
    pending: Vec<Vec<(u64, u64, Vec<u8>)>>,
    /// Monotone insertion counter — the deterministic tiebreak.
    order: u64,
    /// Recycled frame buffers.
    spare: Vec<Vec<u8>>,
}

impl Chaotic {
    /// A chaotic mesh between `regions` workers under `plan`.
    #[must_use]
    pub fn new(plan: MeshFaultPlan, regions: usize) -> Self {
        Chaotic {
            plan,
            pending: (0..regions).map(|_| Vec::new()).collect(),
            order: 0,
            spare: Vec::new(),
        }
    }

    fn enqueue(&mut self, to: usize, deliver_tick: u64, bytes: &[u8]) {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(bytes);
        let order = self.order;
        self.order += 1;
        let queue = &mut self.pending[to];
        let at = queue.partition_point(|&(dt, o, _)| (dt, o) <= (deliver_tick, order));
        queue.insert(at, (deliver_tick, order, buf));
    }

    fn frame_kind(bytes: &[u8]) -> crate::wire::FrameKind {
        // frames come from our own workers; peeking cannot fail
        Frame::peek_kind(bytes).expect("well-formed frame")
    }
}

impl Transport for Chaotic {
    fn begin_tick(&mut self, tick: u64, log: &mut Vec<MeshIncident>) {
        for p in self.plan.partitions() {
            if p.at == tick {
                log.push(MeshIncident::PartitionStarted {
                    tick,
                    region: p.region,
                });
            }
            for (peer, &heal) in p.heal.iter().enumerate() {
                if peer != p.region && heal == tick {
                    log.push(MeshIncident::LinkHealed {
                        tick,
                        region: p.region,
                        peer,
                    });
                }
            }
            if p.healed_at == tick && p.at < tick {
                log.push(MeshIncident::PartitionHealed {
                    tick,
                    region: p.region,
                });
            }
        }
    }

    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: &[u8],
        log: &mut Vec<MeshIncident>,
    ) {
        let kind = Self::frame_kind(bytes);
        if self.plan.link_blocked(tick, from, to) || self.plan.drops_frame(tick, from, to) {
            log.push(MeshIncident::FrameLost {
                tick,
                from,
                to,
                kind,
            });
            return;
        }
        let delay = self.plan.delay_ticks(tick, from, to);
        let deliver_tick = tick + 1 + delay;
        if delay > 0 {
            log.push(MeshIncident::FrameDelayed {
                tick,
                from,
                to,
                kind,
                until: deliver_tick,
            });
        }
        if self.plan.duplicates_frame(tick, from, to) {
            log.push(MeshIncident::FrameDuplicated {
                tick,
                from,
                to,
                kind,
            });
            self.enqueue(to, deliver_tick, bytes);
        }
        self.enqueue(to, deliver_tick, bytes);
    }

    fn deliver_into(
        &mut self,
        tick: u64,
        to: usize,
        inbox: &mut Inbox,
        log: &mut Vec<MeshIncident>,
    ) {
        inbox.clear();
        let queue = &mut self.pending[to];
        let due = queue.partition_point(|&(dt, _, _)| dt <= tick);
        for (_, _, bytes) in queue.drain(..due) {
            push_or_log(inbox, tick, to, &bytes, log);
            self.spare.push(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{MeshFaultConfig, PartitionSpec};
    use crate::wire::Payload;

    fn hb(from: u16, to: u16, round: u64) -> Vec<u8> {
        Frame {
            from,
            to,
            seq: 0,
            round,
            payload: Payload::Heartbeat,
        }
        .encode()
    }

    fn drain(
        t: &mut impl Transport,
        tick: u64,
        to: usize,
        log: &mut Vec<MeshIncident>,
    ) -> Vec<Vec<u8>> {
        let mut inbox = Inbox::new();
        t.deliver_into(tick, to, &mut inbox, log);
        inbox.iter().map(<[u8]>::to_vec).collect()
    }

    #[test]
    fn lossless_delivers_next_tick_in_order() {
        let mut t = Lossless::new(2);
        let mut log = Vec::new();
        t.send(5, 0, 1, &hb(0, 1, 1), &mut log);
        t.send(5, 0, 1, &hb(0, 1, 2), &mut log);
        // same tick: barrier holds them back
        assert!(drain(&mut t, 5, 1, &mut log).is_empty());
        let got = drain(&mut t, 6, 1, &mut log);
        assert_eq!(got.len(), 2);
        assert_eq!(Frame::decode(&got[0]).unwrap().round, 1);
        assert_eq!(Frame::decode(&got[1]).unwrap().round, 2);
        // drained: nothing left
        assert!(drain(&mut t, 7, 1, &mut log).is_empty());
        assert!(log.is_empty());
    }

    #[test]
    fn inbox_reuse_does_not_leak_frames() {
        let mut t = Lossless::new(2);
        let mut log = Vec::new();
        let mut inbox = Inbox::new();
        t.send(0, 0, 1, &hb(0, 1, 7), &mut log);
        t.deliver_into(1, 1, &mut inbox, &mut log);
        assert_eq!(inbox.len(), 1);
        // next delivery with nothing pending clears the previous content
        t.deliver_into(2, 1, &mut inbox, &mut log);
        assert!(inbox.is_empty());
        assert_eq!(inbox.iter().count(), 0);
    }

    #[test]
    fn inbox_budget_refuses_floods_and_logs() {
        let frame = hb(0, 1, 1);
        let mut inbox = Inbox::with_budget(frame.len() + 1);
        assert!(inbox.push(&frame));
        assert!(!inbox.push(&frame));
        assert_eq!(inbox.len(), 1);
        inbox.clear();
        // the budget caps bytes held at once — per delivery, not forever
        assert!(inbox.push(&frame));

        // a transport logs each refusal as an incident and keeps going
        let mut t = Lossless::new(2);
        let mut log = Vec::new();
        t.send(0, 0, 1, &frame, &mut log);
        t.send(0, 0, 1, &frame, &mut log);
        let mut small = Inbox::with_budget(frame.len());
        t.deliver_into(1, 1, &mut small, &mut log);
        assert_eq!(small.len(), 1);
        assert_eq!(
            log,
            vec![MeshIncident::InboxOverflow {
                tick: 1,
                region: 1,
                from: 0,
                dropped: frame.len() as u64,
            }]
        );
    }

    #[test]
    fn chaotic_same_seed_same_incidents() {
        let cfg = MeshFaultConfig {
            seed: 5,
            loss: 0.3,
            duplicate: 0.2,
            delay_prob: 0.3,
            max_delay: 2,
            partitions: vec![PartitionSpec {
                region: 1,
                at: 4,
                duration: 3,
                heal_stagger: 2,
            }],
        };
        let run = || {
            let mut t = Chaotic::new(MeshFaultPlan::compile(&cfg, 3), 3);
            let mut log = Vec::new();
            let mut delivered = Vec::new();
            for tick in 0..20u64 {
                t.begin_tick(tick, &mut log);
                for from in 0..3u16 {
                    for to in 0..3u16 {
                        if from != to {
                            t.send(
                                tick,
                                from as usize,
                                to as usize,
                                &hb(from, to, tick),
                                &mut log,
                            );
                        }
                    }
                }
                for to in 0..3usize {
                    delivered.push((tick, to, drain(&mut t, tick, to, &mut log).len()));
                }
            }
            (log, delivered)
        };
        let (log_a, del_a) = run();
        let (log_b, del_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(del_a, del_b);
        assert!(log_a
            .iter()
            .any(|i| matches!(i, MeshIncident::PartitionStarted { .. })));
        assert!(log_a
            .iter()
            .any(|i| matches!(i, MeshIncident::FrameLost { .. })));
    }

    #[test]
    fn chaotic_with_plan_off_matches_lossless() {
        let mut chaotic = Chaotic::new(MeshFaultPlan::compile(&MeshFaultConfig::off(), 2), 2);
        let mut lossless = Lossless::new(2);
        let mut log = Vec::new();
        for tick in 0..10u64 {
            chaotic.begin_tick(tick, &mut log);
            lossless.begin_tick(tick, &mut log);
            chaotic.send(tick, 0, 1, &hb(0, 1, tick), &mut log);
            lossless.send(tick, 0, 1, &hb(0, 1, tick), &mut log);
            let a = drain(&mut chaotic, tick, 1, &mut log);
            let b = drain(&mut lossless, tick, 1, &mut log);
            assert_eq!(a, b);
        }
        assert!(log.is_empty());
    }
}
