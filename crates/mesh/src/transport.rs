//! The in-process mesh: how encoded frames travel between regions.
//!
//! A [`Transport`] carries opaque byte frames (already encoded in the
//! [`crate::wire`] format) from sender to destination inbox. Frames
//! sent at tick `T` become deliverable at tick `T + 1` — a synchronous
//! barrier per sub-round — and are handed out in deterministic order:
//! send order, which the runtime fixes by driving workers in region
//! order. Two implementations:
//!
//! * [`Lossless`] — every frame arrives exactly once, next tick, in
//!   order. Under this transport the mesh trajectory is bit-identical
//!   to `GradientAlgorithm` (the tentpole oracle).
//! * [`Chaotic`] — consults a seeded [`MeshFaultPlan`] per frame:
//!   loss, duplication, bounded delay, and region partitions with
//!   staggered heal. Every injected fault is logged as a
//!   [`MeshIncident`], and two runs from the same seed inject — and
//!   log — exactly the same faults.

use crate::fault::MeshFaultPlan;
use crate::incident::MeshIncident;
use crate::wire::Frame;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};

/// A frame conduit between region workers. All methods take the
/// current transport tick; implementations must be deterministic
/// functions of (construction arguments, call sequence).
pub trait Transport {
    /// Called once per tick before any send or deliver, so the
    /// transport can log scheduled events (partition cuts and heals).
    fn begin_tick(&mut self, tick: u64, log: &mut Vec<MeshIncident>);

    /// Queues an encoded frame from `from` to `to`.
    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: Vec<u8>,
        log: &mut Vec<MeshIncident>,
    );

    /// Drains every frame deliverable to `to` at `tick` (frames sent
    /// strictly earlier, plus any delayed frames now due), in
    /// deterministic order.
    fn deliver(&mut self, tick: u64, to: usize, log: &mut Vec<MeshIncident>) -> Vec<Vec<u8>>;
}

/// Synchronous-barrier delivery: every frame arrives exactly once at
/// the tick after it was sent, in send order. Built on `mpsc` channels
/// (one per destination region) with a small reorder buffer that holds
/// frames back until their barrier tick.
pub struct Lossless {
    lanes: Vec<Lane>,
}

struct Lane {
    tx: Sender<(u64, usize, Vec<u8>)>,
    rx: Receiver<(u64, usize, Vec<u8>)>,
    /// Frames drained from the channel but not yet past their barrier.
    held: VecDeque<(u64, usize, Vec<u8>)>,
}

impl Lossless {
    /// A lossless mesh between `regions` workers.
    #[must_use]
    pub fn new(regions: usize) -> Self {
        let lanes = (0..regions)
            .map(|_| {
                let (tx, rx) = channel();
                Lane {
                    tx,
                    rx,
                    held: VecDeque::new(),
                }
            })
            .collect();
        Lossless { lanes }
    }
}

impl Transport for Lossless {
    fn begin_tick(&mut self, _tick: u64, _log: &mut Vec<MeshIncident>) {}

    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: Vec<u8>,
        _log: &mut Vec<MeshIncident>,
    ) {
        // an in-process send on a live receiver cannot fail
        let _ = self.lanes[to].tx.send((tick, from, bytes));
    }

    fn deliver(&mut self, tick: u64, to: usize, _log: &mut Vec<MeshIncident>) -> Vec<Vec<u8>> {
        let lane = &mut self.lanes[to];
        while let Ok(item) = lane.rx.try_recv() {
            lane.held.push_back(item);
        }
        let mut out = Vec::new();
        // barrier: only frames sent strictly before this tick
        while matches!(lane.held.front(), Some(&(sent, _, _)) if sent < tick) {
            let (_, _, bytes) = lane.held.pop_front().expect("front checked");
            out.push(bytes);
        }
        out
    }
}

/// Fault-injecting delivery driven by a seeded [`MeshFaultPlan`]:
/// per-frame loss, duplication, and bounded delay draws plus region
/// partitions with staggered heal. Deterministic: the same plan and the
/// same call sequence inject the same faults and log the same
/// incidents.
pub struct Chaotic {
    plan: MeshFaultPlan,
    /// Pending frames per destination: `(deliver_tick, order, bytes)`,
    /// kept sorted by `(deliver_tick, order)`.
    pending: Vec<Vec<(u64, u64, Vec<u8>)>>,
    /// Monotone insertion counter — the deterministic tiebreak.
    order: u64,
}

impl Chaotic {
    /// A chaotic mesh between `regions` workers under `plan`.
    #[must_use]
    pub fn new(plan: MeshFaultPlan, regions: usize) -> Self {
        Chaotic {
            plan,
            pending: (0..regions).map(|_| Vec::new()).collect(),
            order: 0,
        }
    }

    fn enqueue(&mut self, to: usize, deliver_tick: u64, bytes: Vec<u8>) {
        let order = self.order;
        self.order += 1;
        let queue = &mut self.pending[to];
        let at = queue.partition_point(|&(dt, o, _)| (dt, o) <= (deliver_tick, order));
        queue.insert(at, (deliver_tick, order, bytes));
    }

    fn frame_kind(bytes: &[u8]) -> crate::wire::FrameKind {
        // frames come from our own workers; peeking cannot fail
        Frame::peek_kind(bytes).expect("well-formed frame")
    }
}

impl Transport for Chaotic {
    fn begin_tick(&mut self, tick: u64, log: &mut Vec<MeshIncident>) {
        for p in self.plan.partitions() {
            if p.at == tick {
                log.push(MeshIncident::PartitionStarted {
                    tick,
                    region: p.region,
                });
            }
            for (peer, &heal) in p.heal.iter().enumerate() {
                if peer != p.region && heal == tick {
                    log.push(MeshIncident::LinkHealed {
                        tick,
                        region: p.region,
                        peer,
                    });
                }
            }
            if p.healed_at == tick && p.at < tick {
                log.push(MeshIncident::PartitionHealed {
                    tick,
                    region: p.region,
                });
            }
        }
    }

    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: Vec<u8>,
        log: &mut Vec<MeshIncident>,
    ) {
        let kind = Self::frame_kind(&bytes);
        if self.plan.link_blocked(tick, from, to) || self.plan.drops_frame(tick, from, to) {
            log.push(MeshIncident::FrameLost {
                tick,
                from,
                to,
                kind,
            });
            return;
        }
        let delay = self.plan.delay_ticks(tick, from, to);
        let deliver_tick = tick + 1 + delay;
        if delay > 0 {
            log.push(MeshIncident::FrameDelayed {
                tick,
                from,
                to,
                kind,
                until: deliver_tick,
            });
        }
        if self.plan.duplicates_frame(tick, from, to) {
            log.push(MeshIncident::FrameDuplicated {
                tick,
                from,
                to,
                kind,
            });
            self.enqueue(to, deliver_tick, bytes.clone());
        }
        self.enqueue(to, deliver_tick, bytes);
    }

    fn deliver(&mut self, tick: u64, to: usize, _log: &mut Vec<MeshIncident>) -> Vec<Vec<u8>> {
        let queue = &mut self.pending[to];
        let due = queue.partition_point(|&(dt, _, _)| dt <= tick);
        queue.drain(..due).map(|(_, _, bytes)| bytes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{MeshFaultConfig, PartitionSpec};
    use crate::wire::Payload;

    fn hb(from: u16, to: u16, round: u64) -> Vec<u8> {
        Frame {
            from,
            to,
            seq: 0,
            round,
            payload: Payload::Heartbeat,
        }
        .encode()
    }

    #[test]
    fn lossless_delivers_next_tick_in_order() {
        let mut t = Lossless::new(2);
        let mut log = Vec::new();
        t.send(5, 0, 1, hb(0, 1, 1), &mut log);
        t.send(5, 0, 1, hb(0, 1, 2), &mut log);
        // same tick: barrier holds them back
        assert!(t.deliver(5, 1, &mut log).is_empty());
        let got = t.deliver(6, 1, &mut log);
        assert_eq!(got.len(), 2);
        assert_eq!(Frame::decode(&got[0]).unwrap().round, 1);
        assert_eq!(Frame::decode(&got[1]).unwrap().round, 2);
        // drained: nothing left
        assert!(t.deliver(7, 1, &mut log).is_empty());
        assert!(log.is_empty());
    }

    #[test]
    fn chaotic_same_seed_same_incidents() {
        let cfg = MeshFaultConfig {
            seed: 5,
            loss: 0.3,
            duplicate: 0.2,
            delay_prob: 0.3,
            max_delay: 2,
            partitions: vec![PartitionSpec {
                region: 1,
                at: 4,
                duration: 3,
                heal_stagger: 2,
            }],
        };
        let run = || {
            let mut t = Chaotic::new(MeshFaultPlan::compile(&cfg, 3), 3);
            let mut log = Vec::new();
            let mut delivered = Vec::new();
            for tick in 0..20u64 {
                t.begin_tick(tick, &mut log);
                for from in 0..3u16 {
                    for to in 0..3u16 {
                        if from != to {
                            t.send(
                                tick,
                                from as usize,
                                to as usize,
                                hb(from, to, tick),
                                &mut log,
                            );
                        }
                    }
                }
                for to in 0..3usize {
                    delivered.push((tick, to, t.deliver(tick, to, &mut log).len()));
                }
            }
            (log, delivered)
        };
        let (log_a, del_a) = run();
        let (log_b, del_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(del_a, del_b);
        assert!(log_a
            .iter()
            .any(|i| matches!(i, MeshIncident::PartitionStarted { .. })));
        assert!(log_a
            .iter()
            .any(|i| matches!(i, MeshIncident::FrameLost { .. })));
    }

    #[test]
    fn chaotic_with_plan_off_matches_lossless() {
        let mut chaotic = Chaotic::new(MeshFaultPlan::compile(&MeshFaultConfig::off(), 2), 2);
        let mut lossless = Lossless::new(2);
        let mut log = Vec::new();
        for tick in 0..10u64 {
            chaotic.begin_tick(tick, &mut log);
            lossless.begin_tick(tick, &mut log);
            chaotic.send(tick, 0, 1, hb(0, 1, tick), &mut log);
            lossless.send(tick, 0, 1, hb(0, 1, tick), &mut log);
            let a = chaotic.deliver(tick, 1, &mut log);
            let b = lossless.deliver(tick, 1, &mut log);
            assert_eq!(a, b);
        }
        assert!(log.is_empty());
    }
}
