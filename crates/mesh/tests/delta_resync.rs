//! ARCHITECTURE invariant 20 — delta suppression never changes what a
//! receiver ends up holding, only whether the bytes travel.
//!
//! Three probes of the delta/resync machinery:
//!
//! * A deterministic loss *window* (every frame on one link dropped for
//!   ten iterations, no other noise) breaks delta chains mid-run; the
//!   receiver detects the round gap, requests a resync, and every
//!   mirror returns to bitwise equality.
//! * A seeded lossy soak (loss + duplication + delay, no partition)
//!   keeps breaking chains at random; the mesh still reaches the
//!   monolithic algorithm's convergence verdict with utility inside
//!   the tier-2 tolerance, exercising resyncs along the way.
//! * A converged lossless mesh goes quiet: once nothing changes, the
//!   wire carries almost nothing (heartbeat batches plus the periodic
//!   full refresh).

use spn_core::{GradientAlgorithm, GradientConfig};
use spn_mesh::{
    Inbox, Lossless, MeshConfig, MeshFaultConfig, MeshIncident, MeshRuntime, Transport,
};
use spn_model::random::RandomInstance;
use spn_transform::ExtendedNetwork;

fn problem(nodes: usize, commodities: usize, seed: u64) -> spn_model::Problem {
    RandomInstance::builder()
        .nodes(nodes)
        .commodities(commodities)
        .seed(seed)
        .build()
        .unwrap()
        .problem
}

fn mesh_config(regions: usize) -> MeshConfig {
    MeshConfig {
        regions,
        gradient: GradientConfig {
            threads: 1,
            ..GradientConfig::default()
        },
        ..MeshConfig::default()
    }
}

/// Lossless delivery except that every frame from `from` to `to` sent
/// during `[cut, heal)` silently vanishes — the harshest delta-chain
/// break: the receiver misses whole rounds, not single rows.
struct LossWindow {
    inner: Lossless,
    from: usize,
    to: usize,
    cut: u64,
    heal: u64,
}

impl Transport for LossWindow {
    fn begin_tick(&mut self, tick: u64, log: &mut Vec<MeshIncident>) {
        self.inner.begin_tick(tick, log);
    }

    fn send(
        &mut self,
        tick: u64,
        from: usize,
        to: usize,
        bytes: &[u8],
        log: &mut Vec<MeshIncident>,
    ) {
        if from == self.from && to == self.to && (self.cut..self.heal).contains(&tick) {
            return;
        }
        self.inner.send(tick, from, to, bytes, log);
    }

    fn deliver_into(
        &mut self,
        tick: u64,
        to: usize,
        inbox: &mut Inbox,
        log: &mut Vec<MeshIncident>,
    ) {
        self.inner.deliver_into(tick, to, inbox, log);
    }
}

/// Ten iterations of total loss on one link, then silence heals: the
/// receiver's first post-heal delta names a predecessor round it never
/// applied, so it requests a resync; full frames plus the reliable
/// stream's retransmits restore bitwise mirror equality.
#[test]
fn dropped_deltas_resync_to_bitwise_equality() {
    const REGIONS: usize = 3;
    const ROUNDS: usize = 48; // 144 ticks; loss window [30, 60), refresh at 32
    let p = problem(20, 3, 9);
    let ext = ExtendedNetwork::build(&p);
    let transport = LossWindow {
        inner: Lossless::new(REGIONS),
        from: 0,
        to: 1,
        cut: 30,
        heal: 60,
    };
    let mut mesh = MeshRuntime::with_transport(ext, mesh_config(REGIONS), transport).unwrap();
    mesh.run(ROUNDS);

    // the gap was detected and a resync requested of the cut link's
    // sender — not of the untouched peer
    let log = mesh.incidents();
    assert!(
        log.iter().any(|i| matches!(
            i,
            MeshIncident::ResyncRequested {
                region: 1,
                peer: 0,
                ..
            }
        )),
        "receiver never requested a resync: {log:?}"
    );
    assert!(
        !log.iter()
            .any(|i| matches!(i, MeshIncident::ResyncRequested { peer: 2, .. })),
        "resync requested of a link that lost nothing: {log:?}"
    );
    let wire = mesh.wire_stats();
    assert!(wire.resyncs > 0, "telemetry missed the resyncs");
    assert!(
        wire.rows_suppressed > 0,
        "delta suppression never engaged: {wire:?}"
    );

    // every mirror returned to bitwise equality (routing AND flows)
    let routing = mesh.worker(0).routing().clone();
    let flows = mesh.worker(0).flows().clone();
    for r in 1..REGIONS {
        assert_eq!(
            &routing,
            mesh.worker(r).routing(),
            "region {r} routing still diverged after resync"
        );
        assert_eq!(
            &flows,
            mesh.worker(r).flows(),
            "region {r} flows still diverged after resync"
        );
    }

    // coalescing: one batch frame per (link, tick) at most
    for from in 0..REGIONS {
        for to in 0..REGIONS {
            if from == to {
                continue;
            }
            let s = mesh.worker(from).link_wire_stats(to);
            assert!(
                s.frames_sent <= (ROUNDS as u64) * 3,
                "link {from}->{to} sent {} frames over {} ticks",
                s.frames_sent,
                ROUNDS * 3
            );
        }
    }
}

/// Seeded lossy soak with no partition: delta frames keep vanishing and
/// reappearing, resyncs fire, and the mesh still lands on the
/// monolithic algorithm's convergence verdict within tier-2 tolerance.
#[test]
fn lossy_chaotic_delta_mesh_converges_with_resyncs() {
    const SHIFT_TOLERANCE: f64 = 1e-4;
    const MAX_ITERATIONS: usize = 600;
    const UTILITY_RTOL: f64 = 1e-2;

    let p = problem(16, 2, 4);
    let mut alg = GradientAlgorithm::new(
        &p,
        GradientConfig {
            threads: 1,
            ..GradientConfig::default()
        },
    )
    .unwrap();
    let reference = alg.run_until_stable(SHIFT_TOLERANCE, MAX_ITERATIONS);

    let faults = MeshFaultConfig {
        seed: 0xD317A,
        loss: 0.08,
        duplicate: 0.03,
        delay_prob: 0.1,
        max_delay: 2,
        partitions: Vec::new(),
    };
    let ext = ExtendedNetwork::build(&p);
    let mut mesh = MeshRuntime::chaotic(ext, mesh_config(3), &faults).unwrap();
    let (mesh_report, mesh_outcome) = mesh.run_until_stable(SHIFT_TOLERANCE, MAX_ITERATIONS);

    assert_eq!(
        reference.converged, mesh_outcome.converged,
        "convergence verdicts diverged: reference {reference:?} vs mesh {mesh_outcome:?}"
    );
    let ref_utility = alg.utility();
    let tol = UTILITY_RTOL * ref_utility.abs().max(1.0);
    assert!(
        (mesh_report.utility - ref_utility).abs() <= tol,
        "utility outside tier-2 tolerance: mesh {} vs reference {ref_utility}",
        mesh_report.utility
    );
    // the soak actually exercised the resync path
    assert!(
        mesh.incidents()
            .iter()
            .any(|i| matches!(i, MeshIncident::ResyncRequested { .. })),
        "lossy soak never broke a delta chain"
    );
    assert!(mesh_report.wire.rows_suppressed > 0);
}

/// A converged lossless mesh goes quiet on the wire. The seed-1
/// instance reaches a bitwise routing fixed point near iteration 5500
/// (the gradient's shifts round to exact no-ops); past it, non-refresh
/// rounds ship heartbeat-only batches and the bytes per iteration drop
/// an order of magnitude below the full-broadcast wire — the
/// `refresh_every = 1` cadence, which re-sends every owned row every
/// round exactly as the pre-delta wire did.
#[test]
fn converged_lossless_mesh_sends_almost_nothing() {
    let p = problem(16, 2, 1);

    // full-broadcast baseline rate: constant per iteration, so a short
    // run measures it
    let mut full = MeshRuntime::lossless(
        ExtendedNetwork::build(&p),
        MeshConfig {
            refresh_every: 1,
            ..mesh_config(2)
        },
    )
    .unwrap();
    full.run(16);
    let a = full.wire_stats();
    full.run(16);
    let b = full.wire_stats();
    let full_bytes_per_iter = (b.bytes - a.bytes) as f64 / 16.0;

    let config = mesh_config(2);
    let refresh = config.refresh_every as usize;
    let mut mesh = MeshRuntime::lossless(ExtendedNetwork::build(&p), config).unwrap();
    mesh.run(6000);
    let settled = mesh.wire_stats();

    // measure four full refresh cycles in the converged regime
    mesh.run(4 * refresh);
    let quiet = mesh.wire_stats();

    let quiet_bytes_per_iter = (quiet.bytes - settled.bytes) as f64 / (4 * refresh) as f64;
    assert!(
        quiet_bytes_per_iter < 0.2 * full_bytes_per_iter,
        "converged wire not quiet: {quiet_bytes_per_iter:.1} vs full-broadcast \
         {full_bytes_per_iter:.1} bytes/iter"
    );
    // non-refresh rounds suppress every row: the only rows on the wire
    // in the window are the four refreshes' full sweeps
    let window_sent = quiet.rows_sent - settled.rows_sent;
    let window_suppressed = quiet.rows_suppressed - settled.rows_suppressed;
    assert!(
        window_sent <= 4 * (window_sent + window_suppressed) / refresh as u64,
        "rows still travelling between refreshes: {window_sent} sent, \
         {window_suppressed} suppressed"
    );
    // and the lossless run never needed a resync
    assert_eq!(quiet.resyncs, 0);
    assert!(mesh.incidents().is_empty());
}
