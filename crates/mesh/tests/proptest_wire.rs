//! Property tests for the mesh wire format (v2): encode → decode is
//! the identity on every valid frame — including delta payloads with
//! their base rounds and batch frames with length-prefixed sub-frames —
//! and every malformed input — NaN payloads, version skew (v1 frames
//! included), truncation anywhere (mid-sub-payload included), trailing
//! garbage, nested batches — is refused with a structured
//! [`WireError`], never a panic.

use proptest::prelude::*;
use spn_mesh::wire::{
    frame_len, ForecastEntry, Frame, FrameAssembler, GammaRow, MarginalEntry, Payload,
    RecoveryStatePayload, SubFrame, WireError, WIRE_VERSION,
};
use spn_sim::draws::unit_hash;

/// A deterministic finite f64 in (-500, 500) drawn from the shared
/// seeded generator.
fn num(seed: u64, clock: usize, a: usize, b: usize) -> f64 {
    1000.0 * (unit_hash(seed, clock, a, b) - 0.5)
}

/// Builds one non-batch payload of the kind selected by `kind`, with
/// seed-derived content of seed-derived size.
fn build_payload(kind: u8, seed: u64, len: usize) -> Payload {
    match kind {
        0 => Payload::Heartbeat,
        1 => Payload::Marginals {
            base: seed % 10_000,
            entries: (0..len)
                .map(|i| MarginalEntry {
                    j: (seed % 7) as u32,
                    v: i as u32,
                    d: num(seed, 1, i, 0),
                })
                .collect(),
        },
        2 => Payload::GammaRows {
            base: seed % 9_999,
            rows: (0..len)
                .map(|i| GammaRow {
                    j: i as u32,
                    v: (seed % 31) as u32,
                    edges: (0..(1 + (seed as usize + i) % 4))
                        .map(|e| (e as u32, unit_hash(seed, 2, i, e)))
                        .collect(),
                })
                .collect(),
        },
        3 => Payload::FlowForecast {
            base: seed % 777,
            entries: (0..len)
                .map(|i| ForecastEntry {
                    j: i as u32,
                    admitted: unit_hash(seed, 3, i, 0),
                    utility: num(seed, 4, i, 0),
                })
                .collect(),
        },
        4 => Payload::Ack { cum: seed },
        5 => Payload::RecoveryRequest {
            token: seed ^ 0xABCD,
        },
        6 => Payload::Resend {
            kinds: (seed % 4) as u8,
        },
        _ => Payload::RecoveryState(Box::new(RecoveryStatePayload {
            token: seed,
            epoch: seed % 5,
            iterations: seed % 1000,
            epsilon: 0.2,
            eta: 0.05,
            phi: (0..len).map(|i| unit_hash(seed, 5, i, 0)).collect(),
            t: (0..len).map(|i| num(seed, 6, i, 0)).collect(),
            x: (0..len).map(|i| num(seed, 7, i, 0)).collect(),
            f_edge: (0..len).map(|i| num(seed, 8, i, 0)).collect(),
            f_node: (0..len).map(|i| num(seed, 9, i, 0)).collect(),
            d: (0..len).map(|i| num(seed, 10, i, 0)).collect(),
        })),
    }
}

/// Builds one frame: kinds 0..=7 map to the single payloads, 8 to a
/// batch coalescing a seed-derived mix of sub-frames (possibly empty —
/// the coalescing layer never ships one, but the format round-trips
/// it).
fn build_frame(kind: u8, seed: u64, len: usize) -> Frame {
    let payload = if kind == 8 {
        Payload::Batch(
            (0..len)
                .map(|i| SubFrame {
                    seq: seed.wrapping_add(i as u64),
                    round: seed % 500 + i as u64,
                    payload: build_payload(
                        ((seed as usize + i) % 8) as u8,
                        seed ^ (i as u64) << 3,
                        1 + (seed as usize + i) % 4,
                    ),
                })
                .collect(),
        )
    } else {
        build_payload(kind, seed, len)
    };
    Frame {
        from: (seed % 5) as u16,
        to: (seed % 3) as u16,
        seq: seed.rotate_left(7),
        round: seed % 10_000,
        payload,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for every kind, content, and
    /// size, including empty payload vectors, exact f64 bits, delta
    /// base rounds, and batches of mixed sub-frames.
    #[test]
    fn encode_decode_round_trips(kind in 0u8..9, seed in 0u64..10_000, len in 0usize..12) {
        let frame = build_frame(kind, seed, len);
        let bytes = frame.encode();
        let back = Frame::decode(&bytes);
        prop_assert_eq!(back, Ok(frame));
    }

    /// Every float lane rejects NaN at decode with a structured error.
    #[test]
    fn non_finite_floats_are_refused(kind_pick in 0u8..3, seed in 0u64..1000, len in 1usize..8) {
        // only the float-bearing kinds: marginals, rows, forecasts
        let kind = [1u8, 2, 3][kind_pick as usize];
        let mut frame = build_frame(kind, seed, len);
        match &mut frame.payload {
            Payload::Marginals { entries, .. } => entries[len / 2].d = f64::NAN,
            Payload::GammaRows { rows, .. } => rows[len / 2].edges[0].1 = f64::INFINITY,
            Payload::FlowForecast { entries, .. } => {
                entries[len / 2].utility = f64::NEG_INFINITY;
            }
            _ => unreachable!(),
        }
        let bytes = frame.encode();
        prop_assert!(matches!(Frame::decode(&bytes), Err(WireError::NonFinite { .. })));
    }

    /// A frame from any other wire version — v1 (the pre-delta format)
    /// or a future one — is refused with `UnsupportedVersion` carrying
    /// both versions: a structured error, not a panic and not a garbled
    /// decode. Version skew is checked before anything else, so even a
    /// v1 byte stream that happens to parse as v2 structure is refused.
    #[test]
    fn version_skew_is_refused_structurally(kind in 0u8..9, seed in 0u64..1000, skew in 0u16..6) {
        prop_assume!(skew != WIRE_VERSION);
        let mut bytes = build_frame(kind, seed, 3).encode();
        bytes[2..4].copy_from_slice(&skew.to_le_bytes());
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::UnsupportedVersion { got: skew, supported: WIRE_VERSION })
        );
    }

    /// Every strict prefix of a valid encoding — batch frames included,
    /// so cuts land mid-sub-header and mid-sub-payload — is refused
    /// without panicking, and appending garbage is refused as trailing
    /// bytes.
    #[test]
    fn truncation_and_trailing_bytes_are_refused(kind in 0u8..9, seed in 0u64..1000, len in 0usize..6) {
        let bytes = build_frame(kind, seed, len).encode();
        for cut in 0..bytes.len() {
            prop_assert!(Frame::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        let mut extended = bytes.clone();
        extended.push(0xAA);
        prop_assert_eq!(Frame::decode(&extended), Err(WireError::TrailingBytes { extra: 1 }));
    }

    /// Stream reassembly at **every** split offset: a frame cut into
    /// two chunks at each possible byte boundary — header splits,
    /// length-field splits, payload splits — reassembles to the
    /// identical frame through [`FrameAssembler`], with zero decode
    /// panics and no byte offset misclassified as a wire error (the
    /// pre-socket decoders reported a header split across reads as a
    /// truncated frame).
    #[test]
    fn reassembly_survives_every_split_offset(kind in 0u8..9, seed in 0u64..10_000, len in 0usize..6) {
        let frame = build_frame(kind, seed, len);
        let bytes = frame.encode();
        for cut in 0..=bytes.len() {
            let mut asm = FrameAssembler::new();
            asm.extend(&bytes[..cut]);
            // a strict prefix must never yield a frame or an error
            if cut < bytes.len() {
                prop_assert_eq!(
                    asm.next_frame().map(|f| f.map(<[u8]>::to_vec)),
                    Ok(None),
                    "prefix of {} misclassified at split {}", bytes.len(), cut
                );
            }
            asm.extend(&bytes[cut..]);
            let out = asm.next_frame().map(|f| f.map(<[u8]>::to_vec));
            prop_assert_eq!(out, Ok(Some(bytes.clone())), "split {} lost the frame", cut);
            prop_assert_eq!(Frame::decode(&bytes), Ok(frame.clone()));
            prop_assert_eq!(asm.pending(), 0);
        }
    }

    /// [`frame_len`] never errors on a strict prefix of a valid frame
    /// (every cut is "valid so far"), and reports the exact total
    /// length from the complete header onward.
    #[test]
    fn frame_len_is_monotone_on_valid_prefixes(kind in 0u8..9, seed in 0u64..10_000, len in 0usize..6) {
        let bytes = build_frame(kind, seed, len).encode();
        let header = 29usize;
        for cut in 0..bytes.len() {
            let got = frame_len(&bytes[..cut]);
            if cut < header {
                prop_assert_eq!(got, Ok(None), "header prefix {} misclassified", cut);
            } else {
                prop_assert_eq!(got, Ok(Some(bytes.len())));
            }
        }
    }

    /// A concatenated stream of frames, re-chunked at seeded arbitrary
    /// boundaries, reassembles to exactly the original frame sequence.
    #[test]
    fn reassembly_survives_seeded_chunking(seed in 0u64..10_000, count in 1usize..5) {
        let frames: Vec<Frame> = (0..count)
            .map(|i| build_frame(((seed as usize + i) % 9) as u8, seed ^ (i as u64), 1 + i % 4))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut at = 0usize;
        let mut step = 0usize;
        while at < stream.len() {
            // seeded chunk sizes in 1..=31 bytes
            let chunk = 1 + (unit_hash(seed, step, at, 0) * 31.0) as usize;
            let end = (at + chunk).min(stream.len());
            asm.extend(&stream[at..end]);
            while let Some(frame) = asm.next_frame().expect("valid stream") {
                got.push(Frame::decode(frame).expect("whole frame"));
            }
            at = end;
            step += 1;
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(asm.pending(), 0);
    }

    /// Splicing `Batch` into any sub-frame's kind byte is refused as
    /// `NestedBatch` — nesting is structurally impossible to decode.
    #[test]
    fn nested_batches_are_refused(seed in 0u64..1000, len in 1usize..5, pick in 0usize..4) {
        let frame = build_frame(8, seed, len);
        let Payload::Batch(subs) = &frame.payload else { unreachable!() };
        // locate the picked sub-frame's kind byte by re-walking sizes;
        // a standalone encoding of the same payload reveals its length
        let header = 29usize;
        let payload_len = |p: &Payload| {
            Frame { from: 0, to: 0, seq: 0, round: 0, payload: p.clone() }.encode().len() - header
        };
        let mut at = header + 4; // frame header + sub count
        for sub in subs.iter().take(pick % subs.len()) {
            at += 21 + payload_len(&sub.payload); // sub header + payload
        }
        let mut bytes = frame.encode();
        bytes[at] = 8; // FrameKind::Batch
        prop_assert_eq!(Frame::decode(&bytes), Err(WireError::NestedBatch));
    }
}
