//! Property tests for the mesh wire format: encode → decode is the
//! identity on every valid frame, and every malformed input — NaN
//! payloads, version skew, truncation, trailing garbage — is refused
//! with a structured [`WireError`], never a panic.

use proptest::prelude::*;
use spn_mesh::wire::{
    ForecastEntry, Frame, GammaRow, MarginalEntry, Payload, RecoveryStatePayload, WireError,
    WIRE_VERSION,
};
use spn_sim::draws::unit_hash;

/// A deterministic finite f64 in (-500, 500) drawn from the shared
/// seeded generator.
fn num(seed: u64, clock: usize, a: usize, b: usize) -> f64 {
    1000.0 * (unit_hash(seed, clock, a, b) - 0.5)
}

/// Builds one frame of the kind selected by `kind`, with seed-derived
/// content of seed-derived size.
fn build_frame(kind: u8, seed: u64, len: usize) -> Frame {
    let payload = match kind {
        0 => Payload::Heartbeat,
        1 => Payload::Marginals(
            (0..len)
                .map(|i| MarginalEntry {
                    j: (seed % 7) as u32,
                    v: i as u32,
                    d: num(seed, 1, i, 0),
                })
                .collect(),
        ),
        2 => Payload::GammaRows(
            (0..len)
                .map(|i| GammaRow {
                    j: i as u32,
                    v: (seed % 31) as u32,
                    edges: (0..(1 + (seed as usize + i) % 4))
                        .map(|e| (e as u32, unit_hash(seed, 2, i, e)))
                        .collect(),
                })
                .collect(),
        ),
        3 => Payload::FlowForecast(
            (0..len)
                .map(|i| ForecastEntry {
                    j: i as u32,
                    admitted: unit_hash(seed, 3, i, 0),
                    utility: num(seed, 4, i, 0),
                })
                .collect(),
        ),
        4 => Payload::Ack { cum: seed },
        5 => Payload::RecoveryRequest {
            token: seed ^ 0xABCD,
        },
        _ => Payload::RecoveryState(Box::new(RecoveryStatePayload {
            token: seed,
            epoch: seed % 5,
            iterations: seed % 1000,
            epsilon: 0.2,
            eta: 0.05,
            phi: (0..len).map(|i| unit_hash(seed, 5, i, 0)).collect(),
            t: (0..len).map(|i| num(seed, 6, i, 0)).collect(),
            x: (0..len).map(|i| num(seed, 7, i, 0)).collect(),
            f_edge: (0..len).map(|i| num(seed, 8, i, 0)).collect(),
            f_node: (0..len).map(|i| num(seed, 9, i, 0)).collect(),
            d: (0..len).map(|i| num(seed, 10, i, 0)).collect(),
        })),
    };
    Frame {
        from: (seed % 5) as u16,
        to: (seed % 3) as u16,
        seq: seed.rotate_left(7),
        round: seed % 10_000,
        payload,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for every kind, content, and
    /// size, including empty payload vectors and exact f64 bits.
    #[test]
    fn encode_decode_round_trips(kind in 0u8..7, seed in 0u64..10_000, len in 0usize..12) {
        let frame = build_frame(kind, seed, len);
        let bytes = frame.encode();
        let back = Frame::decode(&bytes);
        prop_assert_eq!(back, Ok(frame));
    }

    /// Every float lane rejects NaN at decode with a structured error.
    #[test]
    fn non_finite_floats_are_refused(kind_pick in 0u8..3, seed in 0u64..1000, len in 1usize..8) {
        // only the float-bearing kinds: marginals, rows, forecasts
        let kind = [1u8, 2, 3][kind_pick as usize];
        let mut frame = build_frame(kind, seed, len);
        match &mut frame.payload {
            Payload::Marginals(entries) => entries[len / 2].d = f64::NAN,
            Payload::GammaRows(rows) => rows[len / 2].edges[0].1 = f64::INFINITY,
            Payload::FlowForecast(entries) => entries[len / 2].utility = f64::NEG_INFINITY,
            _ => unreachable!(),
        }
        let bytes = frame.encode();
        prop_assert!(matches!(Frame::decode(&bytes), Err(WireError::NonFinite { .. })));
    }

    /// A frame from a future (or past-incompatible) wire version is
    /// refused with `UnsupportedVersion` carrying both versions — a
    /// structured error, not a panic and not a garbled decode.
    #[test]
    fn version_skew_is_refused_structurally(kind in 0u8..7, seed in 0u64..1000, bump in 1u16..5) {
        let mut bytes = build_frame(kind, seed, 3).encode();
        let skewed = WIRE_VERSION + bump;
        bytes[2..4].copy_from_slice(&skewed.to_le_bytes());
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::UnsupportedVersion { got: skewed, supported: WIRE_VERSION })
        );
    }

    /// Every strict prefix of a valid encoding is refused without
    /// panicking, and appending garbage is refused as trailing bytes.
    #[test]
    fn truncation_and_trailing_bytes_are_refused(kind in 0u8..7, seed in 0u64..1000, len in 0usize..6) {
        let bytes = build_frame(kind, seed, len).encode();
        for cut in 0..bytes.len() {
            prop_assert!(Frame::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        let mut extended = bytes.clone();
        extended.push(0xAA);
        prop_assert_eq!(Frame::decode(&extended), Err(WireError::TrailingBytes { extra: 1 }));
    }
}
