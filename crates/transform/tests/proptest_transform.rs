//! Property-based tests for the §3 transformations.

use proptest::prelude::*;
use spn_model::random::RandomInstance;
use spn_transform::{EdgeKind, ExtendedNetwork, NodeKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's count formula holds on every instance:
    /// `N + M + J` nodes, `2M + 2J` edges.
    #[test]
    fn count_formula_holds(seed in 0u64..200, nodes in 10usize..26, commodities in 1usize..4) {
        prop_assume!(nodes >= commodities * 2 + 5);
        let Ok(inst) = RandomInstance::builder()
            .nodes(nodes)
            .commodities(commodities)
            .seed(seed)
            .build()
        else {
            return Ok(()); // infeasible generator budget, covered elsewhere
        };
        let p = inst.problem;
        let (n, m, j) = (p.graph().node_count(), p.graph().edge_count(), p.num_commodities());
        let ext = ExtendedNetwork::build(&p);
        prop_assert_eq!(ext.graph().node_count(), n + m + j);
        prop_assert_eq!(ext.graph().edge_count(), 2 * m + 2 * j);
    }

    /// Every extended node/edge classifies consistently and parameters
    /// transfer per the paper's construction.
    #[test]
    fn classification_and_parameters(seed in 0u64..100) {
        let inst = RandomInstance::builder().nodes(16).commodities(2).seed(seed).build().unwrap();
        let p = inst.problem;
        let ext = ExtendedNetwork::build(&p);
        let g = ext.graph();
        for l in g.edges() {
            match ext.edge_kind(l) {
                EdgeKind::Ingress(e) => {
                    // tail is the physical source, head is the bandwidth node
                    prop_assert_eq!(g.source(l), p.graph().source(e));
                    prop_assert!(matches!(ext.node_kind(g.target(l)), NodeKind::Bandwidth(be) if be == e));
                    for j in p.commodity_ids() {
                        if let Some(params) = p.params(j, e) {
                            prop_assert!(ext.in_commodity(j, l));
                            prop_assert_eq!(ext.cost(j, l), params.cost);
                            prop_assert_eq!(ext.beta(j, l), params.beta);
                        } else {
                            prop_assert!(!ext.in_commodity(j, l));
                        }
                    }
                }
                EdgeKind::Egress(e) => {
                    prop_assert_eq!(g.target(l), p.graph().target(e));
                    for j in p.commodity_ids() {
                        if ext.in_commodity(j, l) {
                            // transfer: one bandwidth unit per unit, conserved
                            prop_assert_eq!(ext.cost(j, l), 1.0);
                            prop_assert_eq!(ext.beta(j, l), 1.0);
                        }
                    }
                }
                EdgeKind::DummyInput(j) => {
                    prop_assert_eq!(g.source(l), ext.dummy_source(j));
                    prop_assert_eq!(g.target(l), ext.commodity(j).source());
                }
                EdgeKind::DummyDifference(j) => {
                    prop_assert_eq!(g.source(l), ext.dummy_source(j));
                    prop_assert_eq!(g.target(l), ext.commodity(j).sink());
                }
            }
        }
        // capacities transfer; dummies unconstrained
        for v in g.nodes() {
            match ext.node_kind(v) {
                NodeKind::Processing(pv) => {
                    prop_assert_eq!(ext.capacity(v).value(), p.node_capacity(pv).value());
                }
                NodeKind::Bandwidth(e) => {
                    prop_assert_eq!(ext.capacity(v).value(), p.edge_bandwidth(e).value());
                }
                NodeKind::DummySource(_) => prop_assert!(ext.capacity(v).is_infinite()),
            }
        }
    }

    /// Per-commodity extended subgraphs are DAGs with valid topological
    /// orders, and the dummy source precedes everything it can reach.
    #[test]
    fn extended_subgraphs_are_ordered_dags(seed in 0u64..100) {
        let inst = RandomInstance::builder().nodes(16).commodities(2).seed(seed).build().unwrap();
        let ext = ExtendedNetwork::build(&inst.problem);
        for j in ext.commodity_ids() {
            let order = ext.topo_order(j);
            prop_assert!(spn_graph::topo::is_valid_topological_order(
                ext.graph(),
                order,
                |l| ext.in_commodity(j, l)
            ));
            let pos = |v: spn_graph::NodeId| order.iter().position(|&x| x == v).unwrap();
            prop_assert!(pos(ext.dummy_source(j)) < pos(ext.commodity(j).sink()));
        }
    }
}
