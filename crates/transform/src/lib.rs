//! The paper's §3 graph transformations.
//!
//! The original problem allocates two different resources — computing
//! power per node and bandwidth per link — and needs admission control
//! at sources even though the optimal injection rates are unknown until
//! the optimization is solved. Two transformations reduce it to a pure
//! routing problem with a single per-node resource constraint:
//!
//! 1. **Bandwidth nodes** — every physical edge `(i, k)` is split
//!    through a new node `n_ik` of capacity `B_ik`. The *ingress* half
//!    `(i, n_ik)` inherits the processing parameters `(c^j_ik, β^j_ik)`;
//!    the *egress* half `(n_ik, k)` costs one unit of `n_ik`'s resource
//!    (bandwidth) per unit of flow and conserves it (`c = 1`, `β = 1`).
//!    After this, "the original problem of allocating two different
//!    resources is transformed into a unified resource allocation
//!    problem with a single resource constraint on each node."
//!
//! 2. **Dummy nodes** — every commodity gets an unconstrained dummy
//!    source `s̄_j` receiving the full offered load `λ_j`, a *dummy
//!    input link* `(s̄_j, s_j)` carrying the admitted traffic `a_j`, and
//!    a *dummy difference link* `(s̄_j, sink_j)` carrying the rejected
//!    remainder `λ_j − a_j` at a cost equal to the utility loss
//!    `Y(x) = U_j(λ_j) − U_j(λ_j − x)` (eq. (1)). Maximizing utility is
//!    then exactly minimizing total cost over the extended graph, and
//!    admission control *is* routing at `s̄_j`.
//!
//! The result is an [`ExtendedNetwork`]: an original graph with `N`
//! nodes, `M` edges and `J` commodities becomes a new graph with
//! `N + M + J` nodes and `2M + 2J` edges (checked by tests).

pub mod extended;
pub mod view;

pub use extended::{CommodityDef, EdgeKind, ExtendedNetwork, NodeKind};
