//! Mapping extended-graph results back to the physical instance.

use crate::extended::{ExtendedNetwork, NodeKind};
use spn_graph::{EdgeId, NodeId};

/// Per-physical-resource usage extracted from extended per-node loads.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalLoads {
    /// Computing power in use at each physical node.
    pub node_usage: Vec<f64>,
    /// Bandwidth in use on each physical link.
    pub link_usage: Vec<f64>,
}

/// Splits an extended per-node load vector (`f_i` from the algorithm)
/// into physical node usage and physical link usage; dummy-source loads
/// are dropped (they consume no real resource).
///
/// # Panics
///
/// Panics if `loads.len()` differs from the extended node count.
#[must_use]
pub fn physical_loads(ext: &ExtendedNetwork, loads: &[f64]) -> PhysicalLoads {
    assert_eq!(loads.len(), ext.graph().node_count());
    let mut node_usage = vec![0.0; ext.physical_nodes()];
    let mut link_usage = vec![0.0; ext.physical_edges()];
    for v in ext.graph().nodes() {
        match ext.node_kind(v) {
            NodeKind::Processing(p) => node_usage[p.index()] = loads[v.index()],
            NodeKind::Bandwidth(e) => link_usage[e.index()] = loads[v.index()],
            NodeKind::DummySource(_) => {}
        }
    }
    PhysicalLoads {
        node_usage,
        link_usage,
    }
}

/// Human-readable label for an extended node (for DOT dumps and logs).
#[must_use]
pub fn node_label(ext: &ExtendedNetwork, v: NodeId) -> String {
    match ext.node_kind(v) {
        NodeKind::Processing(p) => format!("srv{}", p.index()),
        NodeKind::Bandwidth(e) => format!("bw{}", e.index()),
        NodeKind::DummySource(j) => format!("dummy{}", j.index()),
    }
}

/// Human-readable label for an extended edge.
#[must_use]
pub fn edge_label(ext: &ExtendedNetwork, l: EdgeId) -> String {
    match ext.edge_kind(l) {
        crate::EdgeKind::Ingress(e) => format!("in{}", e.index()),
        crate::EdgeKind::Egress(e) => format!("out{}", e.index()),
        crate::EdgeKind::DummyInput(j) => format!("admit{}", j.index()),
        crate::EdgeKind::DummyDifference(j) => format!("reject{}", j.index()),
    }
}

/// Renders the extended network as Graphviz DOT with readable labels.
#[must_use]
pub fn to_dot(ext: &ExtendedNetwork) -> String {
    spn_graph::dot::to_dot(ext.graph(), |v| node_label(ext, v), |l| edge_label(ext, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_model::builder::ProblemBuilder;
    use spn_model::UtilityFn;

    fn ext() -> ExtendedNetwork {
        let mut b = ProblemBuilder::new();
        let s = b.server(10.0);
        let t = b.server(10.0);
        let e = b.link(s, t, 5.0);
        let j = b.commodity(s, t, 4.0, UtilityFn::throughput());
        b.uses(j, e, 2.0, 1.0);
        ExtendedNetwork::build(&b.build().unwrap())
    }

    #[test]
    fn loads_map_back() {
        let ext = ext();
        // nodes: 0,1 physical; 2 bandwidth; 3 dummy
        let loads = vec![6.0, 0.0, 3.0, 4.0];
        let pl = physical_loads(&ext, &loads);
        assert_eq!(pl.node_usage, vec![6.0, 0.0]);
        assert_eq!(pl.link_usage, vec![3.0]);
    }

    #[test]
    fn labels_are_distinct_and_typed() {
        let ext = ext();
        assert_eq!(node_label(&ext, NodeId::from_index(0)), "srv0");
        assert_eq!(node_label(&ext, NodeId::from_index(2)), "bw0");
        assert_eq!(node_label(&ext, NodeId::from_index(3)), "dummy0");
        assert_eq!(edge_label(&ext, EdgeId::from_index(0)), "in0");
        assert_eq!(edge_label(&ext, EdgeId::from_index(1)), "out0");
        assert_eq!(edge_label(&ext, EdgeId::from_index(2)), "admit0");
        assert_eq!(edge_label(&ext, EdgeId::from_index(3)), "reject0");
    }

    #[test]
    fn dot_renders() {
        let dot = to_dot(&ext());
        assert!(dot.contains("srv0"));
        assert!(dot.contains("reject0"));
    }
}
